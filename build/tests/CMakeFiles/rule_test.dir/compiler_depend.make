# Empty compiler generated dependencies file for rule_test.
# This may be replaced when dependencies are built.
