file(REMOVE_RECURSE
  "CMakeFiles/rule_test.dir/rule_test.cc.o"
  "CMakeFiles/rule_test.dir/rule_test.cc.o.d"
  "rule_test"
  "rule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
