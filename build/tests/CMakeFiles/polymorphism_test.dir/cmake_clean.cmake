file(REMOVE_RECURSE
  "CMakeFiles/polymorphism_test.dir/polymorphism_test.cc.o"
  "CMakeFiles/polymorphism_test.dir/polymorphism_test.cc.o.d"
  "polymorphism_test"
  "polymorphism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
