# Empty compiler generated dependencies file for polymorphism_test.
# This may be replaced when dependencies are built.
