# Empty dependencies file for parallel_cost_test.
# This may be replaced when dependencies are built.
