file(REMOVE_RECURSE
  "CMakeFiles/parallel_cost_test.dir/parallel_cost_test.cc.o"
  "CMakeFiles/parallel_cost_test.dir/parallel_cost_test.cc.o.d"
  "parallel_cost_test"
  "parallel_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
