file(REMOVE_RECURSE
  "CMakeFiles/mixed_query_test.dir/mixed_query_test.cc.o"
  "CMakeFiles/mixed_query_test.dir/mixed_query_test.cc.o.d"
  "mixed_query_test"
  "mixed_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
