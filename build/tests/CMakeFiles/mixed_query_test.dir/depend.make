# Empty dependencies file for mixed_query_test.
# This may be replaced when dependencies are built.
