# Empty dependencies file for random_query_test.
# This may be replaced when dependencies are built.
