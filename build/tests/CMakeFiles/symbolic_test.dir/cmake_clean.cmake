file(REMOVE_RECURSE
  "CMakeFiles/symbolic_test.dir/symbolic_test.cc.o"
  "CMakeFiles/symbolic_test.dir/symbolic_test.cc.o.d"
  "symbolic_test"
  "symbolic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
