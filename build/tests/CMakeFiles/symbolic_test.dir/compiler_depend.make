# Empty compiler generated dependencies file for symbolic_test.
# This may be replaced when dependencies are built.
