# Empty dependencies file for expr_test.
# This may be replaced when dependencies are built.
