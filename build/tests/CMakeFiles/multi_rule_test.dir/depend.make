# Empty dependencies file for multi_rule_test.
# This may be replaced when dependencies are built.
