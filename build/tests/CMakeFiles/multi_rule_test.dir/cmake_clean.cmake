file(REMOVE_RECURSE
  "CMakeFiles/multi_rule_test.dir/multi_rule_test.cc.o"
  "CMakeFiles/multi_rule_test.dir/multi_rule_test.cc.o.d"
  "multi_rule_test"
  "multi_rule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
