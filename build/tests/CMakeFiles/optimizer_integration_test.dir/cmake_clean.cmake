file(REMOVE_RECURSE
  "CMakeFiles/optimizer_integration_test.dir/optimizer_integration_test.cc.o"
  "CMakeFiles/optimizer_integration_test.dir/optimizer_integration_test.cc.o.d"
  "optimizer_integration_test"
  "optimizer_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
