# Empty dependencies file for optimizer_integration_test.
# This may be replaced when dependencies are built.
