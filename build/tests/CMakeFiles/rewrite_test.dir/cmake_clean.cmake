file(REMOVE_RECURSE
  "CMakeFiles/rewrite_test.dir/rewrite_test.cc.o"
  "CMakeFiles/rewrite_test.dir/rewrite_test.cc.o.d"
  "rewrite_test"
  "rewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
