# Empty dependencies file for rewrite_test.
# This may be replaced when dependencies are built.
