# Empty dependencies file for join_index_test.
# This may be replaced when dependencies are built.
