file(REMOVE_RECURSE
  "CMakeFiles/join_index_test.dir/join_index_test.cc.o"
  "CMakeFiles/join_index_test.dir/join_index_test.cc.o.d"
  "join_index_test"
  "join_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
