file(REMOVE_RECURSE
  "CMakeFiles/translate_test.dir/translate_test.cc.o"
  "CMakeFiles/translate_test.dir/translate_test.cc.o.d"
  "translate_test"
  "translate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
