# Empty compiler generated dependencies file for translate_test.
# This may be replaced when dependencies are built.
