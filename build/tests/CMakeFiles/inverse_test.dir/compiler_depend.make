# Empty compiler generated dependencies file for inverse_test.
# This may be replaced when dependencies are built.
