file(REMOVE_RECURSE
  "CMakeFiles/inverse_test.dir/inverse_test.cc.o"
  "CMakeFiles/inverse_test.dir/inverse_test.cc.o.d"
  "inverse_test"
  "inverse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
