file(REMOVE_RECURSE
  "CMakeFiles/query_graph_test.dir/query_graph_test.cc.o"
  "CMakeFiles/query_graph_test.dir/query_graph_test.cc.o.d"
  "query_graph_test"
  "query_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
