# Empty dependencies file for query_graph_test.
# This may be replaced when dependencies are built.
