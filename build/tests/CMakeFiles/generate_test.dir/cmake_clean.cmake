file(REMOVE_RECURSE
  "CMakeFiles/generate_test.dir/generate_test.cc.o"
  "CMakeFiles/generate_test.dir/generate_test.cc.o.d"
  "generate_test"
  "generate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
