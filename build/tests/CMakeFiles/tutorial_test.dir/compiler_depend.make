# Empty compiler generated dependencies file for tutorial_test.
# This may be replaced when dependencies are built.
