file(REMOVE_RECURSE
  "CMakeFiles/tutorial_test.dir/tutorial_test.cc.o"
  "CMakeFiles/tutorial_test.dir/tutorial_test.cc.o.d"
  "tutorial_test"
  "tutorial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tutorial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
