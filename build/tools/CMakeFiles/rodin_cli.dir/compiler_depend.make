# Empty compiler generated dependencies file for rodin_cli.
# This may be replaced when dependencies are built.
