file(REMOVE_RECURSE
  "CMakeFiles/rodin_cli.dir/rodin_cli.cc.o"
  "CMakeFiles/rodin_cli.dir/rodin_cli.cc.o.d"
  "rodin_cli"
  "rodin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
