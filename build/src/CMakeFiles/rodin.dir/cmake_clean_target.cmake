file(REMOVE_RECURSE
  "librodin.a"
)
