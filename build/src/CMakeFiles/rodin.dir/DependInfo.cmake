
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/session.cc" "src/CMakeFiles/rodin.dir/api/session.cc.o" "gcc" "src/CMakeFiles/rodin.dir/api/session.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/rodin.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/rodin.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/type.cc" "src/CMakeFiles/rodin.dir/catalog/type.cc.o" "gcc" "src/CMakeFiles/rodin.dir/catalog/type.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/rodin.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/rodin.dir/common/string_util.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/rodin.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/rodin.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/fig7.cc" "src/CMakeFiles/rodin.dir/cost/fig7.cc.o" "gcc" "src/CMakeFiles/rodin.dir/cost/fig7.cc.o.d"
  "/root/repo/src/cost/stats.cc" "src/CMakeFiles/rodin.dir/cost/stats.cc.o" "gcc" "src/CMakeFiles/rodin.dir/cost/stats.cc.o.d"
  "/root/repo/src/cost/symbolic.cc" "src/CMakeFiles/rodin.dir/cost/symbolic.cc.o" "gcc" "src/CMakeFiles/rodin.dir/cost/symbolic.cc.o.d"
  "/root/repo/src/datagen/graph_gen.cc" "src/CMakeFiles/rodin.dir/datagen/graph_gen.cc.o" "gcc" "src/CMakeFiles/rodin.dir/datagen/graph_gen.cc.o.d"
  "/root/repo/src/datagen/music_gen.cc" "src/CMakeFiles/rodin.dir/datagen/music_gen.cc.o" "gcc" "src/CMakeFiles/rodin.dir/datagen/music_gen.cc.o.d"
  "/root/repo/src/datagen/parts_gen.cc" "src/CMakeFiles/rodin.dir/datagen/parts_gen.cc.o" "gcc" "src/CMakeFiles/rodin.dir/datagen/parts_gen.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/rodin.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/rodin.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/row.cc" "src/CMakeFiles/rodin.dir/exec/row.cc.o" "gcc" "src/CMakeFiles/rodin.dir/exec/row.cc.o.d"
  "/root/repo/src/optimizer/baseline.cc" "src/CMakeFiles/rodin.dir/optimizer/baseline.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/baseline.cc.o.d"
  "/root/repo/src/optimizer/generate.cc" "src/CMakeFiles/rodin.dir/optimizer/generate.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/generate.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/rodin.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rewrite.cc" "src/CMakeFiles/rodin.dir/optimizer/rewrite.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/rewrite.cc.o.d"
  "/root/repo/src/optimizer/rule.cc" "src/CMakeFiles/rodin.dir/optimizer/rule.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/rule.cc.o.d"
  "/root/repo/src/optimizer/strategy.cc" "src/CMakeFiles/rodin.dir/optimizer/strategy.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/strategy.cc.o.d"
  "/root/repo/src/optimizer/transform.cc" "src/CMakeFiles/rodin.dir/optimizer/transform.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/transform.cc.o.d"
  "/root/repo/src/optimizer/translate.cc" "src/CMakeFiles/rodin.dir/optimizer/translate.cc.o" "gcc" "src/CMakeFiles/rodin.dir/optimizer/translate.cc.o.d"
  "/root/repo/src/plan/pt.cc" "src/CMakeFiles/rodin.dir/plan/pt.cc.o" "gcc" "src/CMakeFiles/rodin.dir/plan/pt.cc.o.d"
  "/root/repo/src/plan/pt_printer.cc" "src/CMakeFiles/rodin.dir/plan/pt_printer.cc.o" "gcc" "src/CMakeFiles/rodin.dir/plan/pt_printer.cc.o.d"
  "/root/repo/src/query/builder.cc" "src/CMakeFiles/rodin.dir/query/builder.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/builder.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/rodin.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/expr.cc.o.d"
  "/root/repo/src/query/graph_queries.cc" "src/CMakeFiles/rodin.dir/query/graph_queries.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/graph_queries.cc.o.d"
  "/root/repo/src/query/paper_queries.cc" "src/CMakeFiles/rodin.dir/query/paper_queries.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/paper_queries.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/rodin.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/CMakeFiles/rodin.dir/query/query_graph.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/query_graph.cc.o.d"
  "/root/repo/src/query/tree_label.cc" "src/CMakeFiles/rodin.dir/query/tree_label.cc.o" "gcc" "src/CMakeFiles/rodin.dir/query/tree_label.cc.o.d"
  "/root/repo/src/storage/btree_index.cc" "src/CMakeFiles/rodin.dir/storage/btree_index.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/btree_index.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/rodin.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/rodin.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/extent.cc" "src/CMakeFiles/rodin.dir/storage/extent.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/extent.cc.o.d"
  "/root/repo/src/storage/path_index.cc" "src/CMakeFiles/rodin.dir/storage/path_index.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/path_index.cc.o.d"
  "/root/repo/src/storage/physical_schema.cc" "src/CMakeFiles/rodin.dir/storage/physical_schema.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/physical_schema.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/rodin.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/rodin.dir/storage/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
