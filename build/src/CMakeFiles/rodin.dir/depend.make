# Empty dependencies file for rodin.
# This may be replaced when dependencies are built.
