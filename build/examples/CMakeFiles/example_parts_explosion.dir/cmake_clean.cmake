file(REMOVE_RECURSE
  "CMakeFiles/example_parts_explosion.dir/parts_explosion.cpp.o"
  "CMakeFiles/example_parts_explosion.dir/parts_explosion.cpp.o.d"
  "example_parts_explosion"
  "example_parts_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parts_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
