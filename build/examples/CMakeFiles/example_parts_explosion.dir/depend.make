# Empty dependencies file for example_parts_explosion.
# This may be replaced when dependencies are built.
