# Empty compiler generated dependencies file for example_music_influencers.
# This may be replaced when dependencies are built.
