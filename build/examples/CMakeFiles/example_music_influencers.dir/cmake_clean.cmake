file(REMOVE_RECURSE
  "CMakeFiles/example_music_influencers.dir/music_influencers.cpp.o"
  "CMakeFiles/example_music_influencers.dir/music_influencers.cpp.o.d"
  "example_music_influencers"
  "example_music_influencers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_music_influencers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
