# Empty dependencies file for example_design_advisor.
# This may be replaced when dependencies are built.
