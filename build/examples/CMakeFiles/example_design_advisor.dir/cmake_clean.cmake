file(REMOVE_RECURSE
  "CMakeFiles/example_design_advisor.dir/design_advisor.cpp.o"
  "CMakeFiles/example_design_advisor.dir/design_advisor.cpp.o.d"
  "example_design_advisor"
  "example_design_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
