# Empty dependencies file for example_repl.
# This may be replaced when dependencies are built.
