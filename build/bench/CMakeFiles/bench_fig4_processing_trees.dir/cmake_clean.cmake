file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_processing_trees.dir/bench_fig4_processing_trees.cc.o"
  "CMakeFiles/bench_fig4_processing_trees.dir/bench_fig4_processing_trees.cc.o.d"
  "bench_fig4_processing_trees"
  "bench_fig4_processing_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_processing_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
