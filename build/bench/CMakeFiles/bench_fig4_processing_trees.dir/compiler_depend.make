# Empty compiler generated dependencies file for bench_fig4_processing_trees.
# This may be replaced when dependencies are built.
