# Empty compiler generated dependencies file for bench_parallel_cost.
# This may be replaced when dependencies are built.
