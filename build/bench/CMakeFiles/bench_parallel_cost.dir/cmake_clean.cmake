file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_cost.dir/bench_parallel_cost.cc.o"
  "CMakeFiles/bench_parallel_cost.dir/bench_parallel_cost.cc.o.d"
  "bench_parallel_cost"
  "bench_parallel_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
