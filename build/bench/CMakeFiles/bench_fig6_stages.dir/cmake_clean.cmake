file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_stages.dir/bench_fig6_stages.cc.o"
  "CMakeFiles/bench_fig6_stages.dir/bench_fig6_stages.cc.o.d"
  "bench_fig6_stages"
  "bench_fig6_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
