# Empty dependencies file for bench_fig3_query_graph.
# This may be replaced when dependencies are built.
