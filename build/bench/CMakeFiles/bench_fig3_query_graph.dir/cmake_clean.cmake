file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_query_graph.dir/bench_fig3_query_graph.cc.o"
  "CMakeFiles/bench_fig3_query_graph.dir/bench_fig3_query_graph.cc.o.d"
  "bench_fig3_query_graph"
  "bench_fig3_query_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_query_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
