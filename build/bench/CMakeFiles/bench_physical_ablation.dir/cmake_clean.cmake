file(REMOVE_RECURSE
  "CMakeFiles/bench_physical_ablation.dir/bench_physical_ablation.cc.o"
  "CMakeFiles/bench_physical_ablation.dir/bench_physical_ablation.cc.o.d"
  "bench_physical_ablation"
  "bench_physical_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_physical_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
