# Empty compiler generated dependencies file for bench_physical_ablation.
# This may be replaced when dependencies are built.
