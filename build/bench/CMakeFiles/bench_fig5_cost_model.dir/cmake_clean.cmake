file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cost_model.dir/bench_fig5_cost_model.cc.o"
  "CMakeFiles/bench_fig5_cost_model.dir/bench_fig5_cost_model.cc.o.d"
  "bench_fig5_cost_model"
  "bench_fig5_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
