# Empty compiler generated dependencies file for bench_fig5_cost_model.
# This may be replaced when dependencies are built.
