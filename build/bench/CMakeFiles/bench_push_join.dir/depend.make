# Empty dependencies file for bench_push_join.
# This may be replaced when dependencies are built.
