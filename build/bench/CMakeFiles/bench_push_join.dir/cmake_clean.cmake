file(REMOVE_RECURSE
  "CMakeFiles/bench_push_join.dir/bench_push_join.cc.o"
  "CMakeFiles/bench_push_join.dir/bench_push_join.cc.o.d"
  "bench_push_join"
  "bench_push_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_push_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
