# Empty compiler generated dependencies file for bench_crossover_push_selection.
# This may be replaced when dependencies are built.
