file(REMOVE_RECURSE
  "CMakeFiles/bench_crossover_push_selection.dir/bench_crossover_push_selection.cc.o"
  "CMakeFiles/bench_crossover_push_selection.dir/bench_crossover_push_selection.cc.o.d"
  "bench_crossover_push_selection"
  "bench_crossover_push_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossover_push_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
