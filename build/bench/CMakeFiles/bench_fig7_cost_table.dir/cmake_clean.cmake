file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cost_table.dir/bench_fig7_cost_table.cc.o"
  "CMakeFiles/bench_fig7_cost_table.dir/bench_fig7_cost_table.cc.o.d"
  "bench_fig7_cost_table"
  "bench_fig7_cost_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cost_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
