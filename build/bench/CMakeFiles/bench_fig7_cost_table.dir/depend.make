# Empty dependencies file for bench_fig7_cost_table.
# This may be replaced when dependencies are built.
