// The paper's running example end to end, with all three optimizer
// philosophies side by side:
//
//   - the deductive heuristic (always push through recursion),
//   - never pushing (treat the view as a black box),
//   - the paper's cost-controlled decision,
//
// on two databases: one where the selective predicate is rare (pushing
// restricts the recursion and wins) and one where it holds everywhere
// (pushing only drags the path expression into every iteration).

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "plan/pt_printer.h"
#include "query/paper_queries.h"

using namespace rodin;

namespace {

void RunScenario(const char* title, double harpsichord_fraction,
                 uint32_t num_instruments) {
  MusicConfig config;
  config.num_composers = 240;
  config.lineage_depth = 16;
  config.num_instruments = num_instruments;
  config.harpsichord_fraction = harpsichord_fraction;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  const QueryGraph query = Fig3Query(*g.schema, 4);

  std::printf("==== %s ====\n", title);

  struct Named {
    const char* name;
    OptimizerOptions options;
  };
  const Named configs[] = {
      {"deductive (always push)", DeductiveOptions()},
      {"naive (never push)", NaiveOptions()},
      {"cost-controlled (paper)", CostBasedOptions()},
  };
  for (const Named& c : configs) {
    Optimizer opt(g.db.get(), &stats, &cost, c.options);
    OptimizeResult r = opt.Optimize(query);
    if (!r.ok()) {
      std::printf("  %-26s failed: %s\n", c.name, r.status.message.c_str());
      continue;
    }
    Executor exec(g.db.get());
    exec.ResetMeasurement(true);
    Table t = exec.Execute(*r.plan);
    t.Dedup();
    std::printf("  %-26s est=%10.1f measured=%10.1f rows=%zu pushed=%s\n",
                c.name, r.cost, exec.MeasuredCost(), t.rows.size(),
                r.pushed_sel || r.pushed_join ? "yes" : "no");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("The Figure 3 query: \"composers influenced by composers for\n"
              "harpsichord that lived 4 generations before\".\n\n");

  RunScenario("Scenario A: harpsichord is rare (selective predicate)",
              /*harpsichord_fraction=*/0.03, /*num_instruments=*/40);
  RunScenario("Scenario B: every work uses a harpsichord (unselective)",
              /*harpsichord_fraction=*/1.0, /*num_instruments=*/1);

  std::printf(
      "The deductive heuristic wins scenario A and loses scenario B; the\n"
      "naive plan does the opposite. Only the cost-controlled optimizer\n"
      "tracks the winner in both — the paper's argument for deciding the\n"
      "push with a cost model on physical plans.\n");
  return 0;
}
