// A miniature physical-design advisor built on the public API: given a
// workload of queries, evaluate candidate physical designs (§3's options —
// path indices, selection indices, clustering, decomposition) by rebuilding
// the database under each design and summing the optimizer's estimated
// workload cost. Shows how the cost model turns the paper's design space
// into a search space.

#include <cstdio>
#include <vector>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "query/parser.h"

using namespace rodin;

namespace {

const char* kWorkload[] = {
    // Point lookup.
    R"(select [y: x.birthyear] from x in Composer where x.name = "Bach")",
    // Path-heavy selection.
    R"(select [n: x.name] from x in Composer, i in x.works.instruments
       where i.iname = "harpsichord")",
    // The recursive running example.
    R"(relation Influencer includes
         (select [master: x.master, disciple: x, gen: 1] from x in Composer)
         union
         (select [master: i.master, disciple: x, gen: i.gen + 1]
          from i in Influencer, x in Composer where i.disciple = x.master)
       select [n: j.disciple.name] from j in Influencer
       where j.master.works.instruments.iname = "flute" and j.gen >= 4)",
};

struct Design {
  const char* name;
  PhysicalConfig config;
};

}  // namespace

int main() {
  MusicConfig data;
  data.num_composers = 300;
  data.lineage_depth = 12;

  std::vector<Design> designs;
  {
    PhysicalConfig bare;
    bare.buffer_pages = 48;
    designs.push_back({"bare (no indices)", bare});

    PhysicalConfig name_index = bare;
    name_index.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    designs.push_back({"+ selection index on name", name_index});

    PhysicalConfig path_index = name_index;
    path_index.path_indexes.push_back(
        PathIndexSpec{"Composer", {"works", "instruments"}});
    designs.push_back({"+ path index works.instruments", path_index});

    PhysicalConfig clustered = path_index;
    clustered.clustering.push_back(ClusterSpec{"Composer", "works"});
    designs.push_back({"+ clustering works with composers", clustered});
  }

  std::printf("Workload: %zu queries; candidate designs: %zu\n\n",
              std::size(kWorkload), designs.size());
  std::printf("%-36s %14s %12s\n", "design", "est workload", "vs bare");

  double bare_cost = -1;
  const char* best_name = nullptr;
  double best_cost = -1;
  for (const Design& design : designs) {
    // Rebuild the same logical data under this physical design.
    GeneratedDb g = GenerateMusicDb(data, design.config);
    Session session(g.db.get(), CostBasedOptions());
    double total = 0;
    bool ok = true;
    for (const char* text : kWorkload) {
      const ParseResult parsed = ParseQuery(text, g.db->schema());
      if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.error().c_str());
        ok = false;
        break;
      }
      const OptimizeResult r = session.Optimize(parsed.graph);
      if (!r.ok()) {
        std::printf("optimize error: %s\n", r.status.message.c_str());
        ok = false;
        break;
      }
      total += r.cost;
    }
    if (!ok) continue;
    if (bare_cost < 0) bare_cost = total;
    if (best_cost < 0 || total < best_cost) {
      best_cost = total;
      best_name = design.name;
    }
    std::printf("%-36s %14.1f %11.2fx\n", design.name, total,
                bare_cost / total);
  }
  std::printf("\nrecommended design: %s (%.1f)\n", best_name, best_cost);
  return 0;
}
