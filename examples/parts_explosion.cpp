// Engineering-database workload from the paper's introduction ([CS90]):
// parts connected recursively to sub-parts. Builds the Contains view (the
// transitive closure of Part.subparts, a SET-valued self-reference), asks
// which assemblies transitively contain a part from a given vendor, and
// lets the optimizer decide whether that vendor filter belongs inside the
// fixpoint. Also shows a method (computed attribute) in a predicate.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/parts_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "plan/pt_printer.h"
#include "query/builder.h"

using namespace rodin;

namespace {

// Contains(asm, sub, lvl): sub is reachable from asm through `subparts`.
//   base: asm = x, sub in x.subparts, lvl = 1
//   rec:  asm = c.asm, sub in c.sub.subparts, lvl = c.lvl + 1
// Answer: names of assemblies containing a part of `vendor` at lvl >= 2.
QueryGraph PartsQuery(const Schema& schema, const std::string& vendor) {
  QueryGraphBuilder b;
  b.Node("Contains", "base")
      .Input("Part", "x")
      .Let("s", "x", {"subparts"})
      .OutPath("asm", "x")
      .OutPath("sub", "s")
      .Out("lvl", Expr::Lit(Value::Int(1)));
  b.Node("Contains", "rec")
      .Input("Contains", "c")
      .Let("t", "c", {"sub", "subparts"})
      .OutPath("asm", "c", {"asm"})
      .OutPath("sub", "t")
      .Out("lvl", Expr::Arith(ArithOp::kAdd, Expr::Path("c", {"lvl"}),
                              Expr::Lit(Value::Int(1))));
  b.Node("Answer", "query")
      .Input("Contains", "c")
      .Where(Expr::Eq(Expr::Path("c", {"sub", "vendor"}),
                      Expr::Lit(Value::Str(vendor))))
      .Where(Expr::Cmp(CompareOp::kGe, Expr::Path("c", {"lvl"}),
                       Expr::Lit(Value::Int(2))))
      .OutPath("assembly", "c", {"asm", "pname"});
  return b.Build(schema);
}

// A second query using the assembly_cost method inside the recursion's
// consumer: expensive assemblies containing vendor parts.
QueryGraph ExpensiveAssembliesQuery(const Schema& schema,
                                    const std::string& vendor) {
  QueryGraphBuilder b;
  b.Node("Contains", "base")
      .Input("Part", "x")
      .Let("s", "x", {"subparts"})
      .OutPath("asm", "x")
      .OutPath("sub", "s")
      .Out("lvl", Expr::Lit(Value::Int(1)));
  b.Node("Contains", "rec")
      .Input("Contains", "c")
      .Let("t", "c", {"sub", "subparts"})
      .OutPath("asm", "c", {"asm"})
      .OutPath("sub", "t")
      .Out("lvl", Expr::Arith(ArithOp::kAdd, Expr::Path("c", {"lvl"}),
                              Expr::Lit(Value::Int(1))));
  b.Node("Answer", "query")
      .Input("Contains", "c")
      .Where(Expr::Eq(Expr::Path("c", {"sub", "vendor"}),
                      Expr::Lit(Value::Str(vendor))))
      .Where(Expr::Cmp(CompareOp::kGt, Expr::Path("c", {"asm", "assembly_cost"}),
                       Expr::Lit(Value::Int(1500))))
      .OutPath("assembly", "c", {"asm", "pname"});
  return b.Build(schema);
}

void Run(const char* title, Database* db, const Stats& stats,
         const CostModel& cost, const QueryGraph& q) {
  std::printf("--- %s ---\n", title);
  Optimizer opt(db, &stats, &cost, CostBasedOptions());
  OptimizeResult r = opt.Optimize(q);
  if (!r.ok()) {
    std::printf("optimize failed: %s\n", r.status.message.c_str());
    return;
  }
  Executor exec(db);
  exec.ResetMeasurement(true);
  Table t = exec.Execute(*r.plan);
  t.Dedup();
  std::printf("plan (cost %.1f, vendor filter pushed through recursion: %s):\n%s",
              r.cost, r.pushed_sel ? "yes" : "no",
              PrintPT(*r.plan, false).c_str());
  std::printf("answer: %zu assemblies", t.rows.size());
  for (size_t i = 0; i < t.rows.size() && i < 5; ++i) {
    std::printf("%s %s", i == 0 ? ":" : ",",
                t.rows[i][0].ToString().c_str());
  }
  std::printf("\nmeasured cost %.1f (method calls: %llu)\n\n",
              exec.MeasuredCost(),
              static_cast<unsigned long long>(exec.counters().method_calls));
}

}  // namespace

int main() {
  PartsConfig config;
  config.parts_per_level = 60;
  config.num_levels = 5;
  config.num_vendors = 30;  // vendor filter selectivity 1/30
  GeneratedDb g = GeneratePartsDb(config, DefaultPartsPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  std::printf("Parts explosion over %u parts in %u levels.\n\n",
              config.parts_per_level * config.num_levels, config.num_levels);
  Run("assemblies containing a vendor_7 part at level >= 2", g.db.get(),
      stats, cost, PartsQuery(*g.schema, "vendor_7"));
  Run("expensive assemblies (method call) containing a vendor_7 part",
      g.db.get(), stats, cost,
      ExpensiveAssembliesQuery(*g.schema, "vendor_7"));
  return 0;
}
