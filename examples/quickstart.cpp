// Quickstart: build a schema, populate a database, state an object-oriented
// recursive query as a query graph, optimize it with the cost-controlled
// optimizer, and execute the chosen processing tree.
//
// This walks the full pipeline of the paper on its running example
// (Figures 1 and 3): the Influencer view over Composer.master and the
// "composers influenced by composers for harpsichord" query.

#include <cstdio>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "plan/pt_printer.h"
#include "query/parser.h"

int main() {
  using namespace rodin;

  // 1. A populated instance of the Figure 1 schema, with the paper's
  //    physical design: a path index on Composer.works.instruments.
  MusicConfig config;
  config.num_composers = 120;
  config.lineage_depth = 8;
  GeneratedDb music = GenerateMusicDb(config, PaperMusicPhysical());
  Database& db = *music.db;

  std::printf("Schema classes:");
  for (const auto& cls : db.schema().classes()) {
    std::printf(" %s", cls->name().c_str());
  }
  std::printf("\n\n");

  // 2. The Figure 3 query, in the paper's own surface syntax (section 2.3).
  const char* text = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 4
)";
  const ParseResult parsed = ParseQuery(text, db.schema());
  if (!parsed.ok()) {
    std::printf("parse failed: %s\n", parsed.error().c_str());
    return 1;
  }
  const QueryGraph& query = parsed.graph;
  std::printf("Query graph (paper notation):\n%s\n", query.ToString().c_str());

  // 3. Optimize: statistics -> cost model -> the staged optimizer.
  Stats stats = Stats::Derive(db);
  CostModel cost(&db, &stats);
  Optimizer optimizer(&db, &stats, &cost, CostBasedOptions());
  OptimizeResult result = optimizer.Optimize(query);
  if (!result.ok()) {
    std::printf("optimization failed: %s\n", result.status.message.c_str());
    return 1;
  }

  std::printf("Chosen processing tree (estimated cost %.1f):\n%s\n",
              result.cost, PrintPT(*result.plan).c_str());
  std::printf("Pushed selection through recursion? %s\n",
              result.pushed_sel ? "yes" : "no (cost model said no)");
  if (result.pushed_variant_cost >= 0) {
    std::printf("  cost if pushed:     %.1f\n", result.pushed_variant_cost);
    std::printf("  cost if not pushed: %.1f\n", result.unpushed_variant_cost);
  }

  // 4. Execute the plan.
  Executor exec(&db);
  Table answer = exec.Execute(*result.plan);
  std::printf("\nAnswer (%zu composers):\n%s\n", answer.rows.size(),
              answer.ToString(10).c_str());
  std::printf("Measured cost: %.1f (page misses: %llu, predicate evals: %llu)\n",
              exec.MeasuredCost(),
              static_cast<unsigned long long>(db.buffer_pool().stats().misses),
              static_cast<unsigned long long>(exec.counters().predicate_evals));
  return 0;
}
