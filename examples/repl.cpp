// Interactive REPL over the music database: type queries in the paper's
// ESQL-flavoured syntax (query/parser.h), terminated by a line containing
// only ";". Shows the chosen processing tree, the push decision, and the
// answer with measured cost.
//
// When stdin is not a terminal (e.g. batch runs), a canned demo script is
// executed instead so the binary never blocks.

#include <cstdio>
#include <iostream>
#include <string>
#include <unistd.h>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"

using namespace rodin;

namespace {

void RunOne(Session& session, const std::string& text) {
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(text, options);
  if (!run.ok()) {
    std::printf("error: %s\n", run.error().c_str());
    return;
  }
  std::printf("plan (estimated cost %.1f%s):\n%s", run.optimized.cost,
              run.optimized.pushed_sel || run.optimized.pushed_join
                  ? ", pushed through recursion"
                  : "",
              run.plan_text.c_str());
  std::printf("-- %zu rows, measured cost %.1f --\n%s\n",
              run.answer.rows.size(), run.measured_cost,
              run.answer.ToString(10).c_str());
}

constexpr const char* kDemo[] = {
    R"(select [n: x.name, born: x.birthyear] from x in Composer
       where x.name = "Bach")",
    R"(select [t: w.title] from x in Composer, w in x.works,
       i in w.instruments
       where i.iname = "harpsichord" and x.name = "Bach")",
    R"(relation Influencer includes
         (select [master: x.master, disciple: x, gen: 1] from x in Composer)
         union
         (select [master: i.master, disciple: x, gen: i.gen + 1]
          from i in Influencer, x in Composer where i.disciple = x.master)
       select [n: j.disciple.name] from j in Influencer where j.gen >= 6)",
};

}  // namespace

int main() {
  MusicConfig config;
  config.num_composers = 150;
  config.lineage_depth = 10;
  GeneratedDb music = GenerateMusicDb(config, PaperMusicPhysical());
  Session session(music.db.get(), CostBasedOptions());

  if (!isatty(fileno(stdin))) {
    std::printf("(stdin is not a terminal: running the demo script)\n\n");
    for (const char* q : kDemo) {
      std::printf(">> %s\n", q);
      RunOne(session, q);
    }
    return 0;
  }

  std::printf(
      "rodin REPL over the Figure 1 music database (%u composers).\n"
      "Enter a query in the paper's syntax, end with a line of just ';'.\n"
      "Example:  select [n: x.name] from x in Composer where x.name = "
      "\"Bach\"\n\n",
      config.num_composers);
  std::string buffer;
  std::string line;
  std::printf("rodin> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == ";") {
      if (!buffer.empty()) RunOne(session, buffer);
      buffer.clear();
      std::printf("rodin> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
  }
  return 0;
}
