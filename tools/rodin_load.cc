// rodin_load — load driver for rodin_serve, producing BENCH_server.json.
//
//   rodin_load --port=P [--host=ADDR] [--clients=N] [--requests=N]
//              [--rate-qps=R] [--query=FILE|recursive] [--deadline-ms=N]
//              [--prepare] [--max-retries=N] [--seed=S] [--out=FILE]
//              [--mix=NrMw] [--write-extent=E] [--write-attr=A]
//              [--write-slots=K]
//
// Thread-per-client driver. Closed loop by default: each of --clients
// connections issues --requests queries back-to-back. --rate-qps > 0
// switches to an open loop: the total offered rate is spread across the
// clients on a fixed schedule (sleep_until on the *planned* send time, so a
// slow reply does not throttle the offered load — queueing shows up as
// latency, the way an open-loop driver should behave).
//
// Shed requests (the retryable `overloaded` wire code) are retried with
// capped exponential backoff up to --max-retries and counted; any other
// failure counts as an error and fails the run. The backoff jitter draws
// from per-client RNG streams based at --seed (default 0x10ad, the
// historical constant), so retry schedules are reproducible per seed and
// decorrelated across seeds. --prepare switches to the PREPARE-once /
// EXECUTE-per-request path.
//
// --mix=NrMw (e.g. --mix=90r10w) interleaves writes into each client's
// request stream in the given read:write proportion (deterministically, so
// every run issues the same mix). A write is one MUTATE+COMMIT round-trip
// (protocol v2) updating --write-attr of a rotating slot in
// --write-extent with a unique string — small, conflicting-by-design
// single-op transactions. Retryable refusals (the single-writer slot held
// by another connection, or live streaming cursors at commit) are counted
// as conflicts and retried with jittered exponential backoff under their
// own generous cap (>= 64 attempts, not --max-retries): the server's
// single writer always completes, so a persistent retrier is guaranteed
// to make progress, and a whole fleet contending for one write slot needs
// far more attempts than a shed read does.
//
// Output: a Google Benchmark-shaped JSON (--out; default BENCH_server.json,
// or BENCH_mutate.json under --mix) with one iteration row per figure — in
// read-only mode server/qps, server/p50_us, server/p99_us, server/p999_us,
// server/shed; under --mix mutate/qps, mutate/read_p50_us,
// mutate/read_p99_us, mutate/write_p50_us, mutate/write_p99_us,
// mutate/conflicts — in real_time, so scripts/check_bench.py gates it like
// any other bench. A human summary goes to stdout.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "server/client.h"
#include "storage/value.h"
#include "txn/mutation.h"

using namespace rodin;

namespace {

constexpr const char* kDefaultQuery =
    R"(select [n: x.name] from x in Composer where x.name = "Bach")";

// A recursive workload (the paper's influencer chain) for heavier per-query
// cost; selected with --query=recursive.
constexpr const char* kRecursiveQuery = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [n: j.disciple.name] from j in Influencer where j.gen >= 3
)";

struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t clients = 8;
  size_t requests = 20;  // per client
  double rate_qps = 0;   // 0 = closed loop
  std::string query = kDefaultQuery;
  uint64_t deadline_ms = 0;
  bool prepare = false;
  size_t max_retries = 8;
  // Base of the per-client backoff-jitter RNG streams (client i draws from
  // seed + i). The default keeps historical runs reproducible.
  uint64_t seed = 0x10ad;
  std::string out;  // empty = mode default (BENCH_server/BENCH_mutate)
  // --mix=NrMw; both 0 = read-only mode.
  size_t read_weight = 0;
  size_t write_weight = 0;
  std::string write_extent = "Composer";
  std::string write_attr = "name";
  size_t write_slots = 8;

  bool mixed() const { return write_weight > 0; }
};

struct ClientStats {
  std::vector<double> latencies_us;  // successful reads only
  std::vector<double> write_latencies_us;
  uint64_t ok = 0;        // reads
  uint64_t write_ok = 0;  // committed write transactions
  uint64_t shed_retries = 0;
  uint64_t conflict_retries = 0;
  uint64_t errors = 0;
  std::string first_error;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

uint64_t ParseCount(const std::string& value, const char* name) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "--%s expects a non-negative integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return std::stoull(value);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunClient(const LoadOptions& options, size_t index, ClientStats* stats) {
  server::Client client;
  Status s = client.Connect(options.host, options.port);
  if (!s.ok()) {
    stats->errors = options.requests;
    stats->first_error = s.ToString();
    return;
  }
  uint64_t statement_id = 0;
  if (options.prepare) {
    s = client.Prepare(options.query, &statement_id);
    if (!s.ok()) {
      stats->errors = options.requests;
      stats->first_error = s.ToString();
      return;
    }
  }
  QueryOptions qo;
  qo.query.deadline_ms = options.deadline_ms;
  // Per-client backoff jitter stream (decorrelates retry schedules; seeded
  // from --seed plus the client index so runs stay reproducible modulo
  // thread timing, and different seeds decorrelate whole runs).
  Rng backoff_rng(options.seed + index);

  using clock = std::chrono::steady_clock;
  // Open loop: this client's fixed send schedule, phase-shifted by index so
  // the fleet's arrivals interleave instead of pulsing.
  const double per_client_qps =
      options.rate_qps > 0
          ? options.rate_qps / static_cast<double>(options.clients)
          : 0;
  const auto interval =
      per_client_qps > 0
          ? std::chrono::nanoseconds(
                static_cast<int64_t>(1e9 / per_client_qps))
          : std::chrono::nanoseconds(0);
  auto next_send = clock::now() + interval * index / options.clients;

  const size_t mix_total = options.read_weight + options.write_weight;
  for (size_t i = 0; i < options.requests; ++i) {
    if (interval.count() > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += interval;
    }
    // Deterministic read/write interleave: request i is a write exactly when
    // the running write quota ⌊(i+1)·w/total⌋ ticks up, so every run issues
    // the same NrMw pattern.
    const bool is_write =
        options.mixed() && ((i + 1) * options.write_weight) / mix_total >
                               (i * options.write_weight) / mix_total;
    const auto start = clock::now();
    bool done = false;
    // Write transactions stage once, then retry COMMIT alone on a refusal
    // (the transaction stays open server-side across a kConflict commit).
    // Conflicts get their own cap: unlike shedding, the single-writer gate
    // guarantees someone finishes, so persistence always pays off.
    const size_t retry_cap =
        is_write ? std::max<size_t>(options.max_retries, 64)
                 : options.max_retries;
    bool staged = false;
    for (size_t attempt = 0; attempt <= retry_cap; ++attempt) {
      Status status;
      if (is_write) {
        if (!staged) {
          MutationBatch batch;
          const uint32_t slot =
              static_cast<uint32_t>((index + i) % options.write_slots);
          // Slot-only target (class_id UINT32_MAX): the server resolves it
          // against the extent, so the driver needs no class-id knowledge.
          batch.Update(options.write_extent, Oid{UINT32_MAX, slot},
                       {{options.write_attr,
                         Value::Str("w-" + std::to_string(index) + "-" +
                                    std::to_string(i))}});
          status = client.Mutate(batch);
          staged = status.ok();
        }
        if (staged) status = client.Commit();
      } else {
        server::ClientResult result =
            options.prepare
                ? client.Execute(statement_id, qo, 0, /*collect_rows=*/false)
                : client.Query(options.query, qo, 0, /*collect_rows=*/false);
        status = result.status;
      }
      if (status.ok()) {
        const double us = std::chrono::duration<double, std::micro>(
                              clock::now() - start)
                              .count();
        if (is_write) {
          stats->write_latencies_us.push_back(us);
          ++stats->write_ok;
        } else {
          stats->latencies_us.push_back(us);
          ++stats->ok;
        }
        done = true;
        break;
      }
      if (status.retryable() && attempt < retry_cap) {
        ++(is_write ? stats->conflict_retries : stats->shed_retries);
        // Jittered exponential backoff: with a deterministic schedule the
        // losers of one conflict round all wake simultaneously and collide
        // again (and again) — jitter spreads the herd out.
        const uint64_t base = 100u << std::min<size_t>(attempt, 7);
        std::this_thread::sleep_for(
            std::chrono::microseconds(base + backoff_rng.Below(base)));
        continue;
      }
      ++stats->errors;
      if (stats->first_error.empty()) {
        stats->first_error = status.ToString();
      }
      done = true;
      break;
    }
    if (!done) {
      ++stats->errors;
      if (stats->first_error.empty()) {
        stats->first_error = is_write ? "retries exhausted (still conflicting)"
                                      : "retries exhausted (still overloaded)";
      }
    }
  }
  client.Goodbye();
}

struct BenchRow {
  std::string name;
  double value;
  const char* unit;
};

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"context\": {\n    \"executable\": \"rodin_load\"\n  },\n"
      << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << row.name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"iterations\": 1,\n"
        << "      \"real_time\": " << row.value << ",\n"
        << "      \"cpu_time\": " << row.value << ",\n"
        << "      \"time_unit\": \"" << row.unit << "\"\n"
        << "    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "port", &value)) {
      options.port = static_cast<uint16_t>(ParseCount(value, "port"));
    } else if (ParseFlag(argv[i], "clients", &value)) {
      options.clients = static_cast<size_t>(ParseCount(value, "clients"));
    } else if (ParseFlag(argv[i], "requests", &value)) {
      options.requests = static_cast<size_t>(ParseCount(value, "requests"));
    } else if (ParseFlag(argv[i], "rate-qps", &value)) {
      options.rate_qps = std::stod(value);
    } else if (ParseFlag(argv[i], "query", &value)) {
      options.query = value == "recursive" ? kRecursiveQuery
                                           : ReadFile(value);
    } else if (ParseFlag(argv[i], "deadline-ms", &value)) {
      options.deadline_ms = ParseCount(value, "deadline-ms");
    } else if (ParseFlag(argv[i], "max-retries", &value)) {
      options.max_retries =
          static_cast<size_t>(ParseCount(value, "max-retries"));
    } else if (ParseFlag(argv[i], "seed", &value)) {
      options.seed = ParseCount(value, "seed");
    } else if (ParseFlag(argv[i], "out", &value)) {
      options.out = value;
    } else if (ParseFlag(argv[i], "mix", &value)) {
      // NrMw, e.g. 90r10w.
      const size_t r = value.find('r');
      const size_t w = value.find('w');
      if (r == std::string::npos || w == std::string::npos || w < r ||
          w + 1 != value.size()) {
        std::fprintf(stderr,
                     "--mix expects NrMw (e.g. 90r10w), got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.read_weight =
          static_cast<size_t>(ParseCount(value.substr(0, r), "mix"));
      options.write_weight = static_cast<size_t>(
          ParseCount(value.substr(r + 1, w - r - 1), "mix"));
      if (options.read_weight + options.write_weight == 0) {
        std::fprintf(stderr, "--mix needs a non-zero weight\n");
        return 2;
      }
    } else if (ParseFlag(argv[i], "write-extent", &value)) {
      options.write_extent = value;
    } else if (ParseFlag(argv[i], "write-attr", &value)) {
      options.write_attr = value;
    } else if (ParseFlag(argv[i], "write-slots", &value)) {
      options.write_slots =
          static_cast<size_t>(ParseCount(value, "write-slots"));
      if (options.write_slots == 0) {
        std::fprintf(stderr, "--write-slots must be > 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prepare") == 0) {
      options.prepare = true;
    } else {
      std::fprintf(
          stderr,
          "usage: rodin_load --port=P [--host=ADDR] [--clients=N]\n"
          "                  [--requests=N] [--rate-qps=R]\n"
          "                  [--query=FILE|recursive] [--deadline-ms=N]\n"
          "                  [--prepare] [--max-retries=N] [--seed=S]\n"
          "                  [--out=FILE]\n"
          "                  [--mix=NrMw] [--write-extent=E]\n"
          "                  [--write-attr=A] [--write-slots=K]\n");
      return 2;
    }
  }
  if (options.out.empty()) {
    options.out = options.mixed() ? "BENCH_mutate.json" : "BENCH_server.json";
  }
  if (options.port == 0) {
    std::fprintf(stderr, "rodin_load: --port is required\n");
    return 2;
  }
  if (options.clients == 0 || options.requests == 0) {
    std::fprintf(stderr, "rodin_load: need clients and requests > 0\n");
    return 2;
  }

  std::vector<ClientStats> stats(options.clients);
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < options.clients; ++i) {
    threads.emplace_back(RunClient, std::cref(options), i, &stats[i]);
  }
  for (auto& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  std::vector<double> latencies, write_latencies;
  uint64_t ok = 0, write_ok = 0, shed = 0, conflicts = 0, errors = 0;
  std::string first_error;
  for (const ClientStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    write_latencies.insert(write_latencies.end(),
                           s.write_latencies_us.begin(),
                           s.write_latencies_us.end());
    ok += s.ok;
    write_ok += s.write_ok;
    shed += s.shed_retries;
    conflicts += s.conflict_retries;
    errors += s.errors;
    if (first_error.empty()) first_error = s.first_error;
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(write_latencies.begin(), write_latencies.end());
  const uint64_t total_ok = ok + write_ok;
  const double qps = wall_s > 0 ? static_cast<double>(total_ok) / wall_s : 0;
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double p999 = Percentile(latencies, 0.999);
  const double wp50 = Percentile(write_latencies, 0.50);
  const double wp99 = Percentile(write_latencies, 0.99);

  std::printf(
      "rodin_load: %zu clients x %zu requests (%s loop)\n"
      "  ok %llu, shed-retries %llu, errors %llu, wall %.2fs\n"
      "  qps %.1f   p50 %.0fus   p99 %.0fus   p99.9 %.0fus\n",
      options.clients, options.requests,
      options.rate_qps > 0 ? "open" : "closed",
      static_cast<unsigned long long>(total_ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(errors), wall_s, qps, p50, p99, p999);
  if (options.mixed()) {
    std::printf(
        "  writes: ok %llu, conflict-retries %llu, "
        "p50 %.0fus   p99 %.0fus\n",
        static_cast<unsigned long long>(write_ok),
        static_cast<unsigned long long>(conflicts), wp50, wp99);
  }
  if (errors > 0) {
    std::fprintf(stderr, "rodin_load: first error: %s\n",
                 first_error.c_str());
  }
  if (!options.out.empty()) {
    std::vector<BenchRow> rows;
    if (options.mixed()) {
      rows = {{"mutate/qps", qps, "qps"},
              {"mutate/read_p50_us", p50, "us"},
              {"mutate/read_p99_us", p99, "us"},
              {"mutate/write_p50_us", wp50, "us"},
              {"mutate/write_p99_us", wp99, "us"},
              {"mutate/conflicts", static_cast<double>(conflicts), "count"}};
    } else {
      rows = {{"server/qps", qps, "qps"},
              {"server/p50_us", p50, "us"},
              {"server/p99_us", p99, "us"},
              {"server/p999_us", p999, "us"},
              {"server/shed", static_cast<double>(shed), "count"}};
    }
    WriteBenchJson(options.out, rows);
    std::printf("  wrote %s\n", options.out.c_str());
  }
  const bool write_goal_met = !options.mixed() || write_ok > 0;
  return errors == 0 && total_ok > 0 && write_goal_met ? 0 : 1;
}
