// rodin_load — load driver for rodin_serve, producing BENCH_server.json.
//
//   rodin_load --port=P [--host=ADDR] [--clients=N] [--requests=N]
//              [--rate-qps=R] [--query=FILE|recursive] [--deadline-ms=N]
//              [--prepare] [--max-retries=N] [--out=FILE]
//
// Thread-per-client driver. Closed loop by default: each of --clients
// connections issues --requests queries back-to-back. --rate-qps > 0
// switches to an open loop: the total offered rate is spread across the
// clients on a fixed schedule (sleep_until on the *planned* send time, so a
// slow reply does not throttle the offered load — queueing shows up as
// latency, the way an open-loop driver should behave).
//
// Shed requests (the retryable `overloaded` wire code) are retried with
// capped exponential backoff up to --max-retries and counted; any other
// failure counts as an error and fails the run. --prepare switches to the
// PREPARE-once / EXECUTE-per-request path.
//
// Output: a Google Benchmark-shaped JSON (--out, default BENCH_server.json)
// with one iteration row per figure — server/qps, server/p50_us,
// server/p99_us, server/p999_us, server/shed — in real_time, so
// scripts/check_bench.py gates it like any other bench. A human summary
// goes to stdout.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

using namespace rodin;

namespace {

constexpr const char* kDefaultQuery =
    R"(select [n: x.name] from x in Composer where x.name = "Bach")";

// A recursive workload (the paper's influencer chain) for heavier per-query
// cost; selected with --query=recursive.
constexpr const char* kRecursiveQuery = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [n: j.disciple.name] from j in Influencer where j.gen >= 3
)";

struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t clients = 8;
  size_t requests = 20;  // per client
  double rate_qps = 0;   // 0 = closed loop
  std::string query = kDefaultQuery;
  uint64_t deadline_ms = 0;
  bool prepare = false;
  size_t max_retries = 8;
  std::string out = "BENCH_server.json";
};

struct ClientStats {
  std::vector<double> latencies_us;  // successful requests only
  uint64_t ok = 0;
  uint64_t shed_retries = 0;
  uint64_t errors = 0;
  std::string first_error;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

uint64_t ParseCount(const std::string& value, const char* name) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "--%s expects a non-negative integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return std::stoull(value);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunClient(const LoadOptions& options, size_t index, ClientStats* stats) {
  server::Client client;
  Status s = client.Connect(options.host, options.port);
  if (!s.ok()) {
    stats->errors = options.requests;
    stats->first_error = s.ToString();
    return;
  }
  uint64_t statement_id = 0;
  if (options.prepare) {
    s = client.Prepare(options.query, &statement_id);
    if (!s.ok()) {
      stats->errors = options.requests;
      stats->first_error = s.ToString();
      return;
    }
  }
  QueryOptions qo;
  qo.query.deadline_ms = options.deadline_ms;

  using clock = std::chrono::steady_clock;
  // Open loop: this client's fixed send schedule, phase-shifted by index so
  // the fleet's arrivals interleave instead of pulsing.
  const double per_client_qps =
      options.rate_qps > 0
          ? options.rate_qps / static_cast<double>(options.clients)
          : 0;
  const auto interval =
      per_client_qps > 0
          ? std::chrono::nanoseconds(
                static_cast<int64_t>(1e9 / per_client_qps))
          : std::chrono::nanoseconds(0);
  auto next_send = clock::now() + interval * index / options.clients;

  for (size_t i = 0; i < options.requests; ++i) {
    if (interval.count() > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += interval;
    }
    const auto start = clock::now();
    bool done = false;
    for (size_t attempt = 0; attempt <= options.max_retries; ++attempt) {
      server::ClientResult result =
          options.prepare
              ? client.Execute(statement_id, qo, 0, /*collect_rows=*/false)
              : client.Query(options.query, qo, 0, /*collect_rows=*/false);
      if (result.ok()) {
        const double us = std::chrono::duration<double, std::micro>(
                              clock::now() - start)
                              .count();
        stats->latencies_us.push_back(us);
        ++stats->ok;
        done = true;
        break;
      }
      if (result.status.retryable() && attempt < options.max_retries) {
        ++stats->shed_retries;
        std::this_thread::sleep_for(std::chrono::microseconds(
            200u << std::min<size_t>(attempt, 8)));
        continue;
      }
      ++stats->errors;
      if (stats->first_error.empty()) {
        stats->first_error = result.status.ToString();
      }
      done = true;
      break;
    }
    if (!done) {
      ++stats->errors;
      if (stats->first_error.empty()) {
        stats->first_error = "retries exhausted (still overloaded)";
      }
    }
  }
  client.Goodbye();
}

void WriteBenchJson(const std::string& path, double qps, double p50,
                    double p99, double p999, uint64_t shed) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  auto row = [&](const char* name, double value, const char* unit,
                 bool last) {
    out << "    {\n"
        << "      \"name\": \"" << name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"iterations\": 1,\n"
        << "      \"real_time\": " << value << ",\n"
        << "      \"cpu_time\": " << value << ",\n"
        << "      \"time_unit\": \"" << unit << "\"\n"
        << "    }" << (last ? "\n" : ",\n");
  };
  out << "{\n  \"context\": {\n    \"executable\": \"rodin_load\"\n  },\n"
      << "  \"benchmarks\": [\n";
  row("server/qps", qps, "qps", false);
  row("server/p50_us", p50, "us", false);
  row("server/p99_us", p99, "us", false);
  row("server/p999_us", p999, "us", false);
  row("server/shed", static_cast<double>(shed), "count", true);
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "port", &value)) {
      options.port = static_cast<uint16_t>(ParseCount(value, "port"));
    } else if (ParseFlag(argv[i], "clients", &value)) {
      options.clients = static_cast<size_t>(ParseCount(value, "clients"));
    } else if (ParseFlag(argv[i], "requests", &value)) {
      options.requests = static_cast<size_t>(ParseCount(value, "requests"));
    } else if (ParseFlag(argv[i], "rate-qps", &value)) {
      options.rate_qps = std::stod(value);
    } else if (ParseFlag(argv[i], "query", &value)) {
      options.query = value == "recursive" ? kRecursiveQuery
                                           : ReadFile(value);
    } else if (ParseFlag(argv[i], "deadline-ms", &value)) {
      options.deadline_ms = ParseCount(value, "deadline-ms");
    } else if (ParseFlag(argv[i], "max-retries", &value)) {
      options.max_retries =
          static_cast<size_t>(ParseCount(value, "max-retries"));
    } else if (ParseFlag(argv[i], "out", &value)) {
      options.out = value;
    } else if (std::strcmp(argv[i], "--prepare") == 0) {
      options.prepare = true;
    } else {
      std::fprintf(
          stderr,
          "usage: rodin_load --port=P [--host=ADDR] [--clients=N]\n"
          "                  [--requests=N] [--rate-qps=R]\n"
          "                  [--query=FILE|recursive] [--deadline-ms=N]\n"
          "                  [--prepare] [--max-retries=N] [--out=FILE]\n");
      return 2;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "rodin_load: --port is required\n");
    return 2;
  }
  if (options.clients == 0 || options.requests == 0) {
    std::fprintf(stderr, "rodin_load: need clients and requests > 0\n");
    return 2;
  }

  std::vector<ClientStats> stats(options.clients);
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < options.clients; ++i) {
    threads.emplace_back(RunClient, std::cref(options), i, &stats[i]);
  }
  for (auto& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  std::vector<double> latencies;
  uint64_t ok = 0, shed = 0, errors = 0;
  std::string first_error;
  for (const ClientStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    ok += s.ok;
    shed += s.shed_retries;
    errors += s.errors;
    if (first_error.empty()) first_error = s.first_error;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = wall_s > 0 ? static_cast<double>(ok) / wall_s : 0;
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double p999 = Percentile(latencies, 0.999);

  std::printf(
      "rodin_load: %zu clients x %zu requests (%s loop)\n"
      "  ok %llu, shed-retries %llu, errors %llu, wall %.2fs\n"
      "  qps %.1f   p50 %.0fus   p99 %.0fus   p99.9 %.0fus\n",
      options.clients, options.requests,
      options.rate_qps > 0 ? "open" : "closed",
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(errors), wall_s, qps, p50, p99, p999);
  if (errors > 0) {
    std::fprintf(stderr, "rodin_load: first error: %s\n",
                 first_error.c_str());
  }
  if (!options.out.empty()) {
    WriteBenchJson(options.out, qps, p50, p99, p999, shed);
    std::printf("  wrote %s\n", options.out.c_str());
  }
  return errors == 0 && ok > 0 ? 0 : 1;
}
