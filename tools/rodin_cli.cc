// rodin_cli — command-line front end to the whole pipeline.
//
//   rodin_cli [--db=music|parts|graph] [--size=N] [--seed=S]
//             [--optimizer=cost|deductive|naive|exhaustive|annealing]
//             [--parallel=P] [--threads=N] [--exec-threads=N]
//             [--batch-rows=N] [--deadline-ms=N] [--memory-budget-pages=N]
//             [--spill] [--no-spill] [--spill-budget-pages=N]
//             [--explain] [--plan-only] [--compiled-eval] [--no-compiled-eval]
//             [--feedback] [--no-feedback] [--feedback-drift=X]
//             [--feedback-alpha=X] [--no-plan-cache] [--symbolic]
//             [--trace-out=FILE] [--metrics] [--query=FILE] [--mutate=SPEC]
//
// --mutate parses a small mutation DSL (see MutateSpecParser below), stages
// the batch and commits it through Session::Mutate — one atomic transaction
// per invocation. Alone it prints the commit summary (ops applied, new
// oids, post-commit stats version, materialized views maintained) and
// exits; combined with --query the query then runs against the mutated
// database. Failures exit with the Status taxonomy code (a refused commit
// is conflict=14).
//
// --parallel models a P-way parallel *execution* in the cost formulas;
// --threads runs the randomized plan *search* on N worker threads
// (deterministic under --seed for any N); --exec-threads runs the batched
// executor's morsel-parallel operators on N workers and --batch-rows sets
// the executor batch size (answers, counters and measured cost are
// identical for any combination — only wall time changes). The two executor
// knobs default to the executor's own values when omitted; passing an
// explicit 0 is rejected by the session as invalid_argument (exit 12) — 0
// is no longer an "inherit" sentinel.
//
// --compiled-eval / --no-compiled-eval select bytecode-compiled vs
// interpreted expression evaluation (see src/exec/vm/); omitted, the
// RODIN_COMPILED_EVAL environment switch decides. Rows, counters and
// measured cost are bit-identical either way; under --explain the compiled
// run's report ends with the per-operator bytecode disassembly.
//
// --feedback / --no-feedback switch the adaptive cost-feedback loop
// (measured cardinalities correcting the optimizer's estimates, see
// src/cost/feedback.h); omitted, the RODIN_FEEDBACK environment switch
// decides (off by default). --feedback-drift sets the re-optimization
// threshold (> 1; default 3.0: a cached plan whose measured cost strays 3x
// from its estimate is demoted and re-optimized) and --feedback-alpha the
// correction EWMA weight in (0, 1]. Feedback never changes answers, only
// plans — a single CLI invocation optimizes once, so the flags matter for
// scripted warm-up comparisons and --mutate + --query combinations.
//
// --no-plan-cache makes the run bypass the session's plan cache (a single
// CLI invocation optimizes once either way; the flag matters for scripted
// comparisons and mirrors QueryOptions::bypass_plan_cache; RODIN_PLAN_CACHE=0
// disables caching process-wide).
//
// --deadline-ms and --memory-budget-pages bound the run's lifecycle (see
// docs/ROBUSTNESS.md). --spill / --no-spill select whether an over-budget
// operator working set spills to disk (graceful degradation; the default)
// or fails fast with resource_exhausted; omitted, the RODIN_SPILL
// environment switch decides. --spill-budget-pages bounds the temp-page
// ledger alone — unlike --memory-budget-pages it never clamps the buffer
// pool, so spilling can be forced while accounting stays identical.
// On failure the exit code is the Status taxonomy's
// code (ExitCodeForStatus): parse=3 semantic=4 optimize=5 exec=6
// cancelled=7 deadline=8 resource=9 fault=10 internal=11
// invalid_argument=12; usage errors exit 2.
//
// Reads one query (the paper's §2.3 syntax) from --query or stdin and runs
// it through a Session. The default output is the Figure 6 stage table, the
// chosen processing tree and the executed answer with measured cost.
// --explain prints the full EXPLAIN report instead (stage reports, the
// optimizer's decision log, and the plan with estimated vs measured
// per-operator figures). --plan-only optimizes without executing.
// --trace-out writes a Chrome trace_event JSON of the run (load in
// chrome://tracing or Perfetto); --metrics dumps the process-wide metrics
// registry after the run.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "cost/fig7.h"
#include "obs/metrics.h"
#include "plan/pt_printer.h"
#include "query/parser.h"
#include "storage/database.h"
#include "txn/mutation.h"

using namespace rodin;

namespace {

struct CliOptions {
  std::string db = "music";
  uint32_t size = 200;
  uint64_t seed = 42;
  std::string optimizer = "cost";
  unsigned parallel = 1;
  unsigned threads = 1;
  // Unset = executor defaults (sequential, 1024-row batches). The values
  // pass through to QueryOptions verbatim, so an explicit 0 reaches the
  // session and comes back as invalid_argument (exit 12).
  std::optional<size_t> exec_threads;
  std::optional<size_t> batch_rows;
  // Unset = RODIN_COMPILED_EVAL environment default.
  std::optional<bool> compiled_eval;
  // Unset = RODIN_FEEDBACK environment default; 0 tuning values = inherit.
  std::optional<bool> feedback;
  double feedback_drift = 0;
  double feedback_alpha = 0;
  uint64_t deadline_ms = 0;   // 0 = no deadline
  uint64_t memory_budget_pages = 0;  // 0 = unlimited
  // Unset = RODIN_SPILL environment default (on); 0 budget = inherit.
  std::optional<bool> spill;
  uint64_t spill_budget_pages = 0;
  bool explain = false;
  bool plan_only = false;
  bool no_plan_cache = false;
  bool symbolic = false;
  bool metrics = false;
  std::string trace_out;
  std::string query_file;
  std::string mutate_spec;
};

// --- --mutate DSL ------------------------------------------------------------
//
//   SPEC   := op (';' op)* [';']
//   op     := 'insert' Extent [assign (',' assign)*]
//           | 'update' Extent '@' slot assign (',' assign)*
//           | 'delete' Extent '@' slot
//   assign := attr '=' value
//   value  := 'null' | 'true' | 'false' | integer | real | "string"
//           | '@' Extent ':' slot          (object reference)
//           | '{' [value (',' value)*] '}' (set)
//
// Example:
//   --mutate='insert Composer name="Satie", era="modern";
//             update Composer@3 master=@Composer:0; delete Part@17'
//
// The batch commits atomically through Session::Mutate; refs are resolved
// against the embedded database, so bad extents fail here with a message
// instead of at commit-time validation.
class MutateSpecParser {
 public:
  MutateSpecParser(const std::string& text, const Database& db)
      : text_(text), db_(db) {}

  bool Parse(MutationBatch* out) {
    SkipWs();
    while (pos_ < text_.size()) {
      if (!ParseOp(out)) return false;
      SkipWs();
      if (pos_ < text_.size() && !Eat(';')) {
        return Fail("expected ';' between operations");
      }
      SkipWs();
    }
    if (out->empty()) return Fail("empty mutation spec");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string Ident() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (near offset " + std::to_string(pos_) + ")";
    }
    return false;
  }

  bool ParseSlot(uint32_t* slot) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a slot number");
    *slot = static_cast<uint32_t>(
        std::strtoul(text_.substr(start, pos_ - start).c_str(), nullptr, 10));
    return true;
  }

  /// 'Extent' already consumed; parses '@slot' and resolves the oid.
  bool ParseTarget(const std::string& extent, Oid* target) {
    if (!Eat('@')) return Fail("expected '@slot' after '" + extent + "'");
    uint32_t slot = 0;
    if (!ParseSlot(&slot)) return false;
    if (db_.FindExtent(extent) == nullptr) {
      return Fail("unknown extent '" + extent + "'");
    }
    *target = db_.PayloadToOid(extent, slot);
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("expected a value");
    const char c = text_[pos_];
    if (c == '@') {  // reference: @Extent:slot
      ++pos_;
      const std::string extent = Ident();
      if (extent.empty()) return Fail("expected an extent name after '@'");
      if (!Eat(':')) return Fail("expected ':slot' in reference");
      uint32_t slot = 0;
      if (!ParseSlot(&slot)) return false;
      if (db_.FindExtent(extent) == nullptr) {
        return Fail("unknown extent '" + extent + "' in reference");
      }
      *out = Value::Ref(db_.PayloadToOid(extent, slot));
      return true;
    }
    if (c == '{') {  // set literal
      ++pos_;
      std::vector<Value> elems;
      SkipWs();
      if (!Eat('}')) {
        while (true) {
          Value v;
          if (!ParseValue(&v)) return false;
          elems.push_back(std::move(v));
          if (Eat('}')) break;
          if (!Eat(',')) return Fail("expected ',' or '}' in set literal");
        }
      }
      *out = Value::MakeSet(std::move(elems));
      return true;
    }
    if (c == '"') {  // string literal with minimal escapes
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char ch = text_[pos_++];
        if (ch == '\\' && pos_ < text_.size()) {
          const char esc = text_[pos_++];
          ch = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
        }
        s.push_back(ch);
      }
      if (pos_ >= text_.size()) return Fail("unterminated string literal");
      ++pos_;  // closing quote
      *out = Value::Str(std::move(s));
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool real = false;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' || d == 'e' || d == 'E' ||
                   ((d == '+' || d == '-') && pos_ > start &&
                    (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
          real = true;
          ++pos_;
        } else {
          break;
        }
      }
      const std::string num = text_.substr(start, pos_ - start);
      if (real) {
        *out = Value::Real(std::strtod(num.c_str(), nullptr));
      } else {
        *out = Value::Int(std::strtoll(num.c_str(), nullptr, 10));
      }
      return true;
    }
    const std::string word = Ident();
    if (word == "null") {
      *out = Value::Null();
      return true;
    }
    if (word == "true" || word == "false") {
      *out = Value::Bool(word == "true");
      return true;
    }
    return Fail("expected a value, got '" + word + "'");
  }

  bool ParseAssigns(std::vector<std::pair<std::string, Value>>* out) {
    while (true) {
      const std::string attr = Ident();
      if (attr.empty()) return Fail("expected an attribute name");
      if (!Eat('=')) return Fail("expected '=' after '" + attr + "'");
      Value v;
      if (!ParseValue(&v)) return false;
      out->emplace_back(attr, std::move(v));
      if (!Eat(',')) return true;
    }
  }

  bool ParseOp(MutationBatch* out) {
    const std::string verb = Ident();
    const std::string extent = Ident();
    if (extent.empty()) {
      return Fail("expected an extent name after '" + verb + "'");
    }
    if (verb == "insert") {
      std::vector<std::pair<std::string, Value>> values;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] != ';') {
        if (!ParseAssigns(&values)) return false;
      }
      out->Insert(extent, std::move(values));
      return true;
    }
    if (verb == "delete") {
      Oid target;
      if (!ParseTarget(extent, &target)) return false;
      out->Delete(extent, target);
      return true;
    }
    if (verb == "update") {
      Oid target;
      if (!ParseTarget(extent, &target)) return false;
      std::vector<std::pair<std::string, Value>> assigns;
      if (!ParseAssigns(&assigns)) return false;
      out->Update(extent, target, std::move(assigns));
      return true;
    }
    return Fail("expected insert/update/delete, got '" + verb + "'");
  }

  const std::string& text_;
  const Database& db_;
  size_t pos_ = 0;
  std::string error_;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

uint64_t ParseCount(const std::string& value, const char* name) {
  if (value.empty() || value.find_first_not_of("0123456789") !=
                           std::string::npos) {
    std::fprintf(stderr, "--%s expects a non-negative integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return std::stoull(value);
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: rodin_cli [--db=music|parts|graph] [--size=N] [--seed=S]\n"
      "                 [--optimizer=cost|deductive|naive|exhaustive|"
      "annealing]\n"
      "                 [--parallel=P] [--threads=N] [--exec-threads=N]\n"
      "                 [--batch-rows=N] [--deadline-ms=N]\n"
      "                 [--memory-budget-pages=N] [--spill] [--no-spill]\n"
      "                 [--spill-budget-pages=N] [--explain] [--plan-only]\n"
      "                 [--compiled-eval] [--no-compiled-eval]\n"
      "                 [--feedback] [--no-feedback] [--feedback-drift=X]\n"
      "                 [--feedback-alpha=X]\n"
      "                 [--no-plan-cache] [--symbolic] [--trace-out=FILE]\n"
      "                 [--metrics] [--query=FILE] [--mutate=SPEC]\n"
      "Reads a query in the paper's syntax from --query or stdin.\n"
      "--mutate commits a batch first (and exits there unless --query is\n"
      "also given): 'insert Extent a=v,...; update Extent@slot a=v,...;\n"
      "delete Extent@slot' with values null/true/false/int/real/\"str\"/\n"
      "@Extent:slot/{set}.\n");
}

std::string ReadQuery(const CliOptions& options) {
  if (!options.query_file.empty()) {
    FILE* f = std::fopen(options.query_file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", options.query_file.c_str());
      std::exit(2);
    }
    std::string out;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      out.append(buffer, n);
    }
    std::fclose(f);
    return out;
  }
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  return ss.str();
}

bool WriteTrace(const std::string& path, const obs::Trace& trace) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = trace.ToChromeJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

void MaybeDumpMetrics(const CliOptions& options) {
  if (!options.metrics) return;
  std::printf("\nmetrics:\n%s",
              obs::MetricsRegistry::Global().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "db", &value)) {
      options.db = value;
    } else if (ParseFlag(argv[i], "size", &value)) {
      options.size = static_cast<uint32_t>(ParseCount(value, "size"));
    } else if (ParseFlag(argv[i], "seed", &value)) {
      options.seed = ParseCount(value, "seed");
    } else if (ParseFlag(argv[i], "optimizer", &value)) {
      options.optimizer = value;
    } else if (ParseFlag(argv[i], "parallel", &value)) {
      options.parallel = static_cast<unsigned>(ParseCount(value, "parallel"));
    } else if (ParseFlag(argv[i], "threads", &value)) {
      options.threads = static_cast<unsigned>(ParseCount(value, "threads"));
    } else if (ParseFlag(argv[i], "exec-threads", &value)) {
      options.exec_threads =
          static_cast<size_t>(ParseCount(value, "exec-threads"));
    } else if (ParseFlag(argv[i], "batch-rows", &value)) {
      options.batch_rows =
          static_cast<size_t>(ParseCount(value, "batch-rows"));
    } else if (ParseFlag(argv[i], "deadline-ms", &value)) {
      options.deadline_ms = ParseCount(value, "deadline-ms");
    } else if (ParseFlag(argv[i], "memory-budget-pages", &value)) {
      options.memory_budget_pages =
          ParseCount(value, "memory-budget-pages");
    } else if (ParseFlag(argv[i], "spill-budget-pages", &value)) {
      options.spill_budget_pages =
          ParseCount(value, "spill-budget-pages");
    } else if (ParseFlag(argv[i], "query", &value)) {
      options.query_file = value;
    } else if (ParseFlag(argv[i], "mutate", &value)) {
      options.mutate_spec = value;
    } else if (ParseFlag(argv[i], "trace-out", &value)) {
      options.trace_out = value;
    } else if (std::strcmp(argv[i], "--compiled-eval") == 0) {
      options.compiled_eval = true;
    } else if (std::strcmp(argv[i], "--no-compiled-eval") == 0) {
      options.compiled_eval = false;
    } else if (std::strcmp(argv[i], "--spill") == 0) {
      options.spill = true;
    } else if (std::strcmp(argv[i], "--no-spill") == 0) {
      options.spill = false;
    } else if (std::strcmp(argv[i], "--feedback") == 0) {
      options.feedback = true;
    } else if (std::strcmp(argv[i], "--no-feedback") == 0) {
      options.feedback = false;
    } else if (ParseFlag(argv[i], "feedback-drift", &value)) {
      options.feedback_drift = std::stod(value);
    } else if (ParseFlag(argv[i], "feedback-alpha", &value)) {
      options.feedback_alpha = std::stod(value);
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      options.explain = true;
    } else if (std::strcmp(argv[i], "--plan-only") == 0) {
      options.plan_only = true;
    } else if (std::strcmp(argv[i], "--no-plan-cache") == 0) {
      options.no_plan_cache = true;
    } else if (std::strcmp(argv[i], "--symbolic") == 0) {
      options.symbolic = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      options.metrics = true;
    } else {
      Usage();
      return 2;
    }
  }

  // One construction path for every embedder (CLI, server, tests): the
  // EngineHandle validates the dataset/optimizer names and assembles the
  // shared state; bad names come back as a status, not an abort.
  EngineOptions engine_options;
  engine_options.dataset = options.db;
  engine_options.size = options.size;
  engine_options.seed = options.seed;
  engine_options.optimizer = options.optimizer;
  engine_options.search_threads = options.threads;
  engine_options.parallel_degree = options.parallel;
  Status engine_status;
  std::unique_ptr<EngineHandle> engine =
      EngineHandle::Create(engine_options, &engine_status);
  if (engine == nullptr) {
    std::fprintf(stderr, "%s\n", engine_status.ToString().c_str());
    return 2;
  }

  std::unique_ptr<Session> session_owner = engine->NewSession();
  Session& session = *session_owner;

  if (!options.mutate_spec.empty()) {
    MutationBatch batch;
    MutateSpecParser parser(options.mutate_spec, *engine->db());
    if (!parser.Parse(&batch)) {
      std::fprintf(stderr, "--mutate: %s\n", parser.error().c_str());
      return 2;
    }
    MutationResult staged;
    const CommitResult commit = session.Mutate(batch, &staged);
    if (!commit.ok()) {
      std::fprintf(stderr, "%s\n", commit.status.ToString().c_str());
      return ExitCodeForStatus(commit.status);
    }
    std::printf("mutation: %llu op(s) applied (%llu insert, %llu delete, "
                "%llu update)\n",
                static_cast<unsigned long long>(commit.ops_applied),
                static_cast<unsigned long long>(staged.inserted),
                static_cast<unsigned long long>(staged.deleted),
                static_cast<unsigned long long>(staged.updated));
    for (const Oid& oid : staged.new_oids) {
      if (!oid.valid()) continue;
      std::printf("  new %s@%u\n", engine->db()->ExtentNameOf(oid).c_str(),
                  oid.slot);
    }
    std::printf("stats version: %llu\n",
                static_cast<unsigned long long>(commit.stats_version));
    if (commit.views_maintained > 0) {
      std::printf("views maintained: %llu (%s)\n",
                  static_cast<unsigned long long>(commit.views_maintained),
                  commit.used_incremental ? "incremental" : "recomputed");
    }
    // Mutate-only invocation: done. With --query the run continues below and
    // observes the post-commit state (the session re-derives stats lazily).
    if (options.query_file.empty()) {
      MaybeDumpMetrics(options);
      return 0;
    }
  }

  const std::string text = ReadQuery(options);
  if (text.empty()) {
    Usage();
    return 2;
  }

  QueryOptions ro;
  ro.cold = true;
  ro.explain_only = options.plan_only;
  ro.collect_trace = !options.trace_out.empty();
  ro.exec_threads = options.exec_threads;
  ro.batch_rows = options.batch_rows;
  ro.compiled_eval = options.compiled_eval;
  ro.feedback.enabled = options.feedback;
  ro.feedback.drift_threshold = options.feedback_drift;
  ro.feedback.ewma_alpha = options.feedback_alpha;
  ro.bypass_plan_cache = options.no_plan_cache;
  ro.query.deadline_ms = options.deadline_ms;
  ro.query.memory_budget_pages = options.memory_budget_pages;
  ro.query.spill = options.spill;
  ro.query.spill_budget_pages = options.spill_budget_pages;

  if (options.explain) {
    const ExplainResult ex = session.Explain(text, ro);
    if (!ex.ok()) {
      std::fprintf(stderr, "%s\n", ex.status.ToString().c_str());
      return ExitCodeForStatus(ex.status);
    }
    std::printf("%s", ex.ToString().c_str());
    if (!options.trace_out.empty() && ex.trace != nullptr) {
      if (!WriteTrace(options.trace_out, *ex.trace)) return 1;
    }
    MaybeDumpMetrics(options);
    return 0;
  }

  const QueryRun run = session.Run(text, ro);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status.ToString().c_str());
    return ExitCodeForStatus(run.status);
  }
  std::printf("query graph:\n%s\n", run.graph.ToString().c_str());

  const OptimizeResult& result = run.optimized;
  std::printf("stages:\n");
  for (const StageReport& s : result.stages) {
    std::printf("  %-12s %-24s %10.1f us  work=%zu\n", s.stage.c_str(),
                s.strategy.c_str(), s.micros, s.plans_explored);
  }
  if (run.plan_cached) std::printf("\n[plan: cached]");
  if (run.reoptimized_drift > 0) {
    std::printf("\n[plan: re-optimized (drift %.1fx)]", run.reoptimized_drift);
  }
  std::printf("\nplan (estimated cost %.1f, pushed: %s%s%s):\n%s\n",
              result.cost, result.pushed_sel ? "sel " : "",
              result.pushed_join ? "join " : "",
              !result.pushed_sel && !result.pushed_join ? "no" : "",
              run.plan_text.c_str());

  if (options.symbolic) {
    int t_counter = 0;
    const SymbolicCostTable table = DeriveSymbolicCosts(
        *result.plan, *engine->db(),
        {{"Composer", "Cpr"}, {"Composition", "Cpn"}, {"Instrument", "Ins"}},
        &t_counter);
    std::printf("symbolic costs (section 4.6 assumptions):\n%s\n",
                table.ToString().c_str());
  }

  if (!options.plan_only) {
    std::printf("answer (%zu rows, measured cost %.1f):\n%s",
                run.answer.rows.size(), run.measured_cost,
                run.answer.ToString(20).c_str());
  }
  if (!options.trace_out.empty() && run.trace != nullptr) {
    if (!WriteTrace(options.trace_out, *run.trace)) return 1;
  }
  MaybeDumpMetrics(options);
  return 0;
}
