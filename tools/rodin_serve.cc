// rodin_serve — the multi-tenant query server.
//
//   rodin_serve [--db=music|parts|graph] [--size=N] [--seed=S]
//               [--optimizer=cost|deductive|naive|exhaustive|annealing]
//               [--search-threads=N] [--parallel=P]
//               [--plan-cache-capacity=N]
//               [--host=ADDR] [--port=P] [--workers=N] [--max-in-flight=N]
//               [--send-timeout-ms=N]
//
// Stands up one EngineHandle (the same construction path as rodin_cli) and
// serves it over the length-prefixed binary protocol documented in
// docs/SERVER.md: many client connections multiplex onto one shared
// Database, buffer pool and plan cache through a pool of sessions.
// --max-in-flight is the admission limit — requests beyond it are shed
// immediately with the retryable `overloaded` wire code; --workers sets the
// query worker threads (the I/O loop is one more). --port=0 binds an
// ephemeral port.
//
// Readiness: prints exactly one line `listening on HOST:PORT` to stdout and
// flushes — scripts (and the CI server job) wait for it. SIGINT/SIGTERM
// drain and stop; the final stats snapshot goes to stderr.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "api/engine.h"
#include "server/server.h"

using namespace rodin;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

uint64_t ParseCount(const std::string& value, const char* name) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "--%s expects a non-negative integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return std::stoull(value);
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: rodin_serve [--db=music|parts|graph] [--size=N] [--seed=S]\n"
      "                   [--optimizer=cost|deductive|naive|exhaustive|"
      "annealing]\n"
      "                   [--search-threads=N] [--parallel=P]\n"
      "                   [--plan-cache-capacity=N]\n"
      "                   [--host=ADDR] [--port=P] [--workers=N]\n"
      "                   [--max-in-flight=N] [--send-timeout-ms=N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  EngineOptions engine_options;
  server::ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "db", &value)) {
      engine_options.dataset = value;
    } else if (ParseFlag(argv[i], "size", &value)) {
      engine_options.size = static_cast<uint32_t>(ParseCount(value, "size"));
    } else if (ParseFlag(argv[i], "seed", &value)) {
      engine_options.seed = ParseCount(value, "seed");
    } else if (ParseFlag(argv[i], "optimizer", &value)) {
      engine_options.optimizer = value;
    } else if (ParseFlag(argv[i], "search-threads", &value)) {
      engine_options.search_threads =
          static_cast<size_t>(ParseCount(value, "search-threads"));
    } else if (ParseFlag(argv[i], "parallel", &value)) {
      engine_options.parallel_degree =
          static_cast<unsigned>(ParseCount(value, "parallel"));
    } else if (ParseFlag(argv[i], "plan-cache-capacity", &value)) {
      engine_options.plan_cache_capacity =
          static_cast<size_t>(ParseCount(value, "plan-cache-capacity"));
    } else if (ParseFlag(argv[i], "host", &value)) {
      server_options.host = value;
    } else if (ParseFlag(argv[i], "port", &value)) {
      server_options.port = static_cast<uint16_t>(ParseCount(value, "port"));
    } else if (ParseFlag(argv[i], "workers", &value)) {
      server_options.workers =
          static_cast<size_t>(ParseCount(value, "workers"));
    } else if (ParseFlag(argv[i], "max-in-flight", &value)) {
      server_options.max_in_flight =
          static_cast<size_t>(ParseCount(value, "max-in-flight"));
    } else if (ParseFlag(argv[i], "send-timeout-ms", &value)) {
      server_options.send_timeout_ms = ParseCount(value, "send-timeout-ms");
    } else {
      Usage();
      return 2;
    }
  }

  Status status;
  std::unique_ptr<EngineHandle> engine =
      EngineHandle::Create(engine_options, &status);
  if (engine == nullptr) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  std::unique_ptr<server::Server> srv =
      server::Server::Start(engine.get(), server_options, &status);
  if (srv == nullptr) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return ExitCodeForStatus(status);
  }

  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(srv->port()));
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  srv->Stop();

  const server::Server::Stats stats = srv->stats();
  std::fprintf(
      stderr,
      "rodin_serve: %llu connections, %llu queries (%llu ok, %llu failed), "
      "%llu shed, %llu rows streamed, %llu disconnect-cancels, peak "
      "in-flight %llu\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.queries_started),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<unsigned long long>(stats.admission.shed),
      static_cast<unsigned long long>(stats.rows_streamed),
      static_cast<unsigned long long>(stats.disconnect_cancels),
      static_cast<unsigned long long>(stats.admission.peak_in_flight));
  return 0;
}
