#!/usr/bin/env bash
# Builds everything, runs the full test suite and every experiment binary,
# and records the outputs the repository's EXPERIMENTS.md refers to
# (test_output.txt / bench_output.txt in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do
  echo "==================== $(basename "$b") ===================="
  "$b"
done 2>&1 | tee bench_output.txt
