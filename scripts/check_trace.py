#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON written by `rodin_cli --trace-out`.

Usage: check_trace.py TRACE.json [--schema scripts/trace_schema.json]
                      [--require-span NAME ...]

Checks, with the standard library only:
  1. the file parses as JSON and matches scripts/trace_schema.json (a
     JSON-Schema subset: type / required / properties / items / enum /
     minimum — exactly the keywords the schema uses);
  2. complete events ("ph": "X") carry a non-negative duration;
  3. every --require-span NAME occurs as a complete event (the CI smoke run
     requires the four optimizer stages and the executor span).

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "boolean": bool,
}


def validate(instance, schema, path="$"):
    """Validates `instance` against the JSON-Schema subset used by
    trace_schema.json. Returns a list of error strings (empty = valid)."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if not isinstance(instance, python_type) or (
            expected == "number" and isinstance(instance, bool)
        ):
            return ["%s: expected %s, got %s"
                    % (path, expected, type(instance).__name__)]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append("%s: %r not one of %r" % (path, instance, schema["enum"]))
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append("%s: %r < minimum %r"
                          % (path, instance, schema["minimum"]))
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append("%s: missing required key %r" % (path, key))
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(
                    validate(instance[key], subschema, "%s.%s" % (path, key)))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], "%s[%d]" % (path, i)))
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "trace_schema.json"))
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a complete event with this name "
                             "exists (repeatable)")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except json.JSONDecodeError as e:
        sys.exit("%s: not valid JSON: %s" % (args.trace, e))

    errors = validate(trace, schema)
    if errors:
        for e in errors[:20]:
            print(e, file=sys.stderr)
        sys.exit("%s: %d schema violation(s)" % (args.trace, len(errors)))

    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    for e in spans:
        if "dur" not in e:
            sys.exit("%s: complete event %r has no duration"
                     % (args.trace, e["name"]))
    names = {e["name"] for e in spans}
    missing = [n for n in args.require_span if n not in names]
    if missing:
        sys.exit("%s: required span(s) missing: %s (have: %s)"
                 % (args.trace, ", ".join(missing), ", ".join(sorted(names))))

    print("%s: ok — %d events (%d spans), %d distinct span names"
          % (args.trace, len(events), len(spans), len(names)))


if __name__ == "__main__":
    main()
