#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against a committed baseline.

Usage: check_bench.py CURRENT.json --baseline BASELINE.json
                      [--tolerance 0.20] [--metric real_time] [--soft]
                      [--strict]

For every benchmark name present in both files, the current metric must lie
within +-tolerance (relative) of the baseline. Benchmarks present on only
one side are reported but (without --strict) never fail the check (the
suite is allowed to grow). Standard library only.

CI machines are noisy neighbours, so the default invocation is --soft: a
regression prints a prominent warning and exits 0, keeping the gate
advisory. Drop --soft (or run locally) for a hard exit-1 gate — e.g. when
refreshing the baseline and verifying the new numbers reproduce.

--strict turns NAME DRIFT into a hard failure, even under --soft: a
benchmark present in the baseline but not the run means the baseline is
stale (the bench was renamed or deleted without regenerating), and one
present in the run but not the baseline means a new bench landed without a
committed number. Timing noise stays advisory under --soft; drift never is
— it is deterministic, so a noisy runner cannot cause a false failure.

Exit status: 0 when within tolerance (always 0 under --soft unless the
inputs are malformed or --strict detects drift); 1 on a hard violation,
strict name drift, or unreadable input.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Returns ({name: metric_value}, {names missing the metric}) from a
    Google Benchmark JSON file.

    Aggregate rows (mean/median/stddev of repeated runs) are skipped so a
    repeated run compares iteration rows against iteration rows. Rows that
    lack the requested metric are collected separately rather than silently
    dropped — the caller turns "the baseline has this benchmark but not
    this metric" into a clear failure instead of a spurious name-drift or a
    KeyError.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    missing = set()
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        if name is None:
            continue
        if metric not in row:
            missing.add(name)
            continue
        out[name] = float(row[metric])
    return out, missing


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON of the run to check")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative deviation (default 0.20)")
    parser.add_argument("--metric", default="real_time",
                        help="benchmark field to compare (default real_time)")
    parser.add_argument("--soft", action="store_true",
                        help="report violations but exit 0 (advisory gate)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (even under --soft) when benchmark names "
                             "drift between baseline and run")
    args = parser.parse_args()

    try:
        current, current_missing = load_benchmarks(args.current, args.metric)
        baseline, baseline_missing = load_benchmarks(args.baseline,
                                                     args.metric)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read input: {e}", file=sys.stderr)
        return 1

    # A baseline that has the benchmark but not the metric is a broken
    # baseline, not name drift and not a crash: say exactly what is wrong.
    stale = sorted(baseline_missing & (set(current) | current_missing))
    if stale:
        print(f"check_bench: baseline {args.baseline} is missing metric "
              f"'{args.metric}' for benchmark(s): " + ", ".join(stale),
              file=sys.stderr)
        print("check_bench: regenerate the baseline (see "
              "bench/baselines/README.md) or pass the right --metric",
              file=sys.stderr)
        return 1
    if current_missing:
        print(f"check_bench: run {args.current} is missing metric "
              f"'{args.metric}' for benchmark(s): "
              + ", ".join(sorted(current_missing)), file=sys.stderr)
        return 1

    if not baseline:
        print(f"check_bench: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    violations = []
    for name in shared:
        base = baseline[name]
        now = current[name]
        if base != 0:
            ratio = (now - base) / base
        else:
            # Zero baseline: equal is fine (0 -> 0 is no drift, not inf%);
            # anything nonzero against a zero baseline is infinite drift.
            ratio = 0.0 if now == 0 else float("inf")
        marker = " <-- OUT OF TOLERANCE" if abs(ratio) > args.tolerance else ""
        print(f"  {name}: {base:.1f} -> {now:.1f} ({ratio:+.1%}){marker}")
        if marker:
            violations.append(name)

    drift_note = "DRIFT" if args.strict else "skipped"
    for name in only_current:
        print(f"  {name}: new benchmark (no baseline), {drift_note}")
    for name in only_baseline:
        print(f"  {name}: in baseline only (not run), {drift_note}")

    if not shared:
        print("check_bench: no overlapping benchmarks to compare",
              file=sys.stderr)
        return 1

    drifted = only_current + only_baseline
    if args.strict and drifted:
        print(f"\ncheck_bench: --strict: {len(drifted)} benchmark name(s) "
              f"drifted from the baseline: " + ", ".join(sorted(drifted)),
              file=sys.stderr)
        print("check_bench: regenerate the baseline (see "
              "bench/baselines/README.md) or fix the bench names",
              file=sys.stderr)
        return 1

    if violations:
        print(f"\ncheck_bench: {len(violations)}/{len(shared)} benchmarks "
              f"outside +-{args.tolerance:.0%} of baseline: "
              + ", ".join(violations), file=sys.stderr)
        if args.soft:
            print("check_bench: --soft gate, not failing the build",
                  file=sys.stderr)
            return 0
        return 1

    print(f"\ncheck_bench: {len(shared)} benchmarks within "
          f"+-{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
