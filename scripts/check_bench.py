#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against a committed baseline.

Usage: check_bench.py CURRENT.json --baseline BASELINE.json
                      [--tolerance 0.20] [--metric real_time] [--soft]

For every benchmark name present in both files, the current metric must lie
within +-tolerance (relative) of the baseline. Benchmarks present on only
one side are reported but never fail the check (the suite is allowed to
grow). Standard library only.

CI machines are noisy neighbours, so the default invocation is --soft: a
regression prints a prominent warning and exits 0, keeping the gate
advisory. Drop --soft (or run locally) for a hard exit-1 gate — e.g. when
refreshing the baseline and verifying the new numbers reproduce.

Exit status: 0 when within tolerance (always 0 under --soft unless the
inputs are malformed); 1 on a hard violation or unreadable input.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Returns {name: metric_value} from a Google Benchmark JSON file.

    Aggregate rows (mean/median/stddev of repeated runs) are skipped so a
    repeated run compares iteration rows against iteration rows.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        if name is None or metric not in row:
            continue
        out[name] = float(row[metric])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON of the run to check")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative deviation (default 0.20)")
    parser.add_argument("--metric", default="real_time",
                        help="benchmark field to compare (default real_time)")
    parser.add_argument("--soft", action="store_true",
                        help="report violations but exit 0 (advisory gate)")
    args = parser.parse_args()

    try:
        current = load_benchmarks(args.current, args.metric)
        baseline = load_benchmarks(args.baseline, args.metric)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read input: {e}", file=sys.stderr)
        return 1

    if not baseline:
        print(f"check_bench: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    violations = []
    for name in shared:
        base = baseline[name]
        now = current[name]
        ratio = (now - base) / base if base != 0 else float("inf")
        marker = " <-- OUT OF TOLERANCE" if abs(ratio) > args.tolerance else ""
        print(f"  {name}: {base:.1f} -> {now:.1f} ({ratio:+.1%}){marker}")
        if marker:
            violations.append(name)

    for name in only_current:
        print(f"  {name}: new benchmark (no baseline), skipped")
    for name in only_baseline:
        print(f"  {name}: in baseline only (not run), skipped")

    if not shared:
        print("check_bench: no overlapping benchmarks to compare",
              file=sys.stderr)
        return 1

    if violations:
        print(f"\ncheck_bench: {len(violations)}/{len(shared)} benchmarks "
              f"outside +-{args.tolerance:.0%} of baseline: "
              + ", ".join(violations), file=sys.stderr)
        if args.soft:
            print("check_bench: --soft gate, not failing the build",
                  file=sys.stderr)
            return 0
        return 1

    print(f"\ncheck_bench: {len(shared)} benchmarks within "
          f"+-{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
