// Fuzz-style property test: generate random (but type-correct) spj queries
// over the music schema and assert that every optimizer configuration
// computes the same answer set and that the cost-based plan never estimates
// worse than greedy's. Parameterized over seeds so failures are
// reproducible by seed.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"

namespace rodin {
namespace {

// Attribute pool for random predicates: (path from Composer, sample values).
struct PredSpec {
  std::vector<std::string> path;
  std::vector<Value> values;
  bool range_ok;
};

const std::vector<PredSpec>& PredPool() {
  static const std::vector<PredSpec>& pool = *new std::vector<PredSpec>{
      {{"name"}, {Value::Str("Bach"), Value::Str("composer_3")}, false},
      {{"birthyear"}, {Value::Int(1650), Value::Int(1700)}, true},
      {{"master", "name"}, {Value::Str("composer_2")}, false},
      {{"works", "title"}, {Value::Str("work_10")}, false},
      {{"works", "instruments", "iname"},
       {Value::Str("harpsichord"), Value::Str("flute"), Value::Str("violin")},
       false},
      {{"works", "instruments", "family"},
       {Value::Str("keyboard"), Value::Str("string")},
       false},
      {{"master", "works", "instruments", "iname"},
       {Value::Str("organ")},
       false},
  };
  return pool;
}

QueryGraph RandomQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  // 1-3 composer arcs; extra arcs joined through master equality or
  // name inequality to keep results meaningful.
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      // Join predicate linking to the previous arc.
      if (rng->Chance(0.5)) {
        node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                            Expr::Path(var, {"master"})));
      } else {
        node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                            Expr::Path(var, {})));
      }
    }
  }
  // 1-3 random selections spread over the arcs.
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const PredSpec& spec = PredPool()[rng->Below(PredPool().size())];
    const std::string& var = vars[rng->Below(vars.size())];
    const Value& value = spec.values[rng->Below(spec.values.size())];
    const CompareOp op =
        spec.range_ok && rng->Chance(0.5)
            ? (rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt)
            : (rng->Chance(0.8) ? CompareOp::kEq : CompareOp::kNe);
    node.Where(Expr::Cmp(op, Expr::Path(var, spec.path), Expr::Lit(value)));
  }
  // Output: one or two columns from the first arc.
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) {
    node.OutPath("y", vars[0], {"birthyear"});
  }
  return b.Build(schema);
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryTest, AllConfigurationsAgree) {
  MusicConfig config;
  config.num_composers = 60;
  config.seed = GetParam() * 31 + 7;
  PhysicalConfig physical = PaperMusicPhysical();
  physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const QueryGraph q = RandomQuery(&rng, *g.schema);

    auto run = [&](OptimizerOptions options) {
      Optimizer opt(g.db.get(), &stats, &cost, options);
      OptimizeResult r = opt.Optimize(q);
      EXPECT_TRUE(r.ok()) << r.status.ToString() << "\n" << q.ToString();
      std::multiset<std::string> rows;
      if (!r.ok()) return std::make_pair(rows, 0.0);
      Executor exec(g.db.get());
      Table t = exec.Execute(*r.plan);
      t.Dedup();
      for (const Row& row : t.rows) {
        std::string key;
        for (const Value& v : row) key += v.ToString() + "|";
        rows.insert(key);
      }
      return std::make_pair(rows, r.cost);
    };

    // Disable the stochastic re-optimization phase for the cost-dominance
    // assertions (different II budgets legitimately land in different local
    // optima); result equality is asserted with it on as well.
    auto no_rand = [](OptimizerOptions o) {
      o.transform.rand = RandStrategy::kNone;
      return o;
    };
    const auto [expected, greedy_cost] = run(no_rand(NaiveOptions()));
    const auto [dp_rows, dp_cost] = run(no_rand(CostBasedOptions()));
    const auto [ex_rows, ex_cost] = run(no_rand(ExhaustiveOptions()));
    OptimizerOptions randomized = NaiveOptions();
    randomized.gen_strategy = GenStrategy::kRandomized;
    const auto [rr_rows, rr_cost] = run(no_rand(randomized));
    const auto [ii_rows, ii_cost] = run(CostBasedOptions());

    EXPECT_EQ(dp_rows, expected) << q.ToString();
    EXPECT_EQ(ex_rows, expected) << q.ToString();
    EXPECT_EQ(rr_rows, expected) << q.ToString();
    EXPECT_EQ(ii_rows, expected) << q.ToString();
    // Cost dominance: DP <= greedy, randomized <= greedy, exhaustive <= DP.
    EXPECT_LE(dp_cost, greedy_cost + 1e-6) << q.ToString();
    EXPECT_LE(rr_cost, greedy_cost + 1e-6) << q.ToString();
    EXPECT_LE(ex_cost, dp_cost + 1e-6) << q.ToString();
    (void)ii_cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range<uint64_t>(1, 9),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Random RECURSIVE queries: an Influencer-style closure with randomized
// filters on the consumer (generation threshold, instrument or birthyear
// predicates on randomly chosen view columns). Every configuration —
// including always-push, never-push and naive fixpoint evaluation — must
// agree on the answer; push decisions must match the costed comparison.
// ---------------------------------------------------------------------------

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  // Random generation threshold (sometimes none).
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  // Random predicate on a pushable column (master side) or a non-pushable
  // derived value; vary the instrument to vary selectivity.
  const int pick = static_cast<int>(rng->Below(3));
  if (pick == 0) {
    static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
    answer.Where(
        Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                 Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
  } else if (pick == 1) {
    answer.Where(Expr::Cmp(CompareOp::kLt,
                           Expr::Path("j", {"master", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  } else {
    answer.Where(Expr::Cmp(CompareOp::kGt,
                           Expr::Path("j", {"disciple", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  }
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class RandomRecursiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRecursiveTest, AllConfigurationsAgree) {
  MusicConfig config;
  config.num_composers = 48;
  config.lineage_depth = 4 + GetParam() % 9;
  config.seed = GetParam() * 131 + 5;
  config.harpsichord_fraction = 0.1 + 0.2 * (GetParam() % 4);
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  Rng rng(GetParam() * 7 + 3);
  for (int round = 0; round < 4; ++round) {
    const QueryGraph q = RandomRecursiveQuery(&rng, *g.schema);
    auto run = [&](OptimizerOptions options) {
      Optimizer opt(g.db.get(), &stats, &cost, options);
      OptimizeResult r = opt.Optimize(q);
      EXPECT_TRUE(r.ok()) << r.status.ToString() << "\n" << q.ToString();
      std::multiset<std::string> rows;
      double unpushed = -1;
      if (r.ok()) {
        unpushed = r.unpushed_variant_cost;
        EXPECT_LE(r.cost, r.unpushed_variant_cost + 1e-6) << q.ToString();
        Executor exec(g.db.get());
        Table t = exec.Execute(*r.plan);
        t.Dedup();
        for (const Row& row : t.rows) rows.insert(row[0].ToString());
      }
      (void)unpushed;
      return rows;
    };

    OptimizerOptions naive_fix = CostBasedOptions();
    naive_fix.naive_fixpoint = true;
    const auto expected = run(NaiveOptions());
    EXPECT_EQ(run(CostBasedOptions()), expected) << q.ToString();
    EXPECT_EQ(run(DeductiveOptions()), expected) << q.ToString();
    EXPECT_EQ(run(naive_fix), expected) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRecursiveTest,
                         ::testing::Range<uint64_t>(1, 9),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rodin
