// The mutation API and transaction layer: begin/stage/commit CRUD through
// Session, provisional oid assignment, single-writer conflicts, rollback,
// commit-time validation (referential integrity), engine-wide stats
// versioning with lazy session refresh and plan-cache invalidation, and the
// buffer-pool identity contract (a commit never perturbs the resident set).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "datagen/music_gen.h"
#include "datagen/parts_gen.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "txn/txn_manager.h"

namespace rodin {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }

  /// Rows of `select [n: x.name] from x in Composer where x.name = <name>`.
  size_t CountByName(Session& session, const std::string& name) {
    const QueryRun run = session.Run(
        "select [n: x.name] from x in Composer where x.name = \"" + name +
        "\"");
    EXPECT_TRUE(run.ok()) << run.error();
    return run.answer.rows.size();
  }

  GeneratedDb g_;
};

TEST_F(TxnTest, BeginStageCommitInsert) {
  Session session(g_.db.get());
  const uint32_t before = g_.db->FindExtent("Composer")->live_size();

  uint64_t txn = 0;
  ASSERT_TRUE(session.Begin(&txn).ok());
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Brand New")}});
  const MutationResult staged = session.Apply(txn, batch);
  ASSERT_TRUE(staged.ok()) << staged.status.ToString();
  EXPECT_EQ(staged.inserted, 1u);
  ASSERT_EQ(staged.new_oids.size(), 1u);
  // Provisional oid: the next slot of the extent, promised at staging time.
  EXPECT_TRUE(staged.new_oids[0].valid());
  EXPECT_EQ(staged.new_oids[0].slot, before);

  // Nothing is visible until commit.
  EXPECT_EQ(CountByName(session, "Brand New"), 0u);

  const CommitResult commit = session.Commit(txn);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
  EXPECT_EQ(commit.ops_applied, 1u);
  EXPECT_EQ(g_.db->FindExtent("Composer")->live_size(), before + 1);
  EXPECT_EQ(CountByName(session, "Brand New"), 1u);
  EXPECT_EQ(g_.db->GetRaw(staged.new_oids[0], "name").AsString(), "Brand New");
}

TEST_F(TxnTest, UpdateAndDeleteVisibleToQueries) {
  Session session(g_.db.get());
  // composer_0 heads lineage 0; rename it and check both names' row counts.
  const Oid target = g_.db->PayloadToOid("Composer", 0);
  ASSERT_EQ(g_.db->GetRaw(target, "name").AsString(), "composer_0");

  MutationBatch batch;
  batch.Update("Composer", target, {{"name", Value::Str("renamed_0")}});
  const CommitResult commit = session.Mutate(batch);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
  EXPECT_EQ(CountByName(session, "composer_0"), 0u);
  EXPECT_EQ(CountByName(session, "renamed_0"), 1u);
}

TEST_F(TxnTest, SelectionIndexMaintainedAcrossMutations) {
  PartsConfig config;
  config.parts_per_level = 20;
  config.num_levels = 3;
  GeneratedDb parts = GeneratePartsDb(config, DefaultPartsPhysical());
  Session session(parts.db.get());
  // Project vendor too: projection dedups (set semantics), and the two
  // matches below differ only in vendor.
  const char* query =
      R"(select [p: x.pname, v: x.vendor] from x in Part
         where x.pname = "special_part")";

  const QueryRun before = session.Run(query);
  ASSERT_TRUE(before.ok()) << before.error();
  EXPECT_EQ(before.answer.rows.size(), 0u);

  // Insert one matching part, rename an existing one onto the same key, and
  // delete a root. Parts are generated leaves-first, so level-0 roots (the
  // parts referenced by nobody) occupy the last parts_per_level slots.
  const uint32_t root0 = (config.num_levels - 1) * config.parts_per_level;
  MutationBatch batch;
  batch.Insert("Part", {{"pname", Value::Str("special_part")},
                        {"vendor", Value::Str("vendor_x")},
                        {"mass", Value::Real(1.0)},
                        {"unit_cost", Value::Int(5)},
                        {"subparts", Value::MakeSet({})}});
  batch.Update("Part", parts.db->PayloadToOid("Part", 0),
               {{"pname", Value::Str("special_part")}});
  batch.Delete("Part", parts.db->PayloadToOid("Part", root0 + 1));
  const CommitResult commit = session.Mutate(batch);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();

  const QueryRun after = session.Run(query);
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after.answer.rows.size(), 2u);

  // The deleted part's name no longer matches anything (index entry gone).
  const QueryRun gone = session.Run(
      R"(select [p: x.pname] from x in Part where x.pname = "part_L0_1")");
  ASSERT_TRUE(gone.ok()) << gone.error();
  EXPECT_EQ(gone.answer.rows.size(), 0u);
}

TEST_F(TxnTest, SingleWriterDoubleBeginConflicts) {
  Session a(g_.db.get());
  Session b(g_.db.get());
  uint64_t ta = 0, tb = 0;
  ASSERT_TRUE(a.Begin(&ta).ok());
  const Status refused = b.Begin(&tb);
  EXPECT_EQ(refused.code, Status::Code::kConflict);
  EXPECT_TRUE(refused.retryable());
  EXPECT_EQ(refused.detail, ta);  // who holds the slot

  ASSERT_TRUE(a.Rollback(ta).ok());
  EXPECT_TRUE(b.Begin(&tb).ok());  // slot free again
  EXPECT_TRUE(b.Rollback(tb).ok());
}

TEST_F(TxnTest, RollbackDiscardsStagedOps) {
  Session session(g_.db.get());
  uint64_t txn = 0;
  ASSERT_TRUE(session.Begin(&txn).ok());
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Phantom")}});
  ASSERT_TRUE(session.Apply(txn, batch).ok());
  ASSERT_TRUE(session.Rollback(txn).ok());
  EXPECT_EQ(CountByName(session, "Phantom"), 0u);
  // The transaction is gone: committing it is an error, not a no-op.
  EXPECT_EQ(session.Commit(txn).status.code, Status::Code::kInvalidArgument);
}

TEST_F(TxnTest, ReferentialIntegrityRefusalRollsBack) {
  Session session(g_.db.get());
  // composer_0 is composer_1's master (lineage order): deleting it would
  // leave a dangling ref, so commit-time validation refuses the whole batch
  // — including the otherwise-fine insert staged alongside.
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Rider")}});
  batch.Delete("Composer", g_.db->PayloadToOid("Composer", 0));
  const uint64_t version = session.txn().stats_version();
  const CommitResult commit = session.Mutate(batch);
  EXPECT_EQ(commit.status.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(CountByName(session, "Rider"), 0u);
  EXPECT_EQ(CountByName(session, "composer_0"), 1u);
  EXPECT_EQ(session.txn().stats_version(), version);  // nothing changed

  // The failed commit rolled back; the write slot is free.
  uint64_t txn = 0;
  EXPECT_TRUE(session.Begin(&txn).ok());
  EXPECT_TRUE(session.Rollback(txn).ok());
}

TEST_F(TxnTest, CommitBumpsStatsVersionAndInvalidatesPlanCache) {
  Session session(g_.db.get());
  const char* query = R"(select [n: x.name] from x in Composer
                         where x.name = "Bach")";
  ASSERT_FALSE(session.Run(query).plan_cached);
  ASSERT_TRUE(session.Run(query).plan_cached);

  const uint64_t version = session.txn().stats_version();
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Invalidator")}});
  const CommitResult commit = session.Mutate(batch);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
  EXPECT_EQ(commit.stats_version, version + 1);
  EXPECT_EQ(session.txn().stats_version(), version + 1);

  // The session lazily re-derives stats and drops the stale cache entry.
  const QueryRun after = session.Run(query);
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_FALSE(after.plan_cached);
  EXPECT_TRUE(session.Run(query).plan_cached);  // re-cached at new version
}

TEST_F(TxnTest, EmptyCommitDoesNotBumpStatsVersion) {
  Session session(g_.db.get());
  const uint64_t version = session.txn().stats_version();
  uint64_t txn = 0;
  ASSERT_TRUE(session.Begin(&txn).ok());
  const CommitResult commit = session.Commit(txn);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
  EXPECT_EQ(commit.ops_applied, 0u);
  EXPECT_EQ(session.txn().stats_version(), version);
}

TEST_F(TxnTest, MutationsAreVisibleAcrossSessions) {
  Session writer(g_.db.get());
  Session reader(g_.db.get());
  ASSERT_EQ(CountByName(reader, "Crosstalk"), 0u);

  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Crosstalk")}});
  ASSERT_TRUE(writer.Mutate(batch).ok());

  // The pre-existing reader session picks the commit up on its next query
  // (lazy stats refresh keyed on the engine-wide version).
  EXPECT_EQ(CountByName(reader, "Crosstalk"), 1u);
}

TEST_F(TxnTest, EngineRefreshStatsBumpsEngineWideVersion) {
  EngineOptions options;
  options.dataset = "music";
  options.size = 30;
  Status status;
  std::unique_ptr<EngineHandle> engine = EngineHandle::Create(options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();
  std::unique_ptr<Session> session = engine->NewSession();
  const uint64_t version = session->txn().stats_version();
  engine->RefreshStats();
  EXPECT_EQ(session->txn().stats_version(), version + 1);
}

TEST_F(TxnTest, CommitLeavesResidentSetIdentical) {
  Session session(g_.db.get());
  // Warm the pool with a real query, snapshot, mutate, compare: the write
  // path must not perturb what a subsequent cold/warm measurement sees.
  ASSERT_TRUE(session
                  .Run(R"(select [n: x.name] from x in Composer
                          where x.birthyear > 1600)")
                  .ok());
  const std::vector<PageId> before = g_.db->buffer_pool().SnapshotResident();

  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("Resident")}});
  batch.Update("Composer", g_.db->PayloadToOid("Composer", 0),
               {{"name", Value::Str("renamed_0")}});
  ASSERT_TRUE(session.Mutate(batch).ok());

  EXPECT_EQ(g_.db->buffer_pool().SnapshotResident(), before);
}

TEST_F(TxnTest, BatchInternalReferencesResolve) {
  Session session(g_.db.get());
  uint64_t txn = 0;
  ASSERT_TRUE(session.Begin(&txn).ok());
  MutationBatch first;
  first.Insert("Composer", {{"name", Value::Str("New Master")}});
  const MutationResult staged = session.Apply(txn, first);
  ASSERT_TRUE(staged.ok());
  ASSERT_EQ(staged.new_oids.size(), 1u);

  // A second staged batch may reference the provisional oid.
  MutationBatch second;
  second.Insert("Composer", {{"name", Value::Str("New Disciple")},
                             {"master", Value::Ref(staged.new_oids[0])}});
  ASSERT_TRUE(session.Apply(txn, second).ok());
  const CommitResult commit = session.Commit(txn);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
  EXPECT_EQ(commit.ops_applied, 2u);

  const QueryRun run = session.Run(
      R"(select [m: x.master.name] from x in Composer
         where x.name = "New Disciple")");
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_EQ(run.answer.rows.size(), 1u);
  EXPECT_EQ(run.answer.rows[0][0].AsString(), "New Master");
}

}  // namespace
}  // namespace rodin
