// Parallel cost bracket tests (estimation only; the executor is serial):
// divisible operator work speeds up with the degree, tiny plans pay the
// startup overhead, and fixpoint iterations stay sequential barriers.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class ParallelCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 600;
    config.lineage_depth = 12;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
  }

  double CostAt(unsigned degree, const QueryGraph& q) {
    CostParams params;
    params.parallel_degree = degree;
    CostModel model(g_.db.get(), stats_.get(), params);
    Optimizer opt(g_.db.get(), stats_.get(), &model, NaiveOptions());
    OptimizeResult r = opt.Optimize(q);
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    return r.cost;
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
};

TEST_F(ParallelCostTest, BulkWorkSpeedsUp) {
  // A scan-heavy non-recursive query: more workers -> cheaper, with
  // diminishing returns (overhead grows with the degree).
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("flute"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(*g_.schema);
  const double c1 = CostAt(1, q);
  const double c4 = CostAt(4, q);
  const double c16 = CostAt(16, q);
  EXPECT_LT(c4, c1);
  EXPECT_LT(c16, c4);
  // Far from perfect speedup because of the overhead term.
  EXPECT_GT(c16, c1 / 16);
}

TEST_F(ParallelCostTest, TinyPlansPayOverhead) {
  // A one-row lookup has nothing to divide; high degrees only add startup.
  Schema schema;
  ClassDef* c = schema.AddClass("Tiny");
  schema.AddAttribute(c, {"v", schema.types().Int(), false, 0, "", ""});
  Database db(&schema);
  Oid o = db.NewObject("Tiny");
  db.Set(o, "v", Value::Int(1));
  db.Finalize(PhysicalConfig{});
  Stats stats = Stats::Derive(db);

  QueryGraphBuilder b;
  b.Node("Answer").Input("Tiny", "x").OutPath("v", "x", {"v"});
  const QueryGraph q = b.Build(schema);

  auto cost_at = [&](unsigned degree) {
    CostParams params;
    params.parallel_degree = degree;
    CostModel model(&db, &stats, params);
    Optimizer opt(&db, &stats, &model, NaiveOptions());
    return opt.Optimize(q).cost;
  };
  EXPECT_GT(cost_at(16), cost_at(1));
}

TEST_F(ParallelCostTest, FixpointBarriersLimitSpeedup) {
  // Recursive query: per-iteration work divides but iterations do not, so
  // the speedup at high degrees is visibly sublinear compared to the
  // non-recursive bulk case.
  const QueryGraph recursive = Fig3Query(*g_.schema, 4);
  const double r1 = CostAt(1, recursive);
  const double r8 = CostAt(8, recursive);
  EXPECT_LT(r8, r1);  // still helps (the arm's work divides)

  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Input("Composer", "y")
      .Where(Expr::Eq(Expr::Path("x", {"master"}), Expr::Path("y", {"master"})))
      .OutPath("n", "x", {"name"});
  const QueryGraph bulk = b.Build(*g_.schema);
  const double b1 = CostAt(1, bulk);
  const double b8 = CostAt(8, bulk);
  // Bulk speedup factor exceeds the recursive one.
  EXPECT_GT(b1 / b8, r1 / r8);
}

TEST_F(ParallelCostTest, SerialDegreeIsIdentity) {
  const QueryGraph q = Fig3Query(*g_.schema, 4);
  CostParams params;  // default degree 1
  CostModel model(g_.db.get(), stats_.get(), params);
  CostModel plain(g_.db.get(), stats_.get());
  Optimizer a(g_.db.get(), stats_.get(), &model, NaiveOptions());
  Optimizer b(g_.db.get(), stats_.get(), &plain, NaiveOptions());
  EXPECT_DOUBLE_EQ(a.Optimize(q).cost, b.Optimize(q).cost);
}

}  // namespace
}  // namespace rodin
