// Query lifecycle: deadlines, cooperative cancellation and the per-query
// memory budget (QueryContext / QueryOptions::query). The contract under test:
// a budget trip surfaces as the corresponding Status code in bounded time,
// partially-read streaming cursors can be cancelled from another thread
// (TSan target), a generous deadline changes nothing (anytime transformPT
// determinism), and the buffer-pool budget degrades gracefully before the
// hard kResourceExhausted edge.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/query_context.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "storage/buffer_pool.h"

namespace rodin {
namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  GeneratedDb g_;
};

TEST(QueryContextTest, CancelTokenCopiesShareOneFlag) {
  CancelToken a;
  CancelToken b = a;  // copy shares the flag
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  b.RequestCancel();  // idempotent
  EXPECT_TRUE(a.cancelled());
}

TEST(QueryContextTest, UnarmedDeadlineChecksOk) {
  QueryContext ctx;
  ctx.deadline_ms = 1;
  // Never armed: no deadline even though deadline_ms is set.
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.Expired());
}

TEST(QueryContextTest, ArmedDeadlineExpires) {
  QueryContext ctx;
  ctx.deadline_ms = 1;
  ctx.ArmDeadline();
  EXPECT_TRUE(ctx.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.Check().code, Status::Code::kDeadlineExceeded);
}

TEST(QueryContextTest, CancelBeatsDeadline) {
  QueryContext ctx;
  ctx.deadline_ms = 1;
  ctx.ArmDeadline();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ctx.cancel.RequestCancel();
  EXPECT_EQ(ctx.Check().code, Status::Code::kCancelled);
}

TEST_F(LifecycleTest, OneMillisecondDeadlineReturnsInBoundedTime) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.query.deadline_ms = 1;
  const auto start = std::chrono::steady_clock::now();
  const QueryRun run = session.Run(kFig3Text, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Bounded: the run must come back promptly, not grind to completion.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  // Either the budget tripped (kDeadlineExceeded) or the run beat the clock
  // — possibly with an anytime-truncated transformPT stage. Anything else
  // (kExec, kInternal, a crash) is a failure.
  if (!run.ok()) {
    EXPECT_EQ(run.status.code, Status::Code::kDeadlineExceeded)
        << run.status.ToString();
  }
}

TEST_F(LifecycleTest, PreCancelledRunReturnsCancelled) {
  Session session(g_.db.get());
  QueryOptions options;
  options.query.cancel.RequestCancel();
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kCancelled);
  EXPECT_TRUE(run.answer.rows.empty());
}

TEST_F(LifecycleTest, CancelPartiallyReadCursorFromAnotherThread) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;  // many coordinator poll points
  CancelToken token = options.query.cancel;  // caller-side copy

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));  // partially read

  std::thread canceller([token] { token.RequestCancel(); });
  canceller.join();

  // The next coordinator poll observes the flag: the stream ends with
  // kCancelled, the cursor finalizes (partial accounting replays), and no
  // memory is leaked (ASan/TSan builds of this test verify that part).
  while (cur.Next(&batch)) {
  }
  EXPECT_TRUE(cur.finished());
  EXPECT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code, Status::Code::kCancelled);
}

TEST_F(LifecycleTest, ConcurrentCancelWhileStreaming) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  CancelToken token = options.query.cancel;

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();

  // Genuinely concurrent: the canceller races the reader. Either the stream
  // finishes clean (cancel landed too late) or it stops with kCancelled;
  // TSan verifies the race on the shared flag is benign.
  std::thread canceller([token] { token.RequestCancel(); });
  RowBatch batch;
  while (cur.Next(&batch)) {
  }
  canceller.join();
  EXPECT_TRUE(cur.finished());
  if (!cur.ok()) {
    EXPECT_EQ(cur.status().code, Status::Code::kCancelled);
  }
}

TEST_F(LifecycleTest, DeadlineStopsPartiallyReadCursor) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  options.query.deadline_ms = 200;

  ResultCursor cur = session.Query(kFig3Text, options);
  if (!cur.ok()) {
    // The optimizer itself ran out of budget — also a valid outcome.
    EXPECT_EQ(cur.status().code, Status::Code::kDeadlineExceeded);
    return;
  }
  RowBatch batch;
  cur.Next(&batch);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  // Deadline has certainly elapsed now; the next poll must end the stream.
  while (cur.Next(&batch)) {
  }
  EXPECT_TRUE(cur.finished());
  ASSERT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code, Status::Code::kDeadlineExceeded);
}

// Reads exactly `batches_before_cancel` single-row batches, then requests
// cancellation from the reader thread itself — a deterministic cancel point:
// the coordinator observes the flag on the next poll, so two runs that only
// differ in the eval engine stop after identical work.
struct PartialRun {
  Status::Code code;
  size_t rows_read;
  ExecCounters counters;
  double measured_cost;
};

PartialRun CancelAfterBatches(Session& session, bool compiled,
                              size_t batches_before_cancel) {
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  options.compiled_eval = compiled;
  CancelToken token = options.query.cancel;

  ResultCursor cur = session.Query(kFig3Text, options);
  EXPECT_TRUE(cur.ok()) << cur.status().ToString();
  PartialRun out{};
  RowBatch batch;
  for (size_t i = 0; i < batches_before_cancel && cur.Next(&batch); ++i) {
    out.rows_read += batch.rows.size();
  }
  token.RequestCancel();  // mid-batch-stream, deterministic poll point
  while (cur.Next(&batch)) out.rows_read += batch.rows.size();
  EXPECT_TRUE(cur.finished());
  out.code = cur.status().code;
  out.counters = cur.counters();
  out.measured_cost = cur.measured_cost();
  return out;
}

TEST_F(LifecycleTest, MidStreamCancelPartialAccountingMatchesUnderCompiledEval) {
  // The satellite contract: a cursor cancelled at the same mid-stream point
  // finalizes with *identical partial accounting* whether the predicates ran
  // interpreted or compiled. Partial replay is the hard case — the compiled
  // engine must have charged/counted exactly what the interpreter would
  // have at every batch boundary, not merely at the end of the run.
  Session session(g_.db.get());
  const PartialRun interp = CancelAfterBatches(session, /*compiled=*/false, 3);
  const PartialRun comp = CancelAfterBatches(session, /*compiled=*/true, 3);

  EXPECT_EQ(interp.code, Status::Code::kCancelled);
  EXPECT_EQ(comp.code, Status::Code::kCancelled);
  EXPECT_EQ(comp.rows_read, interp.rows_read);
  EXPECT_EQ(comp.counters.predicate_evals, interp.counters.predicate_evals);
  EXPECT_EQ(comp.counters.method_calls, interp.counters.method_calls);
  EXPECT_EQ(comp.counters.method_cost, interp.counters.method_cost);
  EXPECT_EQ(comp.counters.rows_produced, interp.counters.rows_produced);
  EXPECT_EQ(comp.counters.fix_iterations, interp.counters.fix_iterations);
  EXPECT_EQ(comp.measured_cost, interp.measured_cost);
}

TEST_F(LifecycleTest, ConcurrentCancelWhileStreamingCompiledEval) {
  // TSan target: the canceller races a reader that is executing bytecode
  // chunks on morsel workers. Same benign-race contract as the interpreted
  // variant — clean finish or kCancelled, nothing else.
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  options.exec_threads = 4;
  options.compiled_eval = true;
  CancelToken token = options.query.cancel;

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  std::thread canceller([token] { token.RequestCancel(); });
  RowBatch batch;
  while (cur.Next(&batch)) {
  }
  canceller.join();
  EXPECT_TRUE(cur.finished());
  if (!cur.ok()) {
    EXPECT_EQ(cur.status().code, Status::Code::kCancelled);
  }
}

TEST_F(LifecycleTest, DeadlineStopsPartiallyReadCompiledEvalCursor) {
  // Deadline trip mid-stream with the VM engaged: the budget poll sits at
  // the batch boundary, outside the chunk dispatch loop, so compiled eval
  // must surface the same kDeadlineExceeded edge as interpreted eval.
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  options.compiled_eval = true;
  options.query.deadline_ms = 200;

  ResultCursor cur = session.Query(kFig3Text, options);
  if (!cur.ok()) {
    EXPECT_EQ(cur.status().code, Status::Code::kDeadlineExceeded);
    return;
  }
  RowBatch batch;
  cur.Next(&batch);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  while (cur.Next(&batch)) {
  }
  EXPECT_TRUE(cur.finished());
  ASSERT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code, Status::Code::kDeadlineExceeded);
}

TEST_F(LifecycleTest, GenerousDeadlineIsDeterministicallyIdentical) {
  // Anytime transformPT determinism: the budget polls consume no RNG draws,
  // so a run whose deadline never trips must choose the identical plan (and
  // report no truncation) as a run with no deadline at all.
  Session session(g_.db.get());
  QueryOptions plain;
  plain.cold = true;
  const QueryRun base = session.Run(kFig3Text, plain);
  ASSERT_TRUE(base.ok()) << base.error();

  QueryOptions generous;
  generous.cold = true;
  generous.query.deadline_ms = 600000;  // 10 minutes: never trips
  const QueryRun bounded = session.Run(kFig3Text, generous);
  ASSERT_TRUE(bounded.ok()) << bounded.error();

  EXPECT_EQ(bounded.plan_text, base.plan_text);
  EXPECT_EQ(bounded.optimized.cost, base.optimized.cost);
  for (const StageReport& s : bounded.optimized.stages) {
    EXPECT_FALSE(s.truncated) << s.stage;
  }
  EXPECT_EQ(Keys(bounded.answer), Keys(base.answer));
}

TEST_F(LifecycleTest, MemoryBudgetDegradesGracefully) {
  Session session(g_.db.get());
  QueryOptions plain;
  plain.cold = true;
  const QueryRun base = session.Run(kFig3Text, plain);
  ASSERT_TRUE(base.ok()) << base.error();

  // A small (but allocation-honouring) budget: the pool's effective LRU
  // capacity is clamped, so the query runs to completion with the same
  // answer and at least as many misses — never fewer.
  QueryOptions bounded = plain;
  bounded.query.memory_budget_pages = 16;
  const QueryRun run = session.Run(kFig3Text, bounded);
  ASSERT_TRUE(run.ok()) << run.status.ToString();
  EXPECT_EQ(Keys(run.answer), Keys(base.answer));
  EXPECT_GE(run.measured_cost, base.measured_cost);
  // The budget is disarmed once the run finishes.
  EXPECT_EQ(g_.db->buffer_pool().query_budget(), 0u);
}

// The mutation-vs-live-cursor contract (docs/ROBUSTNESS.md): a commit while
// a streaming cursor is live REFUSES with retryable kConflict (detail = the
// live-cursor count) rather than mutating under the reader. The cursor
// drains its complete pre-commit answer; the refused transaction stays open
// and commits once the cursor is gone.
TEST_F(LifecycleTest, CommitRefusedWhileCursorStreamsThenSucceeds) {
  Session reader(g_.db.get());
  QueryOptions options;
  options.batch_rows = 2;  // keep the cursor alive across several batches
  const QueryRun oracle = reader.Run(kFig3Text);
  ASSERT_TRUE(oracle.ok()) << oracle.error();

  ResultCursor cur = reader.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));  // mid-stream: the cursor is now live

  Session writer(g_.db.get());
  uint64_t txn = 0;
  ASSERT_TRUE(writer.Begin(&txn).ok());
  MutationBatch mutation;
  mutation.Insert("Composer", {{"name", Value::Str("Interloper")}});
  ASSERT_TRUE(writer.Apply(txn, mutation).ok());

  const CommitResult refused = writer.Commit(txn);
  EXPECT_EQ(refused.status.code, Status::Code::kConflict);
  EXPECT_TRUE(refused.status.retryable());
  EXPECT_EQ(refused.status.detail, 1u);  // one live cursor

  // The cursor streams its full pre-commit snapshot.
  Table streamed;
  for (Row& r : batch.rows) streamed.rows.push_back(std::move(r));
  while (cur.Next(&batch)) {
    for (Row& r : batch.rows) streamed.rows.push_back(std::move(r));
  }
  EXPECT_TRUE(cur.finished());
  EXPECT_EQ(Keys(streamed), Keys(oracle.answer));

  // Drained cursor => the same (still-open) transaction commits now.
  const CommitResult ok = writer.Commit(txn);
  ASSERT_TRUE(ok.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.ops_applied, 1u);
}

// An abandoned (destroyed-early) cursor must release the gate too — early
// destruction finalizes the stream, so a commit afterwards goes through.
TEST_F(LifecycleTest, AbandonedCursorReleasesCommitGate) {
  Session reader(g_.db.get());
  Session writer(g_.db.get());
  {
    QueryOptions options;
    options.batch_rows = 2;
    ResultCursor cur = reader.Query(kFig3Text, options);
    ASSERT_TRUE(cur.ok()) << cur.error();
    RowBatch batch;
    ASSERT_TRUE(cur.Next(&batch));
  }  // cursor destroyed partially read

  MutationBatch mutation;
  mutation.Insert("Composer", {{"name", Value::Str("AfterAbandon")}});
  const CommitResult commit = writer.Mutate(mutation);
  ASSERT_TRUE(commit.ok()) << commit.status.ToString();
}

TEST(LifecycleHardBudgetTest, OverBudgetWorkingSetSpillsAndCompletes) {
  // Big enough that the fixpoint's materialized tables each need several
  // pages: before spill-to-disk landed, a 1-page budget hard-failed this
  // query with kResourceExhausted.
  MusicConfig config;
  config.num_composers = 400;
  config.lineage_depth = 10;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Session session(g.db.get());
  QueryOptions plain;
  plain.cold = true;
  const QueryRun base = session.Run(kFig3Text, plain);
  ASSERT_TRUE(base.ok()) << base.error();

  // With spilling on (the default), the same budget now degrades
  // gracefully: identical answer, the pool clamp surfaces as extra misses
  // in the measured cost — never as an error.
  QueryOptions bounded = plain;
  bounded.query.memory_budget_pages = 1;
  const QueryRun run = session.Run(kFig3Text, bounded);
  ASSERT_TRUE(run.ok()) << run.status.ToString();
  EXPECT_EQ(Keys(run.answer), Keys(base.answer));
  EXPECT_GE(run.measured_cost, base.measured_cost);
  EXPECT_EQ(g.db->buffer_pool().query_budget(), 0u);

  // Opting out of spilling restores the typed hard failure, now carrying
  // the machine-readable detail: the tripping operator's tag plus the
  // requested / remaining page arithmetic (see PackResourceDetail).
  QueryOptions off = bounded;
  off.query.spill = false;
  const QueryRun refused = session.Run(kFig3Text, off);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code, Status::Code::kResourceExhausted)
      << refused.status.ToString();
  EXPECT_NE(static_cast<int>(ResourceDetailOp(refused.status.detail)), 0);
  EXPECT_GT(ResourceDetailRequested(refused.status.detail),
            ResourceDetailRemaining(refused.status.detail));
  EXPECT_LE(ResourceDetailRemaining(refused.status.detail), 1u);
  EXPECT_TRUE(refused.answer.rows.empty());
  EXPECT_EQ(g.db->buffer_pool().query_budget(), 0u);
}

TEST(BufferPoolBudgetTest, BudgetClampsEffectiveCapacity) {
  BufferPool pool(8);
  for (PageId p = 0; p < 8; ++p) pool.Fetch(p);
  EXPECT_EQ(pool.resident_pages(), 8u);

  // Arming a smaller budget evicts down immediately...
  pool.SetQueryBudget(3);
  EXPECT_EQ(pool.resident_pages(), 3u);
  // ...and caps residency while armed.
  for (PageId p = 100; p < 110; ++p) pool.Fetch(p);
  EXPECT_EQ(pool.resident_pages(), 3u);

  // Clearing restores the full capacity.
  pool.ClearQueryBudget();
  for (PageId p = 200; p < 220; ++p) pool.Fetch(p);
  EXPECT_EQ(pool.resident_pages(), 8u);
}

TEST(BufferPoolBudgetTest, SnapshotRestoreRoundTripsHitPattern) {
  BufferPool pool(4);
  for (PageId p = 0; p < 4; ++p) pool.Fetch(p);
  const std::vector<PageId> snap = pool.SnapshotResident();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front(), 3u);  // MRU first

  // Disturb the resident set, then restore: the same fetch sequence must
  // see the same hits as it would have from the snapshot point.
  for (PageId p = 50; p < 60; ++p) pool.Fetch(p);
  pool.RestoreResident(snap);
  EXPECT_EQ(pool.resident_pages(), 4u);
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_TRUE(pool.Fetch(p)) << "page " << p << " should be resident";
  }
}

}  // namespace
}  // namespace rodin
