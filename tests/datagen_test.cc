#include <gtest/gtest.h>

#include <set>

#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "datagen/parts_gen.h"

namespace rodin {
namespace {

TEST(MusicGenTest, SchemaMatchesFigure1) {
  MusicConfig config;
  config.num_composers = 30;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const Schema& s = *g.schema;
  ASSERT_NE(s.FindClass("Person"), nullptr);
  ASSERT_NE(s.FindClass("Composer"), nullptr);
  ASSERT_NE(s.FindClass("Composition"), nullptr);
  ASSERT_NE(s.FindClass("Instrument"), nullptr);
  ASSERT_NE(s.FindRelation("Play"), nullptr);
  EXPECT_TRUE(s.IsSubclassOf(s.FindClass("Composer"), s.FindClass("Person")));
  // Inverse declaration between works and author.
  const Attribute* works = s.FindClass("Composer")->FindAttribute("works");
  EXPECT_EQ(works->inverse_class, "Composition");
  EXPECT_EQ(works->inverse_attr, "author");
  // Method as computed attribute.
  EXPECT_TRUE(s.FindClass("Person")->FindAttribute("age")->computed);
}

TEST(MusicGenTest, LineagesHaveExactDepth) {
  MusicConfig config;
  config.num_composers = 40;
  config.lineage_depth = 8;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const ClassDef* cls = g.schema->FindClass("Composer");
  // Walk chains: max depth over all composers must be lineage_depth - 1.
  int max_depth = 0;
  for (uint32_t s = 0; s < g.db->FindExtent("Composer")->size(); ++s) {
    int depth = 0;
    Oid cur{cls->id(), s};
    while (true) {
      const Value m = g.db->GetRaw(cur, "master");
      if (!m.is_ref()) break;
      cur = m.AsRef();
      ++depth;
    }
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_EQ(max_depth, 7);
}

TEST(MusicGenTest, BachExistsWithFullChain) {
  MusicConfig config;
  config.num_composers = 50;
  config.lineage_depth = 10;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const ClassDef* cls = g.schema->FindClass("Composer");
  int found = 0;
  for (uint32_t s = 0; s < g.db->FindExtent("Composer")->size(); ++s) {
    if (g.db->GetRaw(Oid{cls->id(), s}, "name").AsString() == "Bach") {
      ++found;
      int depth = 0;
      Oid cur{cls->id(), s};
      while (g.db->GetRaw(cur, "master").is_ref()) {
        cur = g.db->GetRaw(cur, "master").AsRef();
        ++depth;
      }
      EXPECT_EQ(depth, 9);  // deepest of his lineage
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(MusicGenTest, HarpsichordFractionControlsSelectivity) {
  MusicConfig config;
  config.num_composers = 200;
  config.harpsichord_fraction = 0.25;
  config.seed = 3;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const Extent* comps = g.db->FindExtent("Composition");
  const ClassDef* cls = g.schema->FindClass("Composition");
  const ClassDef* instr_cls = g.schema->FindClass("Instrument");
  uint32_t with = 0;
  for (uint32_t s = 0; s < comps->size(); ++s) {
    const Value instrs = g.db->GetRaw(Oid{cls->id(), s}, "instruments");
    for (const Value& i : instrs.AsCollection().elems) {
      if (i.AsRef().class_id == instr_cls->id() && i.AsRef().slot == 0) {
        ++with;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(with) / comps->size(), 0.25, 0.06);
}

TEST(MusicGenTest, InversesConsistent) {
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, PaperMusicPhysical());
  // Every composition's author lists it among its works.
  const ClassDef* comp_cls = g.schema->FindClass("Composition");
  const Extent* comps = g.db->FindExtent("Composition");
  for (uint32_t s = 0; s < comps->size(); ++s) {
    Oid c{comp_cls->id(), s};
    const Oid author = g.db->GetRaw(c, "author").AsRef();
    const Value works = g.db->GetRaw(author, "works");
    bool found = false;
    for (const Value& w : works.AsCollection().elems) {
      if (w.AsRef() == c) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(MusicGenTest, AgeMethodWorks) {
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, PaperMusicPhysical());
  const ClassDef* cls = g.schema->FindClass("Composer");
  Oid c{cls->id(), 0};
  const int64_t age = g.db->InvokeMethod(c, "age").AsInt();
  const int64_t birth = g.db->GetRaw(c, "birthyear").AsInt();
  EXPECT_EQ(age, 1992 - birth);
}

TEST(MusicGenTest, DeterministicBySeed) {
  MusicConfig config;
  config.seed = 99;
  GeneratedDb a = GenerateMusicDb(config, PaperMusicPhysical());
  GeneratedDb b = GenerateMusicDb(config, PaperMusicPhysical());
  const ClassDef* cls = a.schema->FindClass("Composition");
  ASSERT_EQ(a.db->FindExtent("Composition")->size(),
            b.db->FindExtent("Composition")->size());
  for (uint32_t s = 0; s < a.db->FindExtent("Composition")->size(); ++s) {
    EXPECT_EQ(a.db->GetRaw(Oid{cls->id(), s}, "title"),
              b.db->GetRaw(Oid{cls->id(), s}, "title"));
  }
}

TEST(PartsGenTest, LevelsAndSubparts) {
  PartsConfig config;
  config.parts_per_level = 20;
  config.num_levels = 4;
  GeneratedDb g = GeneratePartsDb(config, DefaultPartsPhysical());
  const Extent* parts = g.db->FindExtent("Part");
  EXPECT_EQ(parts->size(), 80u);
  const ClassDef* cls = g.schema->FindClass("Part");
  // Leaf parts (level 3) have empty subparts; others have 2..5.
  uint32_t leaves = 0;
  for (uint32_t s = 0; s < parts->size(); ++s) {
    const Value subs = g.db->GetRaw(Oid{cls->id(), s}, "subparts");
    ASSERT_TRUE(subs.is_collection());
    const size_t n = subs.AsCollection().elems.size();
    if (n == 0) {
      ++leaves;
    } else {
      EXPECT_GE(n, 1u);  // sets dedup, so >= 1 survives from 2..5 draws
      EXPECT_LE(n, 5u);
    }
  }
  EXPECT_EQ(leaves, 20u);
}

TEST(PartsGenTest, AssemblyCostMethod) {
  GeneratedDb g = GeneratePartsDb(PartsConfig{}, DefaultPartsPhysical());
  const ClassDef* cls = g.schema->FindClass("Part");
  Oid p{cls->id(), g.db->FindExtent("Part")->size() - 1};  // a top-level part
  const int64_t cost = g.db->InvokeMethod(p, "assembly_cost").AsInt();
  EXPECT_GE(cost, g.db->GetRaw(p, "unit_cost").AsInt());
}

TEST(GraphGenTest, ChainDepthExact) {
  GraphConfig config;
  config.num_nodes = 64;
  config.chain_depth = 16;
  config.path_len = 0;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  const ClassDef* cls = g.schema->FindClass("Node");
  int max_depth = 0;
  for (uint32_t s = 0; s < 64; ++s) {
    int depth = 0;
    Oid cur{cls->id(), s};
    while (g.db->GetRaw(cur, "parent").is_ref()) {
      cur = g.db->GetRaw(cur, "parent").AsRef();
      ++depth;
    }
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_EQ(max_depth, 15);
}

TEST(GraphGenTest, PathLenCreatesAuxClasses) {
  GraphConfig config;
  config.num_nodes = 10;
  config.path_len = 3;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  ASSERT_NE(g.schema->FindClass("Aux1"), nullptr);
  ASSERT_NE(g.schema->FindClass("Aux3"), nullptr);
  EXPECT_EQ(g.schema->FindClass("Aux4"), nullptr);
  // Label lives on the last class only.
  EXPECT_EQ(g.schema->FindClass("Aux1")->FindAttribute("label"), nullptr);
  EXPECT_NE(g.schema->FindClass("Aux3")->FindAttribute("label"), nullptr);
  EXPECT_EQ(GraphSelectionPath(config),
            (std::vector<std::string>{"hop1", "hop2", "hop3"}));
}

TEST(GraphGenTest, PathLenZeroPutsLabelOnNode) {
  GraphConfig config;
  config.path_len = 0;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  EXPECT_NE(g.schema->FindClass("Node")->FindAttribute("label"), nullptr);
  EXPECT_TRUE(GraphSelectionPath(config).empty());
}

TEST(GraphGenTest, LabelSelectivityMatchesNumLabels) {
  GraphConfig config;
  config.num_nodes = 2000;
  config.chain_depth = 10;
  config.path_len = 0;
  config.num_labels = 4;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  const ClassDef* cls = g.schema->FindClass("Node");
  uint32_t label0 = 0;
  for (uint32_t s = 0; s < config.num_nodes; ++s) {
    if (g.db->GetRaw(Oid{cls->id(), s}, "label").AsString() == "label_0") {
      ++label0;
    }
  }
  EXPECT_NEAR(static_cast<double>(label0) / config.num_nodes, 0.25, 0.05);
}

}  // namespace
}  // namespace rodin
