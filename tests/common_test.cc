#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace rodin {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(StringUtilTest, JoinBasics) {
  EXPECT_EQ(Join({}, "."), "");
  EXPECT_EQ(Join({"a"}, "."), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({"x", "y"}, " -> "), "x -> y");
}

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("abc", '.'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "works.instruments.iname";
  EXPECT_EQ(Join(Split(s, '.'), "."), s);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long output is not truncated.
  const std::string longstr(500, 'a');
  EXPECT_EQ(StrFormat("%s", longstr.c_str()).size(), 500u);
}

}  // namespace
}  // namespace rodin
