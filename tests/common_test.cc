#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace rodin {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngStreamTest, SameStreamSameSequence) {
  Rng a = Rng::Stream(42, 3);
  Rng b = Rng::Stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngStreamTest, DistinctStreamsDecorrelated) {
  // Streams for different indices (and the base generator itself) must not
  // collide: collect the first values of many streams and expect all unique.
  std::set<uint64_t> firsts;
  firsts.insert(Rng(42).Next());
  for (uint64_t s = 0; s < 1000; ++s) {
    firsts.insert(Rng::Stream(42, s).Next());
  }
  EXPECT_EQ(firsts.size(), 1001u);
  // Different seeds give different streams for the same index.
  EXPECT_NE(Rng::Stream(1, 0).Next(), Rng::Stream(2, 0).Next());
}

TEST(RngStreamTest, StreamValuesLookUniform) {
  // Cheap sanity check that the per-stream first draws are not clustered:
  // the mean of 4096 stream heads mapped to [0,1) should be near 0.5.
  double sum = 0;
  const int n = 4096;
  for (int s = 0; s < n; ++s) {
    sum += Rng::Stream(7, static_cast<uint64_t>(s)).NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitThenReuse) {
  // The pool survives multiple submit/wait waves (the parallel search runs
  // one wave per Improve call on a long-lived pool).
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (wave + 1) * 64);
  }
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: must not deadlock
  EXPECT_EQ(pool.thread_count(), 2u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool drains before joining
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran = 1; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), threads, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  // threads <= 1 must run in index order on the calling thread.
  std::vector<size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(8, 1, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(StringUtilTest, JoinBasics) {
  EXPECT_EQ(Join({}, "."), "");
  EXPECT_EQ(Join({"a"}, "."), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({"x", "y"}, " -> "), "x -> y");
}

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("abc", '.'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "works.instruments.iname";
  EXPECT_EQ(Join(Split(s, '.'), "."), s);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long output is not truncated.
  const std::string longstr(500, 'a');
  EXPECT_EQ(StrFormat("%s", longstr.c_str()).size(), 500u);
}

}  // namespace
}  // namespace rodin
