#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "storage/buffer_pool.h"

namespace rodin {
namespace {

TEST(BufferPoolTest, ColdFetchesMiss) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Fetch(1));
  EXPECT_FALSE(pool.Fetch(2));
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().fetches, 2u);
}

TEST(BufferPoolTest, RepeatedFetchHits) {
  BufferPool pool(4);
  pool.Fetch(1);
  EXPECT_TRUE(pool.Fetch(1));
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, LruEvictsOldest) {
  BufferPool pool(2);
  pool.Fetch(1);
  pool.Fetch(2);
  pool.Fetch(3);  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Resident(3));
  EXPECT_FALSE(pool.Fetch(1));  // miss: was evicted
}

TEST(BufferPoolTest, AccessRefreshesLruPosition) {
  BufferPool pool(2);
  pool.Fetch(1);
  pool.Fetch(2);
  pool.Fetch(1);  // 1 becomes MRU
  pool.Fetch(3);  // evicts 2, not 1
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(pool.Fetch(7));
  }
  EXPECT_EQ(pool.stats().misses, 5u);
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(BufferPoolTest, ResetStatsKeepsResidency) {
  BufferPool pool(4);
  pool.Fetch(1);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().fetches, 0u);
  EXPECT_TRUE(pool.Fetch(1));  // still resident: hit
}

TEST(BufferPoolTest, ClearDropsResidency) {
  BufferPool pool(4);
  pool.Fetch(1);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Fetch(1));
}

TEST(BufferPoolTest, SequentialFloodingThrashes) {
  // Scanning 8 pages repeatedly through a 4-page LRU pool misses on every
  // fetch — the behaviour the cost model's RescanIO mirrors.
  BufferPool pool(4);
  for (int scan = 0; scan < 3; ++scan) {
    for (PageId p = 0; p < 8; ++p) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 24u);
}

TEST(BufferPoolTest, SmallWorkingSetStaysHot) {
  BufferPool pool(8);
  for (int scan = 0; scan < 3; ++scan) {
    for (PageId p = 0; p < 4; ++p) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().hits, 8u);
}

/// Records the raw charge sequence, bypassing ChargeLog's run-length
/// encoding, so replay order can be compared exactly.
struct RecordingCharger final : public PageCharger {
  std::vector<PageId> pages;
  void Charge(PageId page) override { pages.push_back(page); }
};

TEST(ChargeLogTest, ReplayReproducesExactSequence) {
  // Ascending runs, a restart (the nested-loop re-scan shape), a repeat,
  // and a descent — replay must reproduce all of it verbatim.
  const std::vector<PageId> charges = {5, 6, 7, 5, 6, 7, 9, 9, 3, 2};
  ChargeLog log;
  for (PageId p : charges) log.Charge(p);
  EXPECT_EQ(log.size(), charges.size());
  EXPECT_FALSE(log.empty());
  RecordingCharger sink;
  log.ReplayInto(&sink);
  EXPECT_EQ(sink.pages, charges);
}

TEST(ChargeLogTest, AppendPreservesOrderAndCount) {
  ChargeLog a;
  for (PageId p : {1, 2, 3}) a.Charge(p);
  ChargeLog b;
  for (PageId p : {4, 5, 10}) b.Charge(p);  // 4 continues a's run
  a.Append(b);
  EXPECT_EQ(a.size(), 6u);
  RecordingCharger sink;
  a.ReplayInto(&sink);
  EXPECT_EQ(sink.pages, (std::vector<PageId>{1, 2, 3, 4, 5, 10}));
}

TEST(ChargeLogTest, RepeatedPageRunsReplayExactly) {
  // The extent-scan shape: many records per page, one charge per record.
  ChargeLog log;
  std::vector<PageId> charges;
  for (PageId p = 0; p < 3; ++p) {
    for (int r = 0; r < 50; ++r) {
      log.Charge(p);
      charges.push_back(p);
    }
  }
  EXPECT_EQ(log.size(), charges.size());
  RecordingCharger sink;
  log.ReplayInto(&sink);
  EXPECT_EQ(sink.pages, charges);
}

TEST(ChargeLogTest, AppendMergesRepeatedPageRuns) {
  ChargeLog a;
  a.Charge(7);  // single charge: stride still open
  ChargeLog b;
  b.Charge(7);
  b.Charge(7);
  a.Append(b);
  EXPECT_EQ(a.size(), 3u);
  RecordingCharger sink;
  a.ReplayInto(&sink);
  EXPECT_EQ(sink.pages, (std::vector<PageId>{7, 7, 7}));
}

TEST(ChargeLogTest, RandomizedMorselMergeReplaysExactly) {
  // Differential check against a plain charge vector: random mixes of
  // ascending runs, repeated pages and lone charges, merged across
  // morsel-local logs the way the batched executor does.
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<PageId> page(0, 30);
  std::uniform_int_distribution<int> len(1, 6);
  for (int trial = 0; trial < 20; ++trial) {
    ChargeLog merged;
    std::vector<PageId> flat;
    for (int m = 0; m < 3; ++m) {
      ChargeLog morsel;
      for (int i = 0; i < 40; ++i) {
        const PageId p = page(rng);
        const int n = len(rng);
        switch (kind(rng)) {
          case 0:  // ascending run
            for (int j = 0; j < n; ++j) {
              morsel.Charge(p + j);
              flat.push_back(p + j);
            }
            break;
          case 1:  // repeated page
            for (int j = 0; j < n; ++j) {
              morsel.Charge(p);
              flat.push_back(p);
            }
            break;
          default:  // lone charge
            morsel.Charge(p);
            flat.push_back(p);
            break;
        }
      }
      merged.Append(morsel);
    }
    ASSERT_EQ(merged.size(), flat.size());
    RecordingCharger sink;
    merged.ReplayInto(&sink);
    ASSERT_EQ(sink.pages, flat);
  }
}

TEST(ChargeLogTest, ClearEmpties) {
  ChargeLog log;
  log.Charge(1);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  RecordingCharger sink;
  log.ReplayInto(&sink);
  EXPECT_TRUE(sink.pages.empty());
}

}  // namespace
}  // namespace rodin
