#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace rodin {
namespace {

TEST(BufferPoolTest, ColdFetchesMiss) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Fetch(1));
  EXPECT_FALSE(pool.Fetch(2));
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().fetches, 2u);
}

TEST(BufferPoolTest, RepeatedFetchHits) {
  BufferPool pool(4);
  pool.Fetch(1);
  EXPECT_TRUE(pool.Fetch(1));
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, LruEvictsOldest) {
  BufferPool pool(2);
  pool.Fetch(1);
  pool.Fetch(2);
  pool.Fetch(3);  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Resident(3));
  EXPECT_FALSE(pool.Fetch(1));  // miss: was evicted
}

TEST(BufferPoolTest, AccessRefreshesLruPosition) {
  BufferPool pool(2);
  pool.Fetch(1);
  pool.Fetch(2);
  pool.Fetch(1);  // 1 becomes MRU
  pool.Fetch(3);  // evicts 2, not 1
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(pool.Fetch(7));
  }
  EXPECT_EQ(pool.stats().misses, 5u);
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(BufferPoolTest, ResetStatsKeepsResidency) {
  BufferPool pool(4);
  pool.Fetch(1);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().fetches, 0u);
  EXPECT_TRUE(pool.Fetch(1));  // still resident: hit
}

TEST(BufferPoolTest, ClearDropsResidency) {
  BufferPool pool(4);
  pool.Fetch(1);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Fetch(1));
}

TEST(BufferPoolTest, SequentialFloodingThrashes) {
  // Scanning 8 pages repeatedly through a 4-page LRU pool misses on every
  // fetch — the behaviour the cost model's RescanIO mirrors.
  BufferPool pool(4);
  for (int scan = 0; scan < 3; ++scan) {
    for (PageId p = 0; p < 8; ++p) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 24u);
}

TEST(BufferPoolTest, SmallWorkingSetStaysHot) {
  BufferPool pool(8);
  for (int scan = 0; scan < 3; ++scan) {
    for (PageId p = 0; p < 4; ++p) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().hits, 8u);
}

}  // namespace
}  // namespace rodin
