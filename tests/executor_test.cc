// Executor tests: each operator's semantics against hand-built plans, the
// semi-naive fixpoint, exists-semantics of multi-valued paths, method-call
// charging, and measured-vs-estimated cost agreement in shape.

#include <gtest/gtest.h>

#include <set>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "exec/result_cursor.h"
#include "plan/pt.h"

namespace rodin {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    config.seed = 5;
    g_ = GenerateMusicDb(config, WithIndex());
    composer_ = g_.schema->FindClass("Composer");
    composition_ = g_.schema->FindClass("Composition");
  }

  static PhysicalConfig WithIndex() {
    PhysicalConfig config = PaperMusicPhysical();
    config.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    config.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
    return config;
  }

  PTPtr ComposerScan(const std::string& var = "x") {
    return MakeEntity(EntityRef{"Composer", 0, 0}, var, composer_);
  }

  GeneratedDb g_;
  const ClassDef* composer_ = nullptr;
  const ClassDef* composition_ = nullptr;
};

TEST_F(ExecutorTest, EntityScanReturnsAllOids) {
  Executor exec(g_.db.get());
  Table t = exec.Execute(*ComposerScan());
  EXPECT_EQ(t.rows.size(), 40u);
  EXPECT_EQ(t.schema.cols[0].name, "x");
  std::set<uint32_t> slots;
  for (const Row& r : t.rows) slots.insert(r[0].AsRef().slot);
  EXPECT_EQ(slots.size(), 40u);
}

TEST_F(ExecutorTest, SelFusedScanFilters) {
  PTPtr s = MakeSel(ComposerScan(),
                    Expr::Eq(Expr::Path("x", {"name"}),
                             Expr::Lit(Value::Str("Bach"))));
  Executor exec(g_.db.get());
  Table t = exec.Execute(*s);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(g_.db->GetRaw(t.rows[0][0].AsRef(), "name").AsString(), "Bach");
  EXPECT_EQ(exec.counters().predicate_evals, 40u);  // one per record
}

TEST_F(ExecutorTest, SelIndexAccessSameResultFewerEvals) {
  ExprPtr pred =
      Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));
  PTPtr s = MakeSel(ComposerScan(), pred);
  s->sel_access = SelAccess::kIndexEq;
  s->sel_index = g_.db->FindSelIndex("Composer", "name");
  s->sel_index_pred = pred;
  Executor exec(g_.db.get());
  Table t = exec.Execute(*s);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_LT(exec.counters().predicate_evals, 5u);
}

TEST_F(ExecutorTest, SelIndexRangeAccess) {
  // birthyear >= max-10 through the range index.
  int64_t maxy = 0;
  for (uint32_t s = 0; s < 40; ++s) {
    maxy = std::max(maxy,
                    g_.db->GetRaw(Oid{composer_->id(), s}, "birthyear").AsInt());
  }
  ExprPtr pred = Expr::Cmp(CompareOp::kGe, Expr::Path("x", {"birthyear"}),
                           Expr::Lit(Value::Int(maxy - 10)));
  PTPtr s = MakeSel(ComposerScan(), pred);
  s->sel_access = SelAccess::kIndexRange;
  s->sel_index = g_.db->FindSelIndex("Composer", "birthyear");
  s->sel_index_pred = pred;
  Executor exec(g_.db.get());
  Table t = exec.Execute(*s);
  // Cross-check against a full scan.
  PTPtr scan = MakeSel(ComposerScan(), pred);
  Executor exec2(g_.db.get());
  Table t2 = exec2.Execute(*scan);
  EXPECT_EQ(t.rows.size(), t2.rows.size());
  EXPECT_FALSE(t.rows.empty());
}

TEST_F(ExecutorTest, ProjComputesColumns) {
  PTPtr p = MakeProj(ComposerScan(),
                     {{"n", Expr::Path("x", {"name"})},
                      {"next", Expr::Arith(ArithOp::kAdd,
                                           Expr::Path("x", {"birthyear"}),
                                           Expr::Lit(Value::Int(1)))}},
                     {{"n", nullptr}, {"next", nullptr}}, false);
  Executor exec(g_.db.get());
  Table t = exec.Execute(*p);
  ASSERT_EQ(t.rows.size(), 40u);
  EXPECT_TRUE(t.rows[0][0].is_string());
  EXPECT_TRUE(t.rows[0][1].is_int());
}

TEST_F(ExecutorTest, ProjDedupGivesSetSemantics) {
  PTPtr p = MakeProj(ComposerScan(),
                     {{"c", Expr::Lit(Value::Int(1))}},
                     {{"c", nullptr}}, true);
  Executor exec(g_.db.get());
  Table t = exec.Execute(*p);
  EXPECT_EQ(t.rows.size(), 1u);
}

TEST_F(ExecutorTest, ProjFlattensMultiValuedPaths) {
  // title of x.works: one row per (composer, work).
  PTPtr p = MakeProj(ComposerScan(),
                     {{"t", Expr::Path("x", {"works", "title"})}},
                     {{"t", nullptr}}, false);
  Executor exec(g_.db.get());
  Table t = exec.Execute(*p);
  EXPECT_EQ(t.rows.size(), g_.db->FindExtent("Composition")->size());
}

TEST_F(ExecutorTest, IJExpandsCollections) {
  PTPtr ij = MakeIJ(ComposerScan(), "x", "works", "w", composition_);
  Executor exec(g_.db.get());
  Table t = exec.Execute(*ij);
  EXPECT_EQ(t.rows.size(), g_.db->FindExtent("Composition")->size());
  EXPECT_EQ(t.schema.cols.size(), 2u);
  // Every (x, w) pair is consistent: w.author == x.
  for (const Row& r : t.rows) {
    EXPECT_EQ(g_.db->GetRaw(r[1].AsRef(), "author").AsRef(), r[0].AsRef());
  }
}

TEST_F(ExecutorTest, IJSkipsNullReferences) {
  PTPtr ij = MakeIJ(ComposerScan(), "x", "master", "m", composer_);
  Executor exec(g_.db.get());
  Table t = exec.Execute(*ij);
  // 40 composers in lineages of 8: 5 have no master.
  EXPECT_EQ(t.rows.size(), 35u);
}

TEST_F(ExecutorTest, PIJMatchesIJChain) {
  const PathIndex* index =
      g_.db->FindPathIndex("Composer", {"works", "instruments"});
  ASSERT_NE(index, nullptr);
  PTPtr pij = MakePIJ(ComposerScan(), "x", {"works", "instruments"},
                      {"w", "i"},
                      {composition_, g_.schema->FindClass("Instrument")},
                      index);
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*pij);

  PTPtr chain = MakeIJ(MakeIJ(ComposerScan(), "x", "works", "w", composition_),
                       "w", "instruments", "i",
                       g_.schema->FindClass("Instrument"));
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*chain);

  auto key_set = [](const Table& t) {
    std::set<std::vector<uint32_t>> keys;
    for (const Row& r : t.rows) {
      keys.insert({r[0].AsRef().slot, r[1].AsRef().slot, r[2].AsRef().slot});
    }
    return keys;
  };
  EXPECT_EQ(key_set(t1), key_set(t2));
}

TEST_F(ExecutorTest, EJNestedLoopAndIndexJoinAgree) {
  // Join composition author to composers: c.author = x.
  auto make_right = [&] {
    return MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  };
  auto make_left = [&] {
    return MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition_);
  };
  ExprPtr pred = Expr::Eq(Expr::Path("c", {"author"}),
                          Expr::Path("x", {}));
  // Nested loop.
  PTPtr nl = MakeEJ(make_left(), make_right(), pred, JoinAlgo::kNestedLoop);
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*nl);
  EXPECT_EQ(t1.rows.size(), g_.db->FindExtent("Composition")->size());

  // Index join on Composer.name through an equality on names.
  ExprPtr pred2 = Expr::Eq(Expr::Path("x", {"name"}),
                           Expr::Path("c", {"author", "name"}));
  PTPtr ix = MakeEJ(make_left(), make_right(), pred2, JoinAlgo::kIndexJoin);
  ix->join_index = g_.db->FindSelIndex("Composer", "name");
  ix->join_index_attr = "name";
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*ix);
  EXPECT_EQ(t2.rows.size(), t1.rows.size());
}

TEST_F(ExecutorTest, UnionDedups) {
  PTPtr u = MakeUnion([&] {
    std::vector<PTPtr> v;
    v.push_back(ComposerScan());
    v.push_back(ComposerScan());
    return v;
  }());
  Executor exec(g_.db.get());
  Table t = exec.Execute(*u);
  EXPECT_EQ(t.rows.size(), 40u);
}

TEST_F(ExecutorTest, FixpointComputesTransitiveClosure) {
  // Influencer closure: (master, disciple) pairs over master chains.
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  PTPtr base = MakeProj(ComposerScan(),
                        {{"m", Expr::Path("x", {"master"})},
                         {"d", Expr::Path("x")}},
                        cols, true);
  PTPtr delta = MakeDelta("V", cols);
  PTPtr ej = MakeEJ(std::move(delta), ComposerScan("y"),
                    Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                    JoinAlgo::kNestedLoop);
  PTPtr rec = MakeProj(std::move(ej),
                       {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}}, cols,
                       true);
  PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
  Executor exec(g_.db.get());
  Table t = exec.Execute(*fix);
  // 5 lineages of depth 8: per lineage sum_{d=1..7} (8-d) = 28 pairs, plus
  // base tuples with null master are filtered neither here... base includes
  // (null, x) rows only as null values — Proj drops them (null expr yields
  // no row). So 5 * 28 = 140.
  EXPECT_EQ(t.rows.size(), 140u);
  // Base = distance-1 pairs; iterations 1..6 add distances 2..7; the 7th
  // produces nothing and terminates the loop.
  EXPECT_EQ(exec.counters().fix_iterations, 7u);
}

TEST_F(ExecutorTest, NaiveFixpointMatchesSemiNaive) {
  // Same closure, computed naively and semi-naively: identical results,
  // but the naive evaluation re-derives everything each round and costs
  // strictly more.
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  auto make_fix = [&](bool naive) {
    PTPtr base = MakeProj(ComposerScan(),
                          {{"m", Expr::Path("x", {"master"})},
                           {"d", Expr::Path("x")}},
                          cols, true);
    PTPtr delta = MakeDelta("V", cols);
    PTPtr ej = MakeEJ(std::move(delta), ComposerScan("y"),
                      Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                      JoinAlgo::kNestedLoop);
    PTPtr rec = MakeProj(std::move(ej),
                         {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}},
                         cols, true);
    PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
    fix->naive_fix = naive;
    return fix;
  };
  Executor e1(g_.db.get());
  e1.ResetMeasurement(true);
  Table semi = e1.Execute(*make_fix(false));
  const double semi_cost = e1.MeasuredCost();
  semi.Dedup();
  Executor e2(g_.db.get());
  e2.ResetMeasurement(true);
  Table naive = e2.Execute(*make_fix(true));
  const double naive_cost = e2.MeasuredCost();
  naive.Dedup();
  EXPECT_EQ(semi.rows, naive.rows);
  EXPECT_GT(naive_cost, semi_cost);
  // The cost model agrees on the ordering.
  Stats stats = Stats::Derive(*g_.db);
  CostModel model(g_.db.get(), &stats);
  PTPtr fs = make_fix(false);
  PTPtr fn = make_fix(true);
  fs->est_iters = fn->est_iters = 7;
  EXPECT_LT(model.Annotate(fs.get()), model.Annotate(fn.get()));
}

TEST_F(ExecutorTest, FixpointTerminatesOnCyclicData) {
  // Build a tiny cyclic database by hand: nodes in a ring via `next`.
  Schema schema;
  TypePool& types = schema.types();
  ClassDef* ring = schema.AddClass("Ring");
  schema.AddAttribute(ring, {"next", types.Object("Ring"), false, 0, "", ""});
  schema.AddAttribute(ring, {"tag", types.Int(), false, 0, "", ""});
  Database db(&schema);
  std::vector<Oid> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(db.NewObject("Ring"));
  for (int i = 0; i < 6; ++i) {
    db.Set(nodes[i], "next", Value::Ref(nodes[(i + 1) % 6]));
    db.Set(nodes[i], "tag", Value::Int(i));
  }
  db.Finalize(PhysicalConfig{});

  const ClassDef* ring_cls = schema.FindClass("Ring");
  std::vector<PTCol> cols = {{"a", ring_cls}, {"b", ring_cls}};
  PTPtr base = MakeProj(MakeEntity(EntityRef{"Ring", 0, 0}, "x", ring_cls),
                        {{"a", Expr::Path("x")},
                         {"b", Expr::Path("x", {"next"})}},
                        cols, true);
  PTPtr delta = MakeDelta("Reach", cols);
  PTPtr ej = MakeEJ(std::move(delta),
                    MakeEntity(EntityRef{"Ring", 0, 0}, "y", ring_cls),
                    Expr::Eq(Expr::Path("b"), Expr::Path("y")),
                    JoinAlgo::kNestedLoop);
  PTPtr rec = MakeProj(std::move(ej),
                       {{"a", Expr::Path("a")},
                        {"b", Expr::Path("y", {"next"})}},
                       cols, true);
  PTPtr fix = MakeFix("Reach", std::move(base), std::move(rec));
  Executor exec(&db);
  Table t = exec.Execute(*fix);
  // Full 6x6 reachability on the ring; the set-semantics accumulator
  // guarantees termination despite the cycle.
  EXPECT_EQ(t.rows.size(), 36u);
  EXPECT_LE(exec.counters().fix_iterations, 8u);
}

TEST_F(ExecutorTest, EmptyBaseFixpointIsEmpty) {
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  PTPtr base = MakeSel(ComposerScan(),
                       Expr::Eq(Expr::Path("x", {"name"}),
                                Expr::Lit(Value::Str("nobody"))));
  PTPtr base_proj = MakeProj(std::move(base),
                             {{"m", Expr::Path("x", {"master"})},
                              {"d", Expr::Path("x")}},
                             cols, true);
  PTPtr delta = MakeDelta("V", cols);
  PTPtr ej = MakeEJ(std::move(delta), ComposerScan("y"),
                    Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                    JoinAlgo::kNestedLoop);
  PTPtr rec = MakeProj(std::move(ej),
                       {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}},
                       cols, true);
  PTPtr fix = MakeFix("V", std::move(base_proj), std::move(rec));
  Executor exec(g_.db.get());
  Table t = exec.Execute(*fix);
  EXPECT_TRUE(t.rows.empty());
  EXPECT_EQ(exec.counters().fix_iterations, 0u);
}

TEST_F(ExecutorTest, ExistsSemanticsOverCollections) {
  // x.works.instruments.iname = "harpsichord" keeps a composer once even if
  // several works match.
  PTPtr s = MakeSel(ComposerScan(),
                    Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                             Expr::Lit(Value::Str("harpsichord"))));
  Executor exec(g_.db.get());
  Table t = exec.Execute(*s);
  std::set<uint32_t> slots;
  for (const Row& r : t.rows) slots.insert(r[0].AsRef().slot);
  EXPECT_EQ(slots.size(), t.rows.size());  // no duplicates
  // Cross-check with brute force.
  uint32_t expected = 0;
  for (uint32_t slot = 0; slot < 40; ++slot) {
    bool hit = false;
    const Value works = g_.db->GetRaw(Oid{composer_->id(), slot}, "works");
    for (const Value& w : works.AsCollection().elems) {
      const Value instrs = g_.db->GetRaw(w.AsRef(), "instruments");
      for (const Value& i : instrs.AsCollection().elems) {
        if (g_.db->GetRaw(i.AsRef(), "iname").AsString() == "harpsichord") {
          hit = true;
        }
      }
    }
    if (hit) ++expected;
  }
  EXPECT_EQ(t.rows.size(), expected);
}

TEST_F(ExecutorTest, MethodCallsChargedAndCounted) {
  PTPtr s = MakeSel(ComposerScan(),
                    Expr::Cmp(CompareOp::kGt, Expr::Path("x", {"age"}),
                              Expr::Lit(Value::Int(300))));
  Executor exec(g_.db.get());
  exec.Execute(*s);
  EXPECT_EQ(exec.counters().method_calls, 40u);
  EXPECT_GT(exec.counters().method_cost, 0.0);
  EXPECT_GT(exec.MeasuredCost(), 0.0);
}

TEST_F(ExecutorTest, MeasuredCostTracksBufferAndResets) {
  Executor exec(g_.db.get());
  exec.ResetMeasurement(true);
  exec.Execute(*ComposerScan());
  const double first = exec.MeasuredCost();
  EXPECT_GT(first, 0.0);
  exec.ResetMeasurement(false);  // warm buffer
  exec.Execute(*ComposerScan());
  EXPECT_LT(exec.MeasuredCost(), first);  // hits now
}

TEST_F(ExecutorTest, StreamingCursorSurvivesThreadCountChange) {
  // A partially-read cursor's engine holds a raw pointer to the executor's
  // worker pool; an intervening Execute with a different exec_threads must
  // not invalidate it (pools are retained per size for the executor's
  // lifetime). 200 rows with quantum 32 means the cursor still has several
  // morsel-parallel scan passes ahead of it when the second query runs.
  MusicConfig config;
  config.num_composers = 200;
  config.seed = 7;
  GeneratedDb big = GenerateMusicDb(config, PaperMusicPhysical());
  const ClassDef* composer = big.schema->FindClass("Composer");

  Executor exec(big.db.get());
  ExecOptions four;
  four.batch_rows = 8;
  four.exec_threads = 4;
  PTPtr scan = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer);
  ResultCursor cur = exec.ExecuteStream(*scan, four);
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));
  size_t streamed = batch.size();

  ExecOptions two;
  two.exec_threads = 2;
  PTPtr scan2 = MakeEntity(EntityRef{"Composer", 0, 0}, "y", composer);
  Table t = exec.Execute(*scan2, two);
  EXPECT_EQ(t.rows.size(), 200u);

  while (cur.Next(&batch)) streamed += batch.size();
  EXPECT_EQ(streamed, 200u);
}

TEST_F(ExecutorTest, EstimatedAndMeasuredCostAgreeInShape) {
  // For a scan-heavy plan the two costs should be within a small factor.
  Stats stats = Stats::Derive(*g_.db);
  CostModel model(g_.db.get(), &stats);
  PTPtr ij = MakeIJ(ComposerScan(), "x", "works", "w", composition_);
  const double est = model.Annotate(ij.get());
  Executor exec(g_.db.get());
  exec.ResetMeasurement(true);
  exec.Execute(*ij);
  const double meas = exec.MeasuredCost();
  EXPECT_GT(meas, 0.0);
  EXPECT_LT(std::max(est, meas) / std::min(est, meas), 5.0);
}

}  // namespace
}  // namespace rodin
