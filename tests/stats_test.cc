#include <gtest/gtest.h>

#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"

namespace rodin {
namespace {

TEST(StatsTest, EntityCountsMatchExtents) {
  MusicConfig config;
  config.num_composers = 50;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const Stats stats = Stats::Derive(*g.db);
  const EntityRef ref{"Composer", 0, 0};
  EXPECT_EQ(stats.Entity(ref).instances, 50u);
  EXPECT_EQ(stats.Entity(ref).pages,
            g.db->FindExtent("Composer")->ScanPages(0, 0).size());
  EXPECT_GE(stats.TuplesPerPage("Composer"), 1.0);
}

TEST(StatsTest, UnknownEntityGetsDefaults) {
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, PaperMusicPhysical());
  const Stats stats = Stats::Derive(*g.db);
  EXPECT_EQ(stats.Entity(EntityRef{"Nope", 0, 0}).instances, 0u);
  EXPECT_EQ(stats.Attr("Nope", "x").distinct, 1.0);
}

TEST(StatsTest, DistinctAndNullFraction) {
  GraphConfig config;
  config.num_nodes = 1000;
  config.chain_depth = 10;
  config.path_len = 0;
  config.num_labels = 7;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  const Stats stats = Stats::Derive(*g.db);
  const AttrStats& label = stats.Attr("Node", "label");
  EXPECT_EQ(label.distinct, 7.0);
  EXPECT_DOUBLE_EQ(label.null_frac, 0.0);
  // One node in ten starts a chain, so parent is null for 10%.
  const AttrStats& parent = stats.Attr("Node", "parent");
  EXPECT_NEAR(parent.null_frac, 0.1, 1e-9);
}

TEST(StatsTest, ChainDepthOfSelfReference) {
  GraphConfig config;
  config.num_nodes = 160;
  config.chain_depth = 16;
  config.path_len = 0;
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  const Stats stats = Stats::Derive(*g.db);
  const AttrStats& parent = stats.Attr("Node", "parent");
  EXPECT_DOUBLE_EQ(parent.chain_depth_max, 15.0);
  EXPECT_NEAR(parent.chain_depth_avg, 7.5, 0.01);
}

TEST(StatsTest, FanoutOfCollections) {
  MusicConfig config;
  config.num_composers = 100;
  config.works_per_composer_min = 4;
  config.works_per_composer_max = 4;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  const Stats stats = Stats::Derive(*g.db);
  EXPECT_DOUBLE_EQ(stats.Attr("Composer", "works").fanout, 4.0);
}

TEST(StatsTest, NumericMinMax) {
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, PaperMusicPhysical());
  const Stats stats = Stats::Derive(*g.db);
  const AttrStats& birth = stats.Attr("Composer", "birthyear");
  EXPECT_TRUE(birth.numeric);
  EXPECT_GE(birth.min_val, 1600);
  EXPECT_LE(birth.max_val, 1750);
  EXPECT_FALSE(stats.Attr("Composer", "name").numeric);
}

TEST(StatsTest, ClusteringColocationMeasured) {
  // With clustering on Composer.works, compositions land on their owner's
  // page; colocated_frac must be near 1 (clustered) vs near 0 (unclustered).
  MusicConfig config;
  config.num_composers = 200;
  PhysicalConfig plain = PaperMusicPhysical();
  GeneratedDb g1 = GenerateMusicDb(config, plain);
  const Stats s1 = Stats::Derive(*g1.db);
  EXPECT_LT(s1.Attr("Composer", "works").colocated_frac, 0.4);

  PhysicalConfig clustered = PaperMusicPhysical();
  clustered.clustering.push_back(ClusterSpec{"Composer", "works"});
  GeneratedDb g2 = GenerateMusicDb(config, clustered);
  const Stats s2 = Stats::Derive(*g2.db);
  EXPECT_GT(s2.Attr("Composer", "works").colocated_frac, 0.9);
}

TEST(StatsTest, HistogramBuiltForNumericAttributes) {
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, PaperMusicPhysical());
  const Stats stats = Stats::Derive(*g.db);
  const AttrStats& birth = stats.Attr("Composer", "birthyear");
  ASSERT_EQ(birth.hist.size(), kHistBuckets);
  double total = 0;
  for (double b : birth.hist) total += b;
  EXPECT_DOUBLE_EQ(total, 200.0);  // default num_composers
  // Non-numeric attributes get no histogram.
  EXPECT_TRUE(stats.Attr("Composer", "name").hist.empty());
}

TEST(StatsTest, FractionBelowOnSkewedData) {
  // Hand-built skew: 90 values at 1, 10 values spread up to 1000. Uniform
  // interpolation would claim ~1% below 11; the histogram knows better.
  Schema schema;
  ClassDef* c = schema.AddClass("C");
  schema.AddAttribute(c, {"v", schema.types().Int(), false, 0, "", ""});
  Database db(&schema);
  for (int i = 0; i < 90; ++i) {
    Oid o = db.NewObject("C");
    db.Set(o, "v", Value::Int(1));
  }
  for (int i = 1; i <= 10; ++i) {
    Oid o = db.NewObject("C");
    db.Set(o, "v", Value::Int(i * 100));
  }
  db.Finalize(PhysicalConfig{});
  const Stats stats = Stats::Derive(db);
  const AttrStats& v = stats.Attr("C", "v");
  EXPECT_GT(v.FractionBelow(90), 0.85);   // the 90 ones live in bucket 0
  EXPECT_LT(v.FractionBelow(90), 0.95);
  EXPECT_DOUBLE_EQ(v.FractionBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(v.FractionBelow(2000), 1.0);
  // Monotone.
  double prev = 0;
  for (double x = 0; x <= 1100; x += 50) {
    const double f = v.FractionBelow(x);
    EXPECT_GE(f, prev - 1e-12);
    prev = f;
  }
}

TEST(StatsTest, BufferPagesCarried) {
  PhysicalConfig config = PaperMusicPhysical();
  config.buffer_pages = 77;
  GeneratedDb g = GenerateMusicDb(MusicConfig{}, config);
  EXPECT_EQ(Stats::Derive(*g.db).buffer_pages(), 77u);
}

}  // namespace
}  // namespace rodin
