// Session facade tests: textual queries end to end, error propagation, and
// the symbolic Figure-7 walker.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/plan_cache.h"
#include "api/session.h"
#include "common/faults.h"
#include "cost/fig7.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  GeneratedDb g_;
};

TEST_F(SessionTest, RunEndToEnd) {
  Session session(g_.db.get());
  const QueryRun run = session.Run(
      R"(select [n: x.name] from x in Composer where x.name = "Bach")");
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_EQ(run.answer.rows.size(), 1u);
  EXPECT_EQ(run.answer.rows[0][0].AsString(), "Bach");
  EXPECT_FALSE(run.plan_text.empty());
  EXPECT_GE(run.measured_cost, 0);
}

TEST_F(SessionTest, RecursiveTextQuery) {
  Session session(g_.db.get());
  const QueryRun run = session.Run(R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [n: j.disciple.name] from j in Influencer where j.gen >= 5
)",
                                   QueryOptions{.cold = true});
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_FALSE(run.answer.rows.empty());
  EXPECT_GT(run.counters.fix_iterations, 0u);
  EXPECT_GT(run.measured_cost, 0);
}

TEST_F(SessionTest, ParseErrorsSurface) {
  Session session(g_.db.get());
  const QueryRun run = session.Run("select [n x.name] from x in Composer");
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kParse);
  // The offending source position rides along in the status.
  EXPECT_EQ(run.status.line, 1u);
  EXPECT_GT(run.status.col, 0u);
}

TEST_F(SessionTest, SemanticErrorsSurface) {
  Session session(g_.db.get());
  const QueryRun run = session.Run("select [n: x.bogus] from x in Composer");
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kSemantic);
}

TEST_F(SessionTest, OptionsRespected) {
  Session never(g_.db.get(), NaiveOptions());
  Session costed(g_.db.get(), CostBasedOptions());
  const QueryGraph q = Fig3Query(*g_.schema, 4);
  const QueryRun r1 = never.Run(q);
  const QueryRun r2 = costed.Run(q);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1.optimized.pushed_sel);
  Table a = r1.answer;
  Table b = r2.answer;
  a.Dedup();
  b.Dedup();
  EXPECT_EQ(a.rows, b.rows);
}

TEST_F(SessionTest, Fig7WalkerProducesPaperShapes) {
  Session session(g_.db.get(), NaiveOptions());
  OptimizeResult r = session.Optimize(Fig3Query(*g_.schema, 6));
  ASSERT_TRUE(r.ok());
  int t_counter = 0;
  const SymbolicCostTable table = DeriveSymbolicCosts(
      *r.plan, *g_.db, {{"Composer", "Cpr"}}, &t_counter);
  ASSERT_FALSE(table.rows.empty());
  // The Fix row carries the (n - 1) structure and the table evaluates to a
  // positive total consistent across repeated evaluation.
  bool has_fix_row = false;
  for (const SymbolicRow& row : table.rows) {
    EXPECT_FALSE(row.cost->ToString().empty());
    if (row.what.find("Fix(") != std::string::npos) {
      has_fix_row = true;
      EXPECT_NE(row.cost->ToString().find("n1"), std::string::npos);
      EXPECT_NE(row.cost->ToString().find("|Inf_i|"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_fix_row);
  const double total = table.EvalTotal();
  EXPECT_GT(total, 0);
  EXPECT_DOUBLE_EQ(total, table.EvalTotal());
  // The env binds the paper's constants.
  EXPECT_EQ(table.env.count("pr"), 1u);
  EXPECT_EQ(table.env.count("lev"), 1u);
  // PIJ rows (when the chosen plan uses the path index) follow the paper's
  // lev + lea/||C|| form; assert it on a hand-built PIJ plan to be
  // independent of the optimizer's access-path choice.
  const PathIndex* index =
      g_.db->FindPathIndex("Composer", {"works", "instruments"});
  ASSERT_NE(index, nullptr);
  const ClassDef* composer = g_.schema->FindClass("Composer");
  PTPtr pij = MakePIJ(
      MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer), "x",
      {"works", "instruments"}, {"w", "i"},
      {g_.schema->FindClass("Composition"), g_.schema->FindClass("Instrument")},
      index);
  session.cost_model().Annotate(pij.get());
  int t2 = 0;
  const SymbolicCostTable pij_table =
      DeriveSymbolicCosts(*pij, *g_.db, {{"Composer", "Cpr"}}, &t2);
  ASSERT_EQ(pij_table.rows.size(), 1u);
  EXPECT_NE(pij_table.rows[0].cost->ToString().find("lev + lea*1/||Cpr||"),
            std::string::npos);
}

TEST_F(SessionTest, ExplicitZeroKnobsAreInvalidArguments) {
  Session session(g_.db.get());
  const char* kQuery = R"(select [n: x.name] from x in Composer)";

  // Disengaged optionals inherit defaults and run fine.
  ASSERT_TRUE(session.Run(kQuery).ok());

  // An engaged 0 is taken literally and rejected with the typed code — it
  // is no longer a silent "inherit" sentinel.
  for (auto setter : {+[](QueryOptions* o) { o->exec_threads = 0; },
                      +[](QueryOptions* o) { o->batch_rows = 0; },
                      +[](QueryOptions* o) { o->search_threads = 0; }}) {
    QueryOptions options;
    setter(&options);
    const QueryRun run = session.Run(kQuery, options);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status.code, Status::Code::kInvalidArgument);
    const ExplainResult ex = session.Explain(kQuery, options);
    EXPECT_EQ(ex.status.code, Status::Code::kInvalidArgument);
    ResultCursor cursor = session.Query(kQuery, options);
    EXPECT_FALSE(cursor.ok());
    EXPECT_EQ(cursor.status().code, Status::Code::kInvalidArgument);
  }

  // Seed 0 is now a reachable, legal seed (it was the inherit sentinel).
  QueryOptions seeded;
  seeded.seed = 0;
  EXPECT_TRUE(session.Run(kQuery, seeded).ok());

  // Engaged non-zero values still work.
  QueryOptions tuned;
  tuned.exec_threads = 2;
  tuned.batch_rows = 16;
  tuned.search_threads = 2;
  EXPECT_TRUE(session.Run(kQuery, tuned).ok());
}

TEST_F(SessionTest, QueryRejectsCollectTrace) {
  Session session(g_.db.get());
  QueryOptions options;
  options.collect_trace = true;
  ResultCursor cursor =
      session.Query(R"(select [n: x.name] from x in Composer)", options);
  EXPECT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code, Status::Code::kInvalidArgument);
  // The same flag still works on the non-streaming paths.
  EXPECT_TRUE(
      session.Run(R"(select [n: x.name] from x in Composer)", options).ok());
}

TEST_F(SessionTest, EmptyClassQueriesReturnEmpty) {
  // A schema with an empty extent: queries run and return nothing.
  Schema schema;
  ClassDef* c = schema.AddClass("Empty");
  schema.AddAttribute(c, {"v", schema.types().Int(), false, 0, "", ""});
  Database db(&schema);
  db.Finalize(PhysicalConfig{});
  Session session(&db);
  const QueryRun run =
      session.Run("select [v: x.v] from x in Empty where x.v > 0");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_TRUE(run.answer.rows.empty());
}

// The multi-tenant embedding contract (the server's session pool relies on
// it): N threads, each with its own Session in shared-db mode, all pointed
// at ONE PlanCache over one Database. Every run must be bit-identical to a
// solo single-session run, and after the first optimization of each query
// the rest must be cache hits. Runs under TSan in CI.
TEST_F(SessionTest, ConcurrentSessionsShareOnePlanCache) {
  constexpr size_t kThreads = 6;
  constexpr size_t kRunsPerThread = 8;
  const std::vector<std::string> queries = {
      R"(select [n: x.name] from x in Composer where x.name = "Bach")",
      R"(select [n: x.name] from x in Composer)",
  };

  // Solo oracle: one private session, one run per query.
  std::vector<Table> expected;
  {
    Session solo(g_.db.get());
    for (const std::string& q : queries) {
      const QueryRun run = solo.Run(q);
      ASSERT_TRUE(run.ok()) << run.error();
      expected.push_back(run.answer);
    }
  }

  auto cache = std::make_shared<PlanCache>(/*capacity=*/16);
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(g_.db.get(), OptimizerOptions{}, CostParams{}, cache);
      session.set_shared_db(true);
      // Half the tenants go through PreparedQuery, half through raw text.
      std::vector<PreparedQuery> prepared;
      if (t % 2 == 0) {
        for (const std::string& q : queries) {
          prepared.push_back(session.Prepare(q));
        }
      }
      for (size_t i = 0; i < kRunsPerThread; ++i) {
        for (size_t q = 0; q < queries.size(); ++q) {
          const QueryRun run = prepared.empty() ? session.Run(queries[q])
                                                : prepared[q].Run();
          if (!run.ok()) {
            ++failures;
            continue;
          }
          if (run.answer.rows != expected[q].rows) ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  // Hit-rate accounting only holds when caching is actually live: under
  // RODIN_FAULTS the cache is bypassed entirely (no lookups, no inserts).
  if (PlanCacheEnabledByEnv() && !FaultInjector::Global().enabled()) {
    const PlanCacheStats stats = cache->stats();
    const uint64_t total = kThreads * kRunsPerThread * queries.size();
    // Each query is optimized at least once; everything else must hit.
    // Concurrent first runs may race to a miss each, so the bound is
    // per-thread, not per-query.
    EXPECT_GE(stats.hits + stats.misses, total);
    EXPECT_LE(stats.misses, kThreads * queries.size());
    EXPECT_GE(stats.hits, total - kThreads * queries.size());
    EXPECT_EQ(stats.evictions, 0u);
  }
}

}  // namespace
}  // namespace rodin
