// Contention stress for the parallel search, meant to run under
// ThreadSanitizer (cmake -DRODIN_SANITIZE=thread): tiny plans make each
// restart cheap, so with many restarts and 8 workers the best-plan
// accumulator, the atomic cost hint and the shared const trio
// (Database/Stats/CostModel) are hammered from every thread at once. The
// assertions double as a liveness check; the real oracle is TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/strategy.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

struct StressEnv {
  StressEnv() {
    MusicConfig config;
    config.num_composers = 30;  // tiny: restarts finish in microseconds
    config.lineage_depth = 4;
    db = GenerateMusicDb(config, PaperMusicPhysical());
    stats = std::make_unique<Stats>(Stats::Derive(*db.db));
    cost = std::make_unique<CostModel>(db.db.get(), stats.get());
  }
  GeneratedDb db;
  std::unique_ptr<Stats> stats;
  std::unique_ptr<CostModel> cost;
};

StressEnv& Env() {
  static StressEnv* env = new StressEnv();
  return *env;
}

/// A small spj with enough joins for the move set to fire.
QueryGraph SmallQuery(const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  node.Input("Composer", "x");
  node.Input("Composer", "y");
  node.Where(Expr::Eq(Expr::Path("x", {"master"}), Expr::Path("y", {})));
  node.Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("harpsichord"))));
  node.OutPath("n", "x", {"name"});
  return b.Build(schema);
}

TEST(ParallelStressTest, ManyRestartsEightWorkers) {
  StressEnv& env = Env();

  OptimizerOptions base = CostBasedOptions();
  base.transform.rand = RandStrategy::kNone;
  Optimizer opt(env.db.db.get(), env.stats.get(), env.cost.get(), base);
  OptimizeResult r = opt.Optimize(SmallQuery(*env.db.schema));
  ASSERT_TRUE(r.ok()) << r.status.ToString();

  // Cheap restarts in bulk: every restart finishes almost immediately, so
  // publications to the accumulator pile up and interleave.
  TransformOptions options;
  options.rand = RandStrategy::kIterativeImprovement;
  options.rand_restarts = 64;
  options.rand_moves = 12;
  options.rand_local_stop = 6;

  ParallelStrategy strategy(8);
  for (int repeat = 0; repeat < 4; ++repeat) {
    OptContext ctx;
    ctx.db = env.db.db.get();
    ctx.stats = env.stats.get();
    ctx.cost = env.cost.get();
    ctx.rng = Rng(100 + repeat);
    PTPtr plan = r.plan->Clone();
    env.cost->Annotate(plan.get());
    const double before = plan->est_cost;
    ParallelSearchReport report = strategy.Improve(plan, ctx, options);
    EXPECT_EQ(report.per_restart.size(), 65u);  // restart 0 + 64 perturbed
    EXPECT_LE(report.final_cost, before + 1e-9);
    EXPECT_EQ(plan->est_cost, report.final_cost);
  }
}

TEST(ParallelStressTest, ConcurrentStrategiesShareConstState) {
  // Two ParallelStrategy instances running at once over the same const
  // Database/Stats/CostModel: catches any hidden mutable state in the
  // shared trio (the historical offender was a lazily-filled memo inside
  // CostModel::Annotate).
  StressEnv& env = Env();
  OptimizerOptions base = CostBasedOptions();
  base.transform.rand = RandStrategy::kNone;
  Optimizer opt(env.db.db.get(), env.stats.get(), env.cost.get(), base);
  OptimizeResult seedplan = opt.Optimize(Fig3Query(*env.db.schema, 4));
  ASSERT_TRUE(seedplan.ok()) << seedplan.status.ToString();

  TransformOptions options;
  options.rand = RandStrategy::kIterativeImprovement;
  options.rand_restarts = 16;
  options.rand_moves = 20;
  options.rand_local_stop = 8;

  ThreadPool outer(4);
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&env, &seedplan, &options, &failures, i] {
      OptContext ctx;
      ctx.db = env.db.db.get();
      ctx.stats = env.stats.get();
      ctx.cost = env.cost.get();
      ctx.rng = Rng(500 + i);
      PTPtr plan = seedplan.plan->Clone();
      env.cost->Annotate(plan.get());
      ParallelStrategy inner(4);
      ParallelSearchReport report = inner.Improve(plan, ctx, options);
      if (report.per_restart.size() != 17) failures.fetch_add(1);
      if (plan->est_cost != report.final_cost) failures.fetch_add(1);
    });
  }
  outer.Wait();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelStressTest, BatchedExecutorManyThreads) {
  // Morsel-parallel execution under contention: 8 workers over a recursive
  // plan hammer the buffer pool's spinlock-guarded fetch path (charge
  // replay), the shared const Database, and the pool's submit/wait cycle
  // once per operator pass per Fix iteration. Interleaved with a second
  // executor on another thread so two worker pools coexist. The answer
  // check doubles as liveness; the real oracle is TSan.
  StressEnv& env = Env();
  OptimizerOptions base = CostBasedOptions();
  Optimizer opt(env.db.db.get(), env.stats.get(), env.cost.get(), base);
  OptimizeResult plan = opt.Optimize(Fig3Query(*env.db.schema, 4));
  ASSERT_TRUE(plan.ok()) << plan.status.ToString();

  Executor reference(env.db.db.get());
  reference.ResetMeasurement(true);
  ExecOptions legacy;
  legacy.use_legacy = true;
  const Table want = reference.Execute(*plan.plan, legacy);

  // Construct + cold-reset serially: ResetMeasurement mutates the shared
  // buffer pool, which is a single-session operation (measured cost on a
  // shared pool is only meaningful for one session at a time). Only the
  // Execute calls — whose pool traffic goes through the guarded fetch
  // path — run concurrently.
  std::vector<std::unique_ptr<Executor>> execs;
  for (int i = 0; i < 2; ++i) {
    execs.push_back(std::make_unique<Executor>(env.db.db.get()));
    execs.back()->ResetMeasurement(true);
  }
  ThreadPool outer(2);
  std::atomic<int> failures{0};
  for (int i = 0; i < 2; ++i) {
    Executor* exec = execs[static_cast<size_t>(i)].get();
    outer.Submit([exec, &plan, &want, &failures, i] {
      for (int round = 0; round < 6; ++round) {
        ExecOptions options;
        options.exec_threads = 8;
        options.batch_rows = 1 + (i * 6 + round) % 16;
        const Table got = exec->Execute(*plan.plan, options);
        if (got.rows.size() != want.rows.size()) failures.fetch_add(1);
      }
    });
  }
  outer.Wait();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelStressTest, ThreadPoolChurn) {
  // Rapid construct/submit/destroy cycles: destructor-vs-worker races.
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(1 + round % 8);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    if (round % 2 == 0) pool.Wait();  // odd rounds drain in the destructor
  }
  EXPECT_EQ(total.load(), 20 * 32);
}

}  // namespace
}  // namespace rodin
