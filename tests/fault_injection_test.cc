// Fault injection (RODIN_FAULTS / FaultInjector): config parsing, the
// forced-deadline hooks, and the headline robustness guarantee — a run that
// hits an injected transient fault retries and finishes with an answer,
// counters and measured cost bit-identical to a run that never faulted.
//
// The injector is process-global, so every test configures it explicitly in
// SetUp and disables it again in TearDown: nothing here depends on (or
// leaks into) the RODIN_FAULTS environment of the surrounding ctest run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.h"
#include "common/faults.h"
#include "datagen/music_gen.h"

namespace rodin {
namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

void ExpectSameCounters(const ExecCounters& a, const ExecCounters& b) {
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.method_calls, b.method_calls);
  EXPECT_EQ(a.method_cost, b.method_cost);
  EXPECT_EQ(a.rows_produced, b.rows_produced);
  EXPECT_EQ(a.fix_iterations, b.fix_iterations);
}

GeneratedDb MakeDb() {
  MusicConfig config;
  config.num_composers = 40;
  config.lineage_depth = 8;
  return GenerateMusicDb(config, PaperMusicPhysical());
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Configure(FaultConfig{});  // disabled
    g_ = MakeDb();
  }
  void TearDown() override {
    FaultInjector::Global().Configure(FaultConfig{});
  }
  GeneratedDb g_;
};

TEST_F(FaultInjectionTest, ParseEnvValueGrammar) {
  EXPECT_FALSE(FaultInjector::ParseEnvValue("").enabled);
  EXPECT_FALSE(FaultInjector::ParseEnvValue("0").enabled);

  const FaultConfig defaults = FaultInjector::ParseEnvValue("1");
  EXPECT_TRUE(defaults.enabled);
  EXPECT_DOUBLE_EQ(defaults.page_fetch_fail, 0.01);
  EXPECT_DOUBLE_EQ(defaults.alloc_fail, 0.005);
  EXPECT_EQ(defaults.max_faults, 0u);
  EXPECT_EQ(defaults.force_deadline_stage, -1);
  EXPECT_EQ(defaults.force_deadline_fix_iter, -1);

  const FaultConfig custom = FaultInjector::ParseEnvValue(
      "page_fetch=0.5,alloc=0.25,seed=7,max=3,stage=2,fix_iter=4");
  EXPECT_TRUE(custom.enabled);
  EXPECT_DOUBLE_EQ(custom.page_fetch_fail, 0.5);
  EXPECT_DOUBLE_EQ(custom.alloc_fail, 0.25);
  EXPECT_EQ(custom.seed, 7u);
  EXPECT_EQ(custom.max_faults, 3u);
  EXPECT_EQ(custom.force_deadline_stage, 2);
  EXPECT_EQ(custom.force_deadline_fix_iter, 4);
}

TEST_F(FaultInjectionTest, RetriedPageFetchFaultIsBitIdenticalToCleanRun) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun clean = session.Run(kFig3Text, options);
  ASSERT_TRUE(clean.ok()) << clean.error();

  // Exactly one guaranteed fault, then the cap stops injection: the first
  // attempt aborts with kFault, the retry runs clean, and nothing about the
  // surviving attempt may differ from a run that never faulted.
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun retried = session.Run(kFig3Text, options);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(retried.plan_text, clean.plan_text);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  ExpectSameCounters(retried.counters, clean.counters);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

TEST_F(FaultInjectionTest, RetriedFaultUnderCompiledEvalIsBitIdenticalToCleanRun) {
  // Same headline guarantee with the bytecode VM engaged: the faulted
  // attempt's partial work is discarded and the surviving compiled retry
  // matches a clean *interpreted* run bit for bit — the retry path reuses
  // the same chunks and the same deferred-charge replay, so nothing about
  // the eval engine may leak into the accounting.
  Session session(g_.db.get());
  QueryOptions interp;
  interp.cold = true;
  interp.compiled_eval = false;
  const QueryRun clean = session.Run(kFig3Text, interp);
  ASSERT_TRUE(clean.ok()) << clean.error();

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  QueryOptions compiled = interp;
  compiled.compiled_eval = true;
  const QueryRun retried = session.Run(kFig3Text, compiled);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(retried.plan_text, clean.plan_text);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  ExpectSameCounters(retried.counters, clean.counters);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

TEST_F(FaultInjectionTest, RetriedAllocFaultUnderCompiledEvalIsBitIdentical) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.compiled_eval = true;
  const QueryRun clean = session.Run(kFig3Text, options);
  ASSERT_TRUE(clean.ok()) << clean.error();

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 1.0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun retried = session.Run(kFig3Text, options);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  ExpectSameCounters(retried.counters, clean.counters);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

TEST_F(FaultInjectionTest, RetriedAllocFaultIsBitIdenticalToCleanRun) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun clean = session.Run(kFig3Text, options);
  ASSERT_TRUE(clean.ok()) << clean.error();

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 1.0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun retried = session.Run(kFig3Text, options);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  ExpectSameCounters(retried.counters, clean.counters);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

TEST_F(FaultInjectionTest, WarmRunRetryRestoresResidentSet) {
  // Two identical databases: prime both pools with the same run, then
  // measure a warm run on each — one clean, one with a forced fault. The
  // retry restores the pre-attempt resident set, so the warm hit/miss
  // pattern (and with it the measured cost) is attempt-invariant.
  GeneratedDb g2 = MakeDb();
  Session s1(g_.db.get());
  Session s2(g2.db.get());
  QueryOptions prime;
  prime.cold = true;
  ASSERT_TRUE(s1.Run(kFig3Text, prime).ok());
  ASSERT_TRUE(s2.Run(kFig3Text, prime).ok());

  QueryOptions warm;  // cold = false: resident pages carry over
  const QueryRun clean = s1.Run(kFig3Text, warm);
  ASSERT_TRUE(clean.ok()) << clean.error();

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun retried = s2.Run(kFig3Text, warm);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  ExpectSameCounters(retried.counters, clean.counters);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

TEST_F(FaultInjectionTest, ForcedDeadlineAtEarlyStageFailsTheRun) {
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_stage = 2;
  FaultInjector::Global().Configure(fc);

  Session session(g_.db.get());
  const QueryRun run = session.Run(kFig3Text, {});
  ASSERT_FALSE(run.ok());
  // Stages 1-3 are all-or-nothing: no plan exists yet, so a forced budget
  // trip there is a hard kDeadlineExceeded, never retried (not a kFault).
  EXPECT_EQ(run.status.code, Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(run.answer.rows.empty());
}

TEST_F(FaultInjectionTest, ForcedDeadlineAtStageFourDegradesToAnytimePlan) {
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_stage = 4;
  FaultInjector::Global().Configure(fc);

  // At the transformPT boundary a costed plan already exists, so the forced
  // deadline degrades to an anytime truncation instead of an error, and
  // EXPLAIN renders the stage-report flag.
  Session session(g_.db.get());
  QueryOptions options;
  options.explain_only = true;
  const ExplainResult ex = session.Explain(kFig3Text, options);
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  ASSERT_FALSE(ex.stages.empty());
  EXPECT_TRUE(ex.stages.back().truncated);
  EXPECT_NE(ex.ToString().find("[truncated: budget hit]"), std::string::npos);
}

TEST_F(FaultInjectionTest, ForcedDeadlineInsideSemiNaiveFixpoint) {
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_fix_iter = 2;
  FaultInjector::Global().Configure(fc);

  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kDeadlineExceeded)
      << run.status.ToString();
  EXPECT_TRUE(run.answer.rows.empty());
  // The abort happened mid-fixpoint: at least one iteration ran first.
  EXPECT_GE(run.counters.fix_iterations, 1u);
}

TEST_F(FaultInjectionTest, RetriedRunsNeverTouchThePlanCache) {
  // With the injector enabled the session bypasses its plan cache — no
  // lookups, no inserts — so the cache-hit rate on retried attempts is 0%
  // by construction. This is the programmatic form of the RODIN_FAULTS=1
  // CI assertion.
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun first = session.Run(kFig3Text, options);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);

  // Re-arm and run the identical query again: still no cache traffic.
  FaultInjector::Global().Configure(fc);
  const QueryRun second = session.Run(kFig3Text, options);
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_FALSE(first.plan_cached);
  EXPECT_FALSE(second.plan_cached);
  const PlanCacheStats stats = session.plan_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(session.plan_cache().size(), 0u);
}

TEST_F(FaultInjectionTest, RetryRefusedWhileStreamingCursorIsLive) {
  // The retry path snapshots/restores the buffer pool's resident set; a
  // live cursor's deferred charge replay must never interleave with that
  // (BufferPool's debug guard aborts on the race). The session enforces it
  // at the API boundary: with the injector enabled, Run/Explain refuse
  // while this session has un-finalized streaming cursors. This test runs
  // under TSan in CI — the refusal means there is no snapshot/replay
  // interleaving to race on.
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));  // live: started but not drained
  EXPECT_EQ(session.live_streams(), 1u);

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  const QueryRun refused = session.Run(kFig3Text, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 0u);

  // Draining the cursor finalizes it; the retryable path opens up again.
  cur.Finish();
  EXPECT_EQ(session.live_streams(), 0u);
  const QueryRun allowed = session.Run(kFig3Text, options);
  ASSERT_TRUE(allowed.ok()) << allowed.status.ToString();

  // Without the injector there is no snapshot/restore, so streaming and
  // materialized runs interleave freely (as before).
  FaultInjector::Global().Configure(FaultConfig{});
  ResultCursor cur2 = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur2.ok());
  ASSERT_TRUE(cur2.Next(&batch));
  EXPECT_TRUE(session.Run(kFig3Text, options).ok());
  cur2.Finish();
}

TEST_F(FaultInjectionTest, AbandonedCursorReleasesLiveStreamCount) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  {
    ResultCursor cur = session.Query(kFig3Text, options);
    ASSERT_TRUE(cur.ok());
    RowBatch batch;
    ASSERT_TRUE(cur.Next(&batch));
    EXPECT_EQ(session.live_streams(), 1u);
    // Dropped mid-stream: destruction finalizes the accounting.
  }
  EXPECT_EQ(session.live_streams(), 0u);
}

TEST_F(FaultInjectionTest, StreamingNeverInjects) {
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;  // would fault every batch if consulted
  fc.alloc_fail = 1.0;
  FaultInjector::Global().Configure(fc);

  // Streaming cursors opt out of injection (a half-consumed stream cannot
  // be transparently retried), so even a certain-fault config is inert.
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  const Table streamed = cur.ToTable();
  EXPECT_TRUE(cur.ok()) << cur.status().ToString();
  EXPECT_FALSE(streamed.rows.empty());
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 0u);
}

}  // namespace
}  // namespace rodin
