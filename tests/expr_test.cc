#include <gtest/gtest.h>

#include "query/expr.h"

namespace rodin {
namespace {

TEST(ExprTest, FactoriesAndToString) {
  ExprPtr e = Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));
  EXPECT_EQ(e->ToString(), "(x.name = \"Bach\")");
  ExprPtr n = Expr::Not(e);
  EXPECT_EQ(n->ToString(), "not (x.name = \"Bach\")");
  ExprPtr a = Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                          Expr::Lit(Value::Int(1)));
  EXPECT_EQ(a->ToString(), "(i.gen + 1)");
}

TEST(ExprTest, AndFlattensOnConjuncts) {
  ExprPtr c1 = Expr::Eq(Expr::Path("x"), Expr::Lit(Value::Int(1)));
  ExprPtr c2 = Expr::Eq(Expr::Path("y"), Expr::Lit(Value::Int(2)));
  ExprPtr c3 = Expr::Eq(Expr::Path("z"), Expr::Lit(Value::Int(3)));
  ExprPtr nested = Expr::And({Expr::And({c1, c2}), c3});
  const std::vector<ExprPtr> conj = nested->Conjuncts();
  ASSERT_EQ(conj.size(), 3u);
  EXPECT_TRUE(conj[0]->Equals(*c1));
  EXPECT_TRUE(conj[2]->Equals(*c3));
}

TEST(ExprTest, SingletonAndCollapses) {
  ExprPtr c1 = Expr::Eq(Expr::Path("x"), Expr::Lit(Value::Int(1)));
  EXPECT_EQ(Expr::And({c1}), c1);
  EXPECT_EQ(ConjunctionOf({}), nullptr);
}

TEST(ExprTest, NonAndIsItsOwnConjunct) {
  ExprPtr e = Expr::Or({Expr::Eq(Expr::Path("x"), Expr::Lit(Value::Int(1))),
                        Expr::Eq(Expr::Path("y"), Expr::Lit(Value::Int(2)))});
  EXPECT_EQ(e->Conjuncts().size(), 1u);
}

TEST(ExprTest, FreeVars) {
  ExprPtr e = Expr::And(
      {Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})),
       Expr::Cmp(CompareOp::kGe, Expr::Path("i", {"gen"}),
                 Expr::Lit(Value::Int(6)))});
  const std::set<std::string> vars = e->FreeVars();
  EXPECT_EQ(vars, (std::set<std::string>{"i", "x"}));
}

TEST(ExprTest, VarPathsCollectsAllOccurrences) {
  ExprPtr e = Expr::And(
      {Expr::Eq(Expr::Path("x", {"a", "b"}), Expr::Lit(Value::Int(1))),
       Expr::Eq(Expr::Path("x", {"a", "c"}), Expr::Path("y"))});
  const auto paths = e->VarPaths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].first, "x");
  EXPECT_EQ(paths[0].second, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(paths[2].first, "y");
  EXPECT_TRUE(paths[2].second.empty());
}

TEST(ExprTest, RenameVar) {
  ExprPtr e = Expr::Eq(Expr::Path("x", {"name"}), Expr::Path("y", {"name"}));
  ExprPtr r = e->RenameVar("x", "z");
  EXPECT_EQ(r->ToString(), "(z.name = y.name)");
  // Original untouched (immutability).
  EXPECT_EQ(e->ToString(), "(x.name = y.name)");
}

TEST(ExprTest, PrependPath) {
  ExprPtr e = Expr::Eq(Expr::Path("j", {"iname"}), Expr::Lit(Value::Str("h")));
  ExprPtr p = e->PrependPath("j", {"master", "works"});
  EXPECT_EQ(p->ToString(), "(j.master.works.iname = \"h\")");
}

TEST(ExprTest, RebaseStep) {
  ExprPtr e = Expr::Eq(Expr::Path("j", {"master", "name"}),
                       Expr::Lit(Value::Str("x")));
  ExprPtr r = e->RebaseStep("j", "master", "v1");
  EXPECT_EQ(r->ToString(), "(v1.name = \"x\")");
  // Paths not starting with the attribute are untouched.
  ExprPtr u = e->RebaseStep("j", "other", "v1");
  EXPECT_TRUE(u->Equals(*e));
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = Expr::Cmp(CompareOp::kLt, Expr::Path("x", {"v"}),
                        Expr::Lit(Value::Int(3)));
  ExprPtr b = Expr::Cmp(CompareOp::kLt, Expr::Path("x", {"v"}),
                        Expr::Lit(Value::Int(3)));
  ExprPtr c = Expr::Cmp(CompareOp::kLe, Expr::Path("x", {"v"}),
                        Expr::Lit(Value::Int(3)));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*Expr::Lit(Value::Int(3))));
}

TEST(ExprTest, CompareOpNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "!=");
  EXPECT_STREQ(CompareOpName(CompareOp::kGe), ">=");
}

TEST(ExprDeathTest, EmptyVarAborts) {
  EXPECT_DEATH(Expr::Path("", {}), "variable");
}

TEST(ExprDeathTest, NullOperandsAbort) {
  EXPECT_DEATH(Expr::Cmp(CompareOp::kEq, nullptr, Expr::Lit(Value::Int(1))),
               "null");
  EXPECT_DEATH(Expr::Not(nullptr), "null");
}

}  // namespace
}  // namespace rodin
