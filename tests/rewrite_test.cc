// Rewrite-stage tests: union/fixpoint recognition, linearity validation,
// topological ordering, and the fold action for non-recursive views.

#include <gtest/gtest.h>

#include "datagen/music_gen.h"
#include "optimizer/rewrite.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 20;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  const Schema& schema() { return *g_.schema; }
  GeneratedDb g_;
};

TEST_F(RewriteTest, Fig3SplitsBaseAndRecursive) {
  const QueryGraph q = Fig3Query(schema());
  const RewrittenGraph r = Rewrite(q, schema());
  ASSERT_TRUE(r.ok());
  const ViewDef* inf = r.FindView("Influencer");
  ASSERT_NE(inf, nullptr);
  EXPECT_TRUE(inf->recursive);
  EXPECT_EQ(inf->base.size(), 1u);
  EXPECT_EQ(inf->rec.size(), 1u);
  EXPECT_EQ(inf->columns,
            (std::vector<std::string>{"master", "disciple", "gen"}));
  const ViewDef* ans = r.FindView("Answer");
  ASSERT_NE(ans, nullptr);
  EXPECT_FALSE(ans->recursive);
}

TEST_F(RewriteTest, TopologicalOrderPutsDependenciesFirst) {
  const QueryGraph q = Fig3Query(schema());
  const RewrittenGraph r = Rewrite(q, schema());
  ASSERT_EQ(r.views.size(), 2u);
  EXPECT_EQ(r.views[0].name, "Influencer");
  EXPECT_EQ(r.views[1].name, "Answer");
}

TEST_F(RewriteTest, NonLinearRecursionRejected) {
  // A rule joining the view with itself twice.
  QueryGraphBuilder b;
  b.Node("V", "base").Input("Composer", "x").OutPath("c", "x");
  b.Node("V", "rec")
      .Input("V", "a")
      .Input("V", "b")
      .Where(Expr::Eq(Expr::Path("a", {"c"}), Expr::Path("b", {"c"})))
      .OutPath("c", "a", {"c"});
  b.Node("Answer").Input("V", "v").OutPath("c", "v", {"c"});
  const QueryGraph q = b.BuildUnchecked();
  const RewrittenGraph r = Rewrite(q, schema());
  EXPECT_FALSE(r.ok());
}

TEST_F(RewriteTest, RecursiveViewWithoutBaseRejected) {
  QueryGraphBuilder b;
  b.Node("V", "rec")
      .Input("V", "a")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("a", {"c"}), Expr::Path("x", {"master"})))
      .OutPath("c", "x");
  b.Node("Answer").Input("V", "v").OutPath("c", "v", {"c"});
  const RewrittenGraph r = Rewrite(b.BuildUnchecked(), schema());
  EXPECT_FALSE(r.ok());
}

TEST_F(RewriteTest, MutualRecursionRejected) {
  QueryGraphBuilder b;
  b.Node("A", "a0").Input("Composer", "x").OutPath("c", "x");
  b.Node("A", "a1").Input("B", "b").OutPath("c", "b", {"c"});
  b.Node("B", "b0").Input("A", "a").OutPath("c", "a", {"c"});
  b.Node("Answer").Input("A", "v").OutPath("c", "v", {"c"});
  const RewrittenGraph r = Rewrite(b.BuildUnchecked(), schema());
  EXPECT_FALSE(r.ok());
}

TEST_F(RewriteTest, FoldInlinesNonRecursiveView) {
  // Bachs = selection view over Composer; Answer reads it.
  QueryGraphBuilder b;
  b.Node("Bachs")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("c", "x")
      .OutPath("born", "x", {"birthyear"});
  b.Node("Answer")
      .Input("Bachs", "v")
      .Where(Expr::Cmp(CompareOp::kGt, Expr::Path("v", {"born"}),
                       Expr::Lit(Value::Int(1600))))
      .OutPath("n", "v", {"c", "name"});
  const QueryGraph q = b.Build(schema());
  const QueryGraph folded = FoldViews(q, schema());
  ASSERT_EQ(folded.nodes.size(), 1u);
  const PredicateNode& node = folded.nodes[0];
  EXPECT_EQ(node.output, "Answer");
  ASSERT_EQ(node.inputs.size(), 1u);
  EXPECT_EQ(node.inputs[0].name, "Composer");
  EXPECT_EQ(node.inputs[0].var, "v_x");
  // Both predicates present, rewritten onto the renamed variable.
  const std::string pred = node.pred->ToString();
  EXPECT_NE(pred.find("v_x.birthyear"), std::string::npos);
  EXPECT_NE(pred.find("v_x.name"), std::string::npos);
  // Folded graph still validates.
  EXPECT_TRUE(folded.Validate(schema()).empty());
}

TEST_F(RewriteTest, FoldSkipsRecursiveViews) {
  const QueryGraph q = Fig3Query(schema());
  const QueryGraph folded = FoldViews(q, schema());
  EXPECT_EQ(folded.nodes.size(), q.nodes.size());
}

TEST_F(RewriteTest, FoldThroughRewriteOption) {
  QueryGraphBuilder b;
  b.Node("V").Input("Composer", "x").OutPath("c", "x");
  b.Node("Answer").Input("V", "v").OutPath("n", "v", {"c", "name"});
  const QueryGraph q = b.Build(schema());
  const RewrittenGraph r = Rewrite(q, schema(), /*fold_views=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.views.size(), 1u);
  EXPECT_EQ(r.views[0].name, "Answer");
}

TEST_F(RewriteTest, UnionOfTwoBaseRules) {
  // V produced by two non-recursive rules: both land in `base`.
  QueryGraphBuilder b;
  b.Node("V", "r1")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("c", "x");
  b.Node("V", "r2")
      .Input("Composer", "y")
      .Where(Expr::Eq(Expr::Path("y", {"name"}),
                      Expr::Lit(Value::Str("composer_1"))))
      .OutPath("c", "y");
  b.Node("Answer").Input("V", "v").OutPath("n", "v", {"c", "name"});
  const RewrittenGraph r = Rewrite(b.Build(schema()), schema());
  ASSERT_TRUE(r.ok());
  const ViewDef* v = r.FindView("V");
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->recursive);
  EXPECT_EQ(v->base.size(), 2u);
}

}  // namespace
}  // namespace rodin
