// Determinism contract of the parallel randomized search (ParallelStrategy):
//
//   1. The same (seed, thread count) always chooses the same plan.
//   2. The chosen plan is identical across *thread counts* — a 1-thread and
//      an N-thread search explore the same per-restart move streams, because
//      restarts draw from index-derived RNG streams, never from worker or
//      completion order. The per-restart reports (move digests included)
//      must match element-wise.
//
// Both properties hold for Iterative Improvement and Simulated Annealing,
// at the strategy level and end-to-end through Optimizer::search_threads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/strategy.h"
#include "plan/pt.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

struct SearchEnv {
  SearchEnv() {
    MusicConfig config;
    config.num_composers = 120;
    config.lineage_depth = 8;
    db = GenerateMusicDb(config, PaperMusicPhysical());
    stats = std::make_unique<Stats>(Stats::Derive(*db.db));
    cost = std::make_unique<CostModel>(db.db.get(), stats.get());

    // A costed starting plan with a real neighbourhood: the Figure 3
    // recursive query, optimized without the randomized phase.
    OptimizerOptions options = CostBasedOptions();
    options.transform.rand = RandStrategy::kNone;
    Optimizer opt(db.db.get(), stats.get(), cost.get(), options);
    OptimizeResult r = opt.Optimize(Fig3Query(*db.schema, 5));
    RODIN_CHECK(r.ok(), r.status.message.c_str());
    origin = std::move(r.plan);
  }

  GeneratedDb db;
  std::unique_ptr<Stats> stats;
  std::unique_ptr<CostModel> cost;
  PTPtr origin;
};

SearchEnv& Env() {
  static SearchEnv* env = new SearchEnv();
  return *env;
}

struct SearchOutcome {
  ParallelSearchReport report;
  std::string fingerprint;
  double cost = 0;
};

SearchOutcome RunSearch(size_t threads, uint64_t seed, RandStrategy rand,
                        size_t restarts = 6) {
  SearchEnv& env = Env();
  OptContext ctx;
  ctx.db = env.db.db.get();
  ctx.stats = env.stats.get();
  ctx.cost = env.cost.get();
  ctx.rng = Rng(seed);

  TransformOptions options;
  options.rand = rand;
  options.rand_restarts = restarts;
  options.rand_moves = 120;
  options.rand_local_stop = 25;

  PTPtr plan = env.origin->Clone();
  env.cost->Annotate(plan.get());

  ParallelStrategy strategy(threads);
  SearchOutcome out;
  out.report = strategy.Improve(plan, ctx, options);
  out.fingerprint = plan->Fingerprint();
  out.cost = plan->est_cost;
  return out;
}

void ExpectSameOutcome(const SearchOutcome& a, const SearchOutcome& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.cost, b.cost);  // bitwise: same arithmetic, same plan
  EXPECT_EQ(a.report.final_cost, b.report.final_cost);
  EXPECT_EQ(a.report.best_restart, b.report.best_restart);
  EXPECT_EQ(a.report.tried, b.report.tried);
  EXPECT_EQ(a.report.accepted, b.report.accepted);
  EXPECT_EQ(a.report.plans_explored, b.report.plans_explored);
  ASSERT_EQ(a.report.per_restart.size(), b.report.per_restart.size());
  for (size_t r = 0; r < a.report.per_restart.size(); ++r) {
    const RestartReport& ra = a.report.per_restart[r];
    const RestartReport& rb = b.report.per_restart[r];
    EXPECT_EQ(ra.move_digest, rb.move_digest) << "restart " << r;
    EXPECT_EQ(ra.tried, rb.tried) << "restart " << r;
    EXPECT_EQ(ra.accepted, rb.accepted) << "restart " << r;
    EXPECT_EQ(ra.plans_explored, rb.plans_explored) << "restart " << r;
    EXPECT_EQ(ra.start_cost, rb.start_cost) << "restart " << r;
    EXPECT_EQ(ra.final_cost, rb.final_cost) << "restart " << r;
  }
}

TEST(ParallelSearchDeterminism, SameSeedSameThreadsSamePlan) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SearchOutcome first = RunSearch(4, seed, RandStrategy::kIterativeImprovement);
    SearchOutcome second =
        RunSearch(4, seed, RandStrategy::kIterativeImprovement);
    ExpectSameOutcome(first, second);
  }
}

TEST(ParallelSearchDeterminism, PlanInvariantAcrossThreadCounts) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SearchOutcome reference =
        RunSearch(1, seed, RandStrategy::kIterativeImprovement);
    for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
      SearchOutcome parallel =
          RunSearch(threads, seed, RandStrategy::kIterativeImprovement);
      EXPECT_EQ(parallel.report.threads, threads);
      ExpectSameOutcome(reference, parallel);
    }
  }
}

TEST(ParallelSearchDeterminism, MoveStreamsMatchPerRestart) {
  // The stronger property behind thread-count invariance: every restart
  // replays the identical move stream (names + accept bits) regardless of
  // the worker count. The order-sensitive digests prove it.
  // rand_restarts = 8 means restart 0 (the unperturbed start) plus 8
  // perturbed restarts: 9 index-keyed report slots.
  SearchOutcome seq = RunSearch(1, 11, RandStrategy::kIterativeImprovement, 8);
  SearchOutcome par = RunSearch(4, 11, RandStrategy::kIterativeImprovement, 8);
  ASSERT_EQ(seq.report.per_restart.size(), 9u);
  ASSERT_EQ(par.report.per_restart.size(), 9u);
  for (size_t r = 0; r < 9; ++r) {
    EXPECT_EQ(seq.report.per_restart[r].move_digest,
              par.report.per_restart[r].move_digest)
        << "restart " << r << " diverged between 1 and 4 threads";
  }
  // Restarts genuinely explore (the digest is of a non-empty stream).
  size_t restarts_with_moves = 0;
  for (const RestartReport& r : seq.report.per_restart) {
    if (r.tried > 0) ++restarts_with_moves;
  }
  EXPECT_GT(restarts_with_moves, 0u);
}

TEST(ParallelSearchDeterminism, SimulatedAnnealingInvariantToo) {
  SearchOutcome reference =
      RunSearch(1, 5, RandStrategy::kSimulatedAnnealing);
  SearchOutcome parallel = RunSearch(4, 5, RandStrategy::kSimulatedAnnealing);
  ExpectSameOutcome(reference, parallel);
}

TEST(ParallelSearchDeterminism, SearchNeverWorsensThePlan) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SearchOutcome out = RunSearch(4, seed, RandStrategy::kIterativeImprovement);
    EXPECT_LE(out.report.final_cost, out.report.initial_cost + 1e-9)
        << "seed " << seed;
    EXPECT_EQ(out.cost, out.report.final_cost) << "seed " << seed;
  }
}

TEST(ParallelSearchDeterminism, EndToEndOptimizerInvariant) {
  // The same contract through the public surface: OptimizerOptions /
  // opts.search_threads must not change the chosen plan or its cost.
  SearchEnv& env = Env();
  const QueryGraph q = Fig3Query(*env.db.schema, 5);

  auto optimize = [&](size_t threads) {
    OptimizerOptions options = CostBasedOptions(17);
    options.transform.rand_restarts = 4;
    options.search_threads = threads;
    Optimizer opt(env.db.db.get(), env.stats.get(), env.cost.get(), options);
    OptimizeResult r = opt.Optimize(q);
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    return r;
  };

  OptimizeResult sequential = optimize(1);
  for (size_t threads : {size_t{2}, size_t{4}}) {
    OptimizeResult parallel = optimize(threads);
    EXPECT_EQ(parallel.plan->Fingerprint(), sequential.plan->Fingerprint())
        << "threads=" << threads;
    EXPECT_EQ(parallel.cost, sequential.cost) << "threads=" << threads;
    EXPECT_EQ(parallel.plans_explored, sequential.plans_explored)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rodin
