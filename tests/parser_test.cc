// Parser tests: the ESQL-flavoured surface syntax of §2.3 — view
// definitions with union, path-variable bindings, expression grammar,
// comments, and error positions. Parsed graphs must match the canned
// builder-constructed queries and produce identical answers.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/paper_queries.h"
#include "query/parser.h"

namespace rodin {
namespace {

constexpr const char* kFig3Text = R"(
-- The recursive Influencer view of Figure 3 (paper section 2.3).
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 10;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  const Schema& schema() { return *g_.schema; }
  GeneratedDb g_;
};

TEST_F(ParserTest, Fig3TextParses) {
  const ParseResult r = ParseQuery(kFig3Text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.graph.nodes.size(), 3u);
  EXPECT_TRUE(r.graph.IsRecursiveName("Influencer"));
  EXPECT_EQ(r.graph.ColumnsOf("Influencer"),
            (std::vector<std::string>{"master", "disciple", "gen"}));
}

TEST_F(ParserTest, ParsedFig3MatchesBuilderAnswer) {
  const ParseResult r = ParseQuery(kFig3Text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  Stats stats = Stats::Derive(*g_.db);
  CostModel cost(g_.db.get(), &stats);
  Optimizer opt(g_.db.get(), &stats, &cost, CostBasedOptions());

  OptimizeResult parsed = opt.Optimize(r.graph);
  OptimizeResult built = opt.Optimize(Fig3Query(schema(), 6));
  ASSERT_TRUE(parsed.ok() && built.ok());
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*parsed.plan);
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*built.plan);
  t1.Dedup();
  t2.Dedup();
  EXPECT_EQ(t1.rows, t2.rows);
}

TEST_F(ParserTest, PathVariableBindings) {
  // Figure 2 in text form: t, i1, i2 are path variables.
  const char* text = R"(
select [title: t.title]
from x in Composer, t in x.works, i1 in t.instruments, i2 in t.instruments
where x.name = "Bach" and i1.iname = "harpsichord" and i2.iname = "flute"
)";
  const ParseResult r = ParseQuery(text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.graph.nodes.size(), 1u);
  EXPECT_EQ(r.graph.nodes[0].inputs.size(), 1u);
  EXPECT_EQ(r.graph.nodes[0].lets.size(), 3u);
  EXPECT_EQ(r.graph.nodes[0].lets[1].root, "t");
}

TEST_F(ParserTest, MultiStepPathVariable) {
  const char* text = R"(
select [n: i.iname] from x in Composer, i in x.works.instruments
where x.name = "Bach"
)";
  const ParseResult r = ParseQuery(text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.graph.nodes[0].lets.size(), 1u);
  EXPECT_EQ(r.graph.nodes[0].lets[0].path,
            (std::vector<std::string>{"works", "instruments"}));
}

TEST_F(ParserTest, ExpressionGrammar) {
  const char* text = R"(
select [a: x.birthyear + 1 - 2, b: x.name]
from x in Composer
where (x.birthyear >= 1600 or x.birthyear < 1500) and not x.name != "Bach"
)";
  const ParseResult r = ParseQuery(text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  const std::string pred = r.graph.nodes[0].pred->ToString();
  EXPECT_NE(pred.find("or"), std::string::npos);
  EXPECT_NE(pred.find("not"), std::string::npos);
  const std::string out = r.graph.nodes[0].out[0].expr->ToString();
  EXPECT_EQ(out, "((x.birthyear + 1) - 2)");
}

TEST_F(ParserTest, LiteralKinds) {
  const char* text = R"(
select [a: 1, b: 2.5, c: "s", d: true] from x in Composer
)";
  const ParseResult r = ParseQuery(text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.graph.nodes[0].out[0].expr->literal().is_int());
  EXPECT_TRUE(r.graph.nodes[0].out[1].expr->literal().is_real());
  EXPECT_TRUE(r.graph.nodes[0].out[2].expr->literal().is_string());
  EXPECT_TRUE(r.graph.nodes[0].out[3].expr->literal().is_bool());
}

TEST_F(ParserTest, SyntaxErrorHasPosition) {
  const ParseResult r = ParseQuery("select [a x.name] from x in Composer",
                                   schema());
  ASSERT_FALSE(r.ok());
  // The taxonomy code is the contract; the span rides along as structured
  // fields on the status (no message-string matching).
  EXPECT_EQ(r.status.code, Status::Code::kParse);
  EXPECT_EQ(r.status.line, 1u);
  EXPECT_GT(r.status.col, 1u);
}

TEST_F(ParserTest, SyntaxErrorSpansLaterLines) {
  const ParseResult r = ParseQuery(
      "select [a: x.name]\nfrom x in Composer\nwhere x.name = ", schema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, Status::Code::kParse);
  EXPECT_EQ(r.status.line, 3u);
}

TEST_F(ParserTest, SemanticErrorsReported) {
  // Unknown class.
  ParseResult r = ParseQuery("select [a: x.name] from x in Nothing", schema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, Status::Code::kSemantic);
  // Unknown attribute.
  r = ParseQuery("select [a: x.wrong] from x in Composer", schema());
  ASSERT_FALSE(r.ok());
}

TEST_F(ParserTest, MissingSelectFails) {
  const ParseResult r = ParseQuery("relation V includes (select [a: x.name] "
                                   "from x in Composer)",
                                   schema());
  ASSERT_FALSE(r.ok());  // no answer select
}

TEST_F(ParserTest, TrailingInputFails) {
  const ParseResult r = ParseQuery(
      "select [a: x.name] from x in Composer garbage", schema());
  ASSERT_FALSE(r.ok());
}

TEST_F(ParserTest, NonRecursiveViewWithUnion) {
  const char* text = R"(
relation Keyboardists includes
  (select [c: x] from x in Composer, i in x.works.instruments
   where i.iname = "harpsichord")
  union
  (select [c: y] from y in Composer, i in y.works.instruments
   where i.iname = "organ")

select [n: k.c.name] from k in Keyboardists
)";
  const ParseResult r = ParseQuery(text, schema());
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.graph.ProducersOf("Keyboardists").size(), 2u);
  EXPECT_FALSE(r.graph.IsRecursiveName("Keyboardists"));
  // Executes end to end.
  Stats stats = Stats::Derive(*g_.db);
  CostModel cost(g_.db.get(), &stats);
  Optimizer opt(g_.db.get(), &stats, &cost, CostBasedOptions());
  OptimizeResult plan = opt.Optimize(r.graph);
  ASSERT_TRUE(plan.ok()) << plan.status.ToString();
  Executor exec(g_.db.get());
  Table t = exec.Execute(*plan.plan);
  EXPECT_FALSE(t.rows.empty());
}

TEST_F(ParserTest, CommentsAreSkipped) {
  const char* text = R"(
-- leading comment
select [a: x.name] -- trailing comment
from x in Composer -- another
)";
  EXPECT_TRUE(ParseQuery(text, schema()).ok());
}

}  // namespace
}  // namespace rodin
