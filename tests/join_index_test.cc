// Join indices [Va87] — a path index of length 1 — and their use by the
// generator, plus fold-views through the full optimizer.

#include <gtest/gtest.h>

#include "api/session.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/generate.h"
#include "optimizer/translate.h"
#include "query/builder.h"

namespace rodin {
namespace {

class JoinIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 80;
    PhysicalConfig physical;
    physical.buffer_pages = 16;
    // A join index on Composer.works (length-1 path index) and the paper''s
    // two-step index; the generator must be able to pick either.
    physical.path_indexes.push_back(PathIndexSpec{"Composer", {"works"}});
    physical.path_indexes.push_back(
        PathIndexSpec{"Composer", {"works", "instruments"}});
    g_ = GenerateMusicDb(config, physical);
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
  }
  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
};

TEST_F(JoinIndexTest, LengthOnePathIndexBuilds) {
  const PathIndex* ji = g_.db->FindPathIndex("Composer", {"works"});
  ASSERT_NE(ji, nullptr);
  EXPECT_EQ(ji->path_length(), 1u);
  // One entry per (composer, work) pair.
  EXPECT_EQ(ji->num_entries(), g_.db->FindExtent("Composition")->size());
}

TEST_F(JoinIndexTest, GeneratorCanUseEitherIndex) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("flute"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = Translate(q.nodes[0], q, *g_.schema, ctx_);
  // Exhaustive search sees: IJ+IJ, PIJ(works)+IJ, and PIJ(works.instruments)
  // — all computing identical rows; it returns the cheapest.
  GenResult ex = GenerateSPJ(spj, ctx_, GenStrategy::kExhaustive, {});
  GenResult dp = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  EXPECT_NEAR(ex.cost, dp.cost, 1e-6);
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*ex.plan);
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*dp.plan);
  t1.Dedup();
  t2.Dedup();
  EXPECT_EQ(t1.rows, t2.rows);
}

TEST_F(JoinIndexTest, FoldViewsThroughOptimizer) {
  // A non-recursive view folded into its consumer: same answer, and the
  // folded pipeline produces a single-spj plan (no view instantiation).
  QueryGraphBuilder b;
  b.Node("Keyboardists")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("harpsichord"))))
      .OutPath("c", "x");
  b.Node("Answer")
      .Input("Keyboardists", "k")
      .Where(Expr::Cmp(CompareOp::kLt, Expr::Path("k", {"c", "birthyear"}),
                       Expr::Lit(Value::Int(1700))))
      .OutPath("n", "k", {"c", "name"});
  const QueryGraph q = b.Build(*g_.schema);

  OptimizerOptions folded = CostBasedOptions();
  folded.fold_views = true;
  Session fold_session(g_.db.get(), folded);
  Session plain_session(g_.db.get(), CostBasedOptions());
  const QueryRun a = fold_session.Run(q);
  const QueryRun b2 = plain_session.Run(q);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b2.ok()) << b2.error();
  Table ta = a.answer;
  Table tb = b2.answer;
  ta.Dedup();
  tb.Dedup();
  EXPECT_EQ(ta.rows, tb.rows);
}

}  // namespace
}  // namespace rodin
