// Queries mixing stored relations, recursive views and classes in one
// predicate node, checked against brute force; plus executor edge cases
// (empty probes, delta misuse) and parser precedence details.

#include <gtest/gtest.h>

#include <set>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "query/builder.h"
#include "query/parser.h"

namespace rodin {
namespace {

class MixedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    config.num_plays = 120;
    config.seed = 9;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    session_ = std::make_unique<Session>(g_.db.get(), CostBasedOptions());
    composer_ = g_.schema->FindClass("Composer");
  }
  GeneratedDb g_;
  std::unique_ptr<Session> session_;
  const ClassDef* composer_ = nullptr;
};

TEST_F(MixedQueryTest, RelationJoinedWithRecursiveView) {
  // "names of players who are masters at distance >= 2": join the stored
  // Play relation with the recursive Influencer view.
  const QueryRun run = session_->Run(R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [n: g.who.name] from g in Play, i in Influencer
where i.master = g.who and i.gen >= 2
)",
                                     QueryOptions{.cold = true});
  ASSERT_TRUE(run.ok()) << run.error();

  // Brute force.
  std::set<std::string> expected;
  const Extent* plays = g_.db->FindExtent("Play");
  for (uint32_t s = 0; s < plays->size(); ++s) {
    const Oid who = plays->Record(s)[0].AsRef();
    // Is `who` a master at distance >= 2 of anyone? I.e. does any composer
    // have `who` as an ancestor at depth >= 2?
    bool qualifies = false;
    const Extent* composers = g_.db->FindExtent("Composer");
    for (uint32_t c = 0; c < composers->size() && !qualifies; ++c) {
      Oid cur{composer_->id(), c};
      for (int depth = 1;; ++depth) {
        const Value m = g_.db->GetRaw(cur, "master");
        if (!m.is_ref()) break;
        if (depth >= 2 && m.AsRef() == who) {
          qualifies = true;
          break;
        }
        cur = m.AsRef();
      }
    }
    if (qualifies) {
      expected.insert(g_.db->GetRaw(who, "name").AsString());
    }
  }
  std::set<std::string> actual;
  for (const Row& r : run.answer.rows) actual.insert(r[0].AsString());
  EXPECT_EQ(actual, expected);
  ASSERT_FALSE(actual.empty());
}

TEST_F(MixedQueryTest, ParserPrecedenceAndBindsTighterThanOr) {
  const ParseResult r = ParseQuery(
      R"(select [n: x.name] from x in Composer
         where x.name = "Bach" or x.birthyear < 1650 and x.birthyear > 1600)",
      *g_.schema);
  ASSERT_TRUE(r.ok()) << r.error();
  // Top level must be an OR whose second branch is the AND.
  EXPECT_EQ(r.graph.nodes[0].pred->kind(), ExprKind::kOr);
  ASSERT_EQ(r.graph.nodes[0].pred->children().size(), 2u);
  EXPECT_EQ(r.graph.nodes[0].pred->children()[1]->kind(), ExprKind::kAnd);
}

TEST_F(MixedQueryTest, ParserParenthesesOverridePrecedence) {
  const ParseResult r = ParseQuery(
      R"(select [n: x.name] from x in Composer
         where (x.name = "Bach" or x.birthyear < 1650) and x.birthyear > 1600)",
      *g_.schema);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.graph.nodes[0].pred->kind(), ExprKind::kAnd);
}

TEST_F(MixedQueryTest, IndexJoinWithNoMatchesIsEmpty) {
  PhysicalConfig physical = PaperMusicPhysical();
  physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  MusicConfig config;
  config.num_composers = 20;
  GeneratedDb g = GenerateMusicDb(config, physical);
  const ClassDef* composer = g.schema->FindClass("Composer");
  const ClassDef* composition = g.schema->FindClass("Composition");
  // Probe with a name that exists nowhere.
  PTPtr probe_src = MakeProj(
      MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition),
      {{"k", Expr::Lit(Value::Str("no-such-name"))}}, {{"k", nullptr}}, false);
  PTPtr ej = MakeEJ(std::move(probe_src),
                    MakeEntity(EntityRef{"Composer", 0, 0}, "y", composer),
                    Expr::Eq(Expr::Path("y", {"name"}), Expr::Path("k")),
                    JoinAlgo::kIndexJoin);
  ej->join_index = g.db->FindSelIndex("Composer", "name");
  ej->join_index_attr = "name";
  Executor exec(g.db.get());
  EXPECT_TRUE(exec.Execute(*ej).rows.empty());
}

TEST_F(MixedQueryTest, DeltaOutsideFixpointAborts) {
  std::vector<PTCol> cols = {{"m", composer_}};
  PTPtr delta = MakeDelta("Nowhere", cols);
  Executor exec(g_.db.get());
  EXPECT_DEATH(exec.Execute(*delta), "delta referenced outside");
}

TEST_F(MixedQueryTest, SessionRejectsUnfinalizedDatabase) {
  Schema schema;
  schema.AddClass("C");
  Database db(&schema);
  EXPECT_DEATH(Session s(&db), "finalized");
}

}  // namespace
}  // namespace rodin
