// Database / extent layout tests: page assignment, clustering, vertical and
// horizontal fragmentation, charged access, methods.

#include <gtest/gtest.h>

#include <set>

#include "catalog/schema.h"
#include "storage/database.h"

namespace rodin {
namespace {

// Builds a two-class schema: Owner { k: int, child: Child }, Child { v: int,
// w: string }.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = schema_.types();
    ClassDef* child = schema_.AddClass("Child");
    schema_.AddAttribute(child, {"v", t.Int(), false, 0, "", ""});
    schema_.AddAttribute(child, {"w", t.String(), false, 0, "", ""});
    ClassDef* owner = schema_.AddClass("Owner");
    schema_.AddAttribute(owner, {"k", t.Int(), false, 0, "", ""});
    schema_.AddAttribute(owner, {"child", t.Object("Child"), false, 0, "", ""});
    schema_.AddRelation("R", {{"a", t.Int()}, {"b", t.Int()}});
  }

  // Populates n owners each with one child; returns the db.
  std::unique_ptr<Database> Populate(uint32_t n, PhysicalConfig config) {
    auto db = std::make_unique<Database>(&schema_);
    for (uint32_t i = 0; i < n; ++i) {
      Oid c = db->NewObject("Child");
      db->Set(c, "v", Value::Int(i));
      db->Set(c, "w", Value::Str("w" + std::to_string(i)));
      Oid o = db->NewObject("Owner");
      db->Set(o, "k", Value::Int(i));
      db->Set(o, "child", Value::Ref(c));
    }
    db->Finalize(std::move(config));
    return db;
  }

  Schema schema_;
};

TEST_F(StorageTest, RecordsRoundTrip) {
  auto db = Populate(10, PhysicalConfig{});
  const ClassDef* owner = schema_.FindClass("Owner");
  Oid o{owner->id(), 3};
  EXPECT_EQ(db->GetRaw(o, "k").AsInt(), 3);
  const Oid child = db->GetRaw(o, "child").AsRef();
  EXPECT_EQ(db->GetRaw(child, "v").AsInt(), 3);
  EXPECT_EQ(db->GetRaw(child, "w").AsString(), "w3");
}

TEST_F(StorageTest, LayoutAssignsDistinctPageRuns) {
  auto db = Populate(500, PhysicalConfig{});
  const Extent* owner = db->FindExtent("Owner");
  const Extent* child = db->FindExtent("Child");
  ASSERT_TRUE(owner->finalized());
  // Without clustering, owners and children occupy disjoint pages.
  std::set<PageId> owner_pages(owner->ScanPages(0, 0).begin(),
                               owner->ScanPages(0, 0).end());
  for (PageId p : child->ScanPages(0, 0)) {
    EXPECT_EQ(owner_pages.count(p), 0u);
  }
  EXPECT_GT(owner_pages.size(), 1u);
}

TEST_F(StorageTest, ClusteringCoLocatesChildren) {
  PhysicalConfig config;
  config.clustering.push_back(ClusterSpec{"Owner", "child"});
  auto db = Populate(500, config);
  const ClassDef* owner_cls = schema_.FindClass("Owner");
  const Extent* owner = db->FindExtent("Owner");
  const Extent* child = db->FindExtent("Child");
  // Every child sits on its owner's page.
  uint32_t colocated = 0;
  for (uint32_t s = 0; s < owner->size(); ++s) {
    const Oid c = db->GetRaw(Oid{owner_cls->id(), s}, "child").AsRef();
    if (owner->PageOf(s, 0) == child->PageOf(c.slot, 0)) ++colocated;
  }
  EXPECT_EQ(colocated, owner->size());
  // The price: a scan of Child touches the interleaved owner pages.
  EXPECT_GE(child->ScanPages(0, 0).size(), owner->ScanPages(0, 0).size() / 2);
}

TEST_F(StorageTest, VerticalFragmentsShrinkPrimaryScan) {
  PhysicalConfig plain;
  auto db1 = Populate(2000, plain);
  const uint64_t full_pages = db1->FindExtent("Child")->ScanPages(0, 0).size();

  PhysicalConfig split;
  split.vertical.push_back(VerticalSpec{"Child", {{"v"}, {"w"}}});
  auto db2 = Populate(2000, split);
  const Extent* child = db2->FindExtent("Child");
  ASSERT_EQ(child->num_vfrags(), 2);
  // Each fragment scans fewer pages than the unfragmented extent.
  EXPECT_LT(child->ScanPages(0, 0).size(), full_pages);
  EXPECT_LT(child->ScanPages(1, 0).size(), full_pages);
  // Field-to-fragment mapping.
  EXPECT_EQ(child->VfragOfField(0), 0);
  EXPECT_EQ(child->VfragOfField(1), 1);
}

TEST_F(StorageTest, HorizontalFragmentsPartitionSlots) {
  PhysicalConfig config;
  config.horizontal.push_back(HorizontalSpec{"Owner", "k", 4});
  auto db = Populate(1000, config);
  const Extent* owner = db->FindExtent("Owner");
  ASSERT_EQ(owner->num_hfrags(), 4);
  size_t total = 0;
  for (uint16_t h = 0; h < 4; ++h) {
    total += owner->SlotsOfHfrag(h).size();
    EXPECT_GT(owner->SlotsOfHfrag(h).size(), 100u);  // roughly uniform
  }
  EXPECT_EQ(total, owner->size());
  // A record's fragment matches its slot list.
  for (uint32_t slot : owner->SlotsOfHfrag(2)) {
    EXPECT_EQ(owner->HfragOf(slot), 2);
  }
}

TEST_F(StorageTest, ChargedAccessFetchesPages) {
  auto db = Populate(100, PhysicalConfig{});
  const ClassDef* owner = schema_.FindClass("Owner");
  const auto before = db->buffer_pool().stats().fetches;
  db->GetCharged(Oid{owner->id(), 5}, "k");
  EXPECT_EQ(db->buffer_pool().stats().fetches, before + 1);
}

TEST_F(StorageTest, ScanEntityChargesEveryPageOnce) {
  auto db = Populate(1000, PhysicalConfig{});
  db->buffer_pool().Clear();
  size_t rows = 0;
  db->ScanEntity(EntityRef{"Owner", 0, 0},
                 [&](Oid, const std::vector<Value>&) { ++rows; });
  EXPECT_EQ(rows, 1000u);
  EXPECT_EQ(db->buffer_pool().stats().misses,
            db->FindExtent("Owner")->ScanPages(0, 0).size());
}

TEST_F(StorageTest, EntityPagesAndInstances) {
  auto db = Populate(100, PhysicalConfig{});
  const EntityRef ref{"Owner", 0, 0};
  EXPECT_EQ(db->EntityInstances(ref), 100u);
  EXPECT_EQ(db->EntityPages(ref),
            db->FindExtent("Owner")->ScanPages(0, 0).size());
}

TEST_F(StorageTest, RelationsUsePseudoOids) {
  auto db = std::make_unique<Database>(&schema_);
  const Oid t0 = db->InsertTuple("R", {Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(IsRelationOid(t0));
  db->Finalize(PhysicalConfig{});
  EXPECT_EQ(db->GetRaw(t0, "a").AsInt(), 1);
  EXPECT_EQ(db->GetRaw(t0, "b").AsInt(), 2);
  EXPECT_EQ(db->ExtentNameOf(t0), "R");
}

TEST_F(StorageTest, MethodsRegisterAndInvoke) {
  TypePool& t = schema_.types();
  ClassDef* owner = schema_.FindClass("Owner");
  schema_.AddAttribute(owner, {"doubled", t.Int(), true, 1.5, "", ""});
  auto db = std::make_unique<Database>(&schema_);
  Oid o = db->NewObject("Owner");
  db->Set(o, "k", Value::Int(21));
  db->RegisterMethod("Owner", "doubled", [](const Database& d, Oid oid) {
    return Value::Int(d.GetRaw(oid, "k").AsInt() * 2);
  });
  db->Finalize(PhysicalConfig{});
  EXPECT_TRUE(db->HasMethod("Owner", "doubled"));
  EXPECT_FALSE(db->HasMethod("Owner", "k"));
  EXPECT_EQ(db->InvokeMethod(o, "doubled").AsInt(), 42);
}

TEST_F(StorageTest, RecordBytesOverrideInflatesPages) {
  PhysicalConfig small;
  auto db1 = Populate(200, small);
  PhysicalConfig big;
  big.record_bytes_override.push_back({"Owner", 2048});
  auto db2 = Populate(200, big);
  EXPECT_GT(db2->FindExtent("Owner")->ScanPages(0, 0).size(),
            db1->FindExtent("Owner")->ScanPages(0, 0).size());
}

TEST_F(StorageTest, InvalidConfigRejected) {
  PhysicalConfig bad;
  bad.vertical.push_back(VerticalSpec{"Child", {{"v"}}});  // w uncovered
  EXPECT_FALSE(bad.Validate(schema_).empty());

  PhysicalConfig bad2;
  bad2.sel_indexes.push_back(SelIndexSpec{"Owner", "child"});  // not atomic
  EXPECT_FALSE(bad2.Validate(schema_).empty());

  PhysicalConfig bad3;
  bad3.path_indexes.push_back(PathIndexSpec{"Owner", {"k"}});  // atomic path
  EXPECT_FALSE(bad3.Validate(schema_).empty());

  PhysicalConfig good;
  good.clustering.push_back(ClusterSpec{"Owner", "child"});
  good.sel_indexes.push_back(SelIndexSpec{"Owner", "k"});
  good.path_indexes.push_back(PathIndexSpec{"Owner", {"child"}});
  EXPECT_TRUE(good.Validate(schema_).empty());
}

TEST_F(StorageTest, InsertAfterFinalizeAborts) {
  auto db = Populate(10, PhysicalConfig{});
  EXPECT_DEATH(db->NewObject("Owner"), "after Finalize");
}

}  // namespace
}  // namespace rodin
