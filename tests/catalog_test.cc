#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/type.h"

namespace rodin {
namespace {

TEST(TypePoolTest, AtomicSingletons) {
  TypePool pool;
  EXPECT_EQ(pool.Int(), pool.Int());
  EXPECT_EQ(pool.String(), pool.String());
  EXPECT_TRUE(pool.Int()->IsAtomic());
  EXPECT_TRUE(pool.Bool()->IsAtomic());
  EXPECT_EQ(pool.Int()->kind(), TypeKind::kInt);
}

TEST(TypePoolTest, ObjectTypesInternedByName) {
  TypePool pool;
  const Type* a = pool.Object("Composer");
  const Type* b = pool.Object("Composer");
  const Type* c = pool.Object("Person");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->class_name(), "Composer");
  EXPECT_FALSE(a->IsAtomic());
}

TEST(TypePoolTest, CollectionTypesInternedByElement) {
  TypePool pool;
  const Type* s1 = pool.Set(pool.Object("Composition"));
  const Type* s2 = pool.Set(pool.Object("Composition"));
  const Type* l1 = pool.List(pool.Object("Composition"));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, l1);
  EXPECT_TRUE(s1->IsCollection());
  EXPECT_EQ(s1->elem()->class_name(), "Composition");
}

TEST(TypePoolTest, TupleFieldsAndToString) {
  TypePool pool;
  const Type* t = pool.Tuple({{"who", pool.Object("Person")},
                              {"n", pool.Int()}});
  EXPECT_EQ(t->kind(), TypeKind::kTuple);
  EXPECT_EQ(t->FieldType("who")->class_name(), "Person");
  EXPECT_EQ(t->FieldType("n"), pool.Int());
  EXPECT_EQ(t->FieldType("absent"), nullptr);
  EXPECT_EQ(t->ToString(), "[who: Person, n: int]");
  EXPECT_EQ(pool.Set(pool.Object("Instrument"))->ToString(), "{Instrument}");
}

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = schema_.types();
    person_ = schema_.AddClass("Person");
    schema_.AddAttribute(person_, {"name", t.String(), false, 0, "", ""});
    schema_.AddAttribute(person_, {"age", t.Int(), true, 2.0, "", ""});
    composer_ = schema_.AddClass("Composer", "Person");
    composition_ = schema_.AddClass("Composition");
    schema_.AddAttribute(composer_,
                         {"works", t.Set(t.Object("Composition")), false, 0,
                          "Composition", "author"});
    schema_.AddAttribute(composition_, {"author", t.Object("Composer"), false,
                                        0, "Composer", "works"});
  }

  Schema schema_;
  ClassDef* person_ = nullptr;
  ClassDef* composer_ = nullptr;
  ClassDef* composition_ = nullptr;
};

TEST_F(SchemaTest, InheritanceLookup) {
  EXPECT_TRUE(schema_.IsSubclassOf(composer_, person_));
  EXPECT_FALSE(schema_.IsSubclassOf(person_, composer_));
  EXPECT_TRUE(schema_.IsSubclassOf(person_, person_));
  // Inherited attribute found through the subclass.
  EXPECT_NE(composer_->FindAttribute("name"), nullptr);
  EXPECT_EQ(composition_->FindAttribute("name"), nullptr);
}

TEST_F(SchemaTest, AllAttributesOrdersSuperFirst) {
  const std::vector<Attribute> all = composer_->AllAttributes();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "name");
  EXPECT_EQ(all[1].name, "age");
  EXPECT_EQ(all[2].name, "works");
  EXPECT_EQ(composer_->AttributeIndex("works"), 2);
  EXPECT_EQ(composer_->AttributeIndex("missing"), -1);
}

TEST_F(SchemaTest, ComputedAttributeFlag) {
  const Attribute* age = composer_->FindAttribute("age");
  ASSERT_NE(age, nullptr);
  EXPECT_TRUE(age->computed);
  EXPECT_DOUBLE_EQ(age->method_cost, 2.0);
}

TEST_F(SchemaTest, RelationsHaveTupleTypes) {
  RelationDef* play = schema_.AddRelation(
      "Play", {{"who", schema_.types().Object("Person")},
               {"instrument", schema_.types().String()}});
  EXPECT_EQ(play->AttributeIndex("who"), 0);
  EXPECT_EQ(play->AttributeIndex("instrument"), 1);
  EXPECT_EQ(schema_.FindRelation("Play"), play);
  EXPECT_EQ(schema_.FindRelation("Nope"), nullptr);
  EXPECT_EQ(play->tuple_type()->fields().size(), 2u);
}

TEST_F(SchemaTest, ClassById) {
  EXPECT_EQ(schema_.ClassById(person_->id()), person_);
  EXPECT_EQ(schema_.ClassById(composer_->id()), composer_);
}

TEST_F(SchemaTest, ValidInversesPass) {
  EXPECT_TRUE(schema_.ValidateInverses().empty());
}

TEST_F(SchemaTest, BrokenInverseDetected) {
  ClassDef* other = schema_.AddClass("Other");
  schema_.AddAttribute(other, {"bad", schema_.types().Object("Composer"),
                               false, 0, "Composer", "nonexistent"});
  const std::vector<std::string> errors = schema_.ValidateInverses();
  ASSERT_FALSE(errors.empty());
}

TEST_F(SchemaTest, MismatchedInverseDetected) {
  // Declare an inverse that points back to the wrong attribute.
  ClassDef* a = schema_.AddClass("A");
  ClassDef* b = schema_.AddClass("B");
  schema_.AddAttribute(a, {"to_b", schema_.types().Object("B"), false, 0, "B",
                           "to_a"});
  schema_.AddAttribute(b, {"to_a", schema_.types().Object("A"), false, 0, "A",
                           "wrong"});
  EXPECT_FALSE(schema_.ValidateInverses().empty());
}

using SchemaDeathTest = SchemaTest;

TEST_F(SchemaDeathTest, DuplicateClassAborts) {
  EXPECT_DEATH(schema_.AddClass("Person"), "duplicate class");
}

TEST_F(SchemaDeathTest, DuplicateAttributeAborts) {
  EXPECT_DEATH(
      schema_.AddAttribute(composer_,
                           {"name", schema_.types().Int(), false, 0, "", ""}),
      "collides");
}

TEST_F(SchemaDeathTest, UnknownSuperclassAborts) {
  EXPECT_DEATH(schema_.AddClass("X", "NoSuchClass"), "superclass");
}

}  // namespace
}  // namespace rodin
