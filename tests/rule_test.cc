// Rule-framework tests (§4.1: action: F | constraint -> G): application
// order, saturation guard, traversal helpers, and a worked example — the
// paper's `collapse` rule expressed through the framework.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "optimizer/rule.h"
#include "optimizer/transform.h"
#include "plan/pt.h"

namespace rodin {
namespace {

class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 20;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
    composer_ = g_.schema->FindClass("Composer");
  }

  PTPtr Chain() {
    // Sel(IJ(IJ(Entity))) — four nodes to traverse.
    PTPtr p = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
    p = MakeIJ(std::move(p), "x", "works", "w",
               g_.schema->FindClass("Composition"));
    p = MakeIJ(std::move(p), "w", "instruments", "i",
               g_.schema->FindClass("Instrument"));
    return MakeSel(std::move(p),
                   Expr::Eq(Expr::Path("i", {"iname"}),
                            Expr::Lit(Value::Str("flute"))));
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
  const ClassDef* composer_ = nullptr;
};

TEST_F(RuleTest, ApplyRuleOncePreorderFirstMatch) {
  // A rule matching any IJ fires on the topmost IJ first (preorder).
  std::vector<std::string> fired_attrs;
  Rule tag_ij("tag-ij", [&](PTPtr& site, OptContext&) {
    if (site->kind != PTKind::kIJ) return false;
    fired_attrs.push_back(site->attr);
    // Rewrite to the child (consuming the node) so saturation terminates.
    site = std::move(site->children[0]);
    return true;
  });
  PTPtr plan = Chain();
  EXPECT_TRUE(ApplyRuleOnce(plan, tag_ij, ctx_));
  ASSERT_EQ(fired_attrs.size(), 1u);
  EXPECT_EQ(fired_attrs[0], "instruments");  // topmost IJ under the Sel
}

TEST_F(RuleTest, SaturationConsumesAllMatches) {
  Rule drop_ij("drop-ij", [](PTPtr& site, OptContext&) {
    if (site->kind != PTKind::kIJ) return false;
    site = std::move(site->children[0]);
    return true;
  });
  PTPtr plan = Chain();
  EXPECT_EQ(ApplyRuleSaturate(plan, drop_ij, ctx_), 2u);
  EXPECT_EQ(plan->children[0]->kind, PTKind::kEntity);
}

TEST_F(RuleTest, SaturationGuardStopsRunawayRules) {
  // A rule that always "applies" without changing anything would loop; the
  // max_applications guard bounds it.
  Rule runaway("runaway", [](PTPtr&, OptContext&) { return true; });
  PTPtr plan = Chain();
  EXPECT_EQ(ApplyRuleSaturate(plan, runaway, ctx_, 17), 17u);
}

TEST_F(RuleTest, ConstraintGuardsApplication) {
  // F | constraint -> G: only fire on IJs whose attribute is set-valued.
  Rule collection_only("collection-ij", [&](PTPtr& site, OptContext& ctx) {
    if (site->kind != PTKind::kIJ) return false;
    const PTCol* src = site->children[0]->FindCol(site->src_var);
    if (src == nullptr || src->cls == nullptr) return false;
    const Attribute* a = src->cls->FindAttribute(site->attr);
    if (a == nullptr || !a->type->IsCollection()) return false;  // constraint
    (void)ctx;
    site = std::move(site->children[0]);
    return true;
  });
  PTPtr plan = Chain();
  // Both works and instruments are set-valued here: two applications.
  EXPECT_EQ(ApplyRuleSaturate(plan, collection_only, ctx_), 2u);

  // On a single-reference chain (master), the constraint blocks the rule.
  PTPtr masters = MakeIJ(
      MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_), "x", "master",
      "m", composer_);
  EXPECT_EQ(ApplyRuleSaturate(masters, collection_only, ctx_), 0u);
}

TEST_F(RuleTest, CollectSubtreesMatchesTreeSize) {
  PTPtr plan = Chain();
  EXPECT_EQ(CollectSubtrees(plan).size(), plan->TreeSize());
}

TEST_F(RuleTest, CollapseExpressedThroughFramework) {
  // The paper's collapse action as a Rule, applied through the framework.
  Rule collapse("collapse", [](PTPtr& site, OptContext& ctx) {
    PTPtr root = site->Clone();
    if (CollapseIJChains(root, ctx) == 0) return false;
    site = std::move(root);
    return true;
  });
  PTPtr plan = Chain();
  EXPECT_TRUE(ApplyRuleOnce(plan, collapse, ctx_));
  // The works.instruments chain became a PIJ.
  bool has_pij = false;
  VisitSubtrees(plan, [&](PTPtr& n) {
    if (n->kind == PTKind::kPIJ) has_pij = true;
  });
  EXPECT_TRUE(has_pij);
}

}  // namespace
}  // namespace rodin
