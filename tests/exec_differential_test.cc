// Differential test for the batched morsel-parallel engine: for any batch
// size and thread count, the executor must produce the *same rows in the
// same order* as the legacy whole-table evaluator, with bit-identical
// accounting — every ExecCounters field, the buffer pool's fetch/hit/miss
// totals, and MeasuredCost(). The batched engine defers page charges into
// per-operator logs and replays them in the legacy evaluation order, so
// "identical" here is exact equality, not a tolerance.
//
// Queries cover the paper's Figure 3 recursion plus randomized SPJ and
// recursive queries over randomized databases (reusing the PR 1 generators'
// shapes). Failures reproduce from the seed in the test name; setting
// RODIN_TEST_SEED=N shifts every seed by N for fresh inputs (the effective
// seed is logged on failure).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/graph_queries.h"
#include "query/paper_queries.h"
#include "query/query_graph.h"
#include "test_seed.h"

namespace rodin {
namespace {

/// Everything one execution produces, packaged for exact comparison.
struct ExecFingerprint {
  std::vector<std::string> rows;  // in emission order
  ExecCounters counters;
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double measured_cost = 0;
};

ExecFingerprint RunConfig(Database* db, const PTNode& plan,
                          const ExecOptions& options) {
  Executor exec(db);
  exec.ResetMeasurement(/*clear_buffer=*/true);  // cold: deterministic pool
  Table t = exec.Execute(plan, options);

  ExecFingerprint fp;
  fp.rows.reserve(t.rows.size());
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    fp.rows.push_back(std::move(key));
  }
  fp.counters = exec.counters();
  const BufferPool::Stats& s = db->buffer_pool().stats();
  fp.fetches = s.fetches;
  fp.hits = s.hits;
  fp.misses = s.misses;
  fp.measured_cost = exec.MeasuredCost();
  return fp;
}

/// Runs `plan` under the legacy oracle and under every batched
/// configuration, asserting exact equality of rows, counters and cost.
void ExpectAllConfigsIdentical(Database* db, const PTNode& plan,
                               const std::string& label) {
  ExecOptions legacy;
  legacy.use_legacy = true;
  const ExecFingerprint want = RunConfig(db, plan, legacy);

  const size_t kBatchSizes[] = {1, 7, 1024};
  const size_t kThreadCounts[] = {1, 4};
  for (size_t batch : kBatchSizes) {
    for (size_t threads : kThreadCounts) {
      SCOPED_TRACE(label + " batch_rows=" + std::to_string(batch) +
                   " exec_threads=" + std::to_string(threads));
      ExecOptions options;
      options.batch_rows = batch;
      options.exec_threads = threads;
      const ExecFingerprint got = RunConfig(db, plan, options);

      ASSERT_EQ(got.rows, want.rows);
      EXPECT_EQ(got.counters.predicate_evals, want.counters.predicate_evals);
      EXPECT_EQ(got.counters.method_calls, want.counters.method_calls);
      EXPECT_EQ(got.counters.method_cost, want.counters.method_cost);
      EXPECT_EQ(got.counters.rows_produced, want.counters.rows_produced);
      EXPECT_EQ(got.counters.fix_iterations, want.counters.fix_iterations);
      EXPECT_EQ(got.fetches, want.fetches);
      EXPECT_EQ(got.hits, want.hits);
      EXPECT_EQ(got.misses, want.misses);
      EXPECT_EQ(got.measured_cost, want.measured_cost);  // bitwise, no ULP
    }
  }
}

void OptimizeAndCompare(Database* db, const Stats& stats, const CostModel& cost,
                        const QueryGraph& q, uint64_t seed,
                        const std::string& label) {
  Optimizer optimizer(db, &stats, &cost, CostBasedOptions(seed));
  OptimizeResult plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok()) << plan.status.ToString() << "\n" << q.ToString();
  ExpectAllConfigsIdentical(db, *plan.plan, label);
}

// --- Figure 3: the paper's running example ---------------------------------

TEST(ExecDifferentialTest, Fig3Harpsichord) {
  MusicConfig config;
  config.num_composers = 60;
  config.lineage_depth = 8;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  OptimizeAndCompare(g.db.get(), stats, cost, Fig3Query(*g.schema), 42,
                     "fig3");
}

// --- Randomized queries over randomized databases --------------------------

QueryGraph RandomSpjQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          rng->Chance(0.5) ? Expr::Path(var, {"master"})
                                           : Expr::Path(var, {})));
    }
  }
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    switch (rng->Below(4)) {
      case 0:
        node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
        break;
      case 1:
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "family"}),
            Expr::Lit(Value::Str(rng->Chance(0.5) ? "keyboard" : "string"))));
        break;
      case 2:
        node.Where(Expr::Eq(
            Expr::Path(var, {"master", "name"}),
            Expr::Lit(Value::Str("composer_" + std::to_string(rng->Below(8))))));
        break;
      default: {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "iname"}),
            Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
        break;
      }
    }
  }
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) node.OutPath("y", vars[0], {"birthyear"});
  return b.Build(schema);
}

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  if (rng->Chance(0.5)) {
    static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
    answer.Where(
        Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                 Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
  } else {
    answer.Where(Expr::Cmp(CompareOp::kLt,
                           Expr::Path("j", {"master", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  }
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class ExecDifferentialSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecDifferentialSeedTest, MusicSpjAndRecursive) {
  const uint64_t seed = GetParam() + TestSeedBase();
  SCOPED_TRACE("effective seed=" + std::to_string(seed) +
               " (RODIN_TEST_SEED shifts)");
  Rng rng(seed * 101 + 13);

  MusicConfig config;
  config.seed = seed * 31 + 7;
  config.num_composers = 40 + static_cast<uint32_t>(rng.Below(50));
  config.lineage_depth = 3 + static_cast<uint32_t>(rng.Below(8));
  config.harpsichord_fraction = 0.05 + 0.25 * rng.NextDouble();
  config.works_per_composer_max = 4 + static_cast<uint32_t>(rng.Below(5));
  PhysicalConfig physical = PaperMusicPhysical();
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  }
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  }
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  for (int round = 0; round < 3; ++round) {
    const QueryGraph spj = RandomSpjQuery(&rng, *g.schema);
    OptimizeAndCompare(g.db.get(), stats, cost, spj, seed + round,
                       "spj round " + std::to_string(round));
  }
  for (int round = 0; round < 2; ++round) {
    const QueryGraph rec = RandomRecursiveQuery(&rng, *g.schema);
    OptimizeAndCompare(g.db.get(), stats, cost, rec, seed + round,
                       "recursive round " + std::to_string(round));
  }
}

TEST_P(ExecDifferentialSeedTest, GraphClosure) {
  const uint64_t seed = GetParam() + TestSeedBase();
  SCOPED_TRACE("effective seed=" + std::to_string(seed) +
               " (RODIN_TEST_SEED shifts)");
  Rng rng(seed * 77 + 3);

  GraphConfig config;
  config.seed = seed * 13 + 1;
  config.num_nodes = 60 + static_cast<uint32_t>(rng.Below(60));
  config.chain_depth = 4 + static_cast<uint32_t>(rng.Below(6));
  config.path_len = static_cast<uint32_t>(rng.Below(3));
  config.num_labels = 2 + static_cast<uint32_t>(rng.Below(8));
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  const QueryGraph q = GraphClosureQuery(config, *g.schema);
  OptimizeAndCompare(g.db.get(), stats, cost, q, seed, "graph closure");
}

// 5 seeds x (3 SPJ + 2 recursive) + 5 graph closures = 30 random queries,
// each compared across 6 batched configurations against the legacy oracle.
INSTANTIATE_TEST_SUITE_P(Seeds, ExecDifferentialSeedTest,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Hash equi-join: identical rows, honestly different accounting ---------

TEST(ExecDifferentialTest, HashEquiJoinSameRows) {
  MusicConfig config;
  config.num_composers = 60;
  config.lineage_depth = 8;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  Optimizer optimizer(g.db.get(), &stats, &cost, CostBasedOptions(42));
  OptimizeResult plan = optimizer.Optimize(Fig3Query(*g.schema));
  ASSERT_TRUE(plan.ok()) << plan.status.ToString();

  ExecOptions nl;
  const ExecFingerprint want = RunConfig(g.db.get(), *plan.plan, nl);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecOptions hashed;
    hashed.hash_equijoin = true;
    hashed.exec_threads = threads;
    const ExecFingerprint got = RunConfig(g.db.get(), *plan.plan, hashed);
    // Same rows in the same order; accounting is allowed to differ (fewer
    // predicate evaluations, no per-outer-row re-scan charges).
    ASSERT_EQ(got.rows, want.rows) << "threads=" << threads;
    EXPECT_LE(got.counters.predicate_evals, want.counters.predicate_evals);
  }
}

}  // namespace
}  // namespace rodin
