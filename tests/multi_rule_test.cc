// Views with several base and several recursive rules: the union action
// groups them, the fixpoint runs a Union of recursive arms over one delta,
// and every optimizer configuration computes the reachability closure of
// the two-successor graph correctly.

#include <gtest/gtest.h>

#include <set>

#include "api/session.h"
#include "optimizer/baseline.h"
#include "query/builder.h"

namespace rodin {
namespace {

// Class N with two independent successor references p1, p2 and a label.
class MultiRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = schema_.types();
    ClassDef* n = schema_.AddClass("N");
    schema_.AddAttribute(n, {"label", t.String(), false, 0, "", ""});
    schema_.AddAttribute(n, {"p1", t.Object("N"), false, 0, "", ""});
    schema_.AddAttribute(n, {"p2", t.Object("N"), false, 0, "", ""});

    db_ = std::make_unique<Database>(&schema_);
    // A 4-level binary-ish DAG: node i points to i+3 (p1) and i+5 (p2).
    constexpr int kNodes = 24;
    std::vector<Oid> nodes;
    for (int i = 0; i < kNodes; ++i) {
      nodes.push_back(db_->NewObject("N"));
    }
    for (int i = 0; i < kNodes; ++i) {
      db_->Set(nodes[i], "label", Value::Str("n" + std::to_string(i)));
      if (i + 3 < kNodes) db_->Set(nodes[i], "p1", Value::Ref(nodes[i + 3]));
      if (i + 5 < kNodes) db_->Set(nodes[i], "p2", Value::Ref(nodes[i + 5]));
    }
    db_->Finalize(PhysicalConfig{});
    nodes_ = std::move(nodes);
  }

  // Brute-force reachability over both successor references.
  std::set<std::pair<uint32_t, uint32_t>> BruteReach() {
    std::set<std::pair<uint32_t, uint32_t>> reach;
    bool changed = true;
    auto edge = [&](uint32_t from, const char* attr,
                    std::set<std::pair<uint32_t, uint32_t>>* out) {
      const Value v = db_->GetRaw(nodes_[from], attr);
      if (v.is_ref()) out->insert({from, v.AsRef().slot});
    };
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      edge(i, "p1", &reach);
      edge(i, "p2", &reach);
    }
    while (changed) {
      changed = false;
      std::set<std::pair<uint32_t, uint32_t>> next = reach;
      for (const auto& [a, b] : reach) {
        const Value v1 = db_->GetRaw(nodes_[b], "p1");
        const Value v2 = db_->GetRaw(nodes_[b], "p2");
        if (v1.is_ref()) next.insert({a, v1.AsRef().slot});
        if (v2.is_ref()) next.insert({a, v2.AsRef().slot});
      }
      if (next.size() != reach.size()) {
        reach = std::move(next);
        changed = true;
      }
    }
    return reach;
  }

  QueryGraph ReachQuery() {
    QueryGraphBuilder b;
    // Two base rules (one per edge kind) and two recursive rules.
    b.Node("Reach", "b1")
        .Input("N", "x")
        .OutPath("src", "x")
        .OutPath("dst", "x", {"p1"});
    b.Node("Reach", "b2")
        .Input("N", "x")
        .OutPath("src", "x")
        .OutPath("dst", "x", {"p2"});
    b.Node("Reach", "r1")
        .Input("Reach", "r")
        .Input("N", "y")
        .Where(Expr::Eq(Expr::Path("r", {"dst"}), Expr::Path("y")))
        .OutPath("src", "r", {"src"})
        .OutPath("dst", "y", {"p1"});
    b.Node("Reach", "r2")
        .Input("Reach", "r")
        .Input("N", "y")
        .Where(Expr::Eq(Expr::Path("r", {"dst"}), Expr::Path("y")))
        .OutPath("src", "r", {"src"})
        .OutPath("dst", "y", {"p2"});
    b.Node("Answer", "q")
        .Input("Reach", "r")
        .OutPath("from", "r", {"src", "label"})
        .OutPath("to", "r", {"dst", "label"});
    return b.Build(schema_);
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::vector<Oid> nodes_;
};

TEST_F(MultiRuleTest, EveryConfigurationComputesTheClosure) {
  const auto reach = BruteReach();
  std::set<std::pair<std::string, std::string>> expected;
  for (const auto& [a, b] : reach) {
    expected.insert({"n" + std::to_string(a), "n" + std::to_string(b)});
  }
  ASSERT_GT(expected.size(), 50u);

  const QueryGraph q = ReachQuery();
  for (OptimizerOptions options :
       {CostBasedOptions(), NaiveOptions(), DeductiveOptions()}) {
    Session session(db_.get(), options);
    const QueryRun run = session.Run(q);
    ASSERT_TRUE(run.ok()) << run.error();
    std::set<std::pair<std::string, std::string>> actual;
    for (const Row& r : run.answer.rows) {
      actual.insert({r[0].AsString(), r[1].AsString()});
    }
    EXPECT_EQ(actual, expected);
  }
}

TEST_F(MultiRuleTest, NaiveFixpointAgreesToo) {
  OptimizerOptions options = CostBasedOptions();
  options.naive_fixpoint = true;
  Session naive(db_.get(), options);
  Session semi(db_.get(), CostBasedOptions());
  const QueryGraph q = ReachQuery();
  const QueryRun a = naive.Run(q);
  const QueryRun b = semi.Run(q);
  ASSERT_TRUE(a.ok() && b.ok());
  Table ta = a.answer;
  Table tb = b.answer;
  ta.Dedup();
  tb.Dedup();
  EXPECT_EQ(ta.rows, tb.rows);
}

}  // namespace
}  // namespace rodin
