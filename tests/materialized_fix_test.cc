// Differential fuzz for incremental fixpoint maintenance: two identical
// engines absorb the same stream of random mutation batches, one maintaining
// its materialized closure incrementally (counting / semi-naive / DRed), the
// other recomputing from scratch at every commit. After every committed
// batch the two views must be identical pair-for-pair (and identical to a
// fresh from-scratch oracle over the mutated database), and the recursive
// closure *query* must return bit-identical rows, row order and ExecCounters
// on both engines. Updates deliberately rewire edges arbitrarily, so the
// fuzz crosses the acyclic->cyclic degradation (counting mode -> membership
// mode + DRed) many times per run.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "datagen/music_gen.h"
#include "datagen/parts_gen.h"
#include "storage/database.h"
#include "storage/extent.h"
#include "test_seed.h"
#include "txn/materialized_fix.h"
#include "txn/txn_manager.h"

namespace rodin {
namespace {

using PairVec = std::vector<std::pair<Oid, Oid>>;

std::vector<uint32_t> LiveSlots(const Database& db, const std::string& name) {
  const Extent* e = db.FindExtent(name);
  std::vector<uint32_t> out;
  for (uint32_t s = 0; s < e->size(); ++s) {
    if (e->alive(s)) out.push_back(s);
  }
  return out;
}

/// Random batch over Part.subparts: inserts with random sub-part sets,
/// rewiring updates (any part may come to reference any other — cycles
/// included), and occasional deletes (often refused by referential
/// integrity; both engines must refuse identically).
MutationBatch RandomPartsBatch(Rng& rng, const Database& db, int* name_seq) {
  MutationBatch batch;
  const std::vector<uint32_t> live = LiveSlots(db, "Part");
  const int nops = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < nops; ++i) {
    const double roll = rng.NextDouble();
    auto random_subparts = [&] {
      std::vector<Value> subs;
      const uint64_t n = rng.Below(4);
      for (uint64_t s = 0; s < n; ++s) {
        subs.push_back(Value::Ref(
            db.PayloadToOid("Part", live[rng.Below(live.size())])));
      }
      return Value::MakeSet(std::move(subs));
    };
    if (roll < 0.3) {
      batch.Insert("Part",
                   {{"pname", Value::Str("fuzz_" +
                                         std::to_string((*name_seq)++))},
                    {"vendor", Value::Str("fuzz_vendor")},
                    {"mass", Value::Real(1.0)},
                    {"unit_cost", Value::Int(1)},
                    {"subparts", random_subparts()}});
    } else if (roll < 0.85) {
      batch.Update("Part",
                   db.PayloadToOid("Part", live[rng.Below(live.size())]),
                   {{"subparts", random_subparts()}});
    } else {
      batch.Delete("Part",
                   db.PayloadToOid("Part", live[rng.Below(live.size())]));
    }
  }
  return batch;
}

/// Random batch over Composer.master (single-ref edges): relinking updates
/// (including self/descendant links that close cycles), inserts with a
/// random master, rare deletes.
MutationBatch RandomMusicBatch(Rng& rng, const Database& db, int* name_seq) {
  MutationBatch batch;
  const std::vector<uint32_t> live = LiveSlots(db, "Composer");
  const int nops = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < nops; ++i) {
    const double roll = rng.NextDouble();
    auto random_master = [&] {
      if (rng.Chance(0.15)) return Value::Null();
      return Value::Ref(
          db.PayloadToOid("Composer", live[rng.Below(live.size())]));
    };
    if (roll < 0.25) {
      batch.Insert("Composer",
                   {{"name", Value::Str("fuzz_" +
                                        std::to_string((*name_seq)++))},
                    {"master", random_master()}});
    } else if (roll < 0.9) {
      batch.Update("Composer",
                   db.PayloadToOid("Composer", live[rng.Below(live.size())]),
                   {{"master", random_master()}});
    } else {
      batch.Delete("Composer",
                   db.PayloadToOid("Composer", live[rng.Below(live.size())]));
    }
  }
  return batch;
}

struct FuzzCase {
  GeneratedDb inc, rec;
  MutationBatch (*random_batch)(Rng&, const Database&, int*);
  MaterializedFixSpec spec;
  const char* closure_query;
};

void RunDifferential(FuzzCase c, uint64_t seed, int rounds,
                     int min_committed) {
  // RODIN_TEST_SEED=N sweeps the fuzz over fresh batch sequences without a
  // recompile; the effective seed is logged so any failure is reproducible
  // by exporting that exact value.
  seed += TestSeedBase();
  SCOPED_TRACE("effective seed " + std::to_string(seed) +
               " (base seed via RODIN_TEST_SEED)");
  Session inc(c.inc.db.get());
  Session rec(c.rec.db.get());
  inc.txn().SetFixPolicy(FixMaintenancePolicy::kIncremental);
  rec.txn().SetFixPolicy(FixMaintenancePolicy::kRecompute);
  ASSERT_TRUE(inc.Materialize(c.spec).ok());
  ASSERT_TRUE(rec.Materialize(c.spec).ok());

  Rng rng(seed);
  int name_seq = 0;
  int committed = 0, refused = 0, maintained = 0;
  for (int round = 0; round < rounds; ++round) {
    // Both engines hold identical state, so the batch generated against one
    // is valid (or invalid) against both.
    const MutationBatch batch = c.random_batch(rng, *c.inc.db, &name_seq);
    const CommitResult ri = inc.Mutate(batch);
    const CommitResult rr = rec.Mutate(batch);
    ASSERT_EQ(ri.status.code, rr.status.code)
        << "round " << round << ": " << ri.status.ToString() << " vs "
        << rr.status.ToString();
    if (!ri.ok()) {
      ++refused;
      continue;
    }
    ++committed;
    // Batches whose net edge deltas are empty (insert with no edges, update
    // re-assigning the current value, delete of an edge-less record)
    // legitimately maintain zero views; both engines must agree on that, and
    // whenever the oracle engine did maintain its view it must really have
    // recomputed.
    EXPECT_EQ(ri.views_maintained, rr.views_maintained);
    if (rr.views_maintained > 0) {
      EXPECT_FALSE(rr.used_incremental);
      ++maintained;
    }

    // The incrementally-maintained view must match the recompute engine's...
    PairVec pi, pr;
    ASSERT_TRUE(inc.MaterializedRows(c.spec.name, &pi).ok());
    ASSERT_TRUE(rec.MaterializedRows(c.spec.name, &pr).ok());
    ASSERT_EQ(pi, pr) << "view divergence at round " << round;

    // ...and a fresh from-scratch oracle over the mutated database itself.
    MaterializedFix oracle(c.spec);
    oracle.Recompute(*c.inc.db);
    ASSERT_EQ(pi, oracle.Pairs()) << "oracle divergence at round " << round;

    // Periodically run the closure through the full query pipeline on both
    // engines: rows, row order and counters must be bit-identical.
    if (round % 5 == 0) {
      const QueryRun qi = inc.Run(c.closure_query);
      const QueryRun qr = rec.Run(c.closure_query);
      ASSERT_TRUE(qi.ok()) << qi.error();
      ASSERT_TRUE(qr.ok()) << qr.error();
      ASSERT_EQ(qi.answer.rows, qr.answer.rows);
      EXPECT_EQ(qi.counters.rows_produced, qr.counters.rows_produced);
      EXPECT_EQ(qi.counters.predicate_evals, qr.counters.predicate_evals);
      EXPECT_EQ(qi.counters.fix_iterations, qr.counters.fix_iterations);
      EXPECT_EQ(qi.counters.method_calls, qr.counters.method_calls);
    }
  }
  // The run must exercise real mutations, not just refusals — and most
  // committed batches must actually have moved edges.
  EXPECT_GE(committed, min_committed)
      << committed << " committed, " << refused << " refused";
  EXPECT_GE(maintained, min_committed / 2) << maintained << " maintained";
}

TEST(MaterializedFixDifferentialTest, PartsContainsClosure) {
  PartsConfig config;
  config.parts_per_level = 12;
  config.num_levels = 3;
  config.subparts_min = 1;
  config.subparts_max = 3;
  FuzzCase c;
  c.inc = GeneratePartsDb(config, DefaultPartsPhysical());
  c.rec = GeneratePartsDb(config, DefaultPartsPhysical());
  c.random_batch = RandomPartsBatch;
  c.spec = {"contains", "Part", "", "subparts"};
  c.closure_query = R"(
relation Contains includes
  (select [whole: x, piece: s] from x in Part, s in x.subparts)
  union
  (select [whole: c.whole, piece: s]
   from c in Contains, s in c.piece.subparts)

select [w: c.whole.pname, p: c.piece.pname] from c in Contains
)";
  RunDifferential(std::move(c), /*seed=*/20260808, /*rounds=*/45,
                  /*min_committed=*/30);
}

TEST(MaterializedFixDifferentialTest, MusicInfluenceClosure) {
  MusicConfig config;
  config.num_composers = 30;
  config.lineage_depth = 6;
  FuzzCase c;
  c.inc = GenerateMusicDb(config, PaperMusicPhysical());
  c.rec = GenerateMusicDb(config, PaperMusicPhysical());
  c.random_batch = RandomMusicBatch;
  c.spec = {"influence", "Composer", "", "master"};
  c.closure_query = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer
   where i.disciple = x.master and i.gen < 12)

select [m: j.master.name, d: j.disciple.name] from j in Influencer
)";
  RunDifferential(std::move(c), /*seed=*/4242, /*rounds=*/45,
                  /*min_committed=*/30);
}

// The registry's relation form: edges are (src_attr, dst_attr) ref pairs of
// relation tuples. Play(who, instrument) is not recursive data, but
// registration, duplicate/unknown-name refusal and drop must all work on it.
TEST(MaterializedFixDifferentialTest, RelationFormRegistryLifecycle) {
  MusicConfig config;
  config.num_composers = 12;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Session session(g.db.get());
  const MaterializedFixSpec spec{"plays", "Play", "who", "instrument"};
  ASSERT_TRUE(session.Materialize(spec).ok());

  PairVec before;
  ASSERT_TRUE(session.MaterializedRows("plays", &before).ok());
  EXPECT_FALSE(before.empty());

  // Registering twice under one name is refused; unknown extents/attrs too.
  EXPECT_EQ(session.Materialize(spec).code, Status::Code::kInvalidArgument);
  EXPECT_EQ(
      session.Materialize(MaterializedFixSpec{"x", "Nope", "", "master"}).code,
      Status::Code::kInvalidArgument);

  ASSERT_TRUE(session.DropMaterialized("plays").ok());
  EXPECT_EQ(session.MaterializedRows("plays", &before).code,
            Status::Code::kInvalidArgument);
}

// Regression: Database::Apply permits one batch to update src_attr and
// dst_attr of one relation tuple in *separate* ops. The registry must
// collect that tuple's pre- and post-image edges once per record, not once
// per op — double-counted deltas used to abort incremental maintenance
// ("delta removes unknown edge": the second removal of an edge whose
// support is 1).
TEST(MaterializedFixDifferentialTest, TwoOpUpdateOfOneTupleCollectsEdgesOnce) {
  MusicConfig config;
  config.num_composers = 12;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Session session(g.db.get());
  session.txn().SetFixPolicy(FixMaintenancePolicy::kIncremental);
  const MaterializedFixSpec spec{"plays", "Play", "who", "instrument"};
  ASSERT_TRUE(session.Materialize(spec).ok());

  const Database& db = *g.db;
  const Extent* play = db.FindExtent("Play");
  ASSERT_NE(play, nullptr);
  ASSERT_TRUE(play->alive(0));
  const Oid target = db.PayloadToOid("Play", 0);
  const int fw = db.FieldIndex("Play", "who");
  const int fi = db.FieldIndex("Play", "instrument");
  const Value old_who = play->Record(0)[fw];
  const Value old_instr = play->Record(0)[fi];

  // Move the tuple onto a (who, instrument) edge no other tuple plays, so
  // its post-image support must come out exactly 1. The generated Play data
  // collides a lot; a double-collected delta would leave the new edge with
  // support 2 — invisible in the closure pairs until the edge is removed
  // again and the phantom support strands a ghost pair.
  std::set<std::pair<Oid, Oid>> existing;
  for (uint32_t s : LiveSlots(db, "Play")) {
    existing.insert({play->Record(s)[fw].AsRef(), play->Record(s)[fi].AsRef()});
  }
  Oid new_who = Oid::Invalid(), new_instr = Oid::Invalid();
  for (uint32_t cs : LiveSlots(db, "Composer")) {
    for (uint32_t is : LiveSlots(db, "Instrument")) {
      const Oid w = db.PayloadToOid("Composer", cs);
      const Oid i = db.PayloadToOid("Instrument", is);
      if (existing.count({w, i}) == 0) {
        new_who = w;
        new_instr = i;
        break;
      }
    }
    if (new_who.valid()) break;
  }
  ASSERT_TRUE(new_who.valid()) << "every (who, instrument) pair is taken";

  MutationBatch batch;
  batch.Update("Play", target, {{"who", Value::Ref(new_who)}});
  batch.Update("Play", target, {{"instrument", Value::Ref(new_instr)}});
  const CommitResult r = session.Mutate(batch);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.views_maintained, 1u);
  EXPECT_TRUE(r.used_incremental);

  PairVec rows;
  ASSERT_TRUE(session.MaterializedRows("plays", &rows).ok());
  MaterializedFix oracle(spec);
  oracle.Recompute(db);
  EXPECT_EQ(rows, oracle.Pairs());
  EXPECT_EQ(std::count(rows.begin(), rows.end(),
                       std::make_pair(new_who, new_instr)),
            1);

  // Move it back (one op, both fields): the unique edge's support drops to
  // zero and its closure pair must vanish with it.
  MutationBatch undo;
  undo.Update("Play", target, {{"who", old_who}, {"instrument", old_instr}});
  const CommitResult r2 = session.Mutate(undo);
  ASSERT_TRUE(r2.ok()) << r2.status.ToString();
  ASSERT_TRUE(session.MaterializedRows("plays", &rows).ok());
  MaterializedFix oracle2(spec);
  oracle2.Recompute(db);
  EXPECT_EQ(rows, oracle2.Pairs());
  EXPECT_EQ(std::count(rows.begin(), rows.end(),
                       std::make_pair(new_who, new_instr)),
            0);
}

}  // namespace
}  // namespace rodin
