// B+-tree selection index and Maier–Stein path index tests, including the
// page-charging behaviour the cost model's nblevels/nbleaves terms assume.

#include <gtest/gtest.h>

#include <set>

#include "catalog/schema.h"
#include "storage/btree_index.h"
#include "storage/database.h"
#include "storage/path_index.h"

namespace rodin {
namespace {

TEST(BTreeShapeTest, SmallIndexHasOneLeafOneLevel) {
  BTreeShape shape;
  shape.Build(10, 16, 100);
  EXPECT_EQ(shape.nbleaves(), 1u);
  EXPECT_EQ(shape.nblevels(), 1u);
  EXPECT_EQ(shape.total_pages(), 2u);  // leaf + root
}

TEST(BTreeShapeTest, LeafCountScalesWithEntries) {
  BTreeShape shape;
  shape.Build(100000, 16, 0);
  // 4096/16 = 256 entries per leaf -> ~391 leaves.
  EXPECT_NEAR(static_cast<double>(shape.nbleaves()), 391, 2);
  EXPECT_GE(shape.nblevels(), 2u);
}

TEST(BTreeShapeTest, EmptyIndexStillWellFormed) {
  BTreeShape shape;
  shape.Build(0, 16, 0);
  EXPECT_EQ(shape.nbleaves(), 1u);
  EXPECT_GE(shape.nblevels(), 1u);
}

TEST(BTreeShapeTest, DescentChargesOnePagePerLevel) {
  BTreeShape shape;
  shape.Build(100000, 16, 0);
  BufferPool pool(1000);
  shape.ChargeDescent(0, &pool);
  EXPECT_EQ(pool.stats().fetches, shape.nblevels());
}

TEST(BTreeIndexTest, EqualityLookup) {
  std::vector<std::pair<Value, uint64_t>> entries;
  for (uint64_t i = 0; i < 1000; ++i) {
    entries.emplace_back(Value::Int(static_cast<int64_t>(i % 100)), i);
  }
  BTreeIndex index("t.k", "k");
  index.Build(std::move(entries), 16, 0);
  EXPECT_EQ(index.num_entries(), 1000u);
  EXPECT_EQ(index.num_distinct_keys(), 100u);

  BufferPool pool(100);
  const std::vector<uint64_t> hits = index.Lookup(Value::Int(7), &pool);
  EXPECT_EQ(hits.size(), 10u);
  for (uint64_t payload : hits) {
    EXPECT_EQ(payload % 100, 7u);
  }
  EXPECT_GT(pool.stats().fetches, 0u);
}

TEST(BTreeIndexTest, LookupMissReturnsEmpty) {
  BTreeIndex index("t.k", "k");
  index.Build({{Value::Int(1), 0}, {Value::Int(3), 1}}, 16, 0);
  BufferPool pool(10);
  EXPECT_TRUE(index.Lookup(Value::Int(2), &pool).empty());
  EXPECT_TRUE(index.Lookup(Value::Str("x"), &pool).empty());
}

TEST(BTreeIndexTest, StringKeys) {
  BTreeIndex index("t.s", "s");
  index.Build({{Value::Str("bach"), 1},
               {Value::Str("mozart"), 2},
               {Value::Str("bach"), 3}},
              32, 0);
  const std::vector<uint64_t> hits = index.Lookup(Value::Str("bach"), nullptr);
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 3}));
}

TEST(BTreeIndexTest, RangeLookupBounds) {
  std::vector<std::pair<Value, uint64_t>> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.emplace_back(Value::Int(static_cast<int64_t>(i)), i);
  }
  BTreeIndex index("t.k", "k");
  index.Build(std::move(entries), 16, 0);

  // k >= 90 (inclusive lower bound).
  auto ge = index.RangeLookup(Value::Int(90), false, Value::Null(), false,
                              nullptr);
  EXPECT_EQ(ge.size(), 10u);
  // k > 90 (strict).
  auto gt = index.RangeLookup(Value::Int(90), true, Value::Null(), false,
                              nullptr);
  EXPECT_EQ(gt.size(), 9u);
  // k <= 10.
  auto le = index.RangeLookup(Value::Null(), false, Value::Int(10), false,
                              nullptr);
  EXPECT_EQ(le.size(), 11u);
  // 10 <= k < 20.
  auto band = index.RangeLookup(Value::Int(10), false, Value::Int(20), true,
                                nullptr);
  EXPECT_EQ(band.size(), 10u);
  // Empty band.
  auto none = index.RangeLookup(Value::Int(50), true, Value::Int(50), true,
                                nullptr);
  EXPECT_TRUE(none.empty());
}

class PathIndexDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = schema_.types();
    ClassDef* c = schema_.AddClass("C");
    schema_.AddAttribute(c, {"name", t.String(), false, 0, "", ""});
    ClassDef* b = schema_.AddClass("B");
    schema_.AddAttribute(b, {"cs", t.Set(t.Object("C")), false, 0, "", ""});
    ClassDef* a = schema_.AddClass("A");
    schema_.AddAttribute(a, {"bs", t.Set(t.Object("B")), false, 0, "", ""});

    db_ = std::make_unique<Database>(&schema_);
    // Two A's; each with 2 B's; each B with 3 C's.
    for (int i = 0; i < 2; ++i) {
      std::vector<Value> bs;
      for (int j = 0; j < 2; ++j) {
        std::vector<Value> cs;
        for (int k = 0; k < 3; ++k) {
          Oid c_oid = db_->NewObject("C");
          db_->Set(c_oid, "name", Value::Str("c"));
          cs.push_back(Value::Ref(c_oid));
        }
        Oid b_oid = db_->NewObject("B");
        db_->Set(b_oid, "cs", Value::MakeSet(std::move(cs)));
        bs.push_back(Value::Ref(b_oid));
      }
      Oid a_oid = db_->NewObject("A");
      db_->Set(a_oid, "bs", Value::MakeSet(std::move(bs)));
      as_.push_back(a_oid);
    }
    PhysicalConfig config;
    config.path_indexes.push_back(PathIndexSpec{"A", {"bs", "cs"}});
    db_->Finalize(std::move(config));
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
  std::vector<Oid> as_;
};

TEST_F(PathIndexDbTest, BuildsEveryInstantiation) {
  const PathIndex* index = db_->FindPathIndex("A", {"bs", "cs"});
  ASSERT_NE(index, nullptr);
  // 2 A * 2 B * 3 C = 12 entries of arity 3.
  EXPECT_EQ(index->num_entries(), 12u);
  EXPECT_EQ(index->path_length(), 2u);
  EXPECT_EQ(index->PathString(), "bs.cs");
}

TEST_F(PathIndexDbTest, LookupReturnsHeadsInstantiations) {
  const PathIndex* index = db_->FindPathIndex("A", {"bs", "cs"});
  BufferPool pool(10);
  const auto entries = index->Lookup(as_[0], &pool);
  EXPECT_EQ(entries.size(), 6u);  // 2 B * 3 C
  for (const std::vector<Oid>* e : entries) {
    ASSERT_EQ(e->size(), 3u);
    EXPECT_EQ((*e)[0], as_[0]);
  }
  EXPECT_GT(pool.stats().fetches, 0u);
}

TEST_F(PathIndexDbTest, LookupUnknownHeadEmpty) {
  const PathIndex* index = db_->FindPathIndex("A", {"bs", "cs"});
  EXPECT_TRUE(index->Lookup(Oid{99, 99}, nullptr).empty());
}

TEST_F(PathIndexDbTest, ExactPathMatchOnly) {
  EXPECT_EQ(db_->FindPathIndex("A", {"bs"}), nullptr);
  EXPECT_EQ(db_->FindPathIndex("B", {"cs"}), nullptr);
}

}  // namespace
}  // namespace rodin
