// Differential fuzz harness for the bytecode VM (src/exec/vm/): compiled
// evaluation must be indistinguishable from the interpreter in everything
// except wall time.
//
// Two layers:
//
//  1. Expression-level: hundreds of randomly generated predicate / value /
//     projection programs over the music schema, compiled and run against
//     real rows next to EvalPred / EvalMulti, comparing results, method
//     counters AND the exact page-charge sequence (Navigate runs inside the
//     VM, so every dereference must land in the same order).
//
//  2. Query-level: randomized SPJ and recursive queries optimized and
//     executed with compiled_eval on, over batch sizes {1, 7, 1024} x
//     threads {1, 4}, against the interpreted batched engine as oracle —
//     rows, every ExecCounters field, pool fetch/hit/miss totals and
//     MeasuredCost() must be bit-identical.
//
// Seeds shift with RODIN_TEST_SEED (see tests/test_seed.h); failures log the
// effective seed and the generated program's disassembly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/eval_core.h"
#include "exec/executor.h"
#include "exec/vm/bytecode.h"
#include "exec/vm/compiler.h"
#include "exec/vm/vm.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/query_graph.h"
#include "test_seed.h"

namespace rodin {
namespace {

// --- Layer 1: expression programs ------------------------------------------

/// Records the exact charge sequence, so interpreted and compiled runs can
/// be compared dereference by dereference, not just in total.
struct VecCharger : PageCharger {
  std::vector<PageId> pages;
  void Charge(PageId page) override { pages.push_back(page); }
};

/// One evaluation's observable side effects, packaged for exact comparison.
struct EvalFingerprint {
  std::string result;
  uint64_t method_calls = 0;
  uint64_t method_cost_fp = 0;
  std::vector<PageId> charges;

  friend bool operator==(const EvalFingerprint& a, const EvalFingerprint& b) {
    return a.result == b.result && a.method_calls == b.method_calls &&
           a.method_cost_fp == b.method_cost_fp && a.charges == b.charges;
  }
};

std::string Join(const std::vector<Value>& vals) {
  std::string out;
  for (const Value& v : vals) out += v.ToString() + "|";
  return out;
}

/// Attribute paths of the music schema reachable from a Composer row,
/// spanning atomic ints/strings, multi-step object navigation, collection
/// fan-out and the computed `age` attribute (method calls + cost).
const std::vector<std::vector<std::string>>& ComposerPaths() {
  static const std::vector<std::vector<std::string>> kPaths = {
      {"name"},
      {"birthyear"},
      {"age"},
      {},  // the raw object reference
      {"master"},
      {"master", "name"},
      {"master", "birthyear"},
      {"works", "title"},
      {"works", "instruments", "iname"},
      {"works", "instruments", "family"},
      {"master", "works", "instruments", "iname"},
  };
  return kPaths;
}

Value RandomLiteral(Rng* rng) {
  switch (rng->Below(6)) {
    case 0:
      return Value::Int(rng->Range(1600, 1750));
    case 1:
      return Value::Real(1650.0 + rng->NextDouble() * 100.0);
    case 2: {
      static const char* kStrings[] = {"harpsichord", "flute", "keyboard",
                                       "string", "composer_3", ""};
      return Value::Str(kStrings[rng->Below(6)]);
    }
    case 3:
      return Value::Bool(rng->Chance(0.5));
    case 4:
      return Value::Null();
    default:
      return Value::Int(static_cast<int64_t>(rng->Below(10)));
  }
}

CompareOp RandomCmpOp(Rng* rng) {
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe};
  return kOps[rng->Below(6)];
}

ExprPtr GenValue(Rng* rng, int depth);
ExprPtr GenPred(Rng* rng, int depth);

/// Arithmetic operands must be numeric — Value::AsNumber asserts on
/// strings/bools/nulls in the interpreter and the VM alike, exactly like
/// the type-checked queries the builder produces.
ExprPtr GenNumeric(Rng* rng, int depth) {
  const uint64_t pick = rng->Below(depth <= 0 ? 2 : 3);
  switch (pick) {
    case 0:
      return rng->Chance(0.5)
                 ? Expr::Lit(Value::Int(rng->Range(1600, 1750)))
                 : Expr::Lit(Value::Real(1650.0 + rng->NextDouble() * 100.0));
    case 1: {
      static const std::vector<std::vector<std::string>> kNumericPaths = {
          {"birthyear"}, {"age"}, {"master", "birthyear"}};
      return Expr::Path("x", kNumericPaths[rng->Below(3)]);
    }
    default:
      return Expr::Arith(rng->Chance(0.5) ? ArithOp::kAdd : ArithOp::kSub,
                         GenNumeric(rng, depth - 1),
                         GenNumeric(rng, depth - 1));
  }
}

ExprPtr GenValue(Rng* rng, int depth) {
  const uint64_t pick = rng->Below(depth <= 0 ? 2 : 4);
  switch (pick) {
    case 0:
      return Expr::Lit(RandomLiteral(rng));
    case 1: {
      const auto& paths = ComposerPaths();
      return Expr::Path("x", paths[rng->Below(paths.size())]);
    }
    case 2:
      return Expr::Arith(rng->Chance(0.5) ? ArithOp::kAdd : ArithOp::kSub,
                         GenNumeric(rng, depth - 1),
                         GenNumeric(rng, depth - 1));
    default:
      // A predicate in value position (EvalMulti yields a single Bool).
      return GenPred(rng, depth - 1);
  }
}

ExprPtr GenPred(Rng* rng, int depth) {
  const uint64_t pick = rng->Below(depth <= 0 ? 3 : 6);
  switch (pick) {
    case 0: {
      // Biased toward path-vs-literal (the fused-compare fast path), with
      // the literal on either side.
      const auto& paths = ComposerPaths();
      ExprPtr path = Expr::Path("x", paths[rng->Below(paths.size())]);
      ExprPtr lit = Expr::Lit(RandomLiteral(rng));
      return rng->Chance(0.5)
                 ? Expr::Cmp(RandomCmpOp(rng), std::move(path), std::move(lit))
                 : Expr::Cmp(RandomCmpOp(rng), std::move(lit),
                             std::move(path));
    }
    case 1:
      // General compare: arbitrary value expressions on both sides.
      return Expr::Cmp(RandomCmpOp(rng), GenValue(rng, depth - 1),
                       GenValue(rng, depth - 1));
    case 2:
      return rng->Chance(0.5)
                 ? Expr::Lit(RandomLiteral(rng))
                 : Expr::Path("x", ComposerPaths()[rng->Below(
                                       ComposerPaths().size())]);
    case 3: {
      std::vector<ExprPtr> kids;
      const int n = 2 + static_cast<int>(rng->Below(2));
      for (int i = 0; i < n; ++i) kids.push_back(GenPred(rng, depth - 1));
      return rng->Chance(0.5) ? Expr::And(std::move(kids))
                              : Expr::Or(std::move(kids));
    }
    case 4:
      return Expr::Not(GenPred(rng, depth - 1));
    default:
      return Expr::Arith(ArithOp::kAdd, GenNumeric(rng, depth - 1),
                         GenNumeric(rng, depth - 1));  // bare arith: false
  }
}

class VmExpressionFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 36;
    config.lineage_depth = 6;
    config.seed = 1234 + TestSeedBase();
    g_ = GenerateMusicDb(config, PaperMusicPhysical());

    schema_.cols = {{"x", g_.schema->FindClass("Composer")}};
    const Database::ScanSource src =
        g_.db->ResolveScan(EntityRef{"Composer", 0, 0});
    for (uint32_t slot : *src.slots) {
      rows_.push_back(Row{Value::Ref(Oid{src.base_class, slot})});
    }
    ASSERT_FALSE(rows_.empty());
  }

  /// Runs `fn` with a fresh fingerprinting EvalContext and returns what it
  /// observed.
  template <typename Fn>
  EvalFingerprint Observe(vm::VmScratch* scratch, Fn&& fn) {
    EvalFingerprint fp;
    VecCharger charger;
    uint64_t predicate_evals = 0;
    EvalContext ctx;
    ctx.db = g_.db.get();
    ctx.charger = &charger;
    ctx.predicate_evals = &predicate_evals;
    ctx.method_calls = &fp.method_calls;
    ctx.method_cost_fp = &fp.method_cost_fp;
    ctx.vm = scratch;
    fp.result = fn(&ctx);
    fp.charges = std::move(charger.pages);
    return fp;
  }

  GeneratedDb g_;
  RowSchema schema_;
  std::vector<Row> rows_;
};

TEST_F(VmExpressionFuzz, PredicateProgramsMatchInterpreter) {
  const uint64_t seed = 77 + TestSeedBase();
  Rng rng(seed);
  size_t compiled_count = 0;
  constexpr int kPrograms = 120;
  for (int prog = 0; prog < kPrograms; ++prog) {
    const ExprPtr pred = GenPred(&rng, 3);
    const auto chunk = vm::CompilePredicate(pred, schema_);
    if (!chunk.has_value()) continue;  // interpreter fallback is always legal
    ++compiled_count;
    vm::VmScratch scratch;
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Row& row = rows_[r];
      const EvalFingerprint want = Observe(nullptr, [&](EvalContext* ctx) {
        return std::string(EvalPred(ctx, schema_, row, pred) ? "T" : "F");
      });
      const EvalFingerprint got = Observe(&scratch, [&](EvalContext* ctx) {
        return std::string(vm::RunPred(*chunk, ctx, row, &scratch) ? "T"
                                                                   : "F");
      });
      ASSERT_EQ(got, want)
          << "seed=" << seed << " (RODIN_TEST_SEED shifts) program=" << prog
          << " row=" << r << "\npred: " << pred->ToString() << "\n"
          << chunk->Disassemble();
    }
  }
  // The generator leans on resolvable paths, so the vast majority of
  // programs must actually compile — a silent mass fallback would turn this
  // test into a no-op.
  EXPECT_GT(compiled_count, kPrograms / 2) << "seed=" << seed;
}

TEST_F(VmExpressionFuzz, ValueProgramsMatchInterpreter) {
  const uint64_t seed = 177 + TestSeedBase();
  Rng rng(seed);
  size_t compiled_count = 0;
  constexpr int kPrograms = 80;
  for (int prog = 0; prog < kPrograms; ++prog) {
    const ExprPtr expr = GenValue(&rng, 3);
    const auto chunk = vm::CompileMulti(expr, schema_);
    if (!chunk.has_value()) continue;
    ++compiled_count;
    vm::VmScratch scratch;
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Row& row = rows_[r];
      const EvalFingerprint want = Observe(nullptr, [&](EvalContext* ctx) {
        return Join(EvalMulti(ctx, schema_, row, expr));
      });
      const EvalFingerprint got = Observe(&scratch, [&](EvalContext* ctx) {
        return Join(vm::RunMulti(*chunk, ctx, row, &scratch));
      });
      ASSERT_EQ(got, want)
          << "seed=" << seed << " (RODIN_TEST_SEED shifts) program=" << prog
          << " row=" << r << "\nexpr: " << expr->ToString() << "\n"
          << chunk->Disassemble();
    }
  }
  EXPECT_GT(compiled_count, kPrograms / 2) << "seed=" << seed;
}

TEST_F(VmExpressionFuzz, ProjectionProgramsMatchInterpreter) {
  const uint64_t seed = 277 + TestSeedBase();
  Rng rng(seed);
  size_t compiled_count = 0;
  constexpr int kPrograms = 50;
  for (int prog = 0; prog < kPrograms; ++prog) {
    std::vector<OutCol> proj;
    const int ncols = 1 + static_cast<int>(rng.Below(3));
    for (int c = 0; c < ncols; ++c) {
      proj.push_back(OutCol{"c" + std::to_string(c), GenValue(&rng, 2)});
    }
    const auto chunk = vm::CompileProjection(proj, schema_);
    if (!chunk.has_value()) continue;
    ++compiled_count;
    vm::VmScratch scratch;
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Row& row = rows_[r];
      // The interpreter evaluates every column in order; the compiled
      // program must leave column k's values in vregs[k] with the same side
      // effects in the same order.
      const EvalFingerprint want = Observe(nullptr, [&](EvalContext* ctx) {
        std::string out;
        for (const OutCol& col : proj) {
          out += Join(EvalMulti(ctx, schema_, row, col.expr)) + ";";
        }
        return out;
      });
      const EvalFingerprint got = Observe(&scratch, [&](EvalContext* ctx) {
        const size_t n = vm::RunProj(*chunk, ctx, row, &scratch);
        std::string out;
        for (size_t k = 0; k < n; ++k) out += Join(scratch.vregs[k]) + ";";
        return out;
      });
      ASSERT_EQ(got, want)
          << "seed=" << seed << " (RODIN_TEST_SEED shifts) program=" << prog
          << " row=" << r << "\n"
          << chunk->Disassemble();
    }
  }
  EXPECT_GT(compiled_count, kPrograms / 2) << "seed=" << seed;
}

// --- Layer 2: whole queries across the batch/thread matrix -----------------

struct ExecFingerprint {
  std::vector<std::string> rows;
  ExecCounters counters;
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double measured_cost = 0;
};

ExecFingerprint RunConfig(Database* db, const PTNode& plan,
                          const ExecOptions& options) {
  Executor exec(db);
  exec.ResetMeasurement(/*clear_buffer=*/true);
  Table t = exec.Execute(plan, options);

  ExecFingerprint fp;
  fp.rows.reserve(t.rows.size());
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    fp.rows.push_back(std::move(key));
  }
  fp.counters = exec.counters();
  const BufferPool::Stats& s = db->buffer_pool().stats();
  fp.fetches = s.fetches;
  fp.hits = s.hits;
  fp.misses = s.misses;
  fp.measured_cost = exec.MeasuredCost();
  return fp;
}

/// Interpreted batched engine as oracle (compiled_eval explicitly off, so
/// the test is meaningful even under RODIN_COMPILED_EVAL=1), compiled eval
/// across the full batch-size x thread-count matrix.
void ExpectCompiledIdentical(Database* db, const PTNode& plan,
                             const std::string& label) {
  ExecOptions interp;
  interp.compiled_eval = false;
  const ExecFingerprint want = RunConfig(db, plan, interp);

  const size_t kBatchSizes[] = {1, 7, 1024};
  const size_t kThreadCounts[] = {1, 4};
  for (size_t batch : kBatchSizes) {
    for (size_t threads : kThreadCounts) {
      SCOPED_TRACE(label + " batch_rows=" + std::to_string(batch) +
                   " exec_threads=" + std::to_string(threads));
      ExecOptions options;
      options.compiled_eval = true;
      options.batch_rows = batch;
      options.exec_threads = threads;
      const ExecFingerprint got = RunConfig(db, plan, options);

      ASSERT_EQ(got.rows, want.rows);
      EXPECT_EQ(got.counters.predicate_evals, want.counters.predicate_evals);
      EXPECT_EQ(got.counters.method_calls, want.counters.method_calls);
      EXPECT_EQ(got.counters.method_cost, want.counters.method_cost);
      EXPECT_EQ(got.counters.rows_produced, want.counters.rows_produced);
      EXPECT_EQ(got.counters.fix_iterations, want.counters.fix_iterations);
      EXPECT_EQ(got.fetches, want.fetches);
      EXPECT_EQ(got.hits, want.hits);
      EXPECT_EQ(got.misses, want.misses);
      EXPECT_EQ(got.measured_cost, want.measured_cost);  // bitwise, no ULP
    }
  }
}

QueryGraph RandomSpjQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(2));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          Expr::Path(var, {"master"})));
    }
  }
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    switch (rng->Below(4)) {
      case 0:
        node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
        break;
      case 1:
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "family"}),
            Expr::Lit(Value::Str(rng->Chance(0.5) ? "keyboard" : "string"))));
        break;
      case 2:
        // The computed attribute: compiled Navigate must charge the method
        // call and its declared cost at the same point as the interpreter.
        node.Where(Expr::Cmp(CompareOp::kGe, Expr::Path(var, {"age"}),
                             Expr::Lit(Value::Int(rng->Range(20, 60)))));
        break;
      default: {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "iname"}),
            Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
        break;
      }
    }
  }
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) node.OutPath("y", vars[0], {"birthyear"});
  return b.Build(schema);
}

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  answer.Where(Expr::Cmp(CompareOp::kLt,
                         Expr::Path("j", {"master", "birthyear"}),
                         Expr::Lit(Value::Int(rng->Range(1650, 1720)))));
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class VmQueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmQueryFuzzTest, CompiledMatchesInterpreted) {
  const uint64_t seed = GetParam() + TestSeedBase();
  SCOPED_TRACE("effective seed=" + std::to_string(seed) +
               " (RODIN_TEST_SEED shifts)");
  Rng rng(seed * 61 + 5);

  MusicConfig config;
  config.seed = seed * 17 + 3;
  config.num_composers = 40 + static_cast<uint32_t>(rng.Below(30));
  config.lineage_depth = 3 + static_cast<uint32_t>(rng.Below(6));
  PhysicalConfig physical = PaperMusicPhysical();
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  }
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  for (int round = 0; round < 2; ++round) {
    const QueryGraph spj = RandomSpjQuery(&rng, *g.schema);
    Optimizer optimizer(g.db.get(), &stats, &cost, CostBasedOptions(seed));
    OptimizeResult plan = optimizer.Optimize(spj);
    ASSERT_TRUE(plan.ok()) << plan.status.ToString() << "\n" << spj.ToString();
    ExpectCompiledIdentical(g.db.get(), *plan.plan,
                            "spj round " + std::to_string(round));
  }
  const QueryGraph rec = RandomRecursiveQuery(&rng, *g.schema);
  Optimizer optimizer(g.db.get(), &stats, &cost, CostBasedOptions(seed));
  OptimizeResult plan = optimizer.Optimize(rec);
  ASSERT_TRUE(plan.ok()) << plan.status.ToString() << "\n" << rec.ToString();
  ExpectCompiledIdentical(g.db.get(), *plan.plan, "recursive");
}

// 6 seeds x (2 SPJ + 1 recursive) = 18 optimized plans, each checked across
// the full batch-size x thread-count matrix; with layer 1's 250 expression
// programs the harness covers well over 200 generated programs per run.
INSTANTIATE_TEST_SUITE_P(Seeds, VmQueryFuzzTest,
                         ::testing::Range<uint64_t>(1, 7),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rodin
