// Cost-model drift guard: over a pool of ≥50 seeded random queries the
// *ranking* the cost model induces must track the ranking by measured
// executor cost. The guard is Spearman's rank correlation ≥ 0.7 — loose
// enough to tolerate estimation noise on individual plans, tight enough to
// catch a broken formula (the paper's argument rests on the model ordering
// alternatives correctly, not on absolute accuracy; cf. Figure 5).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"

namespace rodin {
namespace {

/// Average ranks (1-based; ties share the mean of the positions they span).
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&values](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                        + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

/// Spearman's rho = Pearson correlation of the rank vectors (the tie-robust
/// formulation; the 6Σd²/n(n²−1) shortcut is only valid without ties).
double Spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::vector<double> rx = AverageRanks(x);
  const std::vector<double> ry = AverageRanks(y);
  const double n = static_cast<double>(x.size());
  double mx = 0, my = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += rx[i];
    my += ry[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

TEST(SpearmanTest, PerfectAndInverse) {
  EXPECT_NEAR(Spearman({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
  EXPECT_NEAR(Spearman({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0, 1e-12);
}

TEST(SpearmanTest, TiesUseAverageRanks) {
  // x has a tie; monotone y still correlates but below 1.
  const double rho = Spearman({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
  // All-equal input degenerates to 0, not NaN.
  EXPECT_EQ(Spearman({5, 5, 5}, {1, 2, 3}), 0.0);
}

/// Random SPJ query over the music schema with broadly varying shape —
/// the point is cost *spread*, so arc counts and selectivities vary a lot.
QueryGraph RandomQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          rng->Chance(0.5) ? Expr::Path(var, {"master"})
                                           : Expr::Path(var, {})));
    }
  }
  const int sels = static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    if (rng->Chance(0.5)) {
      node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                           Expr::Path(var, {"birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1600, 1750)))));
    } else {
      static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
      node.Where(Expr::Eq(Expr::Path(var, {"works", "instruments", "iname"}),
                          Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
    }
  }
  node.OutPath("n", vars[0], {"name"});
  return b.Build(schema);
}

TEST(CostRankCorrelationTest, EstimatedTracksMeasuredOverFiftyQueries) {
  MusicConfig config;
  config.num_composers = 80;
  config.lineage_depth = 6;
  config.seed = 1234;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  std::vector<double> estimated;
  std::vector<double> measured;
  Rng rng(99);
  const int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    const QueryGraph q = RandomQuery(&rng, *g.schema);
    OptimizerOptions options = CostBasedOptions(7 + i);
    Optimizer opt(g.db.get(), &stats, &cost, options);
    OptimizeResult r = opt.Optimize(q);
    ASSERT_TRUE(r.ok()) << r.status.ToString() << "\n" << q.ToString();

    Executor exec(g.db.get());
    exec.ResetMeasurement(/*clear_buffer=*/true);  // cold, like the estimate
    exec.Execute(*r.plan);
    estimated.push_back(r.cost);
    measured.push_back(exec.MeasuredCost());
  }

  const double rho = Spearman(estimated, measured);
  RecordProperty("spearman_rho", std::to_string(rho));
  EXPECT_GE(rho, 0.7) << "cost model ranking drifted from measured cost "
                      << "(rho=" << rho << " over " << kQueries
                      << " random queries)";
}

}  // namespace
}  // namespace rodin
