// Differential-testing oracle for the parallel randomized search: whatever
// plan ParallelStrategy lands on for a randomized schema/database/query, the
// executed answer must equal the answer of the *untransformed* baseline PT
// (naive options: greedy join order, nothing pushed, no randomized phase).
// Plan search may only change cost, never semantics — any divergence means a
// local move or a push decision broke equivalence.
//
// Databases are randomized per seed (sizes, fanouts, selectivity fractions,
// physical design), and queries are drawn from random SPJ and random
// recursive generators. Failures reproduce from the test parameter seed.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/graph_queries.h"
#include "query/query_graph.h"

namespace rodin {
namespace {

/// Executes the chosen plan and keys every row for multiset comparison.
std::multiset<std::string> RowSet(Database* db, const PTNode& plan) {
  Executor exec(db);
  Table t = exec.Execute(plan);
  t.Dedup();
  std::multiset<std::string> rows;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    rows.insert(key);
  }
  return rows;
}

/// The oracle: parallel-search answer == untransformed-baseline answer.
void ExpectParallelMatchesBaseline(Database* db, const Stats& stats,
                                   const CostModel& cost, const QueryGraph& q,
                                   uint64_t seed) {
  // Baseline: greedy join order, never push, no randomized improvement —
  // the plainest correct PT the optimizer can produce.
  OptimizerOptions baseline = NaiveOptions(seed);
  baseline.transform.rand = RandStrategy::kNone;
  Optimizer base_opt(db, &stats, &cost, baseline);
  OptimizeResult base = base_opt.Optimize(q);
  ASSERT_TRUE(base.ok()) << base.status.ToString() << "\n" << q.ToString();

  // Subject: the full cost-based pipeline with the randomized search fanned
  // across 4 workers and enough restarts to actually move.
  OptimizerOptions subject = CostBasedOptions(seed);
  subject.search_threads = 4;
  subject.transform.rand_restarts = 4;
  Optimizer subject_opt(db, &stats, &cost, subject);
  OptimizeResult found = subject_opt.Optimize(q);
  ASSERT_TRUE(found.ok()) << found.status.ToString() << "\n" << q.ToString();

  EXPECT_EQ(RowSet(db, *found.plan), RowSet(db, *base.plan))
      << "parallel search changed the answer\n"
      << q.ToString();
}

// --- Random SPJ queries over a randomized music database -------------------

QueryGraph RandomSpjQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          rng->Chance(0.5) ? Expr::Path(var, {"master"})
                                           : Expr::Path(var, {})));
    }
  }
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    switch (rng->Below(4)) {
      case 0:
        node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
        break;
      case 1:
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "family"}),
            Expr::Lit(Value::Str(rng->Chance(0.5) ? "keyboard" : "string"))));
        break;
      case 2:
        node.Where(Expr::Eq(
            Expr::Path(var, {"master", "name"}),
            Expr::Lit(Value::Str("composer_" + std::to_string(rng->Below(8))))));
        break;
      default: {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "iname"}),
            Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
        break;
      }
    }
  }
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) node.OutPath("y", vars[0], {"birthyear"});
  return b.Build(schema);
}

// --- Random recursive queries (Influencer-style closure) -------------------

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  if (rng->Chance(0.5)) {
    static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
    answer.Where(
        Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                 Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
  } else {
    answer.Where(Expr::Cmp(CompareOp::kLt,
                           Expr::Path("j", {"master", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  }
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class DifferentialSearchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSearchTest, MusicSpjAndRecursive) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 101 + 13);

  // Randomized database: sizes, chain depth and selectivities vary per seed;
  // the physical design randomly gains selection indices (so the search has
  // real access-method choices to flip).
  MusicConfig config;
  config.seed = seed * 31 + 7;
  config.num_composers = 40 + static_cast<uint32_t>(rng.Below(50));
  config.lineage_depth = 3 + static_cast<uint32_t>(rng.Below(8));
  config.harpsichord_fraction = 0.05 + 0.25 * rng.NextDouble();
  config.works_per_composer_max = 4 + static_cast<uint32_t>(rng.Below(5));
  PhysicalConfig physical = PaperMusicPhysical();
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  }
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  }
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  for (int round = 0; round < 3; ++round) {
    const QueryGraph spj = RandomSpjQuery(&rng, *g.schema);
    ExpectParallelMatchesBaseline(g.db.get(), stats, cost, spj, seed + round);
  }
  for (int round = 0; round < 2; ++round) {
    const QueryGraph rec = RandomRecursiveQuery(&rng, *g.schema);
    ExpectParallelMatchesBaseline(g.db.get(), stats, cost, rec, seed + round);
  }
}

TEST_P(DifferentialSearchTest, GraphClosure) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 77 + 3);

  // A different schema shape entirely: the parameterized recursion substrate
  // with randomized depth, reference-path length and label selectivity.
  GraphConfig config;
  config.seed = seed * 13 + 1;
  config.num_nodes = 60 + static_cast<uint32_t>(rng.Below(60));
  config.chain_depth = 4 + static_cast<uint32_t>(rng.Below(6));
  config.path_len = static_cast<uint32_t>(rng.Below(3));
  config.num_labels = 2 + static_cast<uint32_t>(rng.Below(8));
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  const QueryGraph q = GraphClosureQuery(config, *g.schema);
  ExpectParallelMatchesBaseline(g.db.get(), stats, cost, q, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSearchTest,
                         ::testing::Range<uint64_t>(1, 7),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rodin
