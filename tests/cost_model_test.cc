// Cost-model tests: the Figure 5 formulas, selectivity estimation, buffer
// discounts, clustering awareness, and the fixpoint iteration costing.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "plan/pt.h"

namespace rodin {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 300;
    config.lineage_depth = 10;
    config.num_instruments = 20;
    g_ = GenerateMusicDb(config, WithSelIndex());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    model_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    composer_ = g_.schema->FindClass("Composer");
  }

  static PhysicalConfig WithSelIndex() {
    PhysicalConfig config = PaperMusicPhysical();
    config.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    return config;
  }

  PTPtr ComposerScan(const std::string& var = "x") {
    return MakeEntity(EntityRef{"Composer", 0, 0}, var, composer_);
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> model_;
  const ClassDef* composer_ = nullptr;
};

TEST_F(CostModelTest, EntityCostIsPageScan) {
  PTPtr e = ComposerScan();
  const double cost = model_->Annotate(e.get());
  EXPECT_DOUBLE_EQ(cost, static_cast<double>(
                             stats_->Entity(EntityRef{"Composer", 0, 0}).pages));
  EXPECT_DOUBLE_EQ(e->est_rows, 300.0);
}

TEST_F(CostModelTest, SelAddsEvalAndReducesRows) {
  PTPtr s = MakeSel(ComposerScan(),
                    Expr::Eq(Expr::Path("x", {"name"}),
                             Expr::Lit(Value::Str("Bach"))));
  const double scan = model_->Annotate(s->children[0].get());
  const double cost = model_->Annotate(s.get());
  EXPECT_GT(cost, scan);
  // name is unique: selectivity 1/300.
  EXPECT_NEAR(s->est_rows, 1.0, 0.01);
}

TEST_F(CostModelTest, IndexAccessBeatsScanForSelectivePredicate) {
  ExprPtr pred =
      Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));
  PTPtr scan_sel = MakeSel(ComposerScan(), pred);
  PTPtr idx_sel = MakeSel(ComposerScan(), pred);
  idx_sel->sel_access = SelAccess::kIndexEq;
  idx_sel->sel_index = g_.db->FindSelIndex("Composer", "name");
  idx_sel->sel_index_pred = pred;
  ASSERT_NE(idx_sel->sel_index, nullptr);
  EXPECT_LT(model_->Annotate(idx_sel.get()), model_->Annotate(scan_sel.get()));
}

TEST_F(CostModelTest, SelectivityEquality) {
  PTPtr e = ComposerScan();
  model_->Annotate(e.get());
  const double sel = model_->Selectivity(
      *e, Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))));
  EXPECT_NEAR(sel, 1.0 / 300, 1e-6);
}

TEST_F(CostModelTest, SelectivityRangeInterpolates) {
  PTPtr e = ComposerScan();
  const AttrStats& birth = stats_->Attr("Composer", "birthyear");
  const double mid = (birth.min_val + birth.max_val) / 2;
  const double sel = model_->Selectivity(
      *e, Expr::Cmp(CompareOp::kLt, Expr::Path("x", {"birthyear"}),
                    Expr::Lit(Value::Real(mid))));
  EXPECT_NEAR(sel, 0.5, 0.1);
  const double sel_hi = model_->Selectivity(
      *e, Expr::Cmp(CompareOp::kGe, Expr::Path("x", {"birthyear"}),
                    Expr::Lit(Value::Real(birth.max_val))));
  EXPECT_LT(sel_hi, 0.05);
}

TEST_F(CostModelTest, SelectivityConjunctionMultiplies) {
  PTPtr e = ComposerScan();
  ExprPtr c1 =
      Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));
  const double s1 = model_->Selectivity(*e, c1);
  const double s_and = model_->Selectivity(*e, Expr::And({c1, c1}));
  EXPECT_NEAR(s_and, s1 * s1, 1e-9);
  const double s_not = model_->Selectivity(*e, Expr::Not(c1));
  EXPECT_NEAR(s_not, 1 - s1, 1e-9);
  const double s_or = model_->Selectivity(*e, Expr::Or({c1, c1}));
  EXPECT_NEAR(s_or, 1 - (1 - s1) * (1 - s1), 1e-9);
}

TEST_F(CostModelTest, OidJoinSelectivity) {
  // i.disciple = x.master over Composer oids: 1/||Composer||.
  PTPtr l = ComposerScan("a");
  PTPtr r = ComposerScan("b");
  PTPtr ej = MakeEJ(std::move(l), std::move(r),
                    Expr::Eq(Expr::Path("a", {"master"}),
                             Expr::Path("b", {"master"})),
                    JoinAlgo::kNestedLoop);
  model_->Annotate(ej.get());
  EXPECT_NEAR(ej->est_rows, 300.0 * 300.0 / 300.0, 40.0);
}

TEST_F(CostModelTest, IJCostReflectsFanout) {
  PTPtr ij = MakeIJ(ComposerScan(), "x", "works", "w",
                    g_.schema->FindClass("Composition"));
  model_->Annotate(ij.get());
  const double fanout = stats_->Attr("Composer", "works").fanout;
  EXPECT_NEAR(ij->est_rows, 300.0 * fanout, 1.0);
}

TEST_F(CostModelTest, ClusteringReducesDereferenceIO) {
  // The dereference I/O of the works traversal must shrink under
  // clustering (co-located children cost nothing to reach). Note the whole
  // IJ need not get cheaper: clustering inflates the owner extent's scan.
  MusicConfig config;
  config.num_composers = 300;
  PhysicalConfig clustered = PaperMusicPhysical();
  clustered.buffer_pages = 8;  // small buffer so fetches matter
  clustered.clustering.push_back(ClusterSpec{"Composer", "works"});
  GeneratedDb g2 = GenerateMusicDb(config, clustered);
  Stats s2 = Stats::Derive(*g2.db);
  CostModel m2(g2.db.get(), &s2);

  PhysicalConfig plain = PaperMusicPhysical();
  plain.buffer_pages = 8;
  GeneratedDb g3 = GenerateMusicDb(config, plain);
  Stats s3 = Stats::Derive(*g3.db);
  CostModel m3(g3.db.get(), &s3);

  const CostModel::PathEval pe2 =
      m2.EvalPath(g2.schema->FindClass("Composer"), {"works"});
  const CostModel::PathEval pe3 =
      m3.EvalPath(g3.schema->FindClass("Composer"), {"works"});
  EXPECT_LT(pe2.derefs[0].uncluster, 0.1);
  EXPECT_GT(pe3.derefs[0].uncluster, 0.9);
  // Both discounts cut the I/O far below the raw fetch count (clustering
  // for pe2, creation-order sequentiality for pe3).
  const double raw_fetches = 300 * pe3.fanout;
  EXPECT_LT(m2.PathIOCost(pe2, 300), 0.25 * raw_fetches);
  EXPECT_LT(m3.PathIOCost(pe3, 300), 0.25 * raw_fetches);
}

TEST_F(CostModelTest, PIJFollowsFigure5Formula) {
  const PathIndex* index =
      g_.db->FindPathIndex("Composer", {"works", "instruments"});
  ASSERT_NE(index, nullptr);
  PTPtr pij = MakePIJ(ComposerScan(), "x", {"works", "instruments"},
                      {"w", "i"},
                      {g_.schema->FindClass("Composition"),
                       g_.schema->FindClass("Instrument")},
                      index);
  model_->Annotate(pij.get());
  // Rows: ||C|| * entries/||C||= entries.
  EXPECT_NEAR(pij->est_rows, static_cast<double>(index->num_entries()), 1.0);
  EXPECT_GT(pij->est_cost, 0);
}

TEST_F(CostModelTest, RandomFetchIOBufferDiscount) {
  // Fits in buffer: at most one miss per page.
  EXPECT_DOUBLE_EQ(model_->RandomFetchIO(1000, 50), 50.0);
  EXPECT_DOUBLE_EQ(model_->RandomFetchIO(10, 50), 10.0);
  // Larger than buffer (128 pages): misses proportional to (P-B)/P.
  const double io = model_->RandomFetchIO(1000, 256);
  EXPECT_NEAR(io, 1000 * (256.0 - 128.0) / 256.0, 1.0);
  EXPECT_DOUBLE_EQ(model_->RandomFetchIO(0, 50), 0.0);
}

TEST_F(CostModelTest, RescanIO) {
  EXPECT_DOUBLE_EQ(model_->RescanIO(10, 50), 50.0);    // fits: scanned once
  EXPECT_DOUBLE_EQ(model_->RescanIO(10, 500), 5000.0);  // thrashes
}

TEST_F(CostModelTest, EvalPathChargesDerefsNotAtomicTail) {
  // x.name: single atomic step, free.
  CostModel::PathEval name = model_->EvalPath(composer_, {"name"});
  EXPECT_TRUE(name.valid);
  EXPECT_TRUE(name.derefs.empty());
  EXPECT_DOUBLE_EQ(model_->PathIOCost(name, 300), 0.0);
  EXPECT_EQ(name.terminal_attr, "name");
  // x.master.name: one dereference step charged across rows.
  CostModel::PathEval mn = model_->EvalPath(composer_, {"master", "name"});
  EXPECT_TRUE(mn.valid);
  ASSERT_EQ(mn.derefs.size(), 1u);
  EXPECT_GT(model_->PathIOCost(mn, 300), 0.0);
  // The buffer discount caps the I/O near the target's page count (the
  // sequential and random components each fault a page at most once when
  // the extent fits in the buffer).
  EXPECT_LE(model_->PathIOCost(mn, 1e9), 2 * mn.derefs[0].target_pages + 1);
  // Method call: CPU charged, no I/O for the call itself.
  CostModel::PathEval age = model_->EvalPath(composer_, {"age"});
  EXPECT_TRUE(age.valid);
  EXPECT_GT(age.cpu_per_row, 0.0);
}

TEST_F(CostModelTest, FixCostSumsIterations) {
  // Fix over composer master chains: more iterations -> more cost.
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  auto make_fix = [&](double iters) {
    PTPtr base = MakeProj(ComposerScan(),
                          {{"m", Expr::Path("x", {"master"})},
                           {"d", Expr::Path("x")}},
                          cols, true);
    PTPtr delta = MakeDelta("V", cols);
    PTPtr ej = MakeEJ(std::move(delta), ComposerScan("y"),
                      Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                      JoinAlgo::kNestedLoop);
    PTPtr rec = MakeProj(std::move(ej),
                         {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}},
                         cols, true);
    PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
    fix->est_iters = iters;
    return fix;
  };
  PTPtr short_fix = make_fix(3);
  PTPtr long_fix = make_fix(12);
  EXPECT_LT(model_->Annotate(short_fix.get()),
            model_->Annotate(long_fix.get()));
  EXPECT_GT(long_fix->est_rows, short_fix->est_rows);
}

TEST_F(CostModelTest, SharedFixpointCostedOnce) {
  // Two occurrences of the same fixpoint plan (a self-joined view): the
  // second occurrence is costed as a re-scan, so the total stays far below
  // twice the single-occurrence cost — mirroring the executor's memo.
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  auto make_fix = [&] {
    PTPtr base = MakeProj(ComposerScan(),
                          {{"m", Expr::Path("x", {"master"})},
                           {"d", Expr::Path("x")}},
                          cols, true);
    PTPtr delta = MakeDelta("V", cols);
    PTPtr ej = MakeEJ(std::move(delta), ComposerScan("y"),
                      Expr::Eq(Expr::Path("d"), Expr::Path("y", {"master"})),
                      JoinAlgo::kNestedLoop);
    PTPtr rec = MakeProj(std::move(ej),
                         {{"m", Expr::Path("m")}, {"d", Expr::Path("y")}},
                         cols, true);
    PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
    fix->est_iters = 9;
    return fix;
  };
  PTPtr one = make_fix();
  const double single = model_->Annotate(one.get());

  // Rename the second occurrence's columns so the EJ has distinct names.
  PTPtr second = make_fix();
  PTPtr renamed = MakeProj(std::move(second),
                           {{"m2", Expr::Path("m")}, {"d2", Expr::Path("d")}},
                           {{"m2", composer_}, {"d2", composer_}}, false);
  PTPtr both = MakeEJ(make_fix(), std::move(renamed),
                      Expr::Eq(Expr::Path("m"), Expr::Path("m2")),
                      JoinAlgo::kNestedLoop);
  const double doubled = model_->Annotate(both.get());
  EXPECT_GT(doubled, single);  // the join itself still costs
  // The second occurrence (under the rename projection) was served from the
  // memo: it costs a temp re-scan, a tiny fraction of the full fixpoint.
  const PTNode* fix2 = both->children[1]->children[0].get();
  ASSERT_EQ(fix2->kind, PTKind::kFix);
  EXPECT_LT(fix2->est_cost, 0.05 * single);
  EXPECT_NEAR(fix2->est_rows, one->est_rows, 1.0);
}

TEST_F(CostModelTest, AnnotateFillsWholeTree) {
  PTPtr s = MakeSel(ComposerScan(),
                    Expr::Eq(Expr::Path("x", {"name"}),
                             Expr::Lit(Value::Str("Bach"))));
  PTPtr ij = MakeIJ(std::move(s), "x", "works", "w",
                    g_.schema->FindClass("Composition"));
  model_->Annotate(ij.get());
  EXPECT_GE(ij->est_cost, 0);
  EXPECT_GE(ij->children[0]->est_cost, 0);
  EXPECT_GE(ij->children[0]->children[0]->est_cost, 0);
}

}  // namespace
}  // namespace rodin
