// Polymorphic extents: a query over a superclass must see the instances of
// every subclass (Composer isa Person, §2.1), including through relations
// typed with the superclass and with inherited attributes and methods.

#include <gtest/gtest.h>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "optimizer/baseline.h"
#include "query/builder.h"

namespace rodin {
namespace {

class PolymorphismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 30;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    session_ = std::make_unique<Session>(g_.db.get(), CostBasedOptions());
  }
  GeneratedDb g_;
  std::unique_ptr<Session> session_;
};

TEST_F(PolymorphismTest, SuperclassScanSeesSubclassInstances) {
  // The Person extent itself is empty; every person is a Composer.
  const QueryRun run =
      session_->Run("select [n: p.name] from p in Person");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run.answer.rows.size(), 30u);
}

TEST_F(PolymorphismTest, SuperclassSelectionOnInheritedAttribute) {
  const QueryRun run = session_->Run(
      R"(select [n: p.name] from p in Person where p.name = "Bach")");
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_EQ(run.answer.rows.size(), 1u);
  EXPECT_EQ(run.answer.rows[0][0].AsString(), "Bach");
}

TEST_F(PolymorphismTest, MethodOnSuperclassScan) {
  // `age` is declared on Person; instances are Composers.
  const QueryRun run = session_->Run(
      "select [n: p.name] from p in Person where p.age > 250");
  ASSERT_TRUE(run.ok()) << run.error();
  // Every composer is born 1600-1750, so all ages (vs 1992) exceed 250.
  EXPECT_EQ(run.answer.rows.size(), 30u);
}

TEST_F(PolymorphismTest, RelationTypedWithSuperclass) {
  // Play.who is Person-typed and holds Composer oids; navigating who.name
  // must work per actual instance.
  const QueryRun run = session_->Run(
      "select [n: p.who.name, i: p.instrument.iname] from p in Play");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_FALSE(run.answer.rows.empty());
}

TEST_F(PolymorphismTest, SubclassScanStaysNarrow) {
  // A Composer query must not return Person-only instances; add a bare
  // Person object and check both directions.
  MusicConfig config;
  config.num_composers = 10;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  // (Cannot add objects after Finalize; rebuild by hand instead.)
  Schema schema;
  TypePool& t = schema.types();
  ClassDef* person = schema.AddClass("Person");
  schema.AddAttribute(person, {"name", t.String(), false, 0, "", ""});
  ClassDef* composer = schema.AddClass("Composer", "Person");
  schema.AddAttribute(composer, {"works", t.Int(), false, 0, "", ""});
  Database db(&schema);
  Oid plain = db.NewObject("Person");
  db.Set(plain, "name", Value::Str("civilian"));
  Oid comp = db.NewObject("Composer");
  db.Set(comp, "name", Value::Str("maestro"));
  db.Set(comp, "works", Value::Int(3));
  db.Finalize(PhysicalConfig{});
  Session session(&db);

  const QueryRun all = session.Run("select [n: p.name] from p in Person");
  ASSERT_TRUE(all.ok()) << all.error();
  EXPECT_EQ(all.answer.rows.size(), 2u);  // both

  const QueryRun narrow =
      session.Run("select [n: c.name] from c in Composer");
  ASSERT_TRUE(narrow.ok()) << narrow.error();
  ASSERT_EQ(narrow.answer.rows.size(), 1u);
  EXPECT_EQ(narrow.answer.rows[0][0].AsString(), "maestro");
}

TEST_F(PolymorphismTest, PolymorphicJoin) {
  // Join Person with Play on identity: who = p.
  const QueryRun run = session_->Run(R"(
select [n: p.name] from p in Person, g in Play where g.who = p
)");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_FALSE(run.answer.rows.empty());
  // Every played person resolves to a composer-style name.
  for (const Row& r : run.answer.rows) {
    const std::string& name = r[0].AsString();
    EXPECT_TRUE(name == "Bach" || name.rfind("composer_", 0) == 0) << name;
  }
}

}  // namespace
}  // namespace rodin
