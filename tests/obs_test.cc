// Observability primitives: sharded counters under concurrency, histograms,
// the registry, span tracer structure and exports, and the Status type.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/decision.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rodin {
namespace {

TEST(StatusTest, OkAndError) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");

  const Status err =
      Status::Error(Status::Code::kParse, "bad token", 3, 14);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.line, 3u);
  EXPECT_EQ(err.col, 14u);
  EXPECT_NE(err.ToString().find("[parse]"), std::string::npos);
  EXPECT_NE(err.ToString().find("bad token"), std::string::npos);

  // The taxonomy's budget/fault codes and their CLI exit-code mapping.
  EXPECT_TRUE(Status::Error(Status::Code::kFault, "f").retryable());
  EXPECT_FALSE(Status::Error(Status::Code::kExec, "e").retryable());
  EXPECT_EQ(ExitCodeForStatus(Status::Ok()), 0);
  EXPECT_EQ(ExitCodeForStatus(err), 3);
  EXPECT_EQ(
      ExitCodeForStatus(Status::Error(Status::Code::kCancelled, "c")), 7);
  EXPECT_EQ(ExitCodeForStatus(
                Status::Error(Status::Code::kDeadlineExceeded, "d")),
            8);
  EXPECT_EQ(ExitCodeForStatus(
                Status::Error(Status::Code::kResourceExhausted, "r")),
            9);
  EXPECT_EQ(ExitCodeForStatus(Status::Error(Status::Code::kFault, "f")), 10);
  EXPECT_EQ(
      ExitCodeForStatus(Status::Error(Status::Code::kInternal, "i")), 11);
}

TEST(MetricsTest, CounterAddsAcrossThreads) {
  obs::Counter c("test.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  if (obs::kObsEnabled) {
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::Gauge g("test.gauge");
  g.Set(2.5);
  g.Set(7.0);
  if (obs::kObsEnabled) {
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
  }
}

TEST(MetricsTest, HistogramBucketsAndMoments) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::Histogram h("test.histogram");
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0: [1, 2)
  h.Observe(3.0);   // bucket 1: [2, 4)
  h.Observe(100.0);  // bucket 6: [64, 128)
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 104.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 104.5 / 4);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[6], 1u);
}

TEST(MetricsTest, RegistryReturnsStablePointersAndSamples) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* a = reg.GetCounter("rodin.test.registry_counter");
  obs::Counter* b = reg.GetCounter("rodin.test.registry_counter");
  EXPECT_EQ(a, b);
  a->Add(3);
  obs::Gauge* g = reg.GetGauge("rodin.test.registry_gauge");
  g->Set(1.5);

  bool found_counter = false;
  for (const obs::MetricsRegistry::Sample& s : reg.Samples()) {
    if (s.name == "rodin.test.registry_counter") {
      found_counter = true;
      EXPECT_EQ(s.kind, "counter");
      if (obs::kObsEnabled) {
        EXPECT_GE(s.value, 3.0);
      }
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_FALSE(reg.ToString().empty());
}

#if RODIN_OBS_ENABLED

TEST(TracerTest, SpansNestAndExport) {
  obs::Tracer tracer;
  const uint64_t outer = tracer.Begin("optimize", "optimizer");
  const uint64_t inner = tracer.Begin("rewrite", "optimizer");
  tracer.AddArg(inner, "views", std::string("2"));
  tracer.End(inner);
  tracer.Instant("push-sel", "transformPT", {{"before_cost", "10"}});
  tracer.End(outer);
  const std::shared_ptr<obs::Trace> trace = tracer.Finish();

  ASSERT_EQ(trace->events().size(), 3u);
  EXPECT_TRUE(trace->HasSpan("optimize"));
  EXPECT_TRUE(trace->HasSpan("rewrite"));
  EXPECT_FALSE(trace->HasSpan("nonexistent"));

  // Chrome trace_event export: one complete event per span, instants as
  // "i", valid-ish JSON shape.
  const std::string json = trace->ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rewrite\""), std::string::npos);
  EXPECT_NE(json.find("\"views\":\"2\""), std::string::npos);

  const std::string tree = trace->ToTreeString();
  EXPECT_NE(tree.find("optimize"), std::string::npos);
  EXPECT_NE(tree.find("  rewrite"), std::string::npos);  // indented child
}

TEST(TracerTest, DurationsAreMonotone) {
  obs::Tracer tracer;
  const uint64_t id = tracer.Begin("work", "test");
  tracer.End(id);
  const auto trace = tracer.Finish();
  ASSERT_EQ(trace->events().size(), 1u);
  EXPECT_GE(trace->events()[0].dur_us, 0.0);
  EXPECT_GE(trace->events()[0].ts_us, 0.0);
}

TEST(TracerTest, JsonEscapesControlAndQuoteCharacters) {
  obs::Tracer tracer;
  const uint64_t id = tracer.Begin("weird \"name\"\n", "test");
  tracer.End(id);
  const std::string json = tracer.Finish()->ToChromeJson();
  EXPECT_NE(json.find("\\\"name\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TracerTest, CapsEventsInsteadOfGrowingUnbounded) {
  obs::Tracer tracer;
  for (size_t i = 0; i < obs::Tracer::kMaxEvents + 10; ++i) {
    tracer.Instant("e", "test");
  }
  const auto trace = tracer.Finish();
  EXPECT_EQ(trace->events().size(), obs::Tracer::kMaxEvents);
  EXPECT_EQ(trace->dropped(), 10u);
}

#else  // !RODIN_OBS_ENABLED

TEST(TracerTest, CompiledOutTracerIsInert) {
  obs::Tracer tracer;
  const uint64_t id = tracer.Begin("anything", "test");
  tracer.End(id);
  tracer.Instant("e", "test");
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.Finish()->events().empty());
}

#endif  // RODIN_OBS_ENABLED

TEST(DecisionLogTest, AggregatesAndFormats) {
  DecisionLog log;
  log.moves.push_back(MoveDecision{"swap-ej", 100, 90, true, 0});
  log.moves.push_back(MoveDecision{"sel-down", 90, 95, false, 1});
  PushDecision final_push;
  final_push.kind = "push-vs-unpushed";
  final_push.pushed_cost = 40;
  final_push.unpushed_cost = 80;
  final_push.chose_push = true;
  log.pushes.push_back(final_push);

  EXPECT_EQ(log.moves_accepted(), 1u);
  const std::string s = log.ToString();
  EXPECT_NE(s.find("push-vs-unpushed"), std::string::npos);
  EXPECT_NE(s.find("moves: 2 tried, 1 accepted"), std::string::npos);
  EXPECT_NE(s.find("pushed=40.0"), std::string::npos);
  EXPECT_NE(s.find("unpushed=80.0"), std::string::npos);
}

}  // namespace
}  // namespace rodin
