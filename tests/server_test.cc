// rodin_serve integration tests: wire-codec round-trips, the live server
// end to end over real sockets (in-process, ephemeral port), concurrent
// clients multiplexing one engine, admission-control shedding, and the
// disconnect => cancellation guarantee — asserted via the server's plain
// atomic Stats (deliberately not obs metrics, so the assertions hold under
// RODIN_OBS=OFF builds too). The concurrency tests run under TSan in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/faults.h"
#include "server/client.h"
#include "server/governor.h"
#include "server/server.h"
#include "server/wire.h"

namespace rodin::server {
namespace {

constexpr const char* kSimpleQuery =
    R"(select [n: x.name] from x in Composer where x.name = "Bach")";
constexpr const char* kScanQuery = "select [n: x.name] from x in Composer";
constexpr const char* kRecursiveQuery = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [n: j.disciple.name] from j in Influencer where j.gen >= 1
)";

// ---------------------------------------------------------------- codec --

TEST(WireCodecTest, FrameHeaderRoundTrip) {
  const std::string frame = EncodeFrame(FrameType::kQuery, 42, "payload");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 7);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &header));
  EXPECT_EQ(header.payload_length, 7u);
  EXPECT_EQ(header.type, FrameType::kQuery);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "payload");
}

TEST(WireCodecTest, OversizedFrameRejected) {
  std::string frame = EncodeFrame(FrameType::kQuery, 1, "");
  // Forge a length prefix beyond the cap.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  frame[0] = static_cast<char>(huge & 0xff);
  frame[1] = static_cast<char>((huge >> 8) & 0xff);
  frame[2] = static_cast<char>((huge >> 16) & 0xff);
  frame[3] = static_cast<char>((huge >> 24) & 0xff);
  FrameHeader header;
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), &header));
}

TEST(WireCodecTest, PayloadPrimitivesRoundTripAndBoundsCheck) {
  PayloadWriter w;
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(1ull << 60);
  w.F64(-1.5);
  w.Str("hello");
  const std::string payload = w.data();

  PayloadReader r(payload.data(), payload.size());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.U8(&u8));
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.F64(&f64));
  ASSERT_TRUE(r.Str(&s));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(f64, -1.5);
  EXPECT_EQ(s, "hello");

  // Truncation poisons the reader instead of over-reading.
  PayloadReader bad(payload.data(), 3);
  ASSERT_TRUE(bad.U8(&u8));
  EXPECT_FALSE(bad.U32(&u32));
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.U64(&u64));  // stays poisoned
}

TEST(WireCodecTest, QueryOptionsRoundTripPreservesInheritRule) {
  QueryOptions original;
  original.query.deadline_ms = 250;
  original.query.memory_budget_pages = 1000;
  original.exec_threads = 4;
  original.compiled_eval = false;
  original.bypass_plan_cache = true;
  // batch_rows stays nullopt: must survive as "inherit", not become 0.

  PayloadWriter w;
  WireQueryOptions::FromQueryOptions(original).Encode(&w);
  const std::string payload = w.data();
  PayloadReader r(payload.data(), payload.size());
  WireQueryOptions wire;
  ASSERT_TRUE(wire.Decode(&r));
  EXPECT_TRUE(r.AtEnd());

  const QueryOptions decoded = wire.ToQueryOptions();
  EXPECT_EQ(decoded.query.deadline_ms, 250u);
  EXPECT_EQ(decoded.query.memory_budget_pages, 1000u);
  ASSERT_TRUE(decoded.exec_threads.has_value());
  EXPECT_EQ(*decoded.exec_threads, 4u);
  EXPECT_FALSE(decoded.batch_rows.has_value());
  ASSERT_TRUE(decoded.compiled_eval.has_value());
  EXPECT_FALSE(*decoded.compiled_eval);
  EXPECT_TRUE(decoded.bypass_plan_cache);

  QueryOptions defaults;
  PayloadWriter w2;
  WireQueryOptions::FromQueryOptions(defaults).Encode(&w2);
  const std::string payload2 = w2.data();
  PayloadReader r2(payload2.data(), payload2.size());
  WireQueryOptions wire2;
  ASSERT_TRUE(wire2.Decode(&r2));
  const QueryOptions decoded2 = wire2.ToQueryOptions();
  EXPECT_FALSE(decoded2.exec_threads.has_value());
  EXPECT_FALSE(decoded2.batch_rows.has_value());
  EXPECT_FALSE(decoded2.compiled_eval.has_value());
  EXPECT_FALSE(decoded2.feedback.enabled.has_value());
  EXPECT_EQ(decoded2.feedback.drift_threshold, 0.0);
  EXPECT_EQ(decoded2.feedback.ewma_alpha, 0.0);
  EXPECT_FALSE(decoded2.query.spill.has_value());
  EXPECT_EQ(decoded2.query.spill_budget_pages, 0u);
}

TEST(WireCodecTest, SpillOptionsRoundTripOnV4AndDropOnV3) {
  QueryOptions original;
  original.query.spill = true;
  original.query.spill_budget_pages = 4096;

  // v4 (the default): tri-state and ledger budget round-trip exactly.
  PayloadWriter w;
  WireQueryOptions::FromQueryOptions(original).Encode(&w);
  const std::string payload = w.data();
  PayloadReader r(payload.data(), payload.size());
  WireQueryOptions wire;
  ASSERT_TRUE(wire.Decode(&r));
  EXPECT_TRUE(r.AtEnd());
  const QueryOptions decoded = wire.ToQueryOptions();
  ASSERT_TRUE(decoded.query.spill.has_value());
  EXPECT_TRUE(*decoded.query.spill);
  EXPECT_EQ(decoded.query.spill_budget_pages, 4096u);

  // Explicit "off" is distinct from "inherit", and a budget-only block
  // (no tri-state) keeps the tri-state as inherit.
  QueryOptions off;
  off.query.spill = false;
  PayloadWriter woff;
  WireQueryOptions::FromQueryOptions(off).Encode(&woff);
  const std::string poff = woff.data();
  PayloadReader roff(poff.data(), poff.size());
  WireQueryOptions wireoff;
  ASSERT_TRUE(wireoff.Decode(&roff));
  EXPECT_TRUE(roff.AtEnd());
  ASSERT_TRUE(wireoff.spill.has_value());
  EXPECT_FALSE(*wireoff.spill);
  EXPECT_EQ(wireoff.spill_budget_pages, 0u);

  QueryOptions budget_only;
  budget_only.query.spill_budget_pages = 7;
  PayloadWriter wb;
  WireQueryOptions::FromQueryOptions(budget_only).Encode(&wb);
  const std::string pb = wb.data();
  PayloadReader rb(pb.data(), pb.size());
  WireQueryOptions wireb;
  ASSERT_TRUE(wireb.Decode(&rb));
  EXPECT_TRUE(rb.AtEnd());
  EXPECT_FALSE(wireb.spill.has_value());
  EXPECT_EQ(wireb.spill_budget_pages, 7u);

  // Encoding for a v3 peer drops the v4 block entirely: the payload is
  // byte-identical to one from a client that never heard of spilling.
  PayloadWriter w3;
  WireQueryOptions::FromQueryOptions(original).Encode(&w3, /*version=*/3);
  PayloadWriter w3plain;
  WireQueryOptions::FromQueryOptions(QueryOptions{}).Encode(&w3plain,
                                                            /*version=*/3);
  EXPECT_EQ(w3.data(), w3plain.data());
  const std::string p3 = w3.data();
  PayloadReader r3(p3.data(), p3.size());
  WireQueryOptions wire3;
  ASSERT_TRUE(wire3.Decode(&r3));
  EXPECT_TRUE(r3.AtEnd());
  EXPECT_FALSE(wire3.spill.has_value());
  EXPECT_EQ(wire3.spill_budget_pages, 0u);
}

TEST(WireCodecTest, FeedbackOptionsRoundTripOnV3AndDropOnV2) {
  QueryOptions original;
  original.feedback.enabled = true;
  original.feedback.drift_threshold = 2.5;
  original.feedback.ewma_alpha = 0.25;

  // v3 (the default): tri-state and tuning tail round-trip exactly.
  PayloadWriter w;
  WireQueryOptions::FromQueryOptions(original).Encode(&w);
  const std::string payload = w.data();
  PayloadReader r(payload.data(), payload.size());
  WireQueryOptions wire;
  ASSERT_TRUE(wire.Decode(&r));
  EXPECT_TRUE(r.AtEnd());
  const QueryOptions decoded = wire.ToQueryOptions();
  ASSERT_TRUE(decoded.feedback.enabled.has_value());
  EXPECT_TRUE(*decoded.feedback.enabled);
  EXPECT_EQ(decoded.feedback.drift_threshold, 2.5);
  EXPECT_EQ(decoded.feedback.ewma_alpha, 0.25);

  // Explicit "off" is distinct from "inherit".
  QueryOptions off;
  off.feedback.enabled = false;
  PayloadWriter woff;
  WireQueryOptions::FromQueryOptions(off).Encode(&woff);
  const std::string poff = woff.data();
  PayloadReader roff(poff.data(), poff.size());
  WireQueryOptions wireoff;
  ASSERT_TRUE(wireoff.Decode(&roff));
  EXPECT_TRUE(roff.AtEnd());
  ASSERT_TRUE(wireoff.feedback.has_value());
  EXPECT_FALSE(*wireoff.feedback);

  // Encoding for a v2 peer drops the v3 fields entirely: the payload is
  // byte-identical to one from a client that never heard of feedback, so
  // old servers decode it unchanged.
  PayloadWriter w2;
  WireQueryOptions::FromQueryOptions(original).Encode(&w2, /*version=*/2);
  PayloadWriter w2plain;
  WireQueryOptions::FromQueryOptions(QueryOptions{}).Encode(&w2plain,
                                                           /*version=*/2);
  EXPECT_EQ(w2.data(), w2plain.data());
  const std::string p2 = w2.data();
  PayloadReader r2(p2.data(), p2.size());
  WireQueryOptions wire2;
  ASSERT_TRUE(wire2.Decode(&r2));
  EXPECT_TRUE(r2.AtEnd());
  EXPECT_FALSE(wire2.feedback.has_value());
  EXPECT_EQ(wire2.feedback_drift, 0.0);
  EXPECT_EQ(wire2.feedback_alpha, 0.0);
}

TEST(WireCodecTest, ValuesRoundTrip) {
  PayloadWriter w;
  EncodeValue(Value::Null(), &w);
  EncodeValue(Value::Bool(true), &w);
  EncodeValue(Value::Int(-12345), &w);
  EncodeValue(Value::Real(2.75), &w);
  EncodeValue(Value::Str("Bach"), &w);
  EncodeValue(Value::Ref(Oid{3, 9}), &w);  // renders as a string

  const std::string payload = w.data();
  PayloadReader r(payload.data(), payload.size());
  Value v;
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.AsBool());
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_EQ(v.AsInt(), -12345);
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_EQ(v.AsReal(), 2.75);
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_EQ(v.AsString(), "Bach");
  ASSERT_TRUE(DecodeValue(&r, &v));
  EXPECT_TRUE(v.is_string());  // rendered ref decodes as a string
  EXPECT_EQ(v.AsString(), Value::Ref(Oid{3, 9}).ToString());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireCodecTest, MutationValueNestingDepthCapped) {
  auto nested = [](int depth) {
    Value v = Value::Int(1);
    for (int i = 0; i < depth; ++i) {
      std::vector<Value> elems;
      elems.push_back(std::move(v));
      v = Value::MakeSet(std::move(elems));
    }
    return v;
  };
  auto decodes = [](const MutationBatch& batch) {
    PayloadWriter w;
    EncodeMutationBatch(batch, &w);
    const std::string payload = w.data();
    PayloadReader r(payload.data(), payload.size());
    MutationBatch out;
    return DecodeMutationBatch(&r, &out) && r.AtEnd();
  };
  MutationBatch shallow;
  shallow.Insert("Composer", {{"x", nested(8)}});
  EXPECT_TRUE(decodes(shallow));
  // A hostile frame of nothing but set headers is ~5 bytes per level, so
  // the 16 MiB payload cap still allows millions of levels: the decoder
  // must refuse past its depth cap instead of recursing off the stack.
  MutationBatch hostile;
  hostile.Insert("Composer", {{"x", nested(64)}});
  EXPECT_FALSE(decodes(hostile));
}

TEST(WireCodecTest, StatusPayloadRoundTripKeepsDetailAndRetryable) {
  Status overloaded =
      Status::Error(Status::Code::kOverloaded, "server overloaded");
  overloaded.detail = 64;
  const std::string payload = EncodeStatusPayload(overloaded, 0, -1);
  PayloadReader r(payload.data(), payload.size());
  Status decoded;
  uint64_t rows;
  double cost;
  ASSERT_TRUE(DecodeStatusPayload(&r, &decoded, &rows, &cost));
  EXPECT_EQ(decoded.code, Status::Code::kOverloaded);
  EXPECT_EQ(decoded.detail, 64u);
  EXPECT_TRUE(decoded.retryable());
  EXPECT_EQ(decoded.message, "server overloaded");
  EXPECT_EQ(cost, -1.0);
}

// The wire codes are protocol constants shared with every client ever
// shipped: renumbering the table in common/status.h is a breaking change
// this test is meant to catch.
TEST(WireCodecTest, WireCodeTableIsStable) {
  auto wire = [](Status::Code code) {
    return WireCodeForStatus(Status::Error(code, ""));
  };
  EXPECT_EQ(WireCodeForStatus(Status::Ok()), 0);
  EXPECT_EQ(wire(Status::Code::kParse), 1);
  EXPECT_EQ(wire(Status::Code::kSemantic), 2);
  EXPECT_EQ(wire(Status::Code::kOptimize), 3);
  EXPECT_EQ(wire(Status::Code::kExec), 4);
  EXPECT_EQ(wire(Status::Code::kCancelled), 5);
  EXPECT_EQ(wire(Status::Code::kDeadlineExceeded), 6);
  EXPECT_EQ(wire(Status::Code::kResourceExhausted), 7);
  EXPECT_EQ(wire(Status::Code::kFault), 8);
  EXPECT_EQ(wire(Status::Code::kInternal), 9);
  EXPECT_EQ(wire(Status::Code::kInvalidArgument), 10);
  EXPECT_EQ(wire(Status::Code::kOverloaded), 11);

  bool known = true;
  EXPECT_EQ(StatusCodeFromWire(200, &known), Status::Code::kInternal);
  EXPECT_FALSE(known);
  for (uint8_t code = 0; code <= 11; ++code) {
    known = false;
    StatusCodeFromWire(code, &known);
    EXPECT_TRUE(known) << static_cast<int>(code);
  }
}

// ------------------------------------------------------------- governor --

TEST(GovernorTest, ShedsBeyondCapacityWithTypedStatus) {
  Governor governor(2);
  EXPECT_TRUE(governor.Admit().ok());
  EXPECT_TRUE(governor.Admit().ok());
  const Status shed = governor.Admit();
  EXPECT_EQ(shed.code, Status::Code::kOverloaded);
  EXPECT_TRUE(shed.retryable());
  EXPECT_EQ(shed.detail, 2u);  // in-flight count rides in detail
  governor.Release();
  EXPECT_TRUE(governor.Admit().ok());

  const Governor::Snapshot snapshot = governor.snapshot();
  EXPECT_EQ(snapshot.admitted, 3u);
  EXPECT_EQ(snapshot.shed, 1u);
  EXPECT_EQ(snapshot.in_flight, 2u);
  EXPECT_EQ(snapshot.peak_in_flight, 2u);
}

// --------------------------------------------------------------- server --

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(uint32_t size, size_t workers, size_t max_in_flight) {
    EngineOptions engine_options;
    engine_options.size = size;
    Status status;
    engine_ = EngineHandle::Create(engine_options, &status);
    ASSERT_NE(engine_, nullptr) << status.ToString();

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.workers = workers;
    server_options.max_in_flight = max_in_flight;
    server_ = Server::Start(engine_.get(), server_options, &status);
    ASSERT_NE(server_, nullptr) << status.ToString();
  }

  Client Connected() {
    Client client;
    const Status s = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

  /// Polls `pred` against the server stats until true or the wall-clock
  /// deadline passes. The cap is deliberately huge: on a single-core,
  /// oversubscribed runner a cancelled query can need tens of seconds of
  /// wall clock just to reach its next poll point and retire. A passing
  /// test returns on the first true poll and never waits it out.
  bool EventuallyTrue(const std::function<bool(const Server::Stats&)>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred(server_->stats());
  }

  std::unique_ptr<EngineHandle> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HelloHandshakeAssignsConnectionIds) {
  StartServer(/*size=*/40, /*workers=*/2, /*max_in_flight=*/4);
  Client a = Connected();
  Client b = Connected();
  EXPECT_NE(a.connection_id(), 0u);
  EXPECT_NE(b.connection_id(), 0u);
  EXPECT_NE(a.connection_id(), b.connection_id());
  EXPECT_EQ(server_->stats().connections_accepted, 2u);
  a.Goodbye();
  b.Goodbye();
  EXPECT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.connections_active == 0; }));
}

TEST_F(ServerTest, QueryRoundTripMatchesEmbeddedSession) {
  StartServer(40, 2, 4);
  Client client = Connected();
  const ClientResult result = client.Query(kSimpleQuery);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ASSERT_EQ(result.columns, std::vector<std::string>{"n"});
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString(), "Bach");
  EXPECT_EQ(result.rows_produced, 1u);
  EXPECT_EQ(result.rows_streamed, 1u);
  EXPECT_GE(result.measured_cost, 0);

  // The same engine answers identically through the embedding API.
  std::unique_ptr<Session> session = engine_->NewSession();
  const QueryRun run = session->Run(kSimpleQuery);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.answer.rows.size(), result.rows.size());
  EXPECT_EQ(run.answer.rows[0][0].Compare(result.rows[0][0]), 0);

  const Server::Stats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok, 1u);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.rows_streamed, 1u);
}

TEST_F(ServerTest, RecursiveQueryStreamsAllRows) {
  StartServer(60, 2, 4);
  Client client = Connected();
  const ClientResult result = client.Query(kRecursiveQuery);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.rows.size(), 50u);
  EXPECT_EQ(result.rows_streamed, result.rows_produced);

  std::unique_ptr<Session> session = engine_->NewSession();
  const QueryRun run = session->Run(kRecursiveQuery);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.answer.rows.size(), result.rows.size());
  for (size_t i = 0; i < run.answer.rows.size(); ++i) {
    EXPECT_EQ(run.answer.rows[i][0].Compare(result.rows[i][0]), 0) << i;
  }
}

TEST_F(ServerTest, PrepareExecuteHitsSharedPlanCache) {
  StartServer(40, 2, 4);
  Client client = Connected();
  uint64_t statement_id = 0;
  ASSERT_TRUE(client.Prepare(kSimpleQuery, &statement_id).ok());
  EXPECT_NE(statement_id, 0u);

  const ClientResult first = client.Execute(statement_id);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  const ClientResult second = client.Execute(statement_id);
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  ASSERT_EQ(first.rows.size(), second.rows.size());
  EXPECT_EQ(first.rows[0][0].Compare(second.rows[0][0]), 0);

  // The server's sessions share the engine's plan cache, so the repeat
  // execution is a cache hit — unless caching is disabled process-wide or
  // bypassed because the fault injector is live (RODIN_FAULTS).
  if (PlanCacheEnabledByEnv() && !FaultInjector::Global().enabled()) {
    EXPECT_GE(engine_->plan_cache()->stats().hits, 1u);
  }
}

TEST_F(ServerTest, ErrorTaxonomyTravelsTheWire) {
  StartServer(40, 2, 4);
  Client client = Connected();

  const ClientResult parse = client.Query("select [n x.name] from Composer");
  EXPECT_EQ(parse.status.code, Status::Code::kParse);
  EXPECT_FALSE(parse.status.message.empty());

  const ClientResult unknown = client.Execute(/*statement_id=*/999);
  EXPECT_EQ(unknown.status.code, Status::Code::kInvalidArgument);

  // The connection survives request-level errors.
  const ClientResult ok = client.Query(kSimpleQuery);
  EXPECT_TRUE(ok.ok()) << ok.status.ToString();
}

TEST_F(ServerTest, DeadlineTravelsTheWire) {
  StartServer(120, 2, 4);
  Client client = Connected();
  QueryOptions options;
  options.query.deadline_ms = 1;
  const ClientResult result = client.Query(kRecursiveQuery, options);
  // Either the deadline tripped server-side or the tiny engine beat the
  // clock; both are legal — anything else is a failure.
  if (!result.ok()) {
    EXPECT_EQ(result.status.code, Status::Code::kDeadlineExceeded)
        << result.status.ToString();
  }
}

TEST_F(ServerTest, ShedUnderLoadReturnsTypedOverloaded) {
  StartServer(200, /*workers=*/2, /*max_in_flight=*/1);

  // Occupy the single admission slot with a slow recursive query...
  std::thread occupant([&] {
    Client slow = Connected();
    QueryOptions options;
    options.batch_rows = 1;
    const ClientResult r = slow.Query(kRecursiveQuery, options);
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    slow.Goodbye();
  });
  ASSERT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.admission.in_flight >= 1; }));

  // ...then get shed, typed and retryable, with the in-flight count in
  // detail — never a queue, never a hang.
  Client shed_client = Connected();
  const ClientResult shed = shed_client.Query(kSimpleQuery);
  occupant.join();
  ASSERT_EQ(shed.status.code, Status::Code::kOverloaded)
      << shed.status.ToString();
  EXPECT_TRUE(shed.status.retryable());
  EXPECT_EQ(shed.status.detail, 1u);
  EXPECT_GE(server_->stats().admission.shed, 1u);

  // After the occupant drains, the slot frees up and the same connection
  // can retry successfully — the shed was non-destructive.
  ASSERT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.admission.in_flight == 0; }));
  const ClientResult retry = shed_client.Query(kSimpleQuery);
  EXPECT_TRUE(retry.ok()) << retry.status.ToString();
}

TEST_F(ServerTest, DisconnectMidStreamCancelsTheQuery) {
  StartServer(300, 2, 4);
  Client client = Connected();
  QueryOptions options;
  options.batch_rows = 1;  // one row per ROWS frame: a long streaming window
  // Abruptly close the socket after two rows of a many-thousand-row
  // recursive answer. The I/O thread must observe the hangup and trip the
  // query's CancelToken while the worker is still streaming.
  const ClientResult result =
      client.Query(kRecursiveQuery, options, /*stop_after_rows=*/2);
  EXPECT_EQ(result.status.code, Status::Code::kCancelled);
  EXPECT_EQ(result.rows_streamed, 2u);

  // The worker retires the orphaned request in one ordered burst: the
  // admission slot is released, then `disconnect_cancels` and
  // `queries_failed` (the run is accounted kCancelled, never ok) are
  // counted — so a single poll can wait for all three at once.
  EXPECT_TRUE(EventuallyTrue([](const Server::Stats& s) {
    return s.disconnect_cancels >= 1 && s.queries_failed >= 1 &&
           s.admission.in_flight == 0;
  })) << "disconnect did not cancel the in-flight query";
}

TEST_F(ServerTest, CancelFrameStopsARunningQuery) {
  StartServer(300, 2, 4);
  Client client = Connected();
  QueryOptions options;
  options.batch_rows = 1;

  std::atomic<bool> done{false};
  std::thread canceller([&] {
    // Wait until the query is in flight, then cancel it over the wire.
    for (int i = 0; i < 500 && !done.load(); ++i) {
      if (server_->stats().admission.in_flight >= 1) {
        client.CancelActive();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const ClientResult result = client.Query(kRecursiveQuery, options);
  done.store(true);
  canceller.join();
  // Either the CANCEL landed mid-run (kCancelled) or the query beat it.
  if (!result.ok()) {
    EXPECT_EQ(result.status.code, Status::Code::kCancelled)
        << result.status.ToString();
    EXPECT_GE(server_->stats().cancel_frames, 1u);
  }
}

// The TSan stress: many client threads hammering a small session pool with
// a mix of ad-hoc queries and prepared statements, retrying sheds. Verifies
// thread-safety of the whole stack (epoll loop, governor, session pool,
// shared plan cache, per-connection write paths) plus result correctness.
TEST_F(ServerTest, ConcurrentClientsStressBitIdenticalAnswers) {
  StartServer(40, /*workers=*/4, /*max_in_flight=*/4);

  // The expected answer, from the embedding API.
  std::unique_ptr<Session> session = engine_->NewSession();
  const QueryRun expected = session->Run(kScanQuery);
  ASSERT_TRUE(expected.ok());
  const size_t expected_rows = expected.answer.rows.size();
  ASSERT_GT(expected_rows, 0u);

  constexpr size_t kThreads = 8;
  constexpr size_t kRequests = 10;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> mismatch{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
      uint64_t statement_id = 0;
      if (t % 2 == 1) {
        Status s = client.Prepare(kScanQuery, &statement_id);
        if (!s.ok()) return;
      }
      for (size_t i = 0; i < kRequests; ++i) {
        ClientResult result;
        for (int attempt = 0; attempt < 300; ++attempt) {
          result = statement_id != 0 ? client.Execute(statement_id)
                                     : client.Query(kScanQuery);
          if (!result.status.retryable()) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!result.ok()) continue;
        ++ok_count;
        if (result.rows.size() != expected_rows) {
          ++mismatch;
          continue;
        }
        for (size_t row = 0; row < expected_rows; ++row) {
          if (expected.answer.rows[row][0].Compare(result.rows[row][0]) !=
              0) {
            ++mismatch;
            break;
          }
        }
      }
      client.Goodbye();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatch.load(), 0u);
  EXPECT_EQ(ok_count.load(), kThreads * kRequests)
      << "some requests exhausted their retries";
  const Server::Stats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok, ok_count.load());
  EXPECT_EQ(stats.admission.in_flight, 0u);
  EXPECT_LE(stats.admission.peak_in_flight, 4u);
}

TEST_F(ServerTest, StopWhileQueriesInFlightDoesNotHang) {
  StartServer(300, 2, 4);
  Client client = Connected();
  QueryOptions options;
  options.batch_rows = 1;
  std::thread runner([&] {
    // The reply is either a clean answer (server raced ahead) or an error /
    // closed connection — the only hard requirement is no hang.
    client.Query(kRecursiveQuery, options);
  });
  ASSERT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.admission.in_flight >= 1; }));
  server_->Stop();
  runner.join();
}

// --------------------------------------------------- raw-socket protocol --

/// Minimal raw client for out-of-spec behaviour the Client class refuses
/// to produce.
class RawConnection {
 public:
  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~RawConnection() {
    if (fd_ >= 0) close(fd_);
  }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one frame; false on EOF/error.
  bool ReadFrame(FrameHeader* header, std::string* payload) {
    char head[kFrameHeaderBytes];
    if (!ReadExact(head, sizeof(head))) return false;
    if (!DecodeFrameHeader(head, header)) return false;
    payload->resize(header->payload_length);
    return payload->empty() || ReadExact(payload->data(), payload->size());
  }

 private:
  bool ReadExact(char* out, size_t n) {
    size_t off = 0;
    while (off < n) {
      const ssize_t r = recv(fd_, out + off, n - off, 0);
      if (r <= 0) return false;
      off += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

TEST_F(ServerTest, RawProtocolRejectsQueryBeforeHello) {
  StartServer(40, 2, 4);
  RawConnection raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  PayloadWriter w;
  w.Str(kSimpleQuery);
  WireQueryOptions().Encode(&w);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kQuery, 1, w.Take())));

  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kStatus);
  PayloadReader r(payload.data(), payload.size());
  Status status;
  uint64_t rows;
  double cost;
  ASSERT_TRUE(DecodeStatusPayload(&r, &status, &rows, &cost));
  EXPECT_EQ(status.code, Status::Code::kInvalidArgument);
  // The server then drops the connection.
  EXPECT_FALSE(raw.ReadFrame(&header, &payload));
  EXPECT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.protocol_errors >= 1; }));
}

TEST_F(ServerTest, RawProtocolRefusesPipelinedSecondRequest) {
  StartServer(200, 2, 4);
  RawConnection raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  PayloadWriter hello;
  hello.U32(kProtocolVersion);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kHello, 1, hello.Take())));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&header, &payload));
  ASSERT_EQ(header.type, FrameType::kHelloOk);

  // Two QUERY frames back-to-back without waiting: the second must be
  // refused with invalid_argument while the first still answers.
  PayloadWriter q1;
  q1.Str(kRecursiveQuery);
  WireQueryOptions wire;
  wire.batch_rows = 1;
  wire.Encode(&q1);
  PayloadWriter q2;
  q2.Str(kSimpleQuery);
  WireQueryOptions().Encode(&q2);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kQuery, 10, q1.Take()) +
                       EncodeFrame(FrameType::kQuery, 11, q2.Take())));

  bool saw_refusal = false;
  bool saw_first_terminal = false;
  while ((!saw_refusal || !saw_first_terminal) &&
         raw.ReadFrame(&header, &payload)) {
    if (header.type != FrameType::kStatus) continue;
    PayloadReader r(payload.data(), payload.size());
    Status status;
    uint64_t rows;
    double cost;
    ASSERT_TRUE(DecodeStatusPayload(&r, &status, &rows, &cost));
    if (header.request_id == 11) {
      EXPECT_EQ(status.code, Status::Code::kInvalidArgument);
      saw_refusal = true;
    } else if (header.request_id == 10) {
      EXPECT_TRUE(status.ok()) << status.ToString();
      saw_first_terminal = true;
    }
  }
  EXPECT_TRUE(saw_refusal);
  EXPECT_TRUE(saw_first_terminal);
}

// MUTATE obeys the same one-request-in-flight rule: pipelined behind a
// busy request it is refused instead of staged — a MUTATE racing a COMMIT
// worker could otherwise land in the very transaction being committed.
TEST_F(ServerTest, RawProtocolRefusesPipelinedMutateWhileBusy) {
  StartServer(200, 2, 4);
  RawConnection raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  PayloadWriter hello;
  hello.U32(kProtocolVersion);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kHello, 1, hello.Take())));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&header, &payload));
  ASSERT_EQ(header.type, FrameType::kHelloOk);

  PayloadWriter q;
  q.Str(kRecursiveQuery);
  WireQueryOptions wire;
  wire.batch_rows = 1;
  wire.Encode(&q);
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("pipelined_mutate")},
                            {"master", Value::Null()}});
  PayloadWriter m;
  EncodeMutationBatch(batch, &m);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kQuery, 20, q.Take()) +
                       EncodeFrame(FrameType::kMutate, 21, m.Take())));

  bool mutate_refused = false;
  bool query_ok = false;
  while ((!mutate_refused || !query_ok) && raw.ReadFrame(&header, &payload)) {
    if (header.type != FrameType::kStatus) continue;
    PayloadReader r(payload.data(), payload.size());
    Status status;
    uint64_t rows;
    double cost;
    ASSERT_TRUE(DecodeStatusPayload(&r, &status, &rows, &cost));
    if (header.request_id == 21) {
      EXPECT_EQ(status.code, Status::Code::kInvalidArgument);
      mutate_refused = true;
    } else if (header.request_id == 20) {
      EXPECT_TRUE(status.ok()) << status.ToString();
      query_ok = true;
    }
  }
  EXPECT_TRUE(mutate_refused);
  EXPECT_TRUE(query_ok);
  EXPECT_EQ(server_->stats().mutates_staged, 0u);
}

// --------------------------------------------------- protocol v2 writes --

TEST_F(ServerTest, MutateCommitRoundTripAndVisibility) {
  StartServer(200, 2, 4);
  Client client = Connected();
  ASSERT_EQ(client.protocol_version(), kProtocolVersion);

  // One batch: a fresh composer plus a slot-only rename of Composer@0 (the
  // client never learns server-side class ids — class_id 0xFFFFFFFF means
  // "slot N of this op's extent", resolved in Server::HandleMutate).
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("wire_composer")},
                            {"master", Value::Null()}});
  batch.Update("Composer", Oid{UINT32_MAX, 0},
               {{"name", Value::Str("wire_renamed_0")}});
  uint64_t staged = 0;
  Status s = client.Mutate(batch, &staged);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(staged, 2u);

  uint64_t applied = 0, stats_version = 0;
  s = client.Commit(&applied, &stats_version);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(applied, 2u);
  EXPECT_GE(stats_version, 2u);

  // Both effects are visible to a plain v2 QUERY on the same engine.
  ClientResult inserted = client.Query(
      R"(select [n: x.name] from x in Composer where x.name = "wire_composer")");
  ASSERT_TRUE(inserted.ok()) << inserted.status.ToString();
  EXPECT_EQ(inserted.rows.size(), 1u);
  ClientResult renamed = client.Query(
      R"(select [n: x.name] from x in Composer where x.name = "wire_renamed_0")");
  ASSERT_TRUE(renamed.ok()) << renamed.status.ToString();
  EXPECT_EQ(renamed.rows.size(), 1u);

  EXPECT_EQ(server_->stats().mutates_staged, 1u);
  EXPECT_EQ(server_->stats().commits_ok, 1u);
  EXPECT_EQ(server_->stats().commits_failed, 0u);
  client.Goodbye();
}

TEST_F(ServerTest, MutateConflictAcrossConnectionsIsRetryable) {
  StartServer(200, 2, 4);
  Client writer = Connected();
  Client rival = Connected();

  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("first_writer")},
                            {"master", Value::Null()}});
  ASSERT_TRUE(writer.Mutate(batch).ok());

  // The single write slot is held by `writer`'s open transaction: the
  // rival's MUTATE is refused with a retryable conflict, not a failure.
  MutationBatch rival_batch;
  rival_batch.Insert("Composer", {{"name", Value::Str("second_writer")},
                                  {"master", Value::Null()}});
  const Status refused = rival.Mutate(rival_batch);
  EXPECT_EQ(refused.code, Status::Code::kConflict);
  EXPECT_TRUE(refused.retryable());

  // Once the holder commits, the retry goes through.
  ASSERT_TRUE(writer.Commit().ok());
  ASSERT_TRUE(rival.Mutate(rival_batch).ok());
  ASSERT_TRUE(rival.Commit().ok());

  ClientResult both = writer.Query(
      R"(select [n: x.name] from x in Composer
         where x.name = "first_writer" or x.name = "second_writer")");
  ASSERT_TRUE(both.ok()) << both.status.ToString();
  EXPECT_EQ(both.rows.size(), 2u);
  writer.Goodbye();
  rival.Goodbye();
}

// A v1 client must be served exactly as before this protocol existed: the
// HELLO_OK negotiates down to 1, queries work, and the new frame types are
// a protocol error on its connection.
TEST_F(ServerTest, RawProtocolV1ClientNegotiatesDownAndCannotMutate) {
  StartServer(200, 2, 4);
  RawConnection raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  PayloadWriter hello;
  hello.U32(1);  // a pre-write-path client
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kHello, 1, hello.Take())));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&header, &payload));
  ASSERT_EQ(header.type, FrameType::kHelloOk);
  {
    PayloadReader r(payload.data(), payload.size());
    uint32_t negotiated = 0;
    std::string banner;
    uint64_t conn_id = 0;
    ASSERT_TRUE(r.U32(&negotiated));
    ASSERT_TRUE(r.Str(&banner));
    ASSERT_TRUE(r.U64(&conn_id));
    ASSERT_TRUE(r.AtEnd());  // no v2-only fields leak into a v1 HELLO_OK
    EXPECT_EQ(negotiated, 1u);
    EXPECT_NE(conn_id, 0u);
  }

  // The read path is unchanged for this client.
  PayloadWriter q;
  q.Str(kSimpleQuery);
  WireQueryOptions().Encode(&q);
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kQuery, 2, q.Take())));
  bool query_ok = false;
  while (raw.ReadFrame(&header, &payload)) {
    if (header.type != FrameType::kStatus) continue;
    PayloadReader r(payload.data(), payload.size());
    Status status;
    uint64_t rows;
    double cost;
    ASSERT_TRUE(DecodeStatusPayload(&r, &status, &rows, &cost));
    EXPECT_TRUE(status.ok()) << status.ToString();
    query_ok = status.ok();
    break;
  }
  ASSERT_TRUE(query_ok);

  // MUTATE on a v1 connection is an unexpected frame type: refused with a
  // STATUS and the connection dropped, exactly like any other stray frame.
  ASSERT_TRUE(raw.Send(EncodeFrame(FrameType::kMutate, 3, "")));
  ASSERT_TRUE(raw.ReadFrame(&header, &payload));
  EXPECT_EQ(header.type, FrameType::kStatus);
  {
    PayloadReader r(payload.data(), payload.size());
    Status status;
    uint64_t rows;
    double cost;
    ASSERT_TRUE(DecodeStatusPayload(&r, &status, &rows, &cost));
    EXPECT_EQ(status.code, Status::Code::kInvalidArgument);
  }
  EXPECT_FALSE(raw.ReadFrame(&header, &payload));
  EXPECT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.protocol_errors >= 1; }));
}

TEST_F(ServerTest, DisconnectRollsBackStagedTransaction) {
  StartServer(200, 2, 4);
  {
    Client doomed = Connected();
    MutationBatch batch;
    batch.Insert("Composer", {{"name", Value::Str("never_committed")},
                              {"master", Value::Null()}});
    ASSERT_TRUE(doomed.Mutate(batch).ok());
    doomed.Close();  // vanishes with the write slot held
  }
  ASSERT_TRUE(EventuallyTrue(
      [](const Server::Stats& s) { return s.connections_active == 0; }));

  // The disconnect rolled the staged transaction back: the write slot is
  // free for the next connection, and nothing leaked into the data.
  Client next = Connected();
  MutationBatch batch;
  batch.Insert("Composer", {{"name", Value::Str("after_crash")},
                            {"master", Value::Null()}});
  ASSERT_TRUE(next.Mutate(batch).ok());
  ASSERT_TRUE(next.Commit().ok());
  ClientResult ghost = next.Query(
      R"(select [n: x.name] from x in Composer
         where x.name = "never_committed")");
  ASSERT_TRUE(ghost.ok());
  EXPECT_TRUE(ghost.rows.empty());
  ClientResult landed = next.Query(
      R"(select [n: x.name] from x in Composer where x.name = "after_crash")");
  ASSERT_TRUE(landed.ok());
  EXPECT_EQ(landed.rows.size(), 1u);
  next.Goodbye();
}

}  // namespace
}  // namespace rodin::server
