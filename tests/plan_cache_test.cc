// Plan cache differential suite: a run served from the cache must be
// bit-identical to a cold optimize-and-run — same rows in the same order,
// every ExecCounters field, and MeasuredCost() — over the paper's Figure 3
// query and the randomized SPJ/recursive/closure queries of the exec
// differential suite. Plus the correctness rules: RefreshStats and
// physical-schema changes invalidate (the fingerprint separates ablated
// layouts even in a shared cache), truncated and fault-injected
// optimizations are never cached, LRU eviction under a tiny capacity, and
// the PreparedQuery fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/plan_cache.h"
#include "api/session.h"
#include "common/faults.h"
#include "common/rng.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "obs/config.h"
#include "optimizer/baseline.h"
#include "query/builder.h"
#include "query/graph_queries.h"
#include "query/paper_queries.h"
#include "query/parser.h"

namespace rodin {
namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

void ExpectSameCounters(const ExecCounters& a, const ExecCounters& b) {
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.method_calls, b.method_calls);
  EXPECT_EQ(a.method_cost, b.method_cost);
  EXPECT_EQ(a.rows_produced, b.rows_produced);
  EXPECT_EQ(a.fix_iterations, b.fix_iterations);
}

GeneratedDb MakeMusicDb() {
  MusicConfig config;
  config.num_composers = 40;
  config.lineage_depth = 8;
  return GenerateMusicDb(config, PaperMusicPhysical());
}

/// The differential core: first run populates the cache (miss), second run
/// hits, and a bypass run re-optimizes from scratch as the oracle. All
/// three runs are cold so execution accounting is deterministic; the hit
/// must match the oracle bitwise in rows, counters and measured cost —
/// and in the plan and its estimated cost.
void ExpectCachedRunIdentical(Session* session, const QueryGraph& q,
                              const std::string& label) {
  SCOPED_TRACE(label);
  QueryOptions cold;
  cold.cold = true;
  // Pinned off like the injector above: feedback harvests the miss run and
  // then has the bypass oracle re-optimize under the learned corrections,
  // so hit-vs-oracle would legitimately diverge in est cost / plan text
  // under RODIN_FEEDBACK=1. Cache-in-isolation is this suite's contract;
  // the feedback-on interplay is feedback_test's.
  cold.feedback.enabled = false;

  const QueryRun first = session->Run(q, cold);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_FALSE(first.plan_cached);

  const QueryRun hit = session->Run(q, cold);
  ASSERT_TRUE(hit.ok()) << hit.error();
  EXPECT_TRUE(hit.plan_cached);

  QueryOptions bypass = cold;
  bypass.bypass_plan_cache = true;
  const QueryRun oracle = session->Run(q, bypass);
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  EXPECT_FALSE(oracle.plan_cached);

  ASSERT_EQ(Keys(hit.answer), Keys(oracle.answer));
  ExpectSameCounters(hit.counters, oracle.counters);
  EXPECT_EQ(hit.measured_cost, oracle.measured_cost);  // bitwise, no ULP
  EXPECT_EQ(hit.plan_text, oracle.plan_text);
  EXPECT_EQ(hit.optimized.cost, oracle.optimized.cost);
  EXPECT_EQ(hit.optimized.plans_explored, oracle.optimized.plans_explored);
  EXPECT_EQ(hit.decisions.ToString(), oracle.decisions.ToString());
  // The first (miss) run must equal both as well: inserting into the cache
  // does not perturb the inserting run.
  ASSERT_EQ(Keys(first.answer), Keys(oracle.answer));
  ExpectSameCounters(first.counters, oracle.counters);
  EXPECT_EQ(first.measured_cost, oracle.measured_cost);
}

/// Every test here asserts cache hits, and the injector bypasses the cache
/// by design — so the whole file pins the process-global injector to
/// disabled (the RODIN_FAULTS=1 ctest job would otherwise turn every hit
/// assertion into a designed-in miss). The fault-interaction tests
/// configure their own injector state on top.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PlanCacheEnabledByEnv()) {
      GTEST_SKIP() << "RODIN_PLAN_CACHE disables the cache; hit assertions "
                      "are vacuous (the cache-off CI leg proves the system "
                      "works without it, not that it hits)";
    }
    FaultInjector::Global().Configure(FaultConfig{});  // disabled
  }
  void TearDown() override {
    FaultInjector::Global().Configure(FaultConfig{});
  }
};

using PlanCacheDifferentialTest = PlanCacheTest;

// --- Figure 3 --------------------------------------------------------------

TEST_F(PlanCacheDifferentialTest, Fig3CachedRunIsBitIdentical) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  const ParseResult parsed = ParseQuery(kFig3Text, g.db->schema());
  ASSERT_TRUE(parsed.ok()) << parsed.status.ToString();
  ExpectCachedRunIdentical(&session, parsed.graph, "fig3");

  const PlanCacheStats stats = session.plan_cache().stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);  // the bypass run does not count as a miss
}

// --- Randomized queries over randomized databases --------------------------
// Query builders mirror the exec differential suite (same shapes, same
// seeds), so the cache sees the same plan diversity the engine is already
// proven on.

QueryGraph RandomSpjQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          rng->Chance(0.5) ? Expr::Path(var, {"master"})
                                           : Expr::Path(var, {})));
    }
  }
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    switch (rng->Below(4)) {
      case 0:
        node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
        break;
      case 1:
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "family"}),
            Expr::Lit(Value::Str(rng->Chance(0.5) ? "keyboard" : "string"))));
        break;
      case 2:
        node.Where(Expr::Eq(
            Expr::Path(var, {"master", "name"}),
            Expr::Lit(Value::Str("composer_" + std::to_string(rng->Below(8))))));
        break;
      default: {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "iname"}),
            Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
        break;
      }
    }
  }
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) node.OutPath("y", vars[0], {"birthyear"});
  return b.Build(schema);
}

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  if (rng->Chance(0.5)) {
    static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
    answer.Where(
        Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                 Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
  } else {
    answer.Where(Expr::Cmp(CompareOp::kLt,
                           Expr::Path("j", {"master", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  }
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class PlanCacheSeedTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    if (!PlanCacheEnabledByEnv()) {
      GTEST_SKIP() << "RODIN_PLAN_CACHE disables the cache";
    }
    FaultInjector::Global().Configure(FaultConfig{});  // disabled
  }
  void TearDown() override {
    FaultInjector::Global().Configure(FaultConfig{});
  }
};

TEST_P(PlanCacheSeedTest, MusicSpjAndRecursive) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 101 + 13);

  MusicConfig config;
  config.seed = seed * 31 + 7;
  config.num_composers = 40 + static_cast<uint32_t>(rng.Below(50));
  config.lineage_depth = 3 + static_cast<uint32_t>(rng.Below(8));
  config.harpsichord_fraction = 0.05 + 0.25 * rng.NextDouble();
  config.works_per_composer_max = 4 + static_cast<uint32_t>(rng.Below(5));
  PhysicalConfig physical = PaperMusicPhysical();
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  }
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  }
  GeneratedDb g = GenerateMusicDb(config, physical);
  Session session(g.db.get(), CostBasedOptions(seed));

  for (int round = 0; round < 3; ++round) {
    const QueryGraph spj = RandomSpjQuery(&rng, *g.schema);
    ExpectCachedRunIdentical(&session, spj,
                             "spj round " + std::to_string(round));
  }
  for (int round = 0; round < 2; ++round) {
    const QueryGraph rec = RandomRecursiveQuery(&rng, *g.schema);
    ExpectCachedRunIdentical(&session, rec,
                             "recursive round " + std::to_string(round));
  }
}

TEST_P(PlanCacheSeedTest, GraphClosure) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 77 + 3);

  GraphConfig config;
  config.seed = seed * 13 + 1;
  config.num_nodes = 60 + static_cast<uint32_t>(rng.Below(60));
  config.chain_depth = 4 + static_cast<uint32_t>(rng.Below(6));
  config.path_len = static_cast<uint32_t>(rng.Below(3));
  config.num_labels = 2 + static_cast<uint32_t>(rng.Below(8));
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  Session session(g.db.get(), CostBasedOptions(seed));

  const QueryGraph q = GraphClosureQuery(config, *g.schema);
  ExpectCachedRunIdentical(&session, q, "graph closure");
}

// 5 seeds x (3 SPJ + 2 recursive) + 5 graph closures = 30 random queries,
// each checked cached-vs-cold-optimized.
INSTANTIATE_TEST_SUITE_P(Seeds, PlanCacheSeedTest,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Invalidation ----------------------------------------------------------

TEST_F(PlanCacheTest, RefreshStatsInvalidatesEntries) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions cold;
  cold.cold = true;

  const QueryRun warmup = session.Run(kFig3Text, cold);
  ASSERT_TRUE(warmup.ok()) << warmup.error();
  const QueryRun hit = session.Run(kFig3Text, cold);
  ASSERT_TRUE(hit.plan_cached);

  session.RefreshStats();

  const QueryRun after = session.Run(kFig3Text, cold);
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_FALSE(after.plan_cached);  // stale entry dropped, re-optimized
  const PlanCacheStats stats = session.plan_cache().stats();
  EXPECT_EQ(stats.invalidations, 1u);
  // The database did not change, so the re-optimized plan (and its run)
  // matches the pre-refresh one.
  ASSERT_EQ(Keys(after.answer), Keys(hit.answer));
  EXPECT_EQ(after.plan_text, hit.plan_text);
  EXPECT_EQ(after.measured_cost, hit.measured_cost);

  const QueryRun rehit = session.Run(kFig3Text, cold);
  EXPECT_TRUE(rehit.plan_cached);  // re-inserted under the new version
}

TEST_F(PlanCacheTest, PhysicalSchemaAblationSeparatesEntries) {
  // Two databases with identical data, one with the paper's path index and
  // one without, share one cache. The fingerprint's physical identity keeps
  // their entries apart: the ablated session must re-optimize (the path
  // index's absence changes the plan space), never reuse the indexed plan.
  MusicConfig config;
  config.num_composers = 40;
  config.lineage_depth = 8;
  GeneratedDb with_index = GenerateMusicDb(config, PaperMusicPhysical());
  PhysicalConfig ablated_physical = PaperMusicPhysical();
  ablated_physical.path_indexes.clear();
  GeneratedDb without_index = GenerateMusicDb(config, ablated_physical);

  auto cache = std::make_shared<PlanCache>();
  Session indexed(with_index.db.get(), {}, {}, cache);
  Session ablated(without_index.db.get(), {}, {}, cache);
  QueryOptions cold;
  cold.cold = true;

  const QueryRun a = indexed.Run(kFig3Text, cold);
  ASSERT_TRUE(a.ok()) << a.error();
  const QueryRun b = ablated.Run(kFig3Text, cold);
  ASSERT_TRUE(b.ok()) << b.error();
  EXPECT_FALSE(b.plan_cached);  // distinct fingerprint, no cross-hit
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().hits, 0u);

  // Both sessions hit their own entry afterwards.
  EXPECT_TRUE(indexed.Run(kFig3Text, cold).plan_cached);
  EXPECT_TRUE(ablated.Run(kFig3Text, cold).plan_cached);

  // Same logical data: identical answers (order may differ across plans).
  std::vector<std::string> rows_a = Keys(a.answer);
  std::vector<std::string> rows_b = Keys(b.answer);
  std::sort(rows_a.begin(), rows_a.end());
  std::sort(rows_b.begin(), rows_b.end());
  EXPECT_EQ(rows_a, rows_b);
}

// --- Never-cache rules -----------------------------------------------------

class PlanCacheFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Configure(FaultConfig{});  // disabled
  }
  void TearDown() override {
    FaultInjector::Global().Configure(FaultConfig{});
  }
};

TEST_F(PlanCacheFaultTest, TruncatedOptimizationIsNeverCached) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions cold;
  cold.cold = true;
  cold.query.deadline_ms = 10'000;  // armed deadline, far from expiring

  // Force the transformPT stage to see an expired deadline: the anytime
  // search truncates (run still succeeds) — and because deterministic
  // truncation requires the injector, this also exercises the
  // injector-enabled bypass. Either rule alone forbids caching this run.
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_stage = 4;
  FaultInjector::Global().Configure(fc);

  const QueryRun truncated = session.Run(kFig3Text, cold);
  ASSERT_TRUE(truncated.ok()) << truncated.error();
  bool any_truncated = false;
  for (const StageReport& s : truncated.optimized.stages) {
    any_truncated |= s.truncated;
  }
  ASSERT_TRUE(any_truncated);
  EXPECT_EQ(session.plan_cache().stats().inserts, 0u);
  EXPECT_EQ(session.plan_cache().size(), 0u);

  // And nothing was looked up either: the injector bypasses the cache.
  EXPECT_EQ(session.plan_cache().stats().hits, 0u);
  EXPECT_EQ(session.plan_cache().stats().misses, 0u);
}

TEST_F(PlanCacheFaultTest, FaultedRetryRunIsNeverCached) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions cold;
  cold.cold = true;

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;  // first draw faults...
  fc.alloc_fail = 0;
  fc.max_faults = 1;  // ...then the cap stops injection; the retry succeeds
  fc.seed = 7;
  FaultInjector::Global().Configure(fc);

  const QueryRun retried = session.Run(kFig3Text, cold);
  ASSERT_TRUE(retried.ok()) << retried.error();
  ASSERT_GE(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_FALSE(retried.plan_cached);
  EXPECT_EQ(session.plan_cache().stats().inserts, 0u);
  EXPECT_EQ(session.plan_cache().stats().hits, 0u);
  EXPECT_EQ(session.plan_cache().size(), 0u);
}

// --- Eviction --------------------------------------------------------------

TEST_F(PlanCacheTest, LruEvictionUnderTinyCapacity) {
  GeneratedDb g = MakeMusicDb();
  auto cache = std::make_shared<PlanCache>(/*capacity=*/2);
  Session session(g.db.get(), {}, {}, cache);
  QueryOptions cold;
  cold.cold = true;

  const char* queries[] = {
      R"(select [n: x.name] from x in Composer where x.birthyear < 1700)",
      R"(select [n: x.name] from x in Composer where x.birthyear >= 1700)",
      R"(select [n: x.name] from x in Composer
         where x.works.instruments.iname = "harpsichord")",
  };
  for (const char* q : queries) {
    const QueryRun run = session.Run(q, cold);
    ASSERT_TRUE(run.ok()) << run.error();
  }
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->stats().evictions, 1u);

  // Least recently used (the first query) was evicted; the newest two hit.
  EXPECT_TRUE(session.Run(queries[2], cold).plan_cached);
  EXPECT_TRUE(session.Run(queries[1], cold).plan_cached);
  EXPECT_FALSE(session.Run(queries[0], cold).plan_cached);
}

// --- PreparedQuery ---------------------------------------------------------

TEST_F(PlanCacheTest, PreparedQueryHitsCacheAndMatchesRun) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions cold;
  cold.cold = true;

  PreparedQuery pq = session.Prepare(kFig3Text);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  const QueryRun first = pq.Run(cold);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_FALSE(first.plan_cached);
  const QueryRun second = pq.Run(cold);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_TRUE(second.plan_cached);
  ASSERT_EQ(Keys(second.answer), Keys(first.answer));
  ExpectSameCounters(second.counters, first.counters);
  EXPECT_EQ(second.measured_cost, first.measured_cost);

  // Prepared and ad-hoc runs share the same fingerprint: Run(text) hits the
  // entry the prepared query inserted.
  const QueryRun adhoc = session.Run(kFig3Text, cold);
  EXPECT_TRUE(adhoc.plan_cached);

  // The streaming path hits it too.
  ResultCursor cursor = pq.Query(cold);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  size_t rows = 0;
  RowBatch batch;
  while (cursor.Next(&batch)) rows += batch.rows.size();
  EXPECT_EQ(rows, first.answer.rows.size());
}

TEST_F(PlanCacheTest, PreparedQueryParseErrorIsSticky) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  PreparedQuery pq = session.Prepare("select [n: from x in");
  EXPECT_FALSE(pq.ok());
  EXPECT_EQ(pq.status().code, Status::Code::kParse);
  const QueryRun run = pq.Run();
  EXPECT_EQ(run.status.code, Status::Code::kParse);
  ResultCursor cursor = pq.Query();
  EXPECT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code, Status::Code::kParse);
}

// --- Hit-path observability ------------------------------------------------

TEST_F(PlanCacheTest, CacheHitSkipsOptimizerStagesInTrace) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions traced;
  traced.cold = true;
  traced.collect_trace = true;

  const QueryRun miss = session.Run(kFig3Text, traced);
  ASSERT_TRUE(miss.ok()) << miss.error();
  const QueryRun hit = session.Run(kFig3Text, traced);
  ASSERT_TRUE(hit.ok()) << hit.error();
  ASSERT_TRUE(hit.plan_cached);

#if RODIN_OBS_ENABLED
  ASSERT_NE(miss.trace, nullptr);
  ASSERT_NE(hit.trace, nullptr);
  // The miss traced all four optimizer stages; the hit traced none of them
  // (zero stage spans) but still traced execution.
  for (const char* stage : {"rewrite", "translate", "generatePT",
                            "transformPT"}) {
    EXPECT_TRUE(miss.trace->HasSpan(stage)) << stage;
    EXPECT_FALSE(hit.trace->HasSpan(stage)) << stage;
  }
  EXPECT_TRUE(hit.trace->HasSpan("execute"));
#endif

  // The replayed stage reports still describe the original optimization.
  EXPECT_EQ(hit.optimized.stages.size(), miss.optimized.stages.size());

  // EXPLAIN annotates the hit.
  const ExplainResult ex = session.Explain(kFig3Text, QueryOptions{.cold = true});
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  EXPECT_TRUE(ex.plan_cached);
  EXPECT_NE(ex.ToString().find("[plan: cached]"), std::string::npos);
}

TEST_F(PlanCacheTest, DeadlineStillGovernsCachedExecution) {
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  QueryOptions cold;
  cold.cold = true;
  const QueryRun warmup = session.Run(kFig3Text, cold);
  ASSERT_TRUE(warmup.ok()) << warmup.error();

  // A cached plan still runs under the caller's context: a cancel token
  // fired before the run stops it even though planning is skipped.
  QueryOptions cancelled = cold;
  cancelled.query.cancel.RequestCancel();
  const QueryRun run = session.Run(kFig3Text, cancelled);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kCancelled);
}

}  // namespace
}  // namespace rodin
