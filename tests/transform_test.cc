// transformPT tests: the filter action (push selection through recursion
// with its supporting implicit joins), push-join, push-projection, the
// collapse rule, the canPush (verbatim-copy) guard, and result preservation
// of every push.

#include <gtest/gtest.h>

#include <set>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/transform.h"
#include "query/builder.h"
#include "query/graph_queries.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 60;
    config.lineage_depth = 12;
    config.harpsichord_fraction = 0.1;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
  }

  // Runs the pipeline up to (but not including) transformPT: optimize with
  // pushing disabled, giving the untransformed PT.
  PTPtr UntransformedPlan(const QueryGraph& q) {
    OptimizerOptions options = NaiveOptions();
    options.gen_strategy = GenStrategy::kDP;
    Optimizer opt(g_.db.get(), stats_.get(), cost_.get(), options);
    OptimizeResult r = opt.Optimize(q);
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    return std::move(r.plan);
  }

  Table Run(const PTNode& plan) {
    Executor exec(g_.db.get());
    Table t = exec.Execute(plan);
    t.Dedup();
    return t;
  }

  static size_t Count(const PTNode& n, PTKind kind) {
    size_t c = n.kind == kind ? 1 : 0;
    for (const auto& ch : n.children) c += Count(*ch, kind);
    return c;
  }

  // Depth of the first Fix node's arms, in Sel nodes (to see pushed sels).
  static size_t SelsInsideFix(const PTNode& n) {
    if (n.kind == PTKind::kFix) {
      return Count(*n.children[0], PTKind::kSel) +
             Count(*n.children[1], PTKind::kSel);
    }
    size_t c = 0;
    for (const auto& ch : n.children) c += SelsInsideFix(*ch);
    return c;
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
};

TEST_F(TransformTest, PushSelMovesSelAndSupportsIntoArms) {
  PTPtr plan = UntransformedPlan(Fig3Query(*g_.schema, 6));
  const size_t sels_inside_before = SelsInsideFix(*plan);
  PTPtr pushed = plan->Clone();
  ASSERT_TRUE(PushSelThroughFix(pushed, ctx_));
  EXPECT_GT(SelsInsideFix(*pushed), sels_inside_before);
  // Both arms gained the harpsichord filter; results unchanged.
  EXPECT_EQ(Run(*pushed).rows, Run(*plan).rows);
}

TEST_F(TransformTest, PushSelRespectsVerbatimGuard) {
  // gen >= 6 references a column computed as i.gen + 1 in the recursive arm
  // — not a verbatim copy, so it must never be pushed. After pushing the
  // harpsichord selection once, a second push attempt must fail.
  PTPtr plan = UntransformedPlan(Fig3Query(*g_.schema, 6));
  PTPtr pushed = plan->Clone();
  ASSERT_TRUE(PushSelThroughFix(pushed, ctx_));
  EXPECT_FALSE(PushSelThroughFix(pushed, ctx_));
}

TEST_F(TransformTest, PushJoinRestrictsRecursion) {
  PTPtr plan = UntransformedPlan(PushJoinQuery(*g_.schema));
  PTPtr pushed = plan->Clone();
  ASSERT_TRUE(PushJoinThroughFix(pushed, ctx_));
  // The join disappeared from above the Fix; arms contain EJs now.
  const PTNode* fix = nullptr;
  std::function<void(const PTNode&)> find = [&](const PTNode& n) {
    if (n.kind == PTKind::kFix) fix = &n;
    for (const auto& c : n.children) find(*c);
  };
  find(*pushed);
  ASSERT_NE(fix, nullptr);
  EXPECT_GE(Count(*fix->children[0], PTKind::kEJ), 1u);
  EXPECT_GE(Count(*fix->children[1], PTKind::kEJ), 1u);
  EXPECT_EQ(Run(*pushed).rows, Run(*plan).rows);
}

TEST_F(TransformTest, PushProjExtendsViewColumns) {
  PTPtr plan = UntransformedPlan(Fig3Query(*g_.schema, 6));
  PTPtr pushed = plan->Clone();
  const size_t ij_before = Count(*pushed, PTKind::kIJ);
  if (PushProjThroughFix(pushed, ctx_)) {
    EXPECT_LT(Count(*pushed, PTKind::kIJ), ij_before);
    EXPECT_EQ(Run(*pushed).rows, Run(*plan).rows);
  }
}

TEST_F(TransformTest, PushProjWithMultipleAttributes) {
  // Two atomic attributes read through one IJ above the fixpoint (the
  // disciple's name in the output and birthyear in a selection): pushing
  // must extend the arms with BOTH columns and preserve results.
  // Regression: the arm-extension loop once kept a pointer into the
  // projection vector across push_back (use-after-free with >= 2 attrs).
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));
  b.Node("Answer", "P3")
      .Input("Influencer", "j")
      .Where(Expr::Cmp(CompareOp::kLt, Expr::Path("j", {"disciple", "birthyear"}),
                       Expr::Lit(Value::Int(1700))))
      .OutPath("dname", "j", {"disciple", "name"});
  const QueryGraph q = b.Build(*g_.schema);

  PTPtr plan = UntransformedPlan(q);
  const Table expected = Run(*plan);
  PTPtr pushed = plan->Clone();
  if (PushProjThroughFix(pushed, ctx_)) {
    EXPECT_EQ(Run(*pushed).rows, expected.rows);
  }
  // And through the full decision procedure.
  TransformOptions options;
  options.rand = RandStrategy::kNone;
  cost_->Annotate(plan.get());
  TransformResult r = TransformPT(plan->Clone(), ctx_, options);
  EXPECT_EQ(Run(*r.plan).rows, expected.rows);
}

TEST_F(TransformTest, TransformPTDecidesByCost) {
  TransformOptions options;
  options.rand = RandStrategy::kNone;  // isolate the push decision
  PTPtr plan = UntransformedPlan(Fig3Query(*g_.schema, 6));
  cost_->Annotate(plan.get());
  TransformResult r = TransformPT(plan->Clone(), ctx_, options);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_GE(r.pushed_variant_cost, 0);
  EXPECT_GE(r.unpushed_variant_cost, 0);
  // The chosen cost is the min of the alternatives.
  EXPECT_NEAR(r.cost,
              std::min(r.pushed_variant_cost, r.unpushed_variant_cost), 1e-6);
  EXPECT_EQ(Run(*r.plan).rows, Run(*plan).rows);
}

TEST_F(TransformTest, AlwaysPushAndNeverPushBaselines) {
  PTPtr plan = UntransformedPlan(Fig3Query(*g_.schema, 6));
  cost_->Annotate(plan.get());

  TransformOptions always;
  always.always_push = true;
  always.rand = RandStrategy::kNone;
  TransformResult ra = TransformPT(plan->Clone(), ctx_, always);
  EXPECT_TRUE(ra.pushed_sel || ra.pushed_proj);

  TransformOptions never;
  never.never_push = true;
  never.rand = RandStrategy::kNone;
  TransformResult rn = TransformPT(plan->Clone(), ctx_, never);
  EXPECT_FALSE(rn.pushed_sel);
  EXPECT_FALSE(rn.pushed_join);

  // Both still compute the right answer.
  EXPECT_EQ(Run(*ra.plan).rows, Run(*rn.plan).rows);
}

TEST_F(TransformTest, CollapseIJChainsUsesPathIndex) {
  // Build IJ(works)->IJ(instruments) by hand and collapse it.
  const ClassDef* composer = g_.schema->FindClass("Composer");
  PTPtr chain = MakeIJ(
      MakeIJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer), "x",
             "works", "w", g_.schema->FindClass("Composition")),
      "w", "instruments", "i", g_.schema->FindClass("Instrument"));
  cost_->Annotate(chain.get());
  const Table before = Run(*chain);
  EXPECT_EQ(CollapseIJChains(chain, ctx_), 1u);
  EXPECT_EQ(chain->kind, PTKind::kPIJ);
  EXPECT_EQ(Run(*chain).rows, before.rows);
}

TEST_F(TransformTest, CollapseRequiresMatchingIndex) {
  // master chain has no path index: no collapse.
  const ClassDef* composer = g_.schema->FindClass("Composer");
  PTPtr chain = MakeIJ(
      MakeIJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer), "x",
             "master", "m1", composer),
      "m1", "master", "m2", composer);
  EXPECT_EQ(CollapseIJChains(chain, ctx_), 0u);
}

TEST_F(TransformTest, PushDecisionFlipsWithSelectivity) {
  // With a very selective predicate and deep recursion, pushing must win.
  // With a predicate that keeps everything (num_labels = 1, estimated
  // selectivity 1), pushing buys nothing but pays the per-iteration path
  // expression — cost-based must refuse. The graph generator makes both
  // axes visible to the cost model exactly.
  GraphConfig config;
  config.num_nodes = 512;
  config.chain_depth = 32;
  config.path_len = 2;
  PhysicalConfig phys = DefaultGraphPhysical();
  phys.buffer_pages = 16;

  auto decide = [&](uint32_t num_labels) {
    config.num_labels = num_labels;
    GeneratedDb g = GenerateGraphDb(config, phys);
    Stats s = Stats::Derive(*g.db);
    CostModel c(g.db.get(), &s);
    Optimizer opt(g.db.get(), &s, &c, CostBasedOptions());
    OptimizeResult r =
        opt.Optimize(GraphClosureQuery(config, *g.schema));
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    // The decision always matches the cheaper costed alternative.
    EXPECT_LE(r.cost, r.unpushed_variant_cost + 1e-6);
    if (r.pushed_variant_cost >= 0) {
      EXPECT_LE(r.cost, r.pushed_variant_cost + 1e-6);
    }
    return r.pushed_sel;
  };

  EXPECT_TRUE(decide(500));  // selectivity 1/500: push restricts recursion
  EXPECT_FALSE(decide(1));   // selectivity 1: pushing only adds path cost
}

}  // namespace
}  // namespace rodin
