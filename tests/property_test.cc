// Property-based tests (parameterized sweeps): across seeds, dataset shapes
// and physical designs, every optimizer configuration must produce a plan
// that (a) computes the same answer set, (b) costs no more than the costed
// alternatives it rejected, and (c) is deterministic.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/graph_queries.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

std::multiset<std::string> Materialize(Database* db, const PTNode& plan) {
  Executor exec(db);
  Table t = exec.Execute(plan);
  t.Dedup();
  std::multiset<std::string> out;
  for (const Row& r : t.rows) {
    std::string key;
    for (const Value& v : r) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Music DB sweep: seed x lineage depth x clustering.
// ---------------------------------------------------------------------------

using MusicParam = std::tuple<uint64_t /*seed*/, uint32_t /*lineage*/,
                              bool /*clustered*/>;

class MusicPropertyTest : public ::testing::TestWithParam<MusicParam> {
 protected:
  void SetUp() override {
    const auto [seed, lineage, clustered] = GetParam();
    MusicConfig config;
    config.seed = seed;
    config.num_composers = 48;
    config.lineage_depth = lineage;
    config.harpsichord_fraction = 0.2;
    PhysicalConfig physical = PaperMusicPhysical();
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    if (clustered) {
      physical.clustering.push_back(ClusterSpec{"Composer", "works"});
    }
    g_ = GenerateMusicDb(config, physical);
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
  }

  OptimizeResult Optimize(const QueryGraph& q, OptimizerOptions options) {
    Optimizer opt(g_.db.get(), stats_.get(), cost_.get(), options);
    return opt.Optimize(q);
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
};

TEST_P(MusicPropertyTest, AllConfigurationsAgreeOnFig3) {
  const QueryGraph q = Fig3Query(*g_.schema, 3);
  OptimizeResult reference = Optimize(q, NaiveOptions());
  ASSERT_TRUE(reference.ok()) << reference.status.ToString();
  const auto expected = Materialize(g_.db.get(), *reference.plan);

  for (OptimizerOptions options :
       {CostBasedOptions(), DeductiveOptions(), AnnealingOptions(),
        ExhaustiveOptions()}) {
    OptimizeResult r = Optimize(q, options);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(Materialize(g_.db.get(), *r.plan), expected)
        << GenStrategyName(options.gen_strategy);
  }
}

TEST_P(MusicPropertyTest, ChosenCostNeverExceedsAlternatives) {
  const QueryGraph q = Fig3Query(*g_.schema, 3);
  OptimizeResult r = Optimize(q, CostBasedOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.cost, 0);
  EXPECT_LE(r.cost, r.unpushed_variant_cost + 1e-6);
  if (r.pushed_variant_cost >= 0) {
    EXPECT_LE(r.cost, r.pushed_variant_cost + 1e-6);
  }
}

TEST_P(MusicPropertyTest, OptimizationIsDeterministic) {
  const QueryGraph q = Fig3Query(*g_.schema, 3);
  OptimizeResult a = Optimize(q, CostBasedOptions(123));
  OptimizeResult b = Optimize(q, CostBasedOptions(123));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.plan->Fingerprint(), b.plan->Fingerprint());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_P(MusicPropertyTest, PushJoinQueryAgreesEverywhere) {
  const QueryGraph q = PushJoinQuery(*g_.schema);
  OptimizeResult reference = Optimize(q, NaiveOptions());
  ASSERT_TRUE(reference.ok());
  const auto expected = Materialize(g_.db.get(), *reference.plan);
  for (OptimizerOptions options : {CostBasedOptions(), DeductiveOptions()}) {
    OptimizeResult r = Optimize(q, options);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(Materialize(g_.db.get(), *r.plan), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MusicPropertyTest,
    ::testing::Combine(::testing::Values(1, 7, 1234),
                       ::testing::Values(4, 8, 16),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<MusicParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_lineage" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_clustered" : "_plain");
    });

// ---------------------------------------------------------------------------
// Graph DB sweep: selectivity x path length; checks the push decision's
// consistency with the costed alternatives and result equality.
// ---------------------------------------------------------------------------

using GraphParam = std::tuple<uint32_t /*num_labels*/, uint32_t /*path_len*/>;

class GraphPropertyTest : public ::testing::TestWithParam<GraphParam> {
 protected:
  void SetUp() override {
    const auto [labels, path_len] = GetParam();
    config_.num_nodes = 256;
    config_.chain_depth = 16;
    config_.num_labels = labels;
    config_.path_len = path_len;
    g_ = GenerateGraphDb(config_, DefaultGraphPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
  }

  GraphConfig config_;
  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
};

TEST_P(GraphPropertyTest, PushAndNoPushComputeSameClosure) {
  const QueryGraph q = GraphClosureQuery(config_, *g_.schema);
  Optimizer never(g_.db.get(), stats_.get(), cost_.get(), NaiveOptions());
  Optimizer always(g_.db.get(), stats_.get(), cost_.get(), DeductiveOptions());
  Optimizer costed(g_.db.get(), stats_.get(), cost_.get(), CostBasedOptions());
  OptimizeResult rn = never.Optimize(q);
  OptimizeResult ra = always.Optimize(q);
  OptimizeResult rc = costed.Optimize(q);
  ASSERT_TRUE(rn.ok() && ra.ok() && rc.ok());
  const auto expected = Materialize(g_.db.get(), *rn.plan);
  EXPECT_EQ(Materialize(g_.db.get(), *ra.plan), expected);
  EXPECT_EQ(Materialize(g_.db.get(), *rc.plan), expected);
  // Cost-based choice is consistent with its own comparison.
  EXPECT_LE(rc.cost, rc.unpushed_variant_cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphPropertyTest,
    ::testing::Combine(::testing::Values(1, 10, 200),
                       ::testing::Values(0, 1, 3)),
    [](const ::testing::TestParamInfo<GraphParam>& info) {
      return "labels" + std::to_string(std::get<0>(info.param)) + "_path" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace rodin
