// Processing-tree structure tests: constructors, columns, cloning,
// fingerprints, resolution of dotted columns, and the paper's functional
// term rendering.

#include <gtest/gtest.h>

#include "datagen/music_gen.h"
#include "plan/pt.h"
#include "plan/pt_printer.h"

namespace rodin {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 10;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    composer_ = g_.schema->FindClass("Composer");
    composition_ = g_.schema->FindClass("Composition");
  }
  GeneratedDb g_;
  const ClassDef* composer_ = nullptr;
  const ClassDef* composition_ = nullptr;
};

TEST_F(PlanTest, EntityLeafHasBindingColumn) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  ASSERT_EQ(e->cols.size(), 1u);
  EXPECT_EQ(e->cols[0].name, "x");
  EXPECT_EQ(e->cols[0].cls, composer_);
  EXPECT_EQ(e->ToTerm(), "Composer");
}

TEST_F(PlanTest, SelKeepsColumns) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  ExprPtr pred =
      Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach")));
  PTPtr s = MakeSel(std::move(e), pred);
  EXPECT_EQ(s->cols.size(), 1u);
  EXPECT_NE(s->ToTerm().find("Sel_{(x.name = \"Bach\")}"), std::string::npos);
}

TEST_F(PlanTest, IJAppendsTargetColumn) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr ij = MakeIJ(std::move(e), "x", "master", "m", composer_);
  ASSERT_EQ(ij->cols.size(), 2u);
  EXPECT_EQ(ij->cols[1].name, "m");
  EXPECT_EQ(ij->cols[1].cls, composer_);
  EXPECT_EQ(ij->ToTerm(), "IJ_master(Composer, Composer)");
}

TEST_F(PlanTest, IJAcceptsDottedSource) {
  std::vector<PTCol> delta_cols = {{"i.master", composer_},
                                   {"i.disciple", composer_},
                                   {"i.gen", nullptr}};
  PTPtr d = MakeDelta("Influencer", delta_cols);
  PTPtr ij = MakeIJ(std::move(d), "i", "master", "m", composer_);
  EXPECT_EQ(ij->cols.size(), 4u);
}

TEST_F(PlanTest, EJConcatenatesColumns) {
  PTPtr l = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr r = MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition_);
  ExprPtr pred = Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x"));
  PTPtr ej = MakeEJ(std::move(l), std::move(r), pred, JoinAlgo::kNestedLoop);
  ASSERT_EQ(ej->cols.size(), 2u);
  EXPECT_EQ(ej->cols[0].name, "x");
  EXPECT_EQ(ej->cols[1].name, "c");
}

TEST_F(PlanTest, PIJBindsStepColumns) {
  const PathIndex* index =
      g_.db->FindPathIndex("Composer", {"works", "instruments"});
  ASSERT_NE(index, nullptr);
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  const ClassDef* instrument = g_.schema->FindClass("Instrument");
  PTPtr pij = MakePIJ(std::move(e), "x", {"works", "instruments"},
                      {"w", "i"}, {composition_, instrument}, index);
  ASSERT_EQ(pij->cols.size(), 3u);
  EXPECT_EQ(pij->cols[1].name, "w");
  EXPECT_EQ(pij->cols[2].name, "i");
  EXPECT_EQ(pij->cols[2].cls, instrument);
  // Unbound steps add no columns.
  PTPtr e2 = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr pij2 = MakePIJ(std::move(e2), "x", {"works", "instruments"},
                       {"", "i"}, {composition_, instrument}, index);
  EXPECT_EQ(pij2->cols.size(), 2u);
}

TEST_F(PlanTest, FixAndDeltaShapes) {
  std::vector<PTCol> cols = {{"m", composer_}, {"d", composer_}};
  PTPtr base = MakeProj(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_),
                        {{"m", Expr::Path("x", {"master"})},
                         {"d", Expr::Path("x")}},
                        cols, true);
  PTPtr delta = MakeDelta("V", cols);
  PTPtr rec = MakeProj(std::move(delta),
                       {{"m", Expr::Path("m")}, {"d", Expr::Path("d")}}, cols,
                       true);
  PTPtr fix = MakeFix("V", std::move(base), std::move(rec));
  EXPECT_EQ(fix->cols.size(), 2u);
  EXPECT_NE(fix->ToTerm().find("Fix(V, Union("), std::string::npos);
}

TEST_F(PlanTest, CloneIsDeepAndEqual) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr s = MakeSel(std::move(e),
                    Expr::Eq(Expr::Path("x", {"name"}),
                             Expr::Lit(Value::Str("Bach"))));
  s->est_cost = 42;
  PTPtr c = s->Clone();
  EXPECT_EQ(c->Fingerprint(), s->Fingerprint());
  EXPECT_EQ(c->est_cost, 42);
  // Mutating the clone leaves the original alone.
  c->children[0]->binding = "y";
  EXPECT_EQ(s->children[0]->binding, "x");
}

TEST_F(PlanTest, FingerprintDistinguishesPlans) {
  PTPtr a = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr b = MakeEntity(EntityRef{"Composition", 0, 0}, "x", composition_);
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
  PTPtr ej1 = MakeEJ(a->Clone(), b->Clone(), nullptr, JoinAlgo::kNestedLoop);
  PTPtr ej2 = MakeEJ(b->Clone(), a->Clone(), nullptr, JoinAlgo::kNestedLoop);
  EXPECT_NE(ej1->Fingerprint(), ej2->Fingerprint());
}

TEST_F(PlanTest, ResolveVarPathPrefersDottedColumn) {
  std::vector<PTCol> cols = {{"i.gen", nullptr}, {"i", composer_}};
  PTPtr d = MakeDelta("V", cols);
  int col = -1;
  std::vector<std::string> rest;
  ASSERT_TRUE(d->ResolveVarPath("i", {"gen"}, &col, &rest));
  EXPECT_EQ(col, 0);
  EXPECT_TRUE(rest.empty());
  // Plain column fallback keeps the remaining path.
  ASSERT_TRUE(d->ResolveVarPath("i", {"master"}, &col, &rest));
  EXPECT_EQ(col, 1);
  EXPECT_EQ(rest, (std::vector<std::string>{"master"}));
  EXPECT_FALSE(d->ResolveVarPath("zzz", {}, &col, &rest));
}

TEST_F(PlanTest, InvalidateEstimatesClearsSubtree) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  e->est_cost = 7;
  PTPtr s = MakeSel(std::move(e), nullptr);
  s->est_cost = 9;
  s->InvalidateEstimates();
  EXPECT_LT(s->est_cost, 0);
  EXPECT_LT(s->children[0]->est_cost, 0);
}

TEST_F(PlanTest, TreeSizeCounts) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr ij = MakeIJ(std::move(e), "x", "master", "m", composer_);
  PTPtr s = MakeSel(std::move(ij), nullptr);
  EXPECT_EQ(s->TreeSize(), 3u);
}

TEST_F(PlanTest, PrinterShowsStructureAndEstimates) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  e->est_cost = 3;
  e->est_rows = 10;
  const std::string with = PrintPT(*e, true);
  EXPECT_NE(with.find("cost=3.0"), std::string::npos);
  const std::string without = PrintPT(*e, false);
  EXPECT_EQ(without.find("cost="), std::string::npos);
}

TEST_F(PlanTest, UnionRequiresMatchingArity) {
  PTPtr a = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr b = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  PTPtr u = MakeUnion([&] {
    std::vector<PTPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
  }());
  EXPECT_EQ(u->cols.size(), 1u);
}

TEST_F(PlanTest, MakeIJWithBadSourceAborts) {
  PTPtr e = MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer_);
  EXPECT_DEATH(MakeIJ(std::move(e), "nope", "master", "m", composer_),
               "IJ source");
}

}  // namespace
}  // namespace rodin
