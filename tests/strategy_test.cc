// Randomized-strategy tests: local moves preserve results, Iterative
// Improvement never worsens cost, Simulated Annealing behaves, and the rule
// framework (pattern | constraint -> rewrite) applies and saturates.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "optimizer/rule.h"
#include "optimizer/strategy.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class StrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 80;
    config.lineage_depth = 10;
    PhysicalConfig physical = PaperMusicPhysical();
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    g_ = GenerateMusicDb(config, physical);
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
  }

  PTPtr Fig3Plan() {
    OptimizerOptions options = NaiveOptions();
    options.gen_strategy = GenStrategy::kDP;
    Optimizer opt(g_.db.get(), stats_.get(), cost_.get(), options);
    OptimizeResult r = opt.Optimize(Fig3Query(*g_.schema, 4));
    EXPECT_TRUE(r.ok());
    return std::move(r.plan);
  }

  Table Run(const PTNode& plan) {
    Executor exec(g_.db.get());
    Table t = exec.Execute(plan);
    t.Dedup();
    return t;
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
};

TEST_F(StrategyTest, LocalMovesExist) {
  EXPECT_GE(LocalMoves().size(), 8u);
}

TEST_F(StrategyTest, EveryApplicableMovePreservesResultsAtEverySite) {
  // Apply each move at EVERY site of the Fig. 3 plan (one application per
  // clone); whenever one fires, the rewritten plan must compute the same
  // answer. This is the key soundness property of the randomized search
  // space — and it must hold at every site, not just the first: a
  // column-reordering move applied deep in the tree once silently rebound
  // variables through stale ancestor schemas (regression).
  PTPtr plan = Fig3Plan();
  cost_->Annotate(plan.get());
  const Table expected = Run(*plan);
  size_t fired = 0;
  const size_t num_sites = CollectSubtrees(plan).size();
  for (const Rule& move : LocalMoves()) {
    for (size_t i = 0; i < num_sites; ++i) {
      PTPtr clone = plan->Clone();
      std::vector<PTPtr*> sites = CollectSubtrees(clone);
      if (!move.ApplyAt(*sites[i], ctx_)) continue;
      ++fired;
      RecomputePTCols(clone.get(), g_.db->schema());
      clone->InvalidateEstimates();
      cost_->Annotate(clone.get());
      EXPECT_EQ(Run(*clone).rows, expected.rows)
          << "move: " << move.name() << " at site " << i;
    }
  }
  EXPECT_GE(fired, 3u);  // several (move, site) pairs apply to this plan
}

TEST_F(StrategyTest, IterativeImprovementNeverWorsens) {
  PTPtr plan = Fig3Plan();
  const double before = cost_->Annotate(plan.get());
  TransformOptions options;
  options.rand = RandStrategy::kIterativeImprovement;
  options.rand_moves = 120;
  RandReport report = RandomizedImprove(plan, ctx_, options);
  EXPECT_LE(report.final_cost, before + 1e-6);
  EXPECT_DOUBLE_EQ(report.initial_cost, before);
  // The improved plan still computes the right rows.
  OptimizerOptions naive = NaiveOptions();
  Optimizer opt(g_.db.get(), stats_.get(), cost_.get(), naive);
  OptimizeResult ref = opt.Optimize(Fig3Query(*g_.schema, 4));
  EXPECT_EQ(Run(*plan).rows, Run(*ref.plan).rows);
}

TEST_F(StrategyTest, AnnealingReturnsBestSeen) {
  PTPtr plan = Fig3Plan();
  const double before = cost_->Annotate(plan.get());
  TransformOptions options;
  options.rand = RandStrategy::kSimulatedAnnealing;
  options.rand_moves = 120;
  RandReport report = RandomizedImprove(plan, ctx_, options);
  // SA may accept uphill moves but must return the best plan seen.
  EXPECT_LE(report.final_cost, before + 1e-6);
}

TEST_F(StrategyTest, NoneStrategyIsIdentity) {
  PTPtr plan = Fig3Plan();
  const double before = cost_->Annotate(plan.get());
  const std::string fp = plan->Fingerprint();
  TransformOptions options;
  options.rand = RandStrategy::kNone;
  RandReport report = RandomizedImprove(plan, ctx_, options);
  EXPECT_EQ(report.tried, 0u);
  EXPECT_EQ(plan->Fingerprint(), fp);
  EXPECT_DOUBLE_EQ(report.final_cost, before);
}

TEST_F(StrategyTest, DeterministicUnderSeed) {
  TransformOptions options;
  options.rand = RandStrategy::kIterativeImprovement;
  PTPtr p1 = Fig3Plan();
  PTPtr p2 = p1->Clone();
  cost_->Annotate(p1.get());
  cost_->Annotate(p2.get());
  OptContext ctx1 = ctx_;
  ctx1.rng = Rng(77);
  OptContext ctx2 = ctx_;
  ctx2.rng = Rng(77);
  RandomizedImprove(p1, ctx1, options);
  RandomizedImprove(p2, ctx2, options);
  EXPECT_EQ(p1->Fingerprint(), p2->Fingerprint());
}

TEST_F(StrategyTest, UnionJoinDistributionRoundTrips) {
  // EJ(Union(a,b), c) -> Union(EJ(a,c), EJ(b,c)) and back; results are
  // preserved and the factored form is recovered structurally.
  const ClassDef* composer = g_.schema->FindClass("Composer");
  const ClassDef* composition = g_.schema->FindClass("Composition");
  auto scan = [&](const char* var) {
    return MakeEntity(EntityRef{"Composer", 0, 0}, var, composer);
  };
  PTPtr u = MakeUnion([&] {
    std::vector<PTPtr> v;
    v.push_back(scan("x"));
    v.push_back(scan("x"));
    return v;
  }());
  PTPtr ej = MakeEJ(std::move(u),
                    MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition),
                    Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")),
                    JoinAlgo::kNestedLoop);
  cost_->Annotate(ej.get());
  const Table expected = Run(*ej);

  const Rule* distribute = nullptr;
  const Rule* factor = nullptr;
  for (const Rule& m : LocalMoves()) {
    if (m.name() == "distribute-ej-over-union") distribute = &m;
    if (m.name() == "factor-union-of-ej") factor = &m;
  }
  ASSERT_NE(distribute, nullptr);
  ASSERT_NE(factor, nullptr);

  PTPtr plan = ej->Clone();
  ASSERT_TRUE(distribute->ApplyAt(plan, ctx_));
  RecomputePTCols(plan.get(), g_.db->schema());
  EXPECT_EQ(plan->kind, PTKind::kUnion);
  cost_->Annotate(plan.get());
  EXPECT_EQ(Run(*plan).rows, expected.rows);

  ASSERT_TRUE(factor->ApplyAt(plan, ctx_));
  RecomputePTCols(plan.get(), g_.db->schema());
  EXPECT_EQ(plan->kind, PTKind::kEJ);
  cost_->Annotate(plan.get());
  EXPECT_EQ(Run(*plan).rows, expected.rows);
}

TEST_F(StrategyTest, FactorRejectsMismatchedInners) {
  const ClassDef* composer = g_.schema->FindClass("Composer");
  const ClassDef* composition = g_.schema->FindClass("Composition");
  PTPtr a = MakeEJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                   MakeEntity(EntityRef{"Composition", 0, 0}, "c", composition),
                   Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")),
                   JoinAlgo::kNestedLoop);
  PTPtr b = MakeEJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                   MakeEntity(EntityRef{"Instrument", 0, 0}, "c",
                              g_.schema->FindClass("Instrument")),
                   Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")),
                   JoinAlgo::kNestedLoop);
  // Different inner relations: factor must not fire. (Column arity differs
  // too, so we do not build a real Union; apply the rule to a fake site.)
  const Rule* factor = nullptr;
  for (const Rule& m : LocalMoves()) {
    if (m.name() == "factor-union-of-ej") factor = &m;
  }
  PTPtr u = MakeUnion([&] {
    std::vector<PTPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
  }());
  EXPECT_FALSE(factor->ApplyAt(u, ctx_));
}

TEST_F(StrategyTest, RuleFrameworkAppliesAndSaturates) {
  // A toy rule: remove one Sel node (pattern: any Sel; rewrite: child).
  Rule drop_sel("drop-sel", [](PTPtr& site, OptContext&) {
    if (site->kind != PTKind::kSel) return false;
    site = std::move(site->children[0]);
    return true;
  });
  PTPtr plan = Fig3Plan();
  const size_t sels = [&] {
    size_t n = 0;
    for (PTPtr* s : CollectSubtrees(plan)) {
      if ((*s)->kind == PTKind::kSel) ++n;
    }
    return n;
  }();
  ASSERT_GT(sels, 0u);
  EXPECT_EQ(ApplyRuleSaturate(plan, drop_sel, ctx_), sels);
  // Saturated: no Sel nodes remain.
  EXPECT_FALSE(ApplyRuleOnce(plan, drop_sel, ctx_));
}

TEST_F(StrategyTest, VisitSubtreesIsPreorder) {
  PTPtr plan = Fig3Plan();
  std::vector<const PTNode*> order;
  VisitSubtrees(plan, [&](PTPtr& n) { order.push_back(n.get()); });
  EXPECT_EQ(order.front(), plan.get());
  EXPECT_EQ(order.size(), plan->TreeSize());
}

TEST_F(StrategyTest, StrategyNames) {
  EXPECT_STREQ(GenStrategyName(GenStrategy::kDP), "dynamic-programming");
  EXPECT_STREQ(RandStrategyName(RandStrategy::kSimulatedAnnealing),
               "simulated-annealing");
}

}  // namespace
}  // namespace rodin
