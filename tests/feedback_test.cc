// Adaptive cost feedback (src/cost/feedback.h): registry mechanics (EWMA
// residual updates, clamps, stats-version gating, bounded state, demotion
// notes), the Session wiring (corrections improve the optimizer's estimates,
// drift demotion -> re-optimize -> re-cache round-trip, the EXPLAIN drift
// line and node_stats() surface), the hygiene rules (faulted, truncated and
// cancelled runs contribute zero observations), and the headline safety
// property: feedback never changes results, only plans — rows and row order
// are bit-identical feedback-on vs feedback-off over a randomized corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/plan_cache.h"
#include "api/session.h"
#include "common/faults.h"
#include "common/rng.h"
#include "cost/feedback.h"
#include "datagen/music_gen.h"
#include "query/builder.h"
#include "query/parser.h"

namespace rodin {
namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

GeneratedDb MakeMusicDb() {
  MusicConfig config;
  config.num_composers = 40;
  config.lineage_depth = 8;
  return GenerateMusicDb(config, PaperMusicPhysical());
}

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

void ExpectSameCounters(const ExecCounters& a, const ExecCounters& b) {
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.method_calls, b.method_calls);
  EXPECT_EQ(a.method_cost, b.method_cost);
  EXPECT_EQ(a.rows_produced, b.rows_produced);
  EXPECT_EQ(a.fix_iterations, b.fix_iterations);
}

/// A synthetic harvested row (registry unit tests drive Harvest directly).
PlanNodeStats Node(std::string scope, double est_rows, uint64_t measured_rows,
                   int parent = -1, uint64_t invocations = 1) {
  PlanNodeStats n;
  n.op = scope.empty() ? "op" : scope;
  n.scope = std::move(scope);
  n.parent = parent;
  n.est_rows = est_rows;
  n.est_cost = est_rows;
  n.executed = true;
  n.measured_rows = measured_rows;
  n.invocations = invocations;
  return n;
}

// --- Registry mechanics ------------------------------------------------------

TEST(FeedbackRegistryTest, ExtentRatioDrivesEwmaResidualUpdate) {
  FeedbackRegistry reg;
  // Measured 40 vs estimated 10: ratio 4; f' = 1 * (0.5*4 + 0.5) = 2.5.
  EXPECT_EQ(reg.Harvest({Node("extent:X", 10, 40)}, /*stats_version=*/1,
                        /*alpha=*/0.5),
            1u);
  FeedbackCorrections c = reg.Snapshot(1);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.Factor("extent:X"), 2.5);
  // Unobserved scopes stay neutral.
  EXPECT_DOUBLE_EQ(c.Factor("extent:Y"), 1.0);
  EXPECT_EQ(reg.stats().observations, 1u);
  EXPECT_EQ(reg.stats().corrections, 1u);

  // A converged estimate (ratio 1 after the correction is applied at
  // optimize time) leaves the factor alone: residual update, not absolute.
  EXPECT_EQ(reg.Harvest({Node("extent:X", 40, 40)}, 1, 0.5), 1u);
  EXPECT_DOUBLE_EQ(reg.Snapshot(1).Factor("extent:X"), 2.5);
}

TEST(FeedbackRegistryTest, FactorsAndObservedRatiosAreClamped) {
  FeedbackRegistry reg;
  // Ratio 1000 clamps to kMaxObservedRatio (64) per harvest; repeated
  // harvests then saturate the factor at kMaxFactor.
  for (int i = 0; i < 4; ++i) {
    reg.Harvest({Node("extent:X", 1, 1000)}, 1, 0.5);
  }
  EXPECT_DOUBLE_EQ(reg.Snapshot(1).Factor("extent:X"),
                   FeedbackRegistry::kMaxFactor);
  // And the under-estimate direction saturates at kMinFactor.
  for (int i = 0; i < 8; ++i) {
    reg.Harvest({Node("extent:Y", 100000, 1)}, 1, 0.5);
  }
  EXPECT_DOUBLE_EQ(reg.Snapshot(1).Factor("extent:Y"),
                   FeedbackRegistry::kMinFactor);
}

TEST(FeedbackRegistryTest, LocalRatioDividesOutTheInputsOwnError) {
  FeedbackRegistry reg;
  // Sel over an extent whose own estimate is perfect: the selection kept
  // 20 of 10-estimated... i.e. est selectivity 5/10, measured 20/10 -> the
  // sel scope is charged ratio 4, the extent ratio 1.
  std::vector<PlanNodeStats> run;
  run.push_back(Node("sel:extent:X:p", /*est=*/5, /*measured=*/20));
  run.push_back(Node("extent:X", /*est=*/10, /*measured=*/10, /*parent=*/0));
  EXPECT_EQ(reg.Harvest(run, 1, 0.5), 2u);
  FeedbackCorrections c = reg.Snapshot(1);
  EXPECT_DOUBLE_EQ(c.Factor("sel:extent:X:p"), 2.5);
  EXPECT_DOUBLE_EQ(c.Factor("extent:X"), 1.0);

  // Join form: two children, selectivity = out / (l * r).
  FeedbackRegistry reg2;
  std::vector<PlanNodeStats> jrun;
  jrun.push_back(Node("join:p", /*est=*/25, /*measured=*/100));  // sel err 4x
  jrun.push_back(Node("extent:L", 10, 10, /*parent=*/0));
  jrun.push_back(Node("extent:R", 10, 10, /*parent=*/0));
  EXPECT_EQ(reg2.Harvest(jrun, 1, 0.5), 3u);
  EXPECT_DOUBLE_EQ(reg2.Snapshot(1).Factor("join:p"), 2.5);
}

TEST(FeedbackRegistryTest, StatsVersionGatesHarvestAndSnapshot) {
  FeedbackRegistry reg;
  ASSERT_EQ(reg.Harvest({Node("extent:X", 10, 40)}, /*stats_version=*/3, 0.5),
            1u);
  EXPECT_EQ(reg.Snapshot(3).size(), 1u);
  // A snapshot under any other version is empty: corrections never survive
  // a stats refresh in either direction.
  EXPECT_TRUE(reg.Snapshot(2).empty());
  EXPECT_TRUE(reg.Snapshot(4).empty());

  // A harvest from a run estimated under older statistics is dropped whole.
  EXPECT_EQ(reg.Harvest({Node("extent:X", 10, 40)}, 2, 0.5), 0u);
  EXPECT_EQ(reg.stats().stale_dropped, 1u);
  EXPECT_EQ(reg.Snapshot(3).size(), 1u);  // unperturbed

  // A harvest under newer statistics clears and adopts: old factors die
  // with the statistics they were learned against.
  reg.NoteDemotion("fp", 5.0);
  EXPECT_EQ(reg.Harvest({Node("extent:Z", 10, 20)}, 4, 0.5), 1u);
  FeedbackCorrections c = reg.Snapshot(4);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.Factor("extent:X"), 1.0);
  EXPECT_EQ(reg.TakeDemotionNote("fp"), 0.0);  // retired with the version
}

TEST(FeedbackRegistryTest, StateIsBounded) {
  FeedbackRegistry reg;
  std::vector<PlanNodeStats> run;
  for (size_t i = 0; i < FeedbackRegistry::kMaxScopes + 100; ++i) {
    run.push_back(Node("extent:X" + std::to_string(i), 10, 40));
  }
  reg.Harvest(run, 1, 0.5);
  EXPECT_EQ(reg.size(), FeedbackRegistry::kMaxScopes);
  // Existing scopes keep updating even at the cap.
  reg.Harvest({Node("extent:X0", 10, 40)}, 1, 0.5);
  EXPECT_GT(reg.Snapshot(1).Factor("extent:X0"), 2.5);

  for (size_t i = 0; i < FeedbackRegistry::kMaxDemotionNotes + 10; ++i) {
    reg.NoteDemotion("fp" + std::to_string(i), 3.0);
  }
  // Notes beyond the cap are dropped; the capped ones round-trip.
  EXPECT_EQ(reg.TakeDemotionNote("fp0"), 3.0);
  EXPECT_EQ(reg.TakeDemotionNote("fp0"), 0.0);  // take clears
  EXPECT_EQ(
      reg.TakeDemotionNote(
          "fp" + std::to_string(FeedbackRegistry::kMaxDemotionNotes + 5)),
      0.0);
}

TEST(FeedbackRegistryTest, UnscopedAndUnexecutedNodesAreIgnored) {
  FeedbackRegistry reg;
  std::vector<PlanNodeStats> run;
  run.push_back(Node("", 10, 40));  // projection/union/delta: no scope
  PlanNodeStats unexecuted = Node("extent:X", 10, 40);
  unexecuted.executed = false;
  run.push_back(unexecuted);
  PlanNodeStats no_estimate = Node("extent:Y", -1, 40);
  run.push_back(no_estimate);
  EXPECT_EQ(reg.Harvest(run, 1, 0.5), 0u);
  EXPECT_EQ(reg.size(), 0u);
}

// --- Session integration -----------------------------------------------------

class FeedbackSessionTest : public ::testing::Test {
 protected:
  FeedbackSessionTest() : g_(MakeMusicDb()) {}

  GeneratedDb g_;
};

QueryOptions FeedbackOn(double drift = 0, double alpha = 0) {
  QueryOptions o;
  o.cold = true;
  o.feedback.enabled = true;
  o.feedback.drift_threshold = drift;
  o.feedback.ewma_alpha = alpha;
  return o;
}

QueryOptions FeedbackOff() {
  QueryOptions o;
  o.cold = true;
  o.feedback.enabled = false;
  return o;
}

TEST_F(FeedbackSessionTest, ValidateRejectsBadTuning) {
  Session session(g_.db.get());
  QueryOptions bad;
  bad.feedback.drift_threshold = 1.0;  // must be > 1 (or 0 = inherit)
  EXPECT_EQ(session.Run(kFig3Text, bad).status.code,
            Status::Code::kInvalidArgument);
  QueryOptions bad2;
  bad2.feedback.ewma_alpha = 1.5;  // must be in [0, 1]
  EXPECT_EQ(session.Run(kFig3Text, bad2).status.code,
            Status::Code::kInvalidArgument);
}

TEST_F(FeedbackSessionTest, HarvestPopulatesSharedRegistry) {
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "faulted runs never feed back by design";
  }
  Session session(g_.db.get());
  ASSERT_TRUE(session.Run(kFig3Text, FeedbackOn()).ok());
  const FeedbackStats stats = session.feedback_registry().stats();
  EXPECT_GT(stats.observations, 0u);
  EXPECT_GT(session.feedback_registry().size(), 0u);

  // Feedback-off runs leave the registry untouched.
  Session off(g_.db.get());
  ASSERT_TRUE(off.Run(kFig3Text, FeedbackOff()).ok());
  EXPECT_EQ(off.feedback_registry().stats().observations, 0u);
}

TEST_F(FeedbackSessionTest, CorrectionsMoveEstimatesTowardMeasured) {
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "faulted runs never feed back by design";
  }
  Session session(g_.db.get());
  // Bypass the plan cache so every Explain re-optimizes: the warm run must
  // cost its plan under the corrections the cold runs harvested.
  QueryOptions opts = FeedbackOn();
  opts.bypass_plan_cache = true;

  // Cardinality q-errors of the executed, scoped plan nodes, computed from
  // the structured node_stats surface. Aggregated as geometric mean and
  // worst node — medians are fragile when corrections change the plan's
  // shape (a flipped join method adds nodes and shifts the median without
  // any estimate getting worse).
  struct QError {
    double geomean = 1.0;
    double worst = 1.0;
  };
  auto q_error = [](const ExplainResult& ex) {
    QError out;
    double log_sum = 0;
    size_t count = 0;
    for (const PlanNodeStats& n : ex.node_stats()) {
      if (n.scope.empty() || !n.executed || n.est_rows < 0) continue;
      const double m = static_cast<double>(n.measured_rows) /
                       static_cast<double>(n.invocations == 0 ? 1
                                                              : n.invocations);
      const double q = std::max((n.est_rows + 1) / (m + 1),
                                (m + 1) / (n.est_rows + 1));
      log_sum += std::log(q);
      ++count;
      out.worst = std::max(out.worst, q);
    }
    if (count > 0) out.geomean = std::exp(log_sum / count);
    return out;
  };

  const ExplainResult cold = session.Explain(kFig3Text, opts);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  const QError cold_err = q_error(cold);

  // Warm up: a few more harvests converge the EWMA factors.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session.Run(kFig3Text, opts).ok());
  }
  const ExplainResult warm = session.Explain(kFig3Text, opts);
  ASSERT_TRUE(warm.ok()) << warm.status.ToString();
  const QError warm_err = q_error(warm);

  RecordProperty("cold_q_error_geomean", std::to_string(cold_err.geomean));
  RecordProperty("warm_q_error_geomean", std::to_string(warm_err.geomean));
  RecordProperty("cold_q_error_worst", std::to_string(cold_err.worst));
  RecordProperty("warm_q_error_worst", std::to_string(warm_err.worst));
  EXPECT_LE(warm_err.geomean, cold_err.geomean * 1.02)
      << "corrections made the estimates worse overall (geomean "
      << cold_err.geomean << " -> " << warm_err.geomean << ")";
  // The recursive query's worst estimate (the selection over the fixpoint's
  // output) is genuinely off cold — warm-up must show real movement there,
  // not a tie.
  ASSERT_GT(cold_err.worst, 1.5) << "workload lost its estimation error; "
                                    "pick a harder query for this test";
  EXPECT_LT(warm_err.worst, cold_err.worst);
}

TEST_F(FeedbackSessionTest, NodeStatsExposesTheEstVsMeasuredTable) {
  Session session(g_.db.get());
  const ExplainResult ex = session.Explain(kFig3Text, FeedbackOff());
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  const std::vector<PlanNodeStats>& rows = ex.node_stats();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].parent, -1);  // preorder: root first
  bool any_extent_scope = false;
  bool any_executed = false;
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_FALSE(rows[i].op.empty());
    EXPECT_GE(rows[i].est_rows, 0);
    EXPECT_GE(rows[i].est_cost, 0);
    if (i > 0) {
      ASSERT_GE(rows[i].parent, 0);
      ASSERT_LT(static_cast<size_t>(rows[i].parent), i);  // parent precedes
    }
    any_extent_scope |= rows[i].scope.rfind("extent:", 0) == 0;
    any_executed |= rows[i].executed;
  }
  EXPECT_TRUE(any_extent_scope);
  EXPECT_TRUE(any_executed);

  // explain_only: estimates still fill, measured fields stay unset.
  QueryOptions plan_only = FeedbackOff();
  plan_only.explain_only = true;
  const ExplainResult dry = session.Explain(kFig3Text, plan_only);
  ASSERT_TRUE(dry.ok());
  for (const PlanNodeStats& n : dry.node_stats()) {
    EXPECT_FALSE(n.executed);
    EXPECT_GE(n.est_rows, 0);
  }
}

// The headline safety property: feedback changes plans, never results. Over
// a randomized 50-query SPJ corpus, rows and row order are identical
// feedback-on vs feedback-off, and whenever the chosen plan is the same the
// ExecCounters are bit-identical too (pass 1 starts from an empty registry,
// so the first query's plan — and therefore everything — must match).
TEST_F(FeedbackSessionTest, DifferentialRowsIdenticalOverRandomCorpus) {
  Session on(g_.db.get());
  Session off(g_.db.get());

  Rng rng(1999);
  const int kQueries = 50;
  std::vector<QueryGraph> corpus;
  for (int i = 0; i < kQueries; ++i) {
    QueryGraphBuilder b;
    NodeBuilder& node = b.Node("Answer");
    const int arcs = 1 + static_cast<int>(rng.Below(3));
    std::vector<std::string> vars;
    for (int a = 0; a < arcs; ++a) {
      const std::string var = "x" + std::to_string(a);
      node.Input("Composer", var);
      vars.push_back(var);
      if (a > 0) {
        node.Where(Expr::Eq(Expr::Path(vars[a - 1], {"master"}),
                            rng.Chance(0.5) ? Expr::Path(var, {"master"})
                                            : Expr::Path(var, {})));
      }
    }
    const int sels = static_cast<int>(rng.Below(3));
    for (int s = 0; s < sels; ++s) {
      const std::string& var = vars[rng.Below(vars.size())];
      if (rng.Chance(0.5)) {
        node.Where(Expr::Cmp(rng.Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng.Range(1600, 1750)))));
      } else {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(Expr::Path(var, {"works", "instruments", "iname"}),
                            Expr::Lit(Value::Str(kInstr[rng.Below(4)]))));
      }
    }
    node.OutPath("n", vars[0], {"name"});
    corpus.push_back(b.Build(*g_.schema));
  }

  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < kQueries; ++i) {
      SCOPED_TRACE("pass " + std::to_string(pass) + " query " +
                   std::to_string(i));
      const QueryRun ron = on.Run(corpus[i], FeedbackOn());
      const QueryRun roff = off.Run(corpus[i], FeedbackOff());
      ASSERT_TRUE(ron.ok()) << ron.error();
      ASSERT_TRUE(roff.ok()) << roff.error();
      ASSERT_EQ(Keys(ron.answer), Keys(roff.answer));
      if (ron.plan_text == roff.plan_text) {
        ExpectSameCounters(ron.counters, roff.counters);
        EXPECT_EQ(ron.measured_cost, roff.measured_cost);
      }
      if (pass == 0 && i == 0) {
        // Empty registry: corrections are a no-op, so the very first plan is
        // bit-identical to feedback-off by construction.
        EXPECT_EQ(ron.plan_text, roff.plan_text);
      }
    }
  }
}

// --- Hygiene: what must never feed back --------------------------------------

class FeedbackHygieneTest : public ::testing::Test {
 protected:
  FeedbackHygieneTest() : g_(MakeMusicDb()) {}
  void TearDown() override {
    // Restore whatever the process-wide RODIN_FAULTS leg configured.
    const char* env = std::getenv("RODIN_FAULTS");
    FaultInjector::Global().Configure(
        FaultInjector::ParseEnvValue(env != nullptr ? env : ""));
  }

  GeneratedDb g_;
};

TEST_F(FeedbackHygieneTest, FaultedRetriedRunsContributeNothing) {
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 7;
  fc.page_fetch_fail = 0.02;  // transient kFault aborts, retried internally
  FaultInjector::Global().Configure(fc);

  Session session(g_.db.get());
  const QueryRun run = session.Run(kFig3Text, FeedbackOn());
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(session.feedback_registry().stats().observations, 0u);
  EXPECT_EQ(session.feedback_registry().size(), 0u);
}

TEST_F(FeedbackHygieneTest, TruncatedAnytimePlansContributeNothing) {
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_stage = 4;  // transformPT degrades to an anytime plan
  FaultInjector::Global().Configure(fc);

  Session session(g_.db.get());
  const QueryRun run = session.Run(kFig3Text, FeedbackOn());
  ASSERT_TRUE(run.ok()) << run.error();
  bool any_truncated = false;
  for (const StageReport& s : run.optimized.stages) {
    any_truncated |= s.truncated;
  }
  ASSERT_TRUE(any_truncated);
  EXPECT_EQ(session.feedback_registry().stats().observations, 0u);
}

TEST_F(FeedbackHygieneTest, CancelledAndAbandonedCursorsContributeNothing) {
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "streaming never runs under the injector";
  }
  Session session(g_.db.get());
  QueryOptions on = FeedbackOn();
  on.batch_rows = 2;

  {
    // Abandoned: one batch pulled, then destroyed. Zero observations.
    ResultCursor cursor = session.Query(kFig3Text, on);
    ASSERT_TRUE(cursor.ok()) << cursor.error();
    RowBatch batch;
    cursor.Next(&batch);
  }
  EXPECT_EQ(session.feedback_registry().stats().observations, 0u);

  {
    // Cancelled mid-stream: the abort reason surfaces, nothing feeds back.
    // Fresh options: a copy of `on` would share its CancelToken's flag and
    // cancel the positive control below too.
    QueryOptions cancelled = FeedbackOn();
    cancelled.batch_rows = 2;
    CancelToken token = cancelled.query.cancel;  // caller-side copy
    ResultCursor cursor = session.Query(kFig3Text, cancelled);
    ASSERT_TRUE(cursor.ok()) << cursor.error();
    RowBatch batch;
    cursor.Next(&batch);
    token.RequestCancel();
    while (cursor.Next(&batch)) {
    }
    EXPECT_EQ(cursor.status().code, Status::Code::kCancelled);
  }
  EXPECT_EQ(session.feedback_registry().stats().observations, 0u);

  // Positive control: a drained cursor does feed back.
  ResultCursor cursor = session.Query(kFig3Text, on);
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  cursor.Finish();
  EXPECT_GT(session.feedback_registry().stats().observations, 0u);
}

// --- Drift demotion ----------------------------------------------------------

TEST(FeedbackDemotionTest, DemoteReoptimizeRecacheRoundTripAcrossSessions) {
  if (!PlanCacheEnabledByEnv()) {
    GTEST_SKIP() << "RODIN_PLAN_CACHE=0: demotion is about cached plans";
  }
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "the injector bypasses the plan cache by design";
  }
  GeneratedDb g = MakeMusicDb();
  auto cache = std::make_shared<PlanCache>();
  auto registry = std::make_shared<FeedbackRegistry>();
  Session s1(g.db.get(), {}, {}, cache, registry);
  Session s2(g.db.get(), {}, {}, cache, registry);

  // A threshold barely above 1 makes any real estimation error count as
  // drift — the recursive query's measured cost is never a hair from its
  // estimate, so the cached plan demotes deterministically.
  QueryOptions opts = FeedbackOn(/*drift=*/1.0001);

  // Run 1 (s1): miss + insert. Freshly optimized plans are never demoted.
  const QueryRun first = s1.Run(kFig3Text, opts);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_FALSE(first.plan_cached);
  EXPECT_EQ(first.reoptimized_drift, 0.0);
  EXPECT_EQ(cache->stats().demotions, 0u);

  // Run 2 (s1): hit, measured drift >= threshold -> demoted.
  const QueryRun hit = s1.Run(kFig3Text, opts);
  ASSERT_TRUE(hit.ok()) << hit.error();
  EXPECT_TRUE(hit.plan_cached);
  EXPECT_EQ(cache->stats().demotions, 1u);
  EXPECT_EQ(registry->stats().demotions, 1u);
  EXPECT_EQ(cache->size(), 0u);

  // Run 3 (the *other* session over the shared cache): transparent
  // re-optimization, surfaced in the result and the EXPLAIN report.
  const ExplainResult re = s2.Explain(kFig3Text, opts);
  ASSERT_TRUE(re.ok()) << re.status.ToString();
  EXPECT_FALSE(re.plan_cached);
  EXPECT_GT(re.reoptimized_drift, 1.0);
  EXPECT_NE(re.ToString().find("[plan: re-optimized (drift"),
            std::string::npos);

  // The re-optimized plan is re-cached: run 4 hits again, and the drift
  // note was consumed (no stale "re-optimized" banner).
  const QueryRun again = s1.Run(kFig3Text, opts);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_TRUE(again.plan_cached);
  EXPECT_EQ(again.reoptimized_drift, 0.0);
}

TEST(FeedbackDemotionTest, GenerousThresholdNeverDemotes) {
  if (!PlanCacheEnabledByEnv() || FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "needs an active plan cache";
  }
  GeneratedDb g = MakeMusicDb();
  Session session(g.db.get());
  // An absurd threshold: estimates are imperfect, but not 1e6x off.
  QueryOptions opts = FeedbackOn(/*drift=*/1e6);
  ASSERT_TRUE(session.Run(kFig3Text, opts).ok());
  const QueryRun hit = session.Run(kFig3Text, opts);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.plan_cached);
  EXPECT_EQ(session.plan_cache().stats().demotions, 0u);
}

// --- EngineHandle sharing ----------------------------------------------------

TEST(FeedbackEngineTest, SessionsShareTheHandleRegistry) {
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "faulted runs never feed back by design";
  }
  EngineOptions options;
  options.dataset = "music";
  options.size = 40;
  Status status;
  std::unique_ptr<EngineHandle> engine = EngineHandle::Create(options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  std::unique_ptr<Session> a = engine->NewSession();
  std::unique_ptr<Session> b = engine->NewSession();
  ASSERT_TRUE(a->Run(kFig3Text, FeedbackOn()).ok());
  // One tenant's harvest is the other tenant's corrections.
  EXPECT_GT(engine->feedback_registry()->stats().observations, 0u);
  EXPECT_EQ(&b->feedback_registry(), engine->feedback_registry().get());
  EXPECT_GT(b->feedback_registry().size(), 0u);
}

}  // namespace
}  // namespace rodin
