// Executable version of docs/TUTORIAL.md: if this test fails, the tutorial
// is lying. Keep the two in sync.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "common/faults.h"
#include "exec/executor.h"
#include "server/client.h"
#include "server/server.h"
#include "cost/fig7.h"
#include "optimizer/baseline.h"
#include "query/parser.h"

namespace rodin {
namespace {

class TutorialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = schema_.types();
    ClassDef* pkg = schema_.AddClass("Package");
    schema_.AddAttribute(pkg, {"pname", t.String(), false, 0, "", ""});
    schema_.AddAttribute(pkg, {"license", t.String(), false, 0, "", ""});
    schema_.AddAttribute(pkg, {"kloc", t.Int(), false, 0, "", ""});
    schema_.AddAttribute(
        pkg, {"deps", t.Set(t.Object("Package")), false, 0, "", ""});
    schema_.AddAttribute(pkg, {"risk_score", t.Int(), true, 4.0, "", ""});

    db_ = std::make_unique<Database>(&schema_);
    std::vector<Oid> pkgs;
    for (int i = 0; i < 500; ++i) {
      Oid p = db_->NewObject("Package");
      db_->Set(p, "pname", Value::Str("pkg" + std::to_string(i)));
      db_->Set(p, "license", Value::Str(i % 7 == 0 ? "GPL" : "MIT"));
      db_->Set(p, "kloc", Value::Int(1 + i % 90));
      pkgs.push_back(p);
    }
    for (int i = 1; i < 500; ++i) {
      std::vector<Value> deps;
      for (int d = 1; d <= 3 && i - d * 7 >= 0; ++d) {
        deps.push_back(Value::Ref(pkgs[i - d * 7]));
      }
      db_->Set(pkgs[i], "deps", Value::MakeSet(std::move(deps)));
    }
    db_->RegisterMethod("Package", "risk_score", [](const Database& d, Oid o) {
      return Value::Int(d.GetRaw(o, "kloc").AsInt() / 10);
    });

    PhysicalConfig physical;
    physical.buffer_pages = 64;
    physical.sel_indexes.push_back(SelIndexSpec{"Package", "pname"});
    physical.path_indexes.push_back(PathIndexSpec{"Package", {"deps"}});
    db_->Finalize(physical);
  }

  static constexpr const char* kQuery = R"(
relation DependsOn includes
  (select [root: x, dep: d, lvl: 1] from x in Package, d in x.deps)
  union
  (select [root: r.root, dep: d2, lvl: r.lvl + 1]
   from r in DependsOn, d2 in r.dep.deps)

select [n: r.root.pname] from r in DependsOn
where r.dep.license = "GPL" and r.dep.kloc > 50
)";

  Schema schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(TutorialTest, TheTutorialQueryRuns) {
  Session session(db_.get());
  const QueryRun run = session.Run(kQuery, QueryOptions{.cold = true});
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_FALSE(run.answer.rows.empty());
  EXPECT_GT(run.measured_cost, 0);
  EXPECT_FALSE(run.plan_text.empty());
  EXPECT_GE(run.optimized.unpushed_variant_cost, 0);
}

TEST_F(TutorialTest, AllConfigurationsAgreeOnTheTutorialQuery) {
  const ParseResult parsed = ParseQuery(kQuery, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  std::vector<Table> answers;
  for (OptimizerOptions options :
       {CostBasedOptions(), DeductiveOptions(), NaiveOptions()}) {
    Session session(db_.get(), options);
    QueryRun run = session.Run(parsed.graph);
    ASSERT_TRUE(run.ok()) << run.error();
    run.answer.Dedup();
    answers.push_back(std::move(run.answer));
  }
  EXPECT_EQ(answers[0].rows, answers[1].rows);
  EXPECT_EQ(answers[0].rows, answers[2].rows);
}

TEST_F(TutorialTest, SymbolicTableDerivesForTheTutorialPlan) {
  Session session(db_.get());
  const ParseResult parsed = ParseQuery(kQuery, schema_);
  ASSERT_TRUE(parsed.ok());
  OptimizeResult plan = session.Optimize(parsed.graph);
  ASSERT_TRUE(plan.ok());
  int t = 0;
  const SymbolicCostTable table =
      DeriveSymbolicCosts(*plan.plan, *db_, {{"Package", "Pkg"}}, &t);
  EXPECT_FALSE(table.rows.empty());
  EXPECT_GT(table.EvalTotal(), 0);
}

TEST_F(TutorialTest, StreamingSectionWorksAsWritten) {
  // Mirrors "Streaming results and parallel execution": Query() with
  // exec_threads serves the same answer and accounting as Run().
  Session session(db_.get());
  const QueryRun run = session.Run(kQuery, QueryOptions{.cold = true});
  ASSERT_TRUE(run.ok()) << run.error();

  QueryOptions ro;
  ro.cold = true;
  ro.exec_threads = 4;
  ro.batch_rows = 1024;
  ResultCursor cur = session.Query(kQuery, ro);
  ASSERT_TRUE(cur.ok()) << cur.error();
  size_t rows = 0;
  RowBatch batch;
  while (cur.Next(&batch)) rows += batch.size();
  EXPECT_EQ(rows, run.answer.rows.size());
  EXPECT_EQ(cur.measured_cost(), run.measured_cost);
  EXPECT_EQ(cur.counters().predicate_evals, run.counters.predicate_evals);

  Table all = session.Query(kQuery, ro).ToTable();
  EXPECT_EQ(all.rows.size(), run.answer.rows.size());
}

TEST_F(TutorialTest, CompiledEvalSectionWorksAsWritten) {
  // Mirrors "Compiled expression evaluation": same rows, bit-identical
  // accounting, and the EXPLAIN disassembly block appears with the knob on.
  Session session(db_.get());
  QueryOptions ro;
  ro.cold = true;
  ro.compiled_eval = true;
  const QueryRun compiled = session.Run(kQuery, ro);
  ASSERT_TRUE(compiled.ok()) << compiled.error();

  ro.compiled_eval = false;
  const QueryRun interpreted = session.Run(kQuery, ro);
  ASSERT_TRUE(interpreted.ok()) << interpreted.error();

  EXPECT_EQ(compiled.answer.rows, interpreted.answer.rows);
  EXPECT_EQ(compiled.measured_cost, interpreted.measured_cost);
  EXPECT_EQ(compiled.counters.predicate_evals,
            interpreted.counters.predicate_evals);
  EXPECT_EQ(compiled.counters.method_calls, interpreted.counters.method_calls);
  EXPECT_EQ(compiled.counters.method_cost, interpreted.counters.method_cost);

  QueryOptions ex;
  ex.cold = true;
  ex.compiled_eval = true;
  const ExplainResult report = session.Explain(kQuery, ex);
  ASSERT_TRUE(report.ok()) << report.status.ToString();
  EXPECT_NE(report.ToString().find("bytecode (compiled eval):"),
            std::string::npos);
}

TEST_F(TutorialTest, PreparedQueriesSectionWorksAsWritten) {
  // Mirrors "Prepared queries and the plan cache". An enabled fault
  // injector bypasses the cache by design (docs/ROBUSTNESS.md), so pin it
  // off for the cache-hit assertions and restore the env config after.
  FaultInjector::Global().Configure(FaultConfig{});

  Session session(db_.get());
  PreparedQuery pq = session.Prepare(kQuery);
  ASSERT_TRUE(pq.ok()) << pq.status().message;

  // Cold runs so the accounting identity is exact — a warm second run
  // starts from the pool the first one heated, which (correctly) changes
  // hit/miss counts and the measured cost, cached plan or not.
  const QueryRun first = pq.Run({.cold = true});
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_FALSE(first.plan_cached);
  const QueryRun second = pq.Run({.cold = true});
  ASSERT_TRUE(second.ok()) << second.error();
  if (PlanCacheEnabledByEnv()) EXPECT_TRUE(second.plan_cached);
  EXPECT_EQ(second.answer.rows, first.answer.rows);
  EXPECT_EQ(second.measured_cost, first.measured_cost);

  // An explicit zero knob is a typed error, not an "inherit" sentinel...
  QueryOptions zero;
  zero.exec_threads = 0;
  EXPECT_EQ(session.Run(kQuery, zero).status.code,
            Status::Code::kInvalidArgument);
  // ...and collect_trace is rejected on the streaming path.
  QueryOptions traced;
  traced.collect_trace = true;
  EXPECT_EQ(session.Query(kQuery, traced).status().code,
            Status::Code::kInvalidArgument);

  FaultInjector::Global().ConfigureFromEnv();
}

TEST_F(TutorialTest, BudgetsAndCancellationSectionWorksAsWritten) {
  // Mirrors "Budgets and cancellation": the QueryOptions::query knobs behave
  // as the tutorial promises.
  Session session(db_.get());

  // A generous deadline never trips and changes nothing.
  QueryOptions ro;
  ro.cold = true;
  ro.query.deadline_ms = 600000;
  // The ledger-only knob from the tutorial snippet: a budget below the
  // fixpoint's ~71-page temp working set, so the over-budget tail spills
  // to disk and the run completes, with the pool unclamped as documented.
  ro.query.spill_budget_pages = 48;
  const QueryRun run = session.Run(kQuery, ro);
  ASSERT_TRUE(run.ok()) << run.status.ToString();
  EXPECT_FALSE(run.answer.rows.empty());

  // Opting out of spilling restores the typed hard failure, with the
  // tripping operator and page arithmetic packed into the detail.
  QueryOptions off = ro;
  off.query.spill = false;
  const QueryRun refused = session.Run(kQuery, off);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code, Status::Code::kResourceExhausted)
      << refused.status.ToString();
  EXPECT_GT(ResourceDetailRequested(refused.status.detail),
            ResourceDetailRemaining(refused.status.detail));

  // Cancellation mid-stream: a shared-flag token copy stops the cursor.
  QueryOptions streaming;
  streaming.cold = true;
  streaming.batch_rows = 1;
  CancelToken token = streaming.query.cancel;
  ResultCursor cur = session.Query(kQuery, streaming);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));
  token.RequestCancel();
  while (cur.Next(&batch)) {
  }
  EXPECT_EQ(cur.status().code, Status::Code::kCancelled);
}

TEST(TutorialServerTest, ServingTrafficSectionWorksAsWritten) {
  // Mirrors "Serving traffic": the three-line in-process server from the
  // tutorial, verbatim — EngineHandle -> Server on an ephemeral port ->
  // Client round-trip with QueryOptions travelling the wire.
  EngineOptions eo;
  eo.size = 40;
  Status status;
  auto engine = EngineHandle::Create(eo, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  server::ServerOptions so;
  so.port = 0;
  auto srv = server::Server::Start(engine.get(), so, &status);
  ASSERT_NE(srv, nullptr) << status.ToString();

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());

  QueryOptions qo;
  qo.query.deadline_ms = 1000;
  server::ClientResult r = client.Query(
      R"(select [n: x.name] from x in Composer where x.name = "Bach")", qo);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.columns, std::vector<std::string>{"n"});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Bach");
  EXPECT_GE(r.measured_cost, 0);
  client.Goodbye();
}

TEST_F(TutorialTest, MutatingDataSectionWorksAsWritten) {
  // Mirrors "Mutating data": the one-shot Mutate from the tutorial, its
  // CommitResult claims, the single-writer conflict and the all-or-nothing
  // referential-integrity refusal.
  Session session(db_.get());
  ASSERT_TRUE(session.Materialize({"depends", "Package", "", "deps"}).ok());

  MutationBatch batch;
  batch.Insert("Package", {{"pname", Value::Str("leftpad")},
                           {"license", Value::Str("MIT")},
                           {"kloc", Value::Int(1)}});
  batch.Update("Package", db_->PayloadToOid("Package", 10),
               {{"deps", Value::MakeSet({Value::Ref(
                             db_->PayloadToOid("Package", 5))})}});
  const CommitResult r = session.Mutate(batch);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.ops_applied, 2u);
  EXPECT_EQ(r.stats_version, 2u);
  EXPECT_EQ(r.views_maintained, 1u);
  EXPECT_TRUE(r.used_incremental);

  // The commit is immediately visible to queries on this database...
  const QueryRun run = session.Run(
      R"(select [n: x.pname] from x in Package where x.pname = "leftpad")");
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run.answer.rows.size(), 1u);

  // ...and the maintained closure contains the rewired edge.
  std::vector<std::pair<Oid, Oid>> pairs;
  ASSERT_TRUE(session.MaterializedRows("depends", &pairs).ok());
  const std::pair<Oid, Oid> edge{db_->PayloadToOid("Package", 10),
                                 db_->PayloadToOid("Package", 5)};
  EXPECT_NE(std::find(pairs.begin(), pairs.end(), edge), pairs.end());

  // Single-writer: a second open transaction is a retryable kConflict.
  Session rival(db_.get());
  uint64_t mine = 0, theirs = 0;
  ASSERT_TRUE(session.Begin(&mine).ok());
  const Status refused = rival.Begin(&theirs);
  EXPECT_EQ(refused.code, Status::Code::kConflict);
  EXPECT_TRUE(refused.retryable());
  ASSERT_TRUE(session.Rollback(mine).ok());

  // Deleting a package that others still depend on refuses the whole
  // batch and leaves the database untouched.
  MutationBatch bad;
  bad.Delete("Package", db_->PayloadToOid("Package", 3));
  EXPECT_EQ(session.Mutate(bad).status.code, Status::Code::kInvalidArgument);
  const QueryRun still = session.Run(
      R"(select [n: x.pname] from x in Package where x.pname = "pkg3")");
  ASSERT_TRUE(still.ok()) << still.error();
  EXPECT_EQ(still.answer.rows.size(), 1u);
}

TEST_F(TutorialTest, AdaptiveFeedbackSectionWorksAsWritten) {
  if (FaultInjector::Global().enabled()) {
    GTEST_SKIP() << "faulted runs never feed back, as the section says";
  }
  Session session(db_.get());
  QueryOptions fb;
  fb.feedback.enabled = true;

  const QueryRun first = session.Run(kQuery, fb);
  ASSERT_TRUE(first.ok()) << first.error();
  const FeedbackStats harvested = session.feedback_registry().stats();
  EXPECT_GT(harvested.observations, 0u);

  const QueryRun later = session.Run(kQuery, fb);
  ASSERT_TRUE(later.ok()) << later.error();
  // Feedback never changes results, only plans.
  EXPECT_EQ(first.answer.rows, later.answer.rows);
  EXPECT_GT(session.feedback_registry().stats().observations,
            harvested.observations);

  // The est-vs-measured table the section points at.
  const ExplainResult ex = session.Explain(kQuery, fb);
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  EXPECT_FALSE(ex.node_stats().empty());
}

TEST_F(TutorialTest, MethodPredicateWorks) {
  Session session(db_.get());
  const QueryRun run = session.Run(
      R"(select [n: x.pname] from x in Package where x.risk_score > 8)");
  ASSERT_TRUE(run.ok()) << run.error();
  // kloc in [1,90] -> risk in [0,9]: only kloc > 80 qualifies.
  EXPECT_FALSE(run.answer.rows.empty());
  EXPECT_GT(run.counters.method_calls, 0u);
}

}  // namespace
}  // namespace rodin
