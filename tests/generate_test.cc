// generatePT tests: strategies agree on result quality, access-method and
// join-algorithm selection, PIJ collapse, fragment pruning, and the
// eager-selection discipline.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/generate.h"
#include "optimizer/translate.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class GenerateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 120;
    config.num_instruments = 15;
    PhysicalConfig physical = PaperMusicPhysical();
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
    g_ = GenerateMusicDb(config, physical);
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
  }

  NormalizedSPJ TranslateNode(const QueryGraph& q, const PredicateNode& node) {
    return Translate(node, q, *g_.schema, ctx_);
  }

  // Counts nodes of a kind in a plan.
  static size_t Count(const PTNode& n, PTKind kind) {
    size_t c = n.kind == kind ? 1 : 0;
    for (const auto& ch : n.children) c += Count(*ch, kind);
    return c;
  }

  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
};

TEST_F(GenerateTest, StrategiesProduceExecutablePlansOfSimilarCost) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Input("Composition", "c")
      .Where(Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")))
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("t", "c", {"title"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = TranslateNode(q, q.nodes[0]);

  GenResult dp = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  GenResult ex = GenerateSPJ(spj, ctx_, GenStrategy::kExhaustive, {});
  GenResult gr = GenerateSPJ(spj, ctx_, GenStrategy::kGreedy, {});
  GenResult rr = GenerateSPJ(spj, ctx_, GenStrategy::kRandomized, {});
  ASSERT_NE(dp.plan, nullptr);
  // The randomized strategy starts from greedy and never worsens it.
  EXPECT_LE(rr.cost, gr.cost + 1e-6);
  EXPECT_GE(rr.cost, ex.cost - 1e-6);
  // Exhaustive is the optimum; DP must match it (no interesting physical
  // properties exist that DP's state pruning could lose).
  EXPECT_NEAR(dp.cost, ex.cost, 1e-6);
  EXPECT_GE(gr.cost, ex.cost - 1e-6);
  // All three compute the same answer.
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*dp.plan);
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*ex.plan);
  Executor e3(g_.db.get());
  Table t3 = e3.Execute(*gr.plan);
  Executor e4(g_.db.get());
  Table t4 = e4.Execute(*rr.plan);
  t1.Dedup();
  t2.Dedup();
  t3.Dedup();
  t4.Dedup();
  EXPECT_EQ(t1.rows, t2.rows);
  EXPECT_EQ(t1.rows, t3.rows);
  EXPECT_EQ(t1.rows, t4.rows);
  EXPECT_FALSE(t1.rows.empty());
  // Exhaustive explores at least as many plans as DP.
  EXPECT_GE(ex.plans_explored, dp.plans_explored);
}

TEST_F(GenerateTest, SelectiveIndexAccessChosen) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("n", "x", {"birthyear"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = TranslateNode(q, q.nodes[0]);
  GenResult r = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  // The name index on a unique value must win over the scan.
  bool found_index = false;
  std::function<void(const PTNode&)> scan = [&](const PTNode& n) {
    if (n.kind == PTKind::kSel && n.sel_access == SelAccess::kIndexEq) {
      found_index = true;
    }
    for (const auto& c : n.children) scan(*c);
  };
  scan(*r.plan);
  EXPECT_TRUE(found_index);
}

TEST_F(GenerateTest, PathIndexCollapsesSteps) {
  // Composer -> works.instruments with the paper's path index available.
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("harpsichord"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = TranslateNode(q, q.nodes[0]);
  GenResult r = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  // The cheap plan uses the PIJ rather than two IJs.
  EXPECT_EQ(Count(*r.plan, PTKind::kPIJ), 1u);
  EXPECT_EQ(Count(*r.plan, PTKind::kIJ), 0u);
}

TEST_F(GenerateTest, EagerSelectionsAppliedBeforeJoin) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Input("Composition", "c")
      .Where(Expr::Eq(Expr::Path("c", {"author"}), Expr::Path("x")))
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("t", "c", {"title"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = TranslateNode(q, q.nodes[0]);
  GenResult r = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  // Selective side is reduced before the join: the EJ's outer child subtree
  // must contain the name selection (index or scan).
  const PTNode* ej = nullptr;
  std::function<void(const PTNode&)> find = [&](const PTNode& n) {
    if (n.kind == PTKind::kEJ) ej = &n;
    for (const auto& c : n.children) find(*c);
  };
  find(*r.plan);
  ASSERT_NE(ej, nullptr);
  EXPECT_GE(Count(*ej->children[0], PTKind::kSel) +
                Count(*ej->children[1], PTKind::kSel),
            1u);
  // The join's estimated outer cardinality is small.
  EXPECT_LT(ej->children[0]->est_rows, 10.0);
}

TEST_F(GenerateTest, HorizontalFragmentsUnionedAndPruned) {
  MusicConfig config;
  config.num_composers = 120;
  PhysicalConfig physical;
  physical.buffer_pages = 64;
  physical.horizontal.push_back(HorizontalSpec{"Composer", "name", 4});
  GeneratedDb g2 = GenerateMusicDb(config, physical);
  Stats s2 = Stats::Derive(*g2.db);
  CostModel c2(g2.db.get(), &s2);
  OptContext ctx;
  ctx.db = g2.db.get();
  ctx.stats = &s2;
  ctx.cost = &c2;

  // Without a predicate on the partition attribute: union of 4 fragments.
  QueryGraphBuilder b;
  b.Node("Answer").Input("Composer", "x").OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(*g2.schema);
  NormalizedSPJ spj = Translate(q.nodes[0], q, *g2.schema, ctx);
  GenResult r = GenerateSPJ(spj, ctx, GenStrategy::kDP, {});
  EXPECT_EQ(Count(*r.plan, PTKind::kUnion), 1u);
  EXPECT_EQ(Count(*r.plan, PTKind::kEntity), 4u);
  Executor e(g2.db.get());
  EXPECT_EQ(e.Execute(*r.plan).rows.size(), 120u);

  // With an equality predicate: pruned to one fragment, same answer as the
  // brute-force filter.
  QueryGraphBuilder b2;
  b2.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q2 = b2.Build(*g2.schema);
  NormalizedSPJ spj2 = Translate(q2.nodes[0], q2, *g2.schema, ctx);
  GenResult r2 = GenerateSPJ(spj2, ctx, GenStrategy::kDP, {});
  EXPECT_EQ(Count(*r2.plan, PTKind::kEntity), 1u);
  Executor e2(g2.db.get());
  Table t = e2.Execute(*r2.plan);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0].AsString(), "Bach");
}

TEST_F(GenerateTest, ViewPlanInstantiationRenames) {
  // Build a tiny view plan by hand and instantiate it for a consumer var.
  const ClassDef* composer = g_.schema->FindClass("Composer");
  PTPtr base = MakeProj(
      MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
      {{"c", Expr::Path("x")}}, {{"c", composer}}, true);
  PTPtr inst = InstantiateViewPlan(*base, "v");
  ASSERT_EQ(inst->cols.size(), 1u);
  EXPECT_EQ(inst->cols[0].name, "v.c");
  EXPECT_EQ(inst->proj[0].name, "v.c");
}

TEST_F(GenerateTest, CartesianProductOnlyWhenForced) {
  // Two inputs with no join predicate: the generator must still finish
  // (cartesian product) and keep both columns.
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Input("Instrument", "i")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .Where(Expr::Eq(Expr::Path("i", {"iname"}),
                      Expr::Lit(Value::Str("flute"))))
      .Out("pair", Expr::Path("i", {"family"}));
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = TranslateNode(q, q.nodes[0]);
  GenResult r = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  ASSERT_NE(r.plan, nullptr);
  Executor e(g_.db.get());
  EXPECT_EQ(e.Execute(*r.plan).rows.size(), 1u);
}

}  // namespace
}  // namespace rodin
