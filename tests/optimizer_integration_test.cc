// End-to-end pipeline tests: build the paper's music database, optimize the
// running-example queries with every optimizer configuration, execute the
// plans, and compare against brute-force reference answers computed by
// walking the object graph directly.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "plan/pt_printer.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 60;
    config.lineage_depth = 10;
    config.num_instruments = 10;
    config.harpsichord_fraction = 0.3;
    db_ = GenerateMusicDb(config, PaperMusicPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*db_.db));
    cost_ = std::make_unique<CostModel>(db_.db.get(), stats_.get());
  }

  // All (master, disciple, generations) chains, brute force.
  struct Influence {
    Oid master;
    Oid disciple;
    int64_t gen;
  };
  std::vector<Influence> BruteForceInfluencer() {
    std::vector<Influence> out;
    const Extent* composers = db_.db->FindExtent("Composer");
    const uint32_t cls_id = db_.db->schema().FindClass("Composer")->id();
    for (uint32_t s = 0; s < composers->size(); ++s) {
      Oid disciple{cls_id, s};
      // Walk up the master chain.
      Value master = db_.db->GetRaw(disciple, "master");
      // Base tuple: (x.master, x, 1) exists even when master is null — but
      // a null master joins nothing downstream; the executor's IJ and
      // predicate evaluation both skip nulls, so we skip them here too.
      int64_t gen = 1;
      Oid cur = disciple;
      while (true) {
        const Value m = db_.db->GetRaw(cur, "master");
        if (!m.is_ref()) break;
        // Tuple (m, disciple, gen) — note the closure keeps the ORIGINAL
        // disciple and walks masters upward.
        out.push_back(Influence{m.AsRef(), disciple, gen});
        cur = m.AsRef();
        ++gen;
      }
    }
    return out;
  }

  bool MasterPlays(Oid master, const std::string& instrument) {
    const Value works = db_.db->GetRaw(master, "works");
    if (!works.is_collection()) return false;
    for (const Value& w : works.AsCollection().elems) {
      const Value instrs = db_.db->GetRaw(w.AsRef(), "instruments");
      if (!instrs.is_collection()) continue;
      for (const Value& i : instrs.AsCollection().elems) {
        if (db_.db->GetRaw(i.AsRef(), "iname").AsString() == instrument) {
          return true;
        }
      }
    }
    return false;
  }

  std::set<std::string> ReferenceFig3(int64_t generations,
                                      const std::string& instrument) {
    std::set<std::string> names;
    for (const Influence& inf : BruteForceInfluencer()) {
      if (inf.gen < generations) continue;
      if (!MasterPlays(inf.master, instrument)) continue;
      names.insert(db_.db->GetRaw(inf.disciple, "name").AsString());
    }
    return names;
  }

  std::set<std::string> RunQuery(const QueryGraph& query,
                                 const OptimizerOptions& options) {
    Optimizer opt(db_.db.get(), stats_.get(), cost_.get(), options);
    OptimizeResult result = opt.Optimize(query);
    EXPECT_TRUE(result.ok()) << result.status.ToString();
    if (!result.ok()) return {};
    Executor exec(db_.db.get());
    Table table = exec.Execute(*result.plan);
    EXPECT_EQ(table.schema.cols.size(), 1u) << PrintPT(*result.plan);
    std::set<std::string> out;
    for (const Row& r : table.rows) out.insert(r[0].AsString());
    return out;
  }

  GeneratedDb db_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
};

TEST_F(PipelineTest, Fig3CostBasedMatchesBruteForce) {
  const std::set<std::string> expected = ReferenceFig3(6, "harpsichord");
  ASSERT_FALSE(expected.empty()) << "workload too small to be meaningful";
  const QueryGraph q = Fig3Query(db_.db->schema(), 6, "harpsichord");
  EXPECT_EQ(RunQuery(q, CostBasedOptions()), expected);
}

TEST_F(PipelineTest, Fig3AllOptimizersAgree) {
  const std::set<std::string> expected = ReferenceFig3(6, "harpsichord");
  const QueryGraph q = Fig3Query(db_.db->schema(), 6, "harpsichord");
  EXPECT_EQ(RunQuery(q, NaiveOptions()), expected);
  EXPECT_EQ(RunQuery(q, DeductiveOptions()), expected);
  EXPECT_EQ(RunQuery(q, AnnealingOptions()), expected);
}

TEST_F(PipelineTest, Fig2MatchesBruteForce) {
  // Titles of Bach's works including both a harpsichord and a flute.
  std::set<std::string> expected;
  const Extent* composers = db_.db->FindExtent("Composer");
  const uint32_t cls_id = db_.db->schema().FindClass("Composer")->id();
  for (uint32_t s = 0; s < composers->size(); ++s) {
    Oid c{cls_id, s};
    if (db_.db->GetRaw(c, "name").AsString() != "Bach") continue;
    const Value works = db_.db->GetRaw(c, "works");
    for (const Value& w : works.AsCollection().elems) {
      bool harpsi = false;
      bool flute = false;
      const Value instrs = db_.db->GetRaw(w.AsRef(), "instruments");
      for (const Value& i : instrs.AsCollection().elems) {
        const std::string n = db_.db->GetRaw(i.AsRef(), "iname").AsString();
        harpsi |= n == "harpsichord";
        flute |= n == "flute";
      }
      if (harpsi && flute) {
        expected.insert(db_.db->GetRaw(w.AsRef(), "title").AsString());
      }
    }
  }
  const QueryGraph q = Fig2Query(db_.db->schema());
  EXPECT_EQ(RunQuery(q, CostBasedOptions()), expected);
  EXPECT_EQ(RunQuery(q, NaiveOptions()), expected);
}

TEST_F(PipelineTest, PushJoinQueryMatchesBruteForce) {
  // Composers influenced by the masters of Bach.
  std::set<std::string> expected;
  const Extent* composers = db_.db->FindExtent("Composer");
  const uint32_t cls_id = db_.db->schema().FindClass("Composer")->id();
  Oid bach = Oid::Invalid();
  for (uint32_t s = 0; s < composers->size(); ++s) {
    Oid c{cls_id, s};
    if (db_.db->GetRaw(c, "name").AsString() == "Bach") bach = c;
  }
  ASSERT_TRUE(bach.valid());
  const Value bach_master = db_.db->GetRaw(bach, "master");
  ASSERT_TRUE(bach_master.is_ref());
  for (const Influence& inf : BruteForceInfluencer()) {
    if (inf.master == bach_master.AsRef()) {
      expected.insert(db_.db->GetRaw(inf.disciple, "name").AsString());
    }
  }
  ASSERT_FALSE(expected.empty());
  const QueryGraph q = PushJoinQuery(db_.db->schema());
  EXPECT_EQ(RunQuery(q, CostBasedOptions()), expected);
  EXPECT_EQ(RunQuery(q, NaiveOptions()), expected);
  EXPECT_EQ(RunQuery(q, DeductiveOptions()), expected);
}

TEST_F(PipelineTest, ViewConsumedTwiceUsesMemoizedFixpoint) {
  // Self-join of the recursive view: both arcs instantiate the same Fix
  // plan; the executor must compute it once and serve the second occurrence
  // from the memo (visible as a much smaller second marginal cost).
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));
  // Pairs of distinct composers influenced by the same master at gen >= 3.
  b.Node("Answer", "P3")
      .Input("Influencer", "a")
      .Input("Influencer", "c")
      .Where(Expr::Eq(Expr::Path("a", {"master"}), Expr::Path("c", {"master"})))
      .Where(Expr::Cmp(CompareOp::kGe, Expr::Path("a", {"gen"}),
                       Expr::Lit(Value::Int(3))))
      .Where(Expr::Cmp(CompareOp::kGe, Expr::Path("c", {"gen"}),
                       Expr::Lit(Value::Int(3))))
      .Where(Expr::Cmp(CompareOp::kNe, Expr::Path("a", {"disciple"}),
                       Expr::Path("c", {"disciple"})))
      .OutPath("n1", "a", {"disciple", "name"})
      .OutPath("n2", "c", {"disciple", "name"});
  const QueryGraph q = b.Build(db_.db->schema());

  Optimizer opt(db_.db.get(), stats_.get(), cost_.get(), NaiveOptions());
  OptimizeResult r = opt.Optimize(q);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  Executor exec(db_.db.get());
  exec.ResetMeasurement(true);
  Table t = exec.Execute(*r.plan);
  // Brute-force reference: pairs sharing a master at distance >= 3.
  std::set<std::pair<std::string, std::string>> expected;
  const std::vector<Influence> closure = BruteForceInfluencer();
  for (const Influence& a : closure) {
    for (const Influence& c : closure) {
      if (a.gen < 3 || c.gen < 3) continue;
      if (!(a.master == c.master) || a.disciple == c.disciple) continue;
      expected.insert({db_.db->GetRaw(a.disciple, "name").AsString(),
                       db_.db->GetRaw(c.disciple, "name").AsString()});
    }
  }
  std::set<std::pair<std::string, std::string>> actual;
  for (const Row& row : t.rows) {
    actual.insert({row[0].AsString(), row[1].AsString()});
  }
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(actual.empty());
}

TEST_F(PipelineTest, StageReportsCoverFigure6) {
  const QueryGraph q = Fig3Query(db_.db->schema(), 6, "harpsichord");
  Optimizer opt(db_.db.get(), stats_.get(), cost_.get(), CostBasedOptions());
  OptimizeResult result = opt.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ASSERT_EQ(result.stages.size(), 4u);
  EXPECT_EQ(result.stages[0].stage, "rewrite");
  EXPECT_EQ(result.stages[1].stage, "translate");
  EXPECT_EQ(result.stages[2].stage, "generatePT");
  EXPECT_EQ(result.stages[3].stage, "transformPT");
  EXPECT_EQ(result.stages[0].strategy, "irrevocable");
}

}  // namespace
}  // namespace rodin
