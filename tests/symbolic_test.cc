#include <gtest/gtest.h>

#include "cost/symbolic.h"

namespace rodin {
namespace {

TEST(SymbolicTest, NumAndSymEval) {
  EXPECT_DOUBLE_EQ(SymExpr::Num(3.5)->Eval({}), 3.5);
  EXPECT_DOUBLE_EQ(SymExpr::Sym("pr")->Eval({{"pr", 2.0}}), 2.0);
}

TEST(SymbolicTest, AddAndMulEval) {
  SymPtr e = SymExpr::Sym("a") * SymExpr::Sym("b") + SymExpr::Num(1);
  EXPECT_DOUBLE_EQ(e->Eval({{"a", 3}, {"b", 4}}), 13.0);
}

TEST(SymbolicTest, PaperStyleRendering) {
  // |Cpr|*pr + ||Cpr||*|Cpr|*(pr + ev) — the shape of T1's first terms.
  SymPtr cpr_pages = SymExpr::Sym("|Cpr|");
  SymPtr cpr_n = SymExpr::Sym("||Cpr||");
  SymPtr pr = SymExpr::Sym("pr");
  SymPtr ev = SymExpr::Sym("ev");
  SymPtr t = cpr_pages * pr + cpr_n * cpr_pages * (pr + ev);
  EXPECT_EQ(t->ToString(), "|Cpr|*pr + ||Cpr||*|Cpr|*(pr + ev)");
}

TEST(SymbolicTest, FlatteningNestedSums) {
  SymPtr e = (SymExpr::Sym("a") + SymExpr::Sym("b")) + SymExpr::Sym("c");
  EXPECT_EQ(e->ToString(), "a + b + c");
  EXPECT_EQ(e->children().size(), 3u);
}

TEST(SymbolicTest, FlatteningNestedProducts) {
  SymPtr e = (SymExpr::Sym("a") * SymExpr::Sym("b")) * SymExpr::Sym("c");
  EXPECT_EQ(e->ToString(), "a*b*c");
}

TEST(SymbolicTest, IdentityElimination) {
  SymPtr a = SymExpr::Sym("a");
  EXPECT_EQ((a + SymExpr::Num(0))->ToString(), "a");
  EXPECT_EQ((a * SymExpr::Num(1))->ToString(), "a");
  EXPECT_EQ((a * SymExpr::Num(0))->ToString(), "0");
}

TEST(SymbolicTest, IntegerRendering) {
  EXPECT_EQ(SymExpr::Num(5)->ToString(), "5");
  EXPECT_EQ(SymExpr::Num(2.5)->ToString(), "2.5");
}

TEST(SymbolicTest, EvalLargeExpression) {
  // (n1 - 1) is represented as Add(n1, -1).
  SymPtr n1 = SymExpr::Sym("n1");
  SymPtr e = (n1 + SymExpr::Num(-1)) * SymExpr::Sym("x");
  EXPECT_DOUBLE_EQ(e->Eval({{"n1", 5}, {"x", 10}}), 40.0);
}

TEST(SymbolicDeathTest, UnboundSymbolAborts) {
  EXPECT_DEATH(SymExpr::Sym("zz")->Eval({}), "unbound symbol");
}

}  // namespace
}  // namespace rodin
