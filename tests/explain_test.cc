// Session::Explain on the paper's Figure 3 query: stage reports, the push
// decision with both costed alternatives, per-operator measured counters, a
// digit-normalized golden rendering, and metrics determinism across thread
// counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "obs/metrics.h"
#include "optimizer/baseline.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

// Collapses every maximal run of digits (with embedded '.') to '#', so
// measured timings and data-dependent figures don't churn the golden file
// while the report's structure stays pinned.
std::string NormalizeNumbers(const std::string& s) {
  std::string out;
  bool in_number = false;
  for (char c : s) {
    const bool numeric = (c >= '0' && c <= '9') || (in_number && c == '.');
    if (numeric) {
      if (!in_number) out += '#';
      in_number = true;
    } else {
      in_number = false;
      out += c;
    }
  }
  return out;
}

std::string GoldenPath() {
  return std::string(RODIN_TESTDATA_DIR) + "/golden/explain_fig3.txt";
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  GeneratedDb g_;
};

TEST_F(ExplainTest, Fig3ReportsStagesDecisionsAndCounters) {
  Session session(g_.db.get(), CostBasedOptions());
  QueryOptions options;
  options.cold = true;
  options.collect_trace = true;
  const ExplainResult ex = session.Explain(Fig3Query(*g_.schema, 6), options);
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();

  // All four optimizer stages report.
  std::vector<std::string> stage_names;
  for (const StageReport& s : ex.stages) stage_names.push_back(s.stage);
  EXPECT_EQ(stage_names,
            (std::vector<std::string>{"rewrite", "translate", "generatePT",
                                      "transformPT"}));

  // The delayed push decision is in the log with both costed alternatives.
  bool saw_final_push = false;
  for (const PushDecision& p : ex.decisions.pushes) {
    if (p.kind != "push-vs-unpushed") continue;
    saw_final_push = true;
    EXPECT_GT(p.pushed_cost, 0);
    EXPECT_GT(p.unpushed_cost, 0);
  }
  EXPECT_TRUE(saw_final_push);
  EXPECT_GT(ex.pushed_variant_cost, 0);
  EXPECT_GT(ex.unpushed_variant_cost, 0);
  EXPECT_FALSE(ex.decisions.moves.empty());

  // Costs: a total estimate, and a measured run that produced rows.
  EXPECT_GT(ex.est_cost, 0);
  EXPECT_GT(ex.measured_cost, 0);
  EXPECT_GT(ex.counters.rows_produced, 0u);
  EXPECT_GT(ex.counters.fix_iterations, 0u);

  // Per-operator measured figures: the root executed and saw every page the
  // run touched (stats are inclusive of children).
  EXPECT_TRUE(ex.plan.executed);
  EXPECT_GT(ex.plan.measured.invocations, 0u);
  EXPECT_GT(ex.plan.measured.pages, 0u);
  EXPECT_FALSE(ex.plan.children.empty());

  // The trace covers the optimizer stages and execution.
  ASSERT_NE(ex.trace, nullptr);
  if (obs::kObsEnabled) {
    EXPECT_TRUE(ex.trace->HasSpan("rewrite"));
    EXPECT_TRUE(ex.trace->HasSpan("translate"));
    EXPECT_TRUE(ex.trace->HasSpan("generatePT"));
    EXPECT_TRUE(ex.trace->HasSpan("transformPT"));
    EXPECT_TRUE(ex.trace->HasSpan("execute"));
    EXPECT_NE(ex.trace->ToChromeJson().find("push-vs-unpushed"),
              std::string::npos);
  }
}

// est_cost is cumulative for Proj and Union parents (Figure 5 composes
// child cost into them); index-access Sel / index-join EJ deliberately do
// not charge their child's scan, so the assertion is restricted.
void CheckMonotone(const ExplainNode& node) {
  const bool cumulative = node.label.rfind("Proj", 0) == 0 ||
                          node.label.rfind("Union", 0) == 0;
  for (const ExplainNode& child : node.children) {
    if (cumulative && node.est_cost >= 0 && child.est_cost >= 0) {
      EXPECT_GE(node.est_cost, child.est_cost)
          << node.label << " cheaper than its child " << child.label;
    }
    CheckMonotone(child);
  }
}

TEST_F(ExplainTest, EstimatedCostsAreMonotoneOnCumulativeParents) {
  Session session(g_.db.get(), CostBasedOptions());
  QueryOptions options;
  options.explain_only = true;
  const ExplainResult ex = session.Explain(Fig3Query(*g_.schema, 6), options);
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  // The root's estimate is the plan total the optimizer reported.
  EXPECT_DOUBLE_EQ(ex.plan.est_cost, ex.est_cost);
  EXPECT_FALSE(ex.plan.executed);  // explain_only skips execution
  EXPECT_DOUBLE_EQ(ex.measured_cost, -1);
  CheckMonotone(ex.plan);
}

std::map<std::string, double> SearchCounterValues() {
  std::map<std::string, double> out;
  for (const obs::MetricsRegistry::Sample& s :
       obs::MetricsRegistry::Global().Samples()) {
    if (s.name.rfind("rodin.search.", 0) == 0) out[s.name] = s.value;
  }
  return out;
}

TEST_F(ExplainTest, SearchMetricsIdenticalAcrossThreadCounts) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  const QueryGraph query = Fig3Query(*g_.schema, 6);
  std::map<std::string, double> deltas[2];
  const size_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    Session session(g_.db.get(), CostBasedOptions());
    QueryOptions options;
    options.explain_only = true;
    options.search_threads = thread_counts[i];
    options.seed = 7;
    const std::map<std::string, double> before = SearchCounterValues();
    const ExplainResult ex = session.Explain(query, options);
    ASSERT_TRUE(ex.ok()) << ex.status.ToString();
    for (const auto& [name, value] : SearchCounterValues()) {
      const auto it = before.find(name);
      deltas[i][name] = value - (it == before.end() ? 0 : it->second);
    }
  }
  ASSERT_FALSE(deltas[0].empty());
  EXPECT_GT(deltas[0].at("rodin.search.moves_tried"), 0);
  // Restart-level parallelism with index-derived RNG streams: the search
  // does identical work at any thread count.
  EXPECT_EQ(deltas[0], deltas[1]);
}

TEST_F(ExplainTest, GoldenReport) {
  Session session(g_.db.get(), CostBasedOptions());
  QueryOptions options;
  options.cold = true;
  // Pinned on (not inherited from RODIN_COMPILED_EVAL) so the golden text —
  // including the bytecode disassembly block — is identical in every CI
  // config.
  options.compiled_eval = true;
  const ExplainResult ex = session.Explain(Fig3Query(*g_.schema, 6), options);
  ASSERT_TRUE(ex.ok()) << ex.status.ToString();
  const std::string got = NormalizeNumbers(ex.ToString());

  if (std::getenv("RODIN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << got;
    GTEST_SKIP() << "golden file regenerated";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " (run with RODIN_UPDATE_GOLDEN=1 to create)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

}  // namespace
}  // namespace rodin
