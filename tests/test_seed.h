#ifndef RODIN_TESTS_TEST_SEED_H_
#define RODIN_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>

namespace rodin {

/// Base offset for seed-parameterized tests: setting RODIN_TEST_SEED=N
/// shifts every generated seed by N, so CI (or a developer chasing a flake)
/// can sweep fresh random inputs without recompiling. Unset or empty keeps
/// the checked-in seeds. Tests log the effective seed on failure — a
/// reproducer is one environment variable away.
inline uint64_t TestSeedBase() {
  static const uint64_t base = [] {
    const char* v = std::getenv("RODIN_TEST_SEED");
    return (v != nullptr && *v != '\0')
               ? static_cast<uint64_t>(std::strtoull(v, nullptr, 10))
               : 0ull;
  }();
  return base;
}

}  // namespace rodin

#endif  // RODIN_TESTS_TEST_SEED_H_
