// Unit tests for the bytecode VM (src/exec/vm/): every opcode executes at
// least once (proved by the debug opcode-hit counter, not by reading the
// compiler's output), the constant pool and path table deduplicate,
// disassembly is deterministic and complete, malformed chunks are rejected
// with kInternal, and the plan cache is oblivious to the compiled_eval knob.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/faults.h"
#include "datagen/music_gen.h"
#include "exec/eval_core.h"
#include "exec/executor.h"
#include "exec/vm/bytecode.h"
#include "exec/vm/compiler.h"
#include "exec/vm/vm.h"

namespace rodin {
namespace {

class VmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 24;
    config.lineage_depth = 5;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    schema_.cols = {{"x", g_.schema->FindClass("Composer")}};
    const Database::ScanSource src =
        g_.db->ResolveScan(EntityRef{"Composer", 0, 0});
    for (uint32_t slot : *src.slots) {
      rows_.push_back(Row{Value::Ref(Oid{src.base_class, slot})});
    }
  }

  EvalContext Ctx(vm::VmScratch* scratch) {
    EvalContext ctx;
    ctx.db = g_.db.get();
    ctx.charger = &g_.db->buffer_pool();
    ctx.predicate_evals = &predicate_evals_;
    ctx.method_calls = &method_calls_;
    ctx.method_cost_fp = &method_cost_fp_;
    ctx.vm = scratch;
    return ctx;
  }

  GeneratedDb g_;
  RowSchema schema_;
  std::vector<Row> rows_;
  uint64_t predicate_evals_ = 0;
  uint64_t method_calls_ = 0;
  uint64_t method_cost_fp_ = 0;
};

// --- Opcode coverage --------------------------------------------------------

TEST_F(VmTest, EveryOpcodeExecutes) {
  std::array<uint64_t, vm::kNumOpCodes> hits{};
  vm::VmScratch scratch;
  scratch.opcode_hits = &hits;

  // Three programs that together cover the whole ISA.
  //
  // Predicate: And(path < lit, Or(lit-pred, Not(path-vs-path cmp)), bare
  // varpath) — fused compare, jumps both ways, general compare, AnyTrue,
  // LoadBool, Not, RetBool.
  const ExprPtr pred = Expr::And([] {
    std::vector<ExprPtr> kids;
    kids.push_back(Expr::Cmp(CompareOp::kLt, Expr::Path("x", {"birthyear"}),
                             Expr::Lit(Value::Int(1700))));
    std::vector<ExprPtr> or_kids;
    or_kids.push_back(Expr::Lit(Value::Bool(false)));
    or_kids.push_back(Expr::Not(Expr::Cmp(CompareOp::kEq,
                                          Expr::Path("x", {"name"}),
                                          Expr::Path("x", {"master", "name"}))));
    kids.push_back(Expr::Or(std::move(or_kids)));
    kids.push_back(Expr::Path("x", {}));  // bare varpath-as-predicate
    return kids;
  }());
  const auto pred_chunk = vm::CompilePredicate(pred, schema_);
  ASSERT_TRUE(pred_chunk.has_value());

  // Value program: arith over a navigated path and a literal (operands must
  // be numeric — AsNumber asserts otherwise, in both engines).
  const ExprPtr value = Expr::Arith(ArithOp::kAdd,
                                    Expr::Path("x", {"birthyear"}),
                                    Expr::Lit(Value::Int(2)));
  const auto value_chunk = vm::CompileMulti(value, schema_);
  ASSERT_TRUE(value_chunk.has_value());

  // Projection: raw column (LoadColumn), constant, navigation, and a
  // predicate in value position (BoolValue) — RetProj.
  std::vector<OutCol> proj;
  proj.push_back(OutCol{"obj", Expr::Path("x", {})});
  proj.push_back(OutCol{"k", Expr::Lit(Value::Int(7))});
  proj.push_back(OutCol{"n", Expr::Path("x", {"name"})});
  proj.push_back(OutCol{"b", Expr::Cmp(CompareOp::kGe,
                                       Expr::Path("x", {"birthyear"}),
                                       Expr::Lit(Value::Int(1650)))});
  const auto proj_chunk = vm::CompileProjection(proj, schema_);
  ASSERT_TRUE(proj_chunk.has_value());

  EvalContext ctx = Ctx(&scratch);
  for (const Row& row : rows_) {
    (void)vm::RunPred(*pred_chunk, &ctx, row, &scratch);
    (void)vm::RunMulti(*value_chunk, &ctx, row, &scratch);
    (void)vm::RunProj(*proj_chunk, &ctx, row, &scratch);
  }

  for (size_t op = 0; op < vm::kNumOpCodes; ++op) {
    EXPECT_GT(hits[op], 0u) << "opcode never executed: "
                            << vm::OpCodeName(static_cast<vm::OpCode>(op));
  }
  EXPECT_EQ(scratch.rows, rows_.size() * 3);
}

// --- Constant pool and path table dedup -------------------------------------

TEST_F(VmTest, ConstantPoolDedup) {
  vm::BytecodeChunk chunk;
  const uint16_t a = chunk.AddConst(Value::Int(42));
  const uint16_t b = chunk.AddConst(Value::Str("harpsichord"));
  const uint16_t c = chunk.AddConst(Value::Int(42));
  const uint16_t d = chunk.AddConst(Value::Str("harpsichord"));
  EXPECT_EQ(a, c);
  EXPECT_EQ(b, d);
  EXPECT_EQ(chunk.consts.size(), 2u);

  const uint16_t p1 = chunk.AddPath({"works", "title"});
  const uint16_t p2 = chunk.AddPath({"works", "title"});
  const uint16_t p3 = chunk.AddPath({"works"});
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(chunk.paths.size(), 2u);

  // The compiler inherits the dedup: the same literal and path used twice
  // land once in the pools.
  std::vector<ExprPtr> kids;
  kids.push_back(Expr::Cmp(CompareOp::kGe, Expr::Path("x", {"birthyear"}),
                           Expr::Lit(Value::Int(1650))));
  kids.push_back(Expr::Cmp(CompareOp::kNe, Expr::Path("x", {"birthyear"}),
                           Expr::Lit(Value::Int(1650))));
  const auto compiled =
      vm::CompilePredicate(Expr::And(std::move(kids)), schema_);
  ASSERT_TRUE(compiled.has_value());
  EXPECT_EQ(compiled->consts.size(), 1u);
  EXPECT_EQ(compiled->paths.size(), 1u);
}

// --- Disassembler -----------------------------------------------------------

TEST_F(VmTest, DisassemblerCompleteAndDeterministic) {
  const ExprPtr pred = Expr::And([] {
    std::vector<ExprPtr> kids;
    kids.push_back(Expr::Cmp(CompareOp::kEq,
                             Expr::Path("x", {"works", "instruments", "iname"}),
                             Expr::Lit(Value::Str("harpsichord"))));
    kids.push_back(Expr::Cmp(CompareOp::kLt, Expr::Path("x", {"birthyear"}),
                             Expr::Lit(Value::Int(1700))));
    return kids;
  }());
  const auto chunk = vm::CompilePredicate(pred, schema_);
  ASSERT_TRUE(chunk.has_value());

  const std::string listing = chunk->Disassemble();
  EXPECT_EQ(listing, chunk->Disassemble());  // deterministic

  // One header line plus exactly one line per instruction.
  size_t lines = 0;
  for (char ch : listing) lines += (ch == '\n') ? 1 : 0;
  EXPECT_EQ(lines, chunk->code.size() + 1);

  // Every instruction's opcode name appears.
  for (const vm::Instr& instr : chunk->code) {
    EXPECT_NE(listing.find(vm::OpCodeName(instr.op)), std::string::npos)
        << vm::OpCodeName(instr.op);
  }
  // Operands render symbolically: the literal and the path both show up.
  EXPECT_NE(listing.find("harpsichord"), std::string::npos);
  EXPECT_NE(listing.find("1700"), std::string::npos);
}

// --- Malformed chunks -------------------------------------------------------

vm::BytecodeChunk MinimalPredChunk() {
  vm::BytecodeChunk chunk;
  chunk.num_bool_regs = 1;
  chunk.num_cols = 1;
  chunk.code.push_back({vm::OpCode::kLoadBool, 0, 0, 0, 1, 0});
  chunk.code.push_back({vm::OpCode::kRetBool, 0, 0, 0, 0, 0});
  return chunk;
}

TEST_F(VmTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MinimalPredChunk().Validate().ok());
  const auto compiled = vm::CompilePredicate(
      Expr::Cmp(CompareOp::kEq, Expr::Path("x", {"name"}),
                Expr::Lit(Value::Str("composer_1"))),
      schema_);
  ASSERT_TRUE(compiled.has_value());
  EXPECT_TRUE(compiled->Validate().ok());
}

TEST_F(VmTest, ValidateRejectsMalformed) {
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    chunk.code[1].a = 9;  // bool register out of range
    const Status s = chunk.Validate();
    EXPECT_EQ(s.code, Status::Code::kInternal) << s.ToString();
  }
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    chunk.code.pop_back();  // no terminal return
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    // Jump past the end of the chunk.
    chunk.code.insert(chunk.code.begin() + 1,
                      {vm::OpCode::kJumpIfFalse, 0, 0, 0, 99, 0});
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    // Constant-pool index with an empty pool.
    chunk.num_value_regs = 1;
    chunk.code.insert(chunk.code.begin(),
                      {vm::OpCode::kLoadConst, 0, 0, 0, 0, 0});
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    // Column operand beyond the compiled row width.
    chunk.num_value_regs = 1;
    chunk.code.insert(chunk.code.begin(),
                      {vm::OpCode::kLoadColumn, 0, 0, 0, 5, 0});
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
  {
    vm::BytecodeChunk chunk = MinimalPredChunk();
    // Path-table index out of range on a navigation.
    chunk.num_value_regs = 1;
    chunk.code.insert(chunk.code.begin(),
                      {vm::OpCode::kNavigate, 0, 0, 0, 0, 3});
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
  {
    vm::BytecodeChunk chunk;  // empty program
    EXPECT_EQ(chunk.Validate().code, Status::Code::kInternal);
  }
}

// --- Fallback on pathological shapes ----------------------------------------

TEST_F(VmTest, UnresolvablePathFallsBackToInterpreter) {
  // "y" is not a column of the schema: the compiler must decline (and the
  // engine then interprets), never emit a bad chunk.
  EXPECT_FALSE(vm::CompilePredicate(
                   Expr::Cmp(CompareOp::kEq, Expr::Path("y", {"name"}),
                             Expr::Lit(Value::Str("a"))),
                   schema_)
                   .has_value());
  EXPECT_FALSE(vm::CompileMulti(Expr::Path("y", {}), schema_).has_value());
}

// --- The knob stays out of the plan-cache fingerprint -----------------------

TEST_F(VmTest, PlanCacheHitsAcrossCompiledEvalFlip) {
  Session session(g_.db.get());
  const std::string text =
      "select [n: x.name] from x in Composer where x.birthyear < 1700";

  QueryOptions interp;
  interp.cold = true;  // both runs cold, so measured cost is comparable
  interp.compiled_eval = false;
  const QueryRun first = session.Run(text, interp);
  ASSERT_TRUE(first.ok()) << first.error();
  // Under RODIN_PLAN_CACHE=0 nothing is ever cached, and with the fault
  // injector enabled the session never inserts either — the cross-knob hit
  // cannot be observed in those configs; the rest of the suite still covers
  // the knob.
  if (!PlanCacheEnabledByEnv() || FaultInjector::Global().enabled()) {
    GTEST_SKIP();
  }
  EXPECT_FALSE(first.plan_cached);

  QueryOptions compiled;
  compiled.cold = true;
  compiled.compiled_eval = true;
  const QueryRun second = session.Run(text, compiled);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_TRUE(second.plan_cached)
      << "flipping compiled_eval must not change the plan-cache fingerprint";
  ASSERT_EQ(second.answer.rows.size(), first.answer.rows.size());
  EXPECT_EQ(second.measured_cost, first.measured_cost);
}

// --- EXPLAIN carries the disassembly ----------------------------------------

TEST_F(VmTest, ExplainIncludesDisassemblyOnlyWhenCompiled) {
  Session session(g_.db.get());
  const std::string text =
      "select [n: x.name] from x in Composer where x.birthyear < 1700";

  QueryOptions compiled;
  compiled.compiled_eval = true;
  const ExplainResult on = session.Explain(text, compiled);
  ASSERT_TRUE(on.ok()) << on.status.ToString();
  EXPECT_FALSE(on.vm_disassembly.empty());
  EXPECT_NE(on.ToString().find("bytecode (compiled eval):"),
            std::string::npos);
  EXPECT_NE(on.vm_disassembly.find("RetBool"), std::string::npos);

  QueryOptions interp;
  interp.compiled_eval = false;
  const ExplainResult off = session.Explain(text, interp);
  ASSERT_TRUE(off.ok()) << off.status.ToString();
  EXPECT_TRUE(off.vm_disassembly.empty());
  EXPECT_EQ(off.ToString().find("bytecode"), std::string::npos);
}

}  // namespace
}  // namespace rodin
