// Spill-to-disk differential suite: forcing every operator working set over
// the temp-page ledger (spill_budget_pages = 1, spill on) must change
// *nothing observable* about a query — same rows in the same order, every
// ExecCounters field, the buffer pool's fetch/hit/miss totals and
// MeasuredCost() bit-identical to an unlimited run, across the legacy
// oracle and every batched batch_rows x exec_threads configuration. The
// ledger budget deliberately never clamps the buffer pool's LRU capacity,
// so this is exact equality, not a tolerance (docs/ROBUSTNESS.md).
//
// Also covered here: the cumulative live-temp-page ledger (two allocations
// that each fit the budget individually must still trip / spill together),
// the machine-readable kResourceExhausted detail when spilling is off, the
// single-oversized-row refusal, spilled fix-cache hits, and lifecycle
// (cancel / forced deadline / fault-retry) interactions mid-spill.
//
// Queries cover the paper's Figure 3 recursion plus randomized SPJ,
// recursive and graph-closure queries (the exec_differential_test
// generators). Failures reproduce from the seed in the test name;
// RODIN_TEST_SEED=N shifts every seed by N.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/faults.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/graph_gen.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "optimizer/baseline.h"
#include "optimizer/optimizer.h"
#include "query/builder.h"
#include "query/graph_queries.h"
#include "query/paper_queries.h"
#include "query/query_graph.h"
#include "test_seed.h"

namespace rodin {
namespace {

/// An explicit "unlimited" ledger: large enough that nothing spills, and —
/// because an engaged spill_budget_pages takes precedence — immune to a
/// RODIN_SPILL_BUDGET forced by the surrounding CI job.
constexpr size_t kUnlimitedPages = size_t{1} << 30;

QueryContext ForcedSpillContext() {
  QueryContext q;
  q.spill = true;
  q.spill_budget_pages = 1;  // every multi-page working set goes to disk
  return q;
}

QueryContext UnlimitedContext() {
  QueryContext q;
  q.spill = true;
  q.spill_budget_pages = kUnlimitedPages;
  return q;
}

/// Everything one execution produces, packaged for exact comparison.
/// `spills` is observability, not part of the identity: it necessarily
/// differs between the forced and unlimited arms.
struct ExecFingerprint {
  std::vector<std::string> rows;  // in emission order
  ExecCounters counters;
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double measured_cost = 0;
  uint64_t spills = 0;
};

ExecFingerprint RunConfig(Database* db, const PTNode& plan,
                          const ExecOptions& options) {
  Executor exec(db);
  exec.ResetMeasurement(/*clear_buffer=*/true);  // cold: deterministic pool
  Table t = exec.Execute(plan, options);

  ExecFingerprint fp;
  fp.rows.reserve(t.rows.size());
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    fp.rows.push_back(std::move(key));
  }
  fp.counters = exec.counters();
  const BufferPool::Stats& s = db->buffer_pool().stats();
  fp.fetches = s.fetches;
  fp.hits = s.hits;
  fp.misses = s.misses;
  fp.measured_cost = exec.MeasuredCost();
  fp.spills = exec.spill_stats().spills;
  return fp;
}

void ExpectSameFingerprint(const ExecFingerprint& got,
                           const ExecFingerprint& want) {
  ASSERT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.counters.predicate_evals, want.counters.predicate_evals);
  EXPECT_EQ(got.counters.method_calls, want.counters.method_calls);
  EXPECT_EQ(got.counters.method_cost, want.counters.method_cost);
  EXPECT_EQ(got.counters.rows_produced, want.counters.rows_produced);
  EXPECT_EQ(got.counters.fix_iterations, want.counters.fix_iterations);
  EXPECT_EQ(got.fetches, want.fetches);
  EXPECT_EQ(got.hits, want.hits);
  EXPECT_EQ(got.misses, want.misses);
  EXPECT_EQ(got.measured_cost, want.measured_cost);  // bitwise, no ULP
}

/// Runs `plan` under the legacy oracle with an unlimited ledger, then under
/// both ledger arms (forced spill / unlimited) for the legacy engine and
/// every batched configuration, asserting exact equality throughout.
/// Returns the maximum spill count seen across the forced arms, so callers
/// that know the query materializes multiple temps can assert the forced
/// arm really exercised the spill path.
uint64_t ExpectSpillIdentical(Database* db, const PTNode& plan,
                              const std::string& label) {
  const QueryContext unlimited = UnlimitedContext();
  const QueryContext forced = ForcedSpillContext();

  ExecOptions oracle;
  oracle.use_legacy = true;
  oracle.query = &unlimited;
  const ExecFingerprint want = RunConfig(db, plan, oracle);

  uint64_t forced_spills = 0;
  {
    SCOPED_TRACE(label + " legacy forced-spill");
    ExecOptions options;
    options.use_legacy = true;
    options.query = &forced;
    const ExecFingerprint got = RunConfig(db, plan, options);
    ExpectSameFingerprint(got, want);
    forced_spills = std::max(forced_spills, got.spills);
  }

  const size_t kBatchSizes[] = {1, 7, 1024};
  const size_t kThreadCounts[] = {1, 4};
  for (size_t batch : kBatchSizes) {
    for (size_t threads : kThreadCounts) {
      for (const QueryContext* arm : {&unlimited, &forced}) {
        const bool is_forced = arm == &forced;
        SCOPED_TRACE(label + " batch_rows=" + std::to_string(batch) +
                     " exec_threads=" + std::to_string(threads) +
                     (is_forced ? " forced-spill" : " unlimited"));
        ExecOptions options;
        options.batch_rows = batch;
        options.exec_threads = threads;
        options.query = arm;
        const ExecFingerprint got = RunConfig(db, plan, options);
        ExpectSameFingerprint(got, want);
        if (is_forced) forced_spills = std::max(forced_spills, got.spills);
        if (!is_forced) EXPECT_EQ(got.spills, 0u);
      }
    }
  }
  return forced_spills;
}

uint64_t OptimizeAndCompare(Database* db, const Stats& stats,
                            const CostModel& cost, const QueryGraph& q,
                            uint64_t seed, const std::string& label) {
  Optimizer optimizer(db, &stats, &cost, CostBasedOptions(seed));
  OptimizeResult plan = optimizer.Optimize(q);
  EXPECT_TRUE(plan.ok()) << plan.status.ToString() << "\n" << q.ToString();
  if (!plan.ok()) return 0;
  return ExpectSpillIdentical(db, *plan.plan, label);
}

// --- Figure 3: the paper's running example ---------------------------------

TEST(SpillDifferentialTest, Fig3HarpsichordForcedSpillIsBitIdentical) {
  MusicConfig config;
  config.num_composers = 60;
  config.lineage_depth = 8;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  const uint64_t spills = OptimizeAndCompare(g.db.get(), stats, cost,
                                             Fig3Query(*g.schema), 42, "fig3");
  // The fixpoint's per-iteration deltas and the memoized result all exceed
  // a 1-page ledger, so the forced arm must really have spilled.
  EXPECT_GT(spills, 0u);
}

// --- Randomized queries over randomized databases --------------------------
// (the exec_differential_test generators, re-run across both ledger arms)

QueryGraph RandomSpjQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  NodeBuilder& node = b.Node("Answer");
  const int arcs = 1 + static_cast<int>(rng->Below(3));
  std::vector<std::string> vars;
  for (int i = 0; i < arcs; ++i) {
    const std::string var = "x" + std::to_string(i);
    node.Input("Composer", var);
    vars.push_back(var);
    if (i > 0) {
      node.Where(Expr::Eq(Expr::Path(vars[i - 1], {"master"}),
                          rng->Chance(0.5) ? Expr::Path(var, {"master"})
                                           : Expr::Path(var, {})));
    }
  }
  const int sels = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < sels; ++i) {
    const std::string& var = vars[rng->Below(vars.size())];
    switch (rng->Below(4)) {
      case 0:
        node.Where(Expr::Cmp(rng->Chance(0.5) ? CompareOp::kGe : CompareOp::kLt,
                             Expr::Path(var, {"birthyear"}),
                             Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
        break;
      case 1:
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "family"}),
            Expr::Lit(Value::Str(rng->Chance(0.5) ? "keyboard" : "string"))));
        break;
      case 2:
        node.Where(Expr::Eq(
            Expr::Path(var, {"master", "name"}),
            Expr::Lit(Value::Str("composer_" + std::to_string(rng->Below(8))))));
        break;
      default: {
        static const char* kInstr[] = {"harpsichord", "flute", "violin",
                                       "organ"};
        node.Where(Expr::Eq(
            Expr::Path(var, {"works", "instruments", "iname"}),
            Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
        break;
      }
    }
  }
  node.OutPath("n", vars[0], {"name"});
  if (rng->Chance(0.5)) node.OutPath("y", vars[0], {"birthyear"});
  return b.Build(schema);
}

QueryGraph RandomRecursiveQuery(Rng* rng, const Schema& schema) {
  QueryGraphBuilder b;
  b.Node("Influencer", "P1")
      .Input("Composer", "x")
      .OutPath("master", "x", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Lit(Value::Int(1)));
  b.Node("Influencer", "P2")
      .Input("Influencer", "i")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})))
      .OutPath("master", "i", {"master"})
      .OutPath("disciple", "x")
      .Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                              Expr::Lit(Value::Int(1))));

  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  if (rng->Chance(0.7)) {
    answer.Where(Expr::Cmp(CompareOp::kGe, Expr::Path("j", {"gen"}),
                           Expr::Lit(Value::Int(rng->Range(2, 6)))));
  }
  if (rng->Chance(0.5)) {
    static const char* kInstr[] = {"harpsichord", "flute", "violin", "organ"};
    answer.Where(
        Expr::Eq(Expr::Path("j", {"master", "works", "instruments", "iname"}),
                 Expr::Lit(Value::Str(kInstr[rng->Below(4)]))));
  } else {
    answer.Where(Expr::Cmp(CompareOp::kLt,
                           Expr::Path("j", {"master", "birthyear"}),
                           Expr::Lit(Value::Int(rng->Range(1620, 1720)))));
  }
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

class SpillDifferentialSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpillDifferentialSeedTest, MusicSpjAndRecursive) {
  const uint64_t seed = GetParam() + TestSeedBase();
  SCOPED_TRACE("effective seed=" + std::to_string(seed) +
               " (RODIN_TEST_SEED shifts)");
  Rng rng(seed * 101 + 13);

  MusicConfig config;
  config.seed = seed * 31 + 7;
  config.num_composers = 40 + static_cast<uint32_t>(rng.Below(50));
  config.lineage_depth = 3 + static_cast<uint32_t>(rng.Below(8));
  config.harpsichord_fraction = 0.05 + 0.25 * rng.NextDouble();
  config.works_per_composer_max = 4 + static_cast<uint32_t>(rng.Below(5));
  PhysicalConfig physical = PaperMusicPhysical();
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "name"});
  }
  if (rng.Chance(0.5)) {
    physical.sel_indexes.push_back(SelIndexSpec{"Composer", "birthyear"});
  }
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  for (int round = 0; round < 2; ++round) {
    const QueryGraph spj = RandomSpjQuery(&rng, *g.schema);
    OptimizeAndCompare(g.db.get(), stats, cost, spj, seed + round,
                       "spj round " + std::to_string(round));
  }
  uint64_t recursive_spills = 0;
  for (int round = 0; round < 2; ++round) {
    const QueryGraph rec = RandomRecursiveQuery(&rng, *g.schema);
    recursive_spills += OptimizeAndCompare(
        g.db.get(), stats, cost, rec, seed + round,
        "recursive round " + std::to_string(round));
  }
  // Every recursive query materializes fixpoint deltas wider than one page
  // at these database sizes: the forced arm must have hit the disk.
  EXPECT_GT(recursive_spills, 0u);
}

TEST_P(SpillDifferentialSeedTest, GraphClosure) {
  const uint64_t seed = GetParam() + TestSeedBase();
  SCOPED_TRACE("effective seed=" + std::to_string(seed) +
               " (RODIN_TEST_SEED shifts)");
  Rng rng(seed * 77 + 3);

  GraphConfig config;
  config.seed = seed * 13 + 1;
  config.num_nodes = 60 + static_cast<uint32_t>(rng.Below(60));
  config.chain_depth = 4 + static_cast<uint32_t>(rng.Below(6));
  config.path_len = static_cast<uint32_t>(rng.Below(3));
  config.num_labels = 2 + static_cast<uint32_t>(rng.Below(8));
  GeneratedDb g = GenerateGraphDb(config, DefaultGraphPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);

  const QueryGraph q = GraphClosureQuery(config, *g.schema);
  OptimizeAndCompare(g.db.get(), stats, cost, q, seed, "graph closure");
}

// 6 seeds x (2 SPJ + 2 recursive) + 6 graph closures = 30 random queries,
// each compared across 13 engine/ledger arms against the unlimited oracle.
INSTANTIATE_TEST_SUITE_P(Seeds, SpillDifferentialSeedTest,
                         ::testing::Range<uint64_t>(1, 7),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- The cumulative live-page ledger ---------------------------------------

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

// Two recursive views joined in the answer: both memoized fixpoint results
// (plus the join's inner materialization) are live at the same time, so
// there are budgets where every allocation fits individually but the
// cumulative ledger is over — the shape the pre-fix per-allocation check
// silently admitted.
const char kTwoClosuresText[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

relation Lineage includes
  (select [root: x.master, leaf: x] from x in Composer)
  union
  (select [root: l.root, leaf: x]
   from l in Lineage, x in Composer where l.leaf = x.master)

select [a: i.disciple.name, b: l.leaf.name]
from i in Influencer, l in Lineage
where i.disciple = l.leaf and i.gen >= 3
)";

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

GeneratedDb MakeLedgerDb() {
  MusicConfig config;
  config.num_composers = 60;
  config.lineage_depth = 8;
  return GenerateMusicDb(config, PaperMusicPhysical());
}

TEST(SpillLedgerTest, CumulativeLiveTempPagesTripAcrossAllocations) {
  GeneratedDb g = MakeLedgerDb();
  Session session(g.db.get());
  QueryOptions unlimited;
  unlimited.cold = true;
  unlimited.query.spill_budget_pages = kUnlimitedPages;
  const QueryRun base = session.Run(kTwoClosuresText, unlimited);
  ASSERT_TRUE(base.ok()) << base.error();

  // Walk the budget up until a trip whose requested size alone fits the
  // budget: only the *cumulative* ledger can refuse that allocation. The
  // regression this pins: a per-allocation check (the original bug) never
  // trips at such a budget, over-committing memory by the live remainder.
  bool cumulative_trip = false;
  for (size_t budget = 1; budget <= (1u << 16); budget *= 2) {
    QueryOptions off;
    off.cold = true;
    off.query.spill = false;
    off.query.spill_budget_pages = budget;
    const QueryRun run = session.Run(kTwoClosuresText, off);
    if (run.ok()) break;  // the whole working set fits: nothing left to trip
    ASSERT_EQ(run.status.code, Status::Code::kResourceExhausted)
        << run.status.ToString();
    const uint64_t requested = ResourceDetailRequested(run.status.detail);
    const uint64_t remaining = ResourceDetailRemaining(run.status.detail);
    EXPECT_GT(requested, remaining) << run.status.ToString();
    EXPECT_LE(remaining, budget);
    if (requested > budget) continue;  // largest-alloc trip, keep growing

    cumulative_trip = true;
    // The same budget with spilling on must complete with the unlimited
    // answer and cost (the ledger never clamps the buffer pool), and must
    // really have spilled.
    obs::Counter* spill_metric =
        obs::MetricsRegistry::Global().GetCounter("rodin.spill.spills");
    const uint64_t spills_before = spill_metric->value();
    QueryOptions on = off;
    on.query.spill = true;
    const QueryRun spilled = session.Run(kTwoClosuresText, on);
    ASSERT_TRUE(spilled.ok()) << spilled.status.ToString();
    EXPECT_EQ(Keys(spilled.answer), Keys(base.answer));
    EXPECT_EQ(spilled.measured_cost, base.measured_cost);
    EXPECT_GT(spill_metric->value(), spills_before);
    break;
  }
  EXPECT_TRUE(cumulative_trip)
      << "no budget produced a cumulative-ledger trip; the per-allocation "
         "regression is unprotected";
}

// --- kResourceExhausted detail (spilling off) ------------------------------

TEST(SpillLedgerTest, SpillOffTripCarriesMachineReadableDetail) {
  GeneratedDb g = MakeLedgerDb();
  Session session(g.db.get());
  QueryOptions off;
  off.cold = true;
  off.query.spill = false;
  off.query.spill_budget_pages = 1;
  const QueryRun run = session.Run(kFig3Text, off);
  ASSERT_FALSE(run.ok());
  ASSERT_EQ(run.status.code, Status::Code::kResourceExhausted)
      << run.status.ToString();
  EXPECT_TRUE(run.answer.rows.empty());

  // The packed detail names the tripping operator and the page arithmetic,
  // so pool managers branch on the payload, not on message text.
  const SpillOpTag tag = ResourceDetailOp(run.status.detail);
  EXPECT_TRUE(tag == SpillOpTag::kJoinBuild || tag == SpillOpTag::kFixDelta ||
              tag == SpillOpTag::kDedup || tag == SpillOpTag::kFixCache ||
              tag == SpillOpTag::kUnion)
      << static_cast<int>(tag);
  EXPECT_GT(ResourceDetailRequested(run.status.detail), 1u);
  EXPECT_LE(ResourceDetailRemaining(run.status.detail), 1u);
  EXPECT_NE(run.status.message.find("spilling is off"), std::string::npos)
      << run.status.message;

  // The identical query with spilling on (the default) completes.
  QueryOptions on = off;
  on.query.spill = true;
  const QueryRun ok = session.Run(kFig3Text, on);
  ASSERT_TRUE(ok.ok()) << ok.status.ToString();
  EXPECT_FALSE(ok.answer.rows.empty());
}

// --- The one unconditional refusal: a row wider than the budget ------------

QueryGraph WideRecursiveQuery(const Schema& schema) {
  // 260 extra columns push one row past a 1-page ledger (16 bytes/value:
  // 263 columns ~ 4208 bytes > 4096), so the fixpoint delta's first
  // allocation is refused even with spilling on.
  QueryGraphBuilder b;
  NodeBuilder& p1 = b.Node("Influencer", "P1");
  p1.Input("Composer", "x");
  p1.OutPath("master", "x", {"master"});
  p1.OutPath("disciple", "x");
  p1.Out("gen", Expr::Lit(Value::Int(1)));
  NodeBuilder& p2 = b.Node("Influencer", "P2");
  p2.Input("Influencer", "i");
  p2.Input("Composer", "x");
  p2.Where(Expr::Eq(Expr::Path("i", {"disciple"}), Expr::Path("x", {"master"})));
  p2.OutPath("master", "i", {"master"});
  p2.OutPath("disciple", "x");
  p2.Out("gen", Expr::Arith(ArithOp::kAdd, Expr::Path("i", {"gen"}),
                            Expr::Lit(Value::Int(1))));
  for (int i = 0; i < 260; ++i) {
    const std::string col = "c" + std::to_string(i);
    p1.Out(col, Expr::Lit(Value::Int(i)));
    p2.Out(col, Expr::Lit(Value::Int(i)));
  }
  NodeBuilder& answer = b.Node("Answer", "P3");
  answer.Input("Influencer", "j");
  answer.OutPath("n", "j", {"disciple", "name"});
  return b.Build(schema);
}

TEST(SpillLedgerTest, RowWiderThanBudgetIsRefusedEvenWithSpillOn) {
  MusicConfig config;
  config.num_composers = 20;
  config.lineage_depth = 4;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  Optimizer optimizer(g.db.get(), &stats, &cost, CostBasedOptions(42));
  OptimizeResult plan = optimizer.Optimize(WideRecursiveQuery(*g.schema));
  ASSERT_TRUE(plan.ok()) << plan.status.ToString();

  const QueryContext forced = ForcedSpillContext();
  for (const bool use_legacy : {true, false}) {
    SCOPED_TRACE(use_legacy ? "legacy" : "batched");
    ExecOptions options;
    options.use_legacy = use_legacy;
    options.query = &forced;
    Executor exec(g.db.get());
    exec.ResetMeasurement(/*clear_buffer=*/true);
    Table out;
    const Status status = exec.ExecuteInto(*plan.plan, options, &out);
    ASSERT_EQ(status.code, Status::Code::kResourceExhausted)
        << status.ToString();
    EXPECT_NE(status.message.find("no partitioning can split one row"),
              std::string::npos)
        << status.message;
    EXPECT_EQ(ResourceDetailRequested(status.detail), TempRowPages(263));
    EXPECT_TRUE(out.rows.empty());
    // Narrower working sets (the union dedup) may have spilled before the
    // wide row tripped; the point is the refusal fired despite spill-on.
  }

  // The same plan under an unlimited ledger completes: the refusal is about
  // the budget, not the query.
  const QueryContext unlimited = UnlimitedContext();
  ExecOptions ok;
  ok.query = &unlimited;
  Executor exec(g.db.get());
  exec.ResetMeasurement(/*clear_buffer=*/true);
  Table out;
  ASSERT_TRUE(exec.ExecuteInto(*plan.plan, ok, &out).ok());
  EXPECT_FALSE(out.rows.empty());
}

// --- Spilled fix-cache hits ------------------------------------------------

TEST(SpillLedgerTest, SpilledFixCacheHitServesIdenticalRows) {
  MusicConfig config;
  config.num_composers = 60;
  config.lineage_depth = 8;
  GeneratedDb g = GenerateMusicDb(config, PaperMusicPhysical());
  Stats stats = Stats::Derive(*g.db);
  CostModel cost(g.db.get(), &stats);
  Optimizer optimizer(g.db.get(), &stats, &cost, CostBasedOptions(42));
  OptimizeResult plan = optimizer.Optimize(Fig3Query(*g.schema));
  ASSERT_TRUE(plan.ok()) << plan.status.ToString();

  const QueryContext forced = ForcedSpillContext();
  const QueryContext unlimited = UnlimitedContext();
  for (const bool use_legacy : {true, false}) {
    SCOPED_TRACE(use_legacy ? "legacy" : "batched");
    // One executor per arm: the fix cache persists across Execute calls,
    // so the second run is served from the (spilled) memoized result.
    Executor spilling(g.db.get());
    Executor plain(g.db.get());
    ExecOptions forced_options;
    forced_options.use_legacy = use_legacy;
    forced_options.query = &forced;
    ExecOptions plain_options;
    plain_options.use_legacy = use_legacy;
    plain_options.query = &unlimited;

    for (int run = 0; run < 2; ++run) {
      SCOPED_TRACE("run " + std::to_string(run));
      spilling.ResetMeasurement(/*clear_buffer=*/true);
      const Table got = spilling.Execute(*plan.plan, forced_options);
      plain.ResetMeasurement(/*clear_buffer=*/true);
      const Table want = plain.Execute(*plan.plan, plain_options);
      ASSERT_EQ(Keys(got), Keys(want));
      EXPECT_EQ(spilling.MeasuredCost(), plain.MeasuredCost());
      EXPECT_EQ(spilling.counters().fix_iterations,
                plain.counters().fix_iterations);
    }
    // The cache-hit run re-read the spilled payload from disk.
    if (!use_legacy) EXPECT_GT(spilling.spill_stats().passes, 0u);
  }
}

// --- Lifecycle mid-spill ---------------------------------------------------

class SpillLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Configure(FaultConfig{});  // disabled
    g_ = MakeLedgerDb();
  }
  void TearDown() override { FaultInjector::Global().Configure(FaultConfig{}); }
  GeneratedDb g_;
};

TEST_F(SpillLifecycleTest, CancelAbortsForcedSpillRun) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.query.spill = true;
  options.query.spill_budget_pages = 1;
  options.query.cancel.RequestCancel();
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kCancelled) << run.status.ToString();
  EXPECT_TRUE(run.answer.rows.empty());
}

TEST_F(SpillLifecycleTest, ForcedDeadlineMidFixpointUnderForcedSpill) {
  // The forced deadline fires inside the semi-naive loop, after earlier
  // iterations have already written spill files: the abort must unwind
  // them cleanly (tmpfile-backed spill files self-delete) and surface the
  // deadline, not a spill artifact.
  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 0;
  fc.alloc_fail = 0;
  fc.force_deadline_fix_iter = 2;
  FaultInjector::Global().Configure(fc);

  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.query.spill = true;
  options.query.spill_budget_pages = 1;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status.code, Status::Code::kDeadlineExceeded)
      << run.status.ToString();
  EXPECT_GE(run.counters.fix_iterations, 1u);
  EXPECT_TRUE(run.answer.rows.empty());
}

TEST_F(SpillLifecycleTest, FaultRetryUnderForcedSpillIsBitIdentical) {
  // A transient page-fetch fault aborts an attempt that had already spilled;
  // the retry must discard the partial spill state and finish bit-identical
  // to a clean unlimited run.
  Session session(g_.db.get());
  QueryOptions clean_options;
  clean_options.cold = true;
  clean_options.query.spill_budget_pages = kUnlimitedPages;
  const QueryRun clean = session.Run(kFig3Text, clean_options);
  ASSERT_TRUE(clean.ok()) << clean.error();

  FaultConfig fc;
  fc.enabled = true;
  fc.page_fetch_fail = 1.0;
  fc.alloc_fail = 0;
  fc.max_faults = 1;
  FaultInjector::Global().Configure(fc);

  QueryOptions forced;
  forced.cold = true;
  forced.query.spill = true;
  forced.query.spill_budget_pages = 1;
  const QueryRun retried = session.Run(kFig3Text, forced);
  ASSERT_TRUE(retried.ok()) << retried.status.ToString();
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 1u);
  EXPECT_EQ(Keys(retried.answer), Keys(clean.answer));
  EXPECT_EQ(retried.counters.predicate_evals, clean.counters.predicate_evals);
  EXPECT_EQ(retried.counters.rows_produced, clean.counters.rows_produced);
  EXPECT_EQ(retried.counters.fix_iterations, clean.counters.fix_iterations);
  EXPECT_EQ(retried.measured_cost, clean.measured_cost);
}

}  // namespace
}  // namespace rodin
