// Session::Query / ResultCursor: the streaming surface must serve the same
// answer (and final accounting) as the materializing Run() path, batch by
// batch, row by row, or drained via ToTable; error paths come back as
// cursors; early destruction finalizes the partial run without crashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/session.h"
#include "datagen/music_gen.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

const char kFig3Text[] = R"(
relation Influencer includes
  (select [master: x.master, disciple: x, gen: 1] from x in Composer)
  union
  (select [master: i.master, disciple: x, gen: i.gen + 1]
   from i in Influencer, x in Composer where i.disciple = x.master)

select [dname: j.disciple.name] from j in Influencer
where j.master.works.instruments.iname = "harpsichord" and j.gen >= 6
)";

std::vector<std::string> Keys(const Table& t) {
  std::vector<std::string> out;
  for (const Row& row : t.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.push_back(std::move(key));
  }
  return out;
}

class ResultCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 40;
    config.lineage_depth = 8;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  GeneratedDb g_;
};

TEST_F(ResultCursorTest, BatchesMatchRun) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();
  ASSERT_FALSE(run.answer.rows.empty());

  options.batch_rows = 3;  // force several batches
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  EXPECT_FALSE(cur.plan_text().empty());
  EXPECT_EQ(cur.plan_text(), run.plan_text);

  Table streamed;
  streamed.schema = cur.schema();
  RowBatch batch;
  while (cur.Next(&batch)) {
    EXPECT_LE(batch.size(), 3u);
    for (Row& r : batch.rows) streamed.rows.push_back(std::move(r));
  }
  EXPECT_TRUE(cur.finished());
  EXPECT_EQ(Keys(streamed), Keys(run.answer));

  // Final accounting equals the materializing path's.
  EXPECT_EQ(cur.counters().rows_produced, run.counters.rows_produced);
  EXPECT_EQ(cur.counters().predicate_evals, run.counters.predicate_evals);
  EXPECT_EQ(cur.counters().fix_iterations, run.counters.fix_iterations);
  EXPECT_EQ(cur.measured_cost(), run.measured_cost);
}

TEST_F(ResultCursorTest, RowAtATime) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();

  options.batch_rows = 2;
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  std::vector<std::string> keys;
  Row row;
  while (cur.Next(&row)) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    keys.push_back(std::move(key));
  }
  EXPECT_EQ(keys, Keys(run.answer));
}

TEST_F(ResultCursorTest, ToTableAfterPartialRead) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 2;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  // Pull one row through the row-at-a-time view, then drain the rest:
  // nothing may be lost or duplicated at the seam.
  Row first;
  ASSERT_TRUE(cur.Next(&first));
  Table rest = cur.ToTable();
  EXPECT_TRUE(cur.finished());
  EXPECT_EQ(rest.rows.size() + 1, run.answer.rows.size());
}

TEST_F(ResultCursorTest, ParallelCursorSameAnswer) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();

  options.exec_threads = 4;
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  Table streamed = cur.ToTable();
  EXPECT_EQ(Keys(streamed), Keys(run.answer));
  EXPECT_EQ(cur.measured_cost(), run.measured_cost);
}

TEST_F(ResultCursorTest, ParseErrorCursor) {
  Session session(g_.db.get());
  ResultCursor cur = session.Query("select [n x.name] from x in Composer");
  EXPECT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code, Status::Code::kParse);
  EXPECT_TRUE(cur.finished());
  RowBatch batch;
  EXPECT_FALSE(cur.Next(&batch));
}

TEST_F(ResultCursorTest, OptimizeErrorCursor) {
  Session session(g_.db.get());
  ResultCursor cur =
      session.Query("select [n: x.nosuchattr] from x in Composer");
  EXPECT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code, Status::Code::kSemantic);
}

TEST_F(ResultCursorTest, EarlyDestructionIsSafe) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  {
    ResultCursor cur = session.Query(kFig3Text, options);
    ASSERT_TRUE(cur.ok()) << cur.error();
    RowBatch batch;
    ASSERT_TRUE(cur.Next(&batch));  // consume one batch, then drop the cursor
  }
  // The session (and its database) must still be fully usable.
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_FALSE(run.answer.rows.empty());
}

TEST_F(ResultCursorTest, MoveAssignOverPartialCursorIsSafe) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  options.batch_rows = 1;
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  RowBatch batch;
  ASSERT_TRUE(cur.Next(&batch));  // leave the cursor partially read
  // Reassigning must finalize the replaced query first — its engine (and
  // the executor the keepalive owns) go away together, and the fresh
  // cursor streams the full answer.
  cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  Table streamed = cur.ToTable();
  EXPECT_TRUE(cur.finished());
  EXPECT_FALSE(streamed.rows.empty());

  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(Keys(streamed), Keys(run.answer));
}

TEST_F(ResultCursorTest, FinishWithoutReading) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();

  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  cur.Finish();  // drain internally so accounting covers the whole query
  EXPECT_TRUE(cur.finished());
  EXPECT_EQ(cur.counters().rows_produced, run.counters.rows_produced);
  EXPECT_EQ(cur.measured_cost(), run.measured_cost);
}

TEST_F(ResultCursorTest, LegacyEngineCursor) {
  Session session(g_.db.get());
  QueryOptions options;
  options.cold = true;
  const QueryRun run = session.Run(kFig3Text, options);
  ASSERT_TRUE(run.ok()) << run.error();

  options.legacy_exec = true;
  options.batch_rows = 4;
  ResultCursor cur = session.Query(kFig3Text, options);
  ASSERT_TRUE(cur.ok()) << cur.error();
  Table streamed = cur.ToTable();
  EXPECT_EQ(Keys(streamed), Keys(run.answer));
  EXPECT_EQ(cur.measured_cost(), run.measured_cost);
}

}  // namespace
}  // namespace rodin
