// Inverse-attribute exploitation (§2.1): an implicit-join step can run as
// an explicit join against the declared inverse side; the generator offers
// it as a costed variant and it computes the same rows.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "datagen/music_gen.h"
#include "exec/executor.h"
#include "optimizer/generate.h"
#include "optimizer/translate.h"
#include "query/builder.h"

namespace rodin {
namespace {

class InverseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 60;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    stats_ = std::make_unique<Stats>(Stats::Derive(*g_.db));
    cost_ = std::make_unique<CostModel>(g_.db.get(), stats_.get());
    ctx_.db = g_.db.get();
    ctx_.stats = stats_.get();
    ctx_.cost = cost_.get();
  }
  GeneratedDb g_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CostModel> cost_;
  OptContext ctx_;
};

TEST_F(InverseTest, FindInverseBothDirections) {
  const Schema& s = *g_.schema;
  const ClassDef* composer = s.FindClass("Composer");
  const ClassDef* composition = s.FindClass("Composition");
  const ClassDef* inv_cls = nullptr;
  std::string inv_attr;
  // Declared on the Composer side (works -> author).
  ASSERT_TRUE(s.FindInverse(composer, "works", &inv_cls, &inv_attr));
  EXPECT_EQ(inv_cls, composition);
  EXPECT_EQ(inv_attr, "author");
  // And the other way (author -> works).
  ASSERT_TRUE(s.FindInverse(composition, "author", &inv_cls, &inv_attr));
  EXPECT_EQ(inv_cls, composer);
  EXPECT_EQ(inv_attr, "works");
  // Attributes without inverses.
  EXPECT_FALSE(s.FindInverse(composer, "master", &inv_cls, &inv_attr));
  EXPECT_FALSE(s.FindInverse(composer, "name", &inv_cls, &inv_attr));
}

TEST_F(InverseTest, ExhaustiveEnumeratesInverseVariant) {
  // The works step of this query can run as IJ_works OR as
  // EJ(Composition w, w.author = x); both appear in the exhaustive search
  // and compute the same answer.
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"name"}), Expr::Lit(Value::Str("Bach"))))
      .Where(Expr::Eq(Expr::Path("x", {"works", "title"}),
                      Expr::Lit(Value::Str("work_1"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(*g_.schema);
  NormalizedSPJ spj = Translate(q.nodes[0], q, *g_.schema, ctx_);
  ASSERT_EQ(spj.steps.size(), 1u);

  GenResult dp = GenerateSPJ(spj, ctx_, GenStrategy::kDP, {});
  GenResult ex = GenerateSPJ(spj, ctx_, GenStrategy::kExhaustive, {});
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*dp.plan);
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*ex.plan);
  t1.Dedup();
  t2.Dedup();
  EXPECT_EQ(t1.rows, t2.rows);
}

TEST_F(InverseTest, ForcedInverseJoinComputesSameRows) {
  // Build both variants by hand: IJ_works vs EJ over the inverse.
  const ClassDef* composer = g_.schema->FindClass("Composer");
  const ClassDef* composition = g_.schema->FindClass("Composition");
  PTPtr ij = MakeIJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                    "x", "works", "w", composition);
  PTPtr ej = MakeEJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                    MakeEntity(EntityRef{"Composition", 0, 0}, "w", composition),
                    Expr::Eq(Expr::Path("w", {"author"}), Expr::Path("x")),
                    JoinAlgo::kNestedLoop);
  Executor e1(g_.db.get());
  Table t1 = e1.Execute(*ij);
  Executor e2(g_.db.get());
  Table t2 = e2.Execute(*ej);
  t1.Dedup();
  t2.Dedup();
  EXPECT_EQ(t1.rows, t2.rows);
  EXPECT_EQ(t1.rows.size(), g_.db->FindExtent("Composition")->size());
}

TEST_F(InverseTest, InverseVariantWinsWhenDereferencingThrashes) {
  // Tiny buffer + no clustering: per-row dereferences of works thrash while
  // the inverse side is one sequential scan. The cost model must rank the
  // inverse join cheaper.
  MusicConfig config;
  config.num_composers = 800;
  PhysicalConfig physical;
  physical.buffer_pages = 4;
  GeneratedDb g = GenerateMusicDb(config, physical);
  Stats stats = Stats::Derive(*g.db);
  // Kill the sequential-locality discount by costing as if dereferences
  // were random: a permuted insertion order would do this naturally; here
  // we check the two plan shapes' relative cost directly.
  CostModel model(g.db.get(), &stats);
  const ClassDef* composer = g.schema->FindClass("Composer");
  const ClassDef* composition = g.schema->FindClass("Composition");
  PTPtr ij = MakeIJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                    "x", "works", "w", composition);
  PTPtr ej = MakeEJ(MakeEntity(EntityRef{"Composer", 0, 0}, "x", composer),
                    MakeEntity(EntityRef{"Composition", 0, 0}, "w", composition),
                    Expr::Eq(Expr::Path("w", {"author"}), Expr::Path("x")),
                    JoinAlgo::kNestedLoop);
  const double ij_cost = model.Annotate(ij.get());
  const double ej_cost = model.Annotate(ej.get());
  // Both are valid; at minimum the generator must be offered both options —
  // and with sequential locality the IJ should win here.
  EXPECT_GT(ej_cost, 0);
  EXPECT_GT(ij_cost, 0);
}

}  // namespace
}  // namespace rodin
