// Translate-stage tests: path decomposition into implicit-join steps,
// tree-label-style sharing rules, delta arcs, and expression rewriting.

#include <gtest/gtest.h>

#include "datagen/music_gen.h"
#include "optimizer/translate.h"
#include "query/builder.h"
#include "query/paper_queries.h"

namespace rodin {
namespace {

class TranslateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 20;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
    ctx_.db = g_.db.get();
  }
  const Schema& schema() { return *g_.schema; }
  GeneratedDb g_;
  OptContext ctx_;
};

TEST_F(TranslateTest, Fig3AnswerDecomposesPath) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p3 = q.ProducersOf("Answer")[0];
  NormalizedSPJ spj = Translate(*p3, q, schema(), ctx_);
  // j.master.works.instruments.iname needs 3 steps (master, works,
  // instruments); j.disciple.name needs 1 (disciple). j.gen needs none.
  EXPECT_EQ(spj.steps.size(), 4u);
  EXPECT_EQ(spj.arcs.size(), 1u);
  EXPECT_EQ(spj.arcs[0].kind, NameKind::kDerived);
  ASSERT_EQ(spj.arcs[0].view_cols.size(), 3u);
  EXPECT_EQ(spj.arcs[0].view_cols[0].name, "j.master");
  // Conjuncts rewritten to single residual attributes.
  ASSERT_EQ(spj.conjuncts.size(), 2u);
  for (const ExprPtr& c : spj.conjuncts) {
    for (const auto& [var, path] : c->VarPaths()) {
      EXPECT_LE(path.size(), 1u) << c->ToString();
    }
  }
}

TEST_F(TranslateTest, StepChainIsWellRooted) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p3 = q.ProducersOf("Answer")[0];
  NormalizedSPJ spj = Translate(*p3, q, schema(), ctx_);
  // master step roots at the arc var; works at master's out; instruments at
  // works' out.
  const StepInfo* master = nullptr;
  for (const StepInfo& s : spj.steps) {
    if (s.attr == "master") master = &s;
  }
  ASSERT_NE(master, nullptr);
  EXPECT_EQ(master->root, "j");
  EXPECT_EQ(master->target->name(), "Composer");
  const StepInfo* works = nullptr;
  for (const StepInfo& s : spj.steps) {
    if (s.attr == "works") works = &s;
  }
  ASSERT_NE(works, nullptr);
  EXPECT_EQ(works->root, master->out_var);
  EXPECT_TRUE(works->collection);
}

TEST_F(TranslateTest, RecursiveRuleGetsDeltaArc) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p2 = nullptr;
  for (const PredicateNode* p : q.ProducersOf("Influencer")) {
    if (p->inputs.size() == 2) p2 = p;
  }
  ASSERT_NE(p2, nullptr);
  NormalizedSPJ spj = Translate(*p2, q, schema(), ctx_, "Influencer");
  const ArcInfo* self = spj.FindArc("i");
  ASSERT_NE(self, nullptr);
  EXPECT_TRUE(self->is_self_delta);
  // Without self_view, the same arc is a plain derived arc.
  NormalizedSPJ spj2 = Translate(*p2, q, schema(), ctx_);
  EXPECT_FALSE(spj2.FindArc("i")->is_self_delta);
}

TEST_F(TranslateTest, SingleValuedStepsShared) {
  // Two conjuncts over x.master.name and x.master.birthyear share the
  // master step (single-valued factorization).
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"master", "name"}),
                      Expr::Lit(Value::Str("Bach"))))
      .Where(Expr::Cmp(CompareOp::kGt, Expr::Path("x", {"master", "birthyear"}),
                       Expr::Lit(Value::Int(1600))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(schema());
  NormalizedSPJ spj = Translate(q.nodes[0], q, schema(), ctx_);
  EXPECT_EQ(spj.steps.size(), 1u);
  EXPECT_EQ(spj.steps[0].attr, "master");
}

TEST_F(TranslateTest, CollectionStepsNotSharedAcrossConjuncts) {
  // Two existential traversals of works.instruments must stay independent
  // (merging them would require one instrument to be both).
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("harpsichord"))))
      .Where(Expr::Eq(Expr::Path("x", {"works", "instruments", "iname"}),
                      Expr::Lit(Value::Str("flute"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(schema());
  NormalizedSPJ spj = Translate(q.nodes[0], q, schema(), ctx_);
  // 2 occurrences x 2 collection steps each.
  EXPECT_EQ(spj.steps.size(), 4u);
}

TEST_F(TranslateTest, LetsShareDeclaredPrefix) {
  // Figure 2: i1 and i2 root at the same let variable t.
  const QueryGraph q = Fig2Query(schema());
  NormalizedSPJ spj = Translate(q.nodes[0], q, schema(), ctx_);
  // Steps: works (t), instruments (i1), instruments (i2) — 3 steps, with
  // the works step shared through t.
  EXPECT_EQ(spj.steps.size(), 3u);
  const StepInfo* t = spj.FindStepByOut("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->attr, "works");
  int instruments = 0;
  for (const StepInfo& s : spj.steps) {
    if (s.attr == "instruments") {
      ++instruments;
      EXPECT_EQ(s.root, "t");
    }
  }
  EXPECT_EQ(instruments, 2);
}

TEST_F(TranslateTest, TerminalObjectStepsStayInExpressions) {
  // out master: x.master ends on an object: the reference value suffices,
  // no step is introduced.
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p1 = nullptr;
  for (const PredicateNode* p : q.ProducersOf("Influencer")) {
    if (p->inputs.size() == 1) p1 = p;
  }
  NormalizedSPJ spj = Translate(*p1, q, schema(), ctx_);
  EXPECT_TRUE(spj.steps.empty());
  ASSERT_EQ(spj.outs.size(), 3u);
  EXPECT_EQ(spj.outs[0].expr->ToString(), "x.master");
  // Output column classes resolved.
  EXPECT_EQ(spj.out_cols[0].cls->name(), "Composer");
  EXPECT_EQ(spj.out_cols[2].cls, nullptr);  // gen is atomic
}

TEST_F(TranslateTest, JoinConjunctKeptOverReferences) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p2 = nullptr;
  for (const PredicateNode* p : q.ProducersOf("Influencer")) {
    if (p->inputs.size() == 2) p2 = p;
  }
  NormalizedSPJ spj = Translate(*p2, q, schema(), ctx_, "Influencer");
  ASSERT_EQ(spj.conjuncts.size(), 1u);
  EXPECT_EQ(spj.conjuncts[0]->ToString(), "(i.disciple = x.master)");
  EXPECT_TRUE(spj.steps.empty());
}

TEST_F(TranslateTest, RelationArcsGetDottedColumns) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Play", "p")
      .OutPath("who", "p", {"who"});
  const QueryGraph q = b.Build(schema());
  NormalizedSPJ spj = Translate(q.nodes[0], q, schema(), ctx_);
  ASSERT_EQ(spj.arcs.size(), 1u);
  EXPECT_EQ(spj.arcs[0].kind, NameKind::kRelation);
  ASSERT_EQ(spj.arcs[0].view_cols.size(), 2u);
  EXPECT_EQ(spj.arcs[0].view_cols[0].name, "p.who");
  EXPECT_EQ(spj.arcs[0].view_cols[0].cls->name(), "Person");
}

TEST_F(TranslateTest, MethodCallStaysTerminal) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Cmp(CompareOp::kGt, Expr::Path("x", {"master", "age"}),
                       Expr::Lit(Value::Int(300))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.Build(schema());
  NormalizedSPJ spj = Translate(q.nodes[0], q, schema(), ctx_);
  // One step for master; age remains the residual (computed) attribute.
  EXPECT_EQ(spj.steps.size(), 1u);
  EXPECT_NE(spj.conjuncts[0]->ToString().find(".age"), std::string::npos);
}

}  // namespace
}  // namespace rodin
