// Query-graph model tests: validation, recursion detection, bindings, path
// resolution, tree-label derivation (the paper's adornments), and the
// canned paper queries.

#include <gtest/gtest.h>

#include "datagen/music_gen.h"
#include "query/builder.h"
#include "query/paper_queries.h"
#include "query/query_graph.h"
#include "query/tree_label.h"

namespace rodin {
namespace {

class QueryGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MusicConfig config;
    config.num_composers = 20;
    g_ = GenerateMusicDb(config, PaperMusicPhysical());
  }
  const Schema& schema() { return *g_.schema; }
  GeneratedDb g_;
};

TEST_F(QueryGraphTest, Fig3Validates) {
  const QueryGraph q = Fig3Query(schema());
  EXPECT_TRUE(q.Validate(schema()).empty());
  EXPECT_EQ(q.nodes.size(), 3u);
}

TEST_F(QueryGraphTest, RecursionDetection) {
  const QueryGraph q = Fig3Query(schema());
  EXPECT_TRUE(q.IsRecursiveName("Influencer"));
  EXPECT_FALSE(q.IsRecursiveName("Answer"));
  const QueryGraph q2 = Fig2Query(schema());
  EXPECT_FALSE(q2.IsRecursiveName("Answer"));
}

TEST_F(QueryGraphTest, ProducersAndColumns) {
  const QueryGraph q = Fig3Query(schema());
  EXPECT_EQ(q.ProducersOf("Influencer").size(), 2u);
  EXPECT_EQ(q.ProducersOf("Answer").size(), 1u);
  EXPECT_EQ(q.ColumnsOf("Influencer"),
            (std::vector<std::string>{"master", "disciple", "gen"}));
}

TEST_F(QueryGraphTest, ColumnClassResolution) {
  const QueryGraph q = Fig3Query(schema());
  const ClassDef* composer = schema().FindClass("Composer");
  EXPECT_EQ(q.ColumnClass("Influencer", "master", schema()), composer);
  EXPECT_EQ(q.ColumnClass("Influencer", "disciple", schema()), composer);
  EXPECT_EQ(q.ColumnClass("Influencer", "gen", schema()), nullptr);  // atomic
}

TEST_F(QueryGraphTest, BindingsForClassRelationDerivedAndLet) {
  const QueryGraph q2 = Fig2Query(schema());
  const PredicateNode& node = q2.nodes[0];
  const VarBinding x = q2.BindingOf(node, "x", schema());
  EXPECT_EQ(x.kind, NameKind::kClass);
  EXPECT_EQ(x.cls->name(), "Composer");
  // Path variable t over x.works -> Composition.
  const VarBinding t = q2.BindingOf(node, "t", schema());
  EXPECT_EQ(t.kind, NameKind::kClass);
  EXPECT_EQ(t.cls->name(), "Composition");
  // Chained path variable i1 over t.instruments -> Instrument.
  const VarBinding i1 = q2.BindingOf(node, "i1", schema());
  EXPECT_EQ(i1.cls->name(), "Instrument");
}

TEST_F(QueryGraphTest, PathResolution) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p3 = q.ProducersOf("Answer")[0];
  const VarBinding j = q.BindingOf(*p3, "j", schema());
  EXPECT_EQ(j.kind, NameKind::kDerived);

  PathTarget t = q.ResolvePath(
      j, {"master", "works", "instruments", "iname"}, schema());
  EXPECT_TRUE(t.valid);
  EXPECT_TRUE(t.atomic);
  EXPECT_TRUE(t.via_collection);

  t = q.ResolvePath(j, {"master"}, schema());
  EXPECT_TRUE(t.valid);
  EXPECT_EQ(t.cls->name(), "Composer");

  t = q.ResolvePath(j, {"gen", "bogus"}, schema());
  EXPECT_FALSE(t.valid);
}

TEST_F(QueryGraphTest, TreeLabelFactorizesSharedPrefix) {
  // Figure 2: t, i1, i2 share the works prefix; the instruments subtree is
  // shared by i1 and i2 through t.
  const QueryGraph q = Fig2Query(schema());
  const PredicateNode& node = q.nodes[0];
  const TreeLabel label = q.DeriveTreeLabel(node, node.inputs[0]);
  EXPECT_EQ(label.var, "x");
  // Children: works (shared) and name.
  ASSERT_EQ(label.children.size(), 2u);
  const TreeLabel* works = nullptr;
  for (const TreeLabel& c : label.children) {
    if (c.attr == "works") works = &c;
  }
  ASSERT_NE(works, nullptr);
  EXPECT_EQ(works->var, "t");  // the let variable sits at its node
  // works has children: instruments (shared by i1/i2) and title.
  ASSERT_GE(works->children.size(), 2u);
}

TEST_F(QueryGraphTest, TreeLabelMetrics) {
  const QueryGraph q = Fig3Query(schema());
  const PredicateNode* p3 = q.ProducersOf("Answer")[0];
  const TreeLabel label = q.DeriveTreeLabel(*p3, p3->inputs[0]);
  EXPECT_GE(label.NodeCount(), 6u);  // master.works.instruments.iname + gen + disciple.name
  EXPECT_EQ(label.Depth(), 4u);
  EXPECT_FALSE(label.ToString().empty());
}

TEST_F(QueryGraphTest, ValidateCatchesUnboundVariable) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("y", {"name"}), Expr::Lit(Value::Str("a"))))
      .OutPath("n", "x", {"name"});
  const QueryGraph q = b.BuildUnchecked();
  const std::vector<std::string> errors = q.Validate(schema());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("unbound"), std::string::npos);
}

TEST_F(QueryGraphTest, ValidateCatchesBadAttribute) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Where(Expr::Eq(Expr::Path("x", {"nonexistent"}),
                      Expr::Lit(Value::Str("a"))))
      .OutPath("n", "x", {"name"});
  EXPECT_FALSE(b.BuildUnchecked().Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ValidateCatchesPathPastAtomic) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .OutPath("n", "x", {"name", "oops"});
  EXPECT_FALSE(b.BuildUnchecked().Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ValidateCatchesMissingAnswer) {
  QueryGraphBuilder b;
  b.Node("NotAnswer").Input("Composer", "x").OutPath("n", "x", {"name"});
  const QueryGraph q = b.BuildUnchecked();
  EXPECT_FALSE(q.Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ValidateCatchesDuplicateVars) {
  QueryGraphBuilder b;
  b.Node("Answer")
      .Input("Composer", "x")
      .Input("Composer", "x")
      .OutPath("n", "x", {"name"});
  EXPECT_FALSE(b.BuildUnchecked().Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ValidateCatchesBadLet) {
  QueryGraphBuilder b;
  // Let ending on an atomic attribute.
  b.Node("Answer")
      .Input("Composer", "x")
      .Let("t", "x", {"name"})
      .OutPath("n", "x", {"name"});
  EXPECT_FALSE(b.BuildUnchecked().Validate(schema()).empty());

  QueryGraphBuilder b2;
  // Let with undeclared root.
  b2.Node("Answer")
      .Input("Composer", "x")
      .Let("t", "zzz", {"works"})
      .OutPath("n", "x", {"name"});
  EXPECT_FALSE(b2.BuildUnchecked().Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ValidateCatchesColumnDisagreement) {
  QueryGraphBuilder b;
  b.Node("V").Input("Composer", "x").OutPath("a", "x", {"name"});
  b.Node("V").Input("Composer", "y").OutPath("b", "y", {"name"});
  b.Node("Answer").Input("V", "v").OutPath("a", "v", {"a"});
  EXPECT_FALSE(b.BuildUnchecked().Validate(schema()).empty());
}

TEST_F(QueryGraphTest, ToStringMatchesPaperNotation) {
  const QueryGraph q = Fig3Query(schema());
  const std::string s = q.ToString();
  EXPECT_NE(s.find("Influencer <- SPJ"), std::string::npos);
  EXPECT_NE(s.find("(Composer, x)"), std::string::npos);
  EXPECT_NE(s.find("(i.gen + 1)"), std::string::npos);
}

TEST(TreeLabelTest, BuildMergesPrefixes) {
  const TreeLabel t = BuildTreeLabel(
      "x", {{"a", "b"}, {"a", "c"}, {"d"}});
  EXPECT_EQ(t.var, "x");
  ASSERT_EQ(t.children.size(), 2u);  // a and d
  EXPECT_EQ(t.children[0].attr, "a");
  EXPECT_EQ(t.children[0].children.size(), 2u);  // b, c share prefix a
  EXPECT_EQ(t.NodeCount(), 5u);
}

TEST(TreeLabelTest, EmptyPathsGiveBareRoot) {
  const TreeLabel t = BuildTreeLabel("x", {});
  EXPECT_EQ(t.NodeCount(), 1u);
  EXPECT_EQ(t.Depth(), 0u);
  EXPECT_EQ(t.ToString(), "x");
}

}  // namespace
}  // namespace rodin
