#include <gtest/gtest.h>

#include "storage/value.h"

namespace rodin {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  const Oid oid{3, 7};
  EXPECT_EQ(Value::Ref(oid).AsRef(), oid);
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NumericCrossKindHashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // Kind rank orders values of distinct kinds deterministically.
  const Value null = Value::Null();
  const Value b = Value::Bool(false);
  const Value s = Value::Str("x");
  EXPECT_LT(null.Compare(b), 0);
  EXPECT_LT(b.Compare(s), 0);
  EXPECT_EQ(null.Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("abc"), Value::Str("abc"));
  EXPECT_NE(Value::Str("abc"), Value::Str("ABC"));
}

TEST(ValueTest, OidOrdering) {
  EXPECT_LT(Value::Ref({1, 5}).Compare(Value::Ref({2, 0})), 0);
  EXPECT_LT(Value::Ref({1, 5}).Compare(Value::Ref({1, 6})), 0);
  EXPECT_EQ(Value::Ref({1, 5}), Value::Ref({1, 5}));
}

TEST(ValueTest, SetsDedupAndSort) {
  const Value s = Value::MakeSet(
      {Value::Int(3), Value::Int(1), Value::Int(3), Value::Int(2)});
  const Collection& c = s.AsCollection();
  ASSERT_EQ(c.elems.size(), 3u);
  EXPECT_EQ(c.elems[0].AsInt(), 1);
  EXPECT_EQ(c.elems[1].AsInt(), 2);
  EXPECT_EQ(c.elems[2].AsInt(), 3);
}

TEST(ValueTest, SetEqualityIsOrderInsensitive) {
  const Value a = Value::MakeSet({Value::Int(1), Value::Int(2)});
  const Value b = Value::MakeSet({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, ListsKeepOrderAndDuplicates) {
  const Value l = Value::MakeList({Value::Int(2), Value::Int(1), Value::Int(2)});
  ASSERT_EQ(l.AsCollection().elems.size(), 3u);
  EXPECT_EQ(l.AsCollection().elems[0].AsInt(), 2);
  const Value l2 =
      Value::MakeList({Value::Int(1), Value::Int(2), Value::Int(2)});
  EXPECT_NE(l, l2);
}

TEST(ValueTest, ListAndSetAreDistinctKinds) {
  const Value s = Value::MakeSet({Value::Int(1)});
  const Value l = Value::MakeList({Value::Int(1)});
  EXPECT_NE(s, l);
}

TEST(ValueTest, NestedCollections) {
  const Value inner = Value::MakeTuple({Value::Int(1), Value::Str("a")});
  const Value outer = Value::MakeSet({inner, inner});
  EXPECT_EQ(outer.AsCollection().elems.size(), 1u);  // dedup of equal tuples
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Str("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::MakeSet({Value::Int(2), Value::Int(1)}).ToString(),
            "{1, 2}");
  EXPECT_EQ(Value::MakeList({Value::Int(1)}).ToString(), "<1>");
  EXPECT_EQ(Value::MakeTuple({Value::Int(1)}).ToString(), "[1]");
}

TEST(ValueTest, CopiesAreCheapAndIndependent) {
  Value a = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value b = a;  // shares the collection
  EXPECT_EQ(a, b);
}

TEST(ValueDeathTest, AccessorKindMismatchAborts) {
  EXPECT_DEATH(Value::Int(1).AsString(), "not a string");
  EXPECT_DEATH(Value::Str("x").AsInt(), "not an int");
  EXPECT_DEATH(Value::Null().AsRef(), "not an object");
}

}  // namespace
}  // namespace rodin
