#include "datagen/parts_gen.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace rodin {

PhysicalConfig DefaultPartsPhysical() {
  PhysicalConfig config;
  config.buffer_pages = 128;
  config.sel_indexes.push_back(SelIndexSpec{"Part", "pname"});
  return config;
}

GeneratedDb GeneratePartsDb(const PartsConfig& config,
                            const PhysicalConfig& physical) {
  RODIN_CHECK(config.parts_per_level > 0 && config.num_levels > 0,
              "empty parts DB");
  RODIN_CHECK(config.subparts_min <= config.subparts_max, "bad subparts range");

  GeneratedDb out;
  out.schema = std::make_unique<Schema>();
  Schema& schema = *out.schema;
  TypePool& types = schema.types();

  ClassDef* part = schema.AddClass("Part");
  schema.AddAttribute(part, {"pname", types.String(), false, 0, "", ""});
  schema.AddAttribute(part, {"vendor", types.String(), false, 0, "", ""});
  schema.AddAttribute(part, {"mass", types.Double(), false, 0, "", ""});
  schema.AddAttribute(part, {"unit_cost", types.Int(), false, 0, "", ""});
  schema.AddAttribute(part,
                      {"subparts", types.Set(types.Object("Part")), false, 0,
                       "", ""});
  // Example method: cost of the part itself plus its direct sub-parts.
  schema.AddAttribute(part, {"assembly_cost", types.Int(), true, 5.0, "", ""});

  out.db = std::make_unique<Database>(out.schema.get());
  Database& db = *out.db;
  Rng rng(config.seed);

  // Create level by level, leaves first, so subparts reference level L+1.
  std::vector<std::vector<Oid>> levels(config.num_levels);
  for (uint32_t lvl = config.num_levels; lvl-- > 0;) {
    for (uint32_t i = 0; i < config.parts_per_level; ++i) {
      Oid oid = db.NewObject("Part");
      db.Set(oid, "pname", Value::Str(StrFormat("part_L%u_%u", lvl, i)));
      db.Set(oid, "vendor",
             Value::Str(StrFormat("vendor_%llu",
                                  static_cast<unsigned long long>(
                                      rng.Below(config.num_vendors)))));
      db.Set(oid, "mass", Value::Real(0.1 + rng.NextDouble() * 10));
      db.Set(oid, "unit_cost", Value::Int(rng.Range(1, 1000)));
      if (lvl + 1 < config.num_levels) {
        const std::vector<Oid>& below = levels[lvl + 1];
        const uint32_t n = static_cast<uint32_t>(
            rng.Range(config.subparts_min, config.subparts_max));
        std::vector<Value> subs;
        for (uint32_t s = 0; s < n; ++s) {
          subs.push_back(Value::Ref(below[rng.Below(below.size())]));
        }
        db.Set(oid, "subparts", Value::MakeSet(std::move(subs)));
      } else {
        db.Set(oid, "subparts", Value::MakeSet({}));
      }
      levels[lvl].push_back(oid);
    }
  }

  db.RegisterMethod("Part", "assembly_cost", [](const Database& d, Oid oid) {
    int64_t total = d.GetRaw(oid, "unit_cost").AsInt();
    const Value subs = d.GetRaw(oid, "subparts");
    if (subs.is_collection()) {
      for (const Value& s : subs.AsCollection().elems) {
        if (s.is_ref()) total += d.GetRaw(s.AsRef(), "unit_cost").AsInt();
      }
    }
    return Value::Int(total);
  });

  out.db->Finalize(physical);
  return out;
}

}  // namespace rodin
