#ifndef RODIN_DATAGEN_PARTS_GEN_H_
#define RODIN_DATAGEN_PARTS_GEN_H_

#include <cstdint>

#include "datagen/generated_db.h"
#include "storage/physical_schema.h"

namespace rodin {

/// Engineering-database workload from the paper's motivation (§1, [CS90]):
/// parts connected (recursively) to sub-parts. The assembly graph is a DAG:
/// parts at level L reference parts at level L+1, with sharing.
struct PartsConfig {
  uint64_t seed = 7;

  /// Parts per assembly level; total parts = parts_per_level * num_levels.
  uint32_t parts_per_level = 100;
  uint32_t num_levels = 6;

  /// Sub-parts referenced by each non-leaf part.
  uint32_t subparts_min = 2;
  uint32_t subparts_max = 5;

  /// Distinct vendor names (selectivity of vendor predicates).
  uint32_t num_vendors = 20;
};

/// Default physical design: selection index on Part.pname.
PhysicalConfig DefaultPartsPhysical();

/// Builds the Part class: pname, vendor, mass, unit_cost, and
/// subparts: {Part}; plus a computed attribute `assembly_cost`.
GeneratedDb GeneratePartsDb(const PartsConfig& config,
                            const PhysicalConfig& physical);

}  // namespace rodin

#endif  // RODIN_DATAGEN_PARTS_GEN_H_
