#ifndef RODIN_DATAGEN_GENERATED_DB_H_
#define RODIN_DATAGEN_GENERATED_DB_H_

#include <memory>

#include "catalog/schema.h"
#include "storage/database.h"

namespace rodin {

/// A generated schema plus its populated, finalized database. The schema is
/// owned here because Database keeps a non-owning pointer to it.
struct GeneratedDb {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> db;
};

}  // namespace rodin

#endif  // RODIN_DATAGEN_GENERATED_DB_H_
