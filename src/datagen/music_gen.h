#ifndef RODIN_DATAGEN_MUSIC_GEN_H_
#define RODIN_DATAGEN_MUSIC_GEN_H_

#include <cstdint>
#include <string>

#include "datagen/generated_db.h"
#include "storage/physical_schema.h"

namespace rodin {

/// Parameters for the paper's running-example database (Figure 1): Person /
/// Composer / Composition / Instrument plus the Play relation, with
/// composers arranged in master-lineages so the Influencer view has a
/// controlled recursion depth.
struct MusicConfig {
  uint64_t seed = 42;

  uint32_t num_composers = 200;
  uint32_t num_instruments = 30;

  /// Composers are partitioned into lineages; within a lineage, composer i's
  /// `master` is composer i-1. Lineage length == Influencer recursion depth.
  uint32_t lineage_depth = 8;

  uint32_t works_per_composer_min = 3;
  uint32_t works_per_composer_max = 8;
  uint32_t instruments_per_work_min = 1;
  uint32_t instruments_per_work_max = 4;

  /// Fraction of works that include the harpsichord (instrument 0) — the
  /// selectivity of the paper's i = "harpsichord" predicate.
  double harpsichord_fraction = 0.15;

  /// Number of Play tuples (who, instrument).
  uint32_t num_plays = 300;
};

/// Physical design used throughout the paper's example (§3, §4.6): a path
/// index on Composer.works.instruments, nothing else; clustering off.
PhysicalConfig PaperMusicPhysical();

/// Builds and finalizes the music database. The composer named "Bach" is
/// the last composer of lineage 0 (so its master-chain is maximal).
GeneratedDb GenerateMusicDb(const MusicConfig& config,
                            const PhysicalConfig& physical);

}  // namespace rodin

#endif  // RODIN_DATAGEN_MUSIC_GEN_H_
