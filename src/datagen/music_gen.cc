#include "datagen/music_gen.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace rodin {

PhysicalConfig PaperMusicPhysical() {
  PhysicalConfig config;
  config.buffer_pages = 128;
  config.path_indexes.push_back(
      PathIndexSpec{"Composer", {"works", "instruments"}});
  return config;
}

GeneratedDb GenerateMusicDb(const MusicConfig& config,
                            const PhysicalConfig& physical) {
  RODIN_CHECK(config.num_composers > 0, "need composers");
  RODIN_CHECK(config.num_instruments > 0, "need instruments");
  RODIN_CHECK(config.lineage_depth > 0, "need lineage depth");
  RODIN_CHECK(config.works_per_composer_min <= config.works_per_composer_max,
              "bad works range");
  RODIN_CHECK(
      config.instruments_per_work_min <= config.instruments_per_work_max,
      "bad instruments range");

  GeneratedDb out;
  out.schema = std::make_unique<Schema>();
  Schema& schema = *out.schema;
  TypePool& types = schema.types();

  // --- Conceptual schema of Figure 1 ---------------------------------------
  ClassDef* person = schema.AddClass("Person");
  schema.AddAttribute(person, {"name", types.String(), false, 0, "", ""});
  schema.AddAttribute(person, {"birthyear", types.Int(), false, 0, "", ""});
  // `age` is the paper's example of a method seen as a computed attribute.
  schema.AddAttribute(person, {"age", types.Int(), true, 2.0, "", ""});

  ClassDef* instrument = schema.AddClass("Instrument");
  schema.AddAttribute(instrument, {"iname", types.String(), false, 0, "", ""});
  schema.AddAttribute(instrument, {"family", types.String(), false, 0, "", ""});

  ClassDef* composer = schema.AddClass("Composer", "Person");
  ClassDef* composition = schema.AddClass("Composition");
  schema.AddAttribute(composer,
                      {"master", types.Object("Composer"), false, 0, "", ""});
  schema.AddAttribute(
      composer, {"works", types.Set(types.Object("Composition")), false, 0,
                 "Composition", "author"});
  schema.AddAttribute(composition, {"title", types.String(), false, 0, "", ""});
  schema.AddAttribute(composition, {"author", types.Object("Composer"), false,
                                    0, "Composer", "works"});
  schema.AddAttribute(
      composition,
      {"instruments", types.Set(types.Object("Instrument")), false, 0, "", ""});

  schema.AddRelation("Play", {{"who", types.Object("Person")},
                              {"instrument", types.Object("Instrument")}});

  RODIN_CHECK(schema.ValidateInverses().empty(), "inverse declarations broken");

  out.db = std::make_unique<Database>(out.schema.get());
  Database& db = *out.db;
  Rng rng(config.seed);

  // --- Instruments ----------------------------------------------------------
  static const char* kNames[] = {"harpsichord", "flute",    "violin",
                                 "cello",       "oboe",     "organ",
                                 "viola",       "trumpet",  "horn",
                                 "bassoon",     "timpani",  "lute"};
  static const char* kFamilies[] = {"keyboard", "wind", "string", "brass",
                                    "percussion"};
  std::vector<Oid> instruments;
  for (uint32_t i = 0; i < config.num_instruments; ++i) {
    Oid oid = db.NewObject("Instrument");
    const std::string name =
        i < 12 ? kNames[i] : StrFormat("instrument_%u", i);
    db.Set(oid, "iname", Value::Str(name));
    db.Set(oid, "family", Value::Str(kFamilies[i % 5]));
    instruments.push_back(oid);
  }
  const Oid harpsichord = instruments[0];

  // --- Composers in master-lineages ----------------------------------------
  std::vector<Oid> composers;
  for (uint32_t i = 0; i < config.num_composers; ++i) {
    composers.push_back(db.NewObject("Composer"));
  }
  for (uint32_t i = 0; i < config.num_composers; ++i) {
    const uint32_t pos_in_lineage = i % config.lineage_depth;
    std::string name = StrFormat("composer_%u", i);
    // Bach closes lineage 0: the deepest composer of the first lineage, so
    // the Fig. 3 query has a full master-chain above him.
    if (i == config.lineage_depth - 1) name = "Bach";
    db.Set(composers[i], "name", Value::Str(name));
    db.Set(composers[i], "birthyear",
           Value::Int(1600 + static_cast<int64_t>(rng.Below(150))));
    if (pos_in_lineage > 0) {
      db.Set(composers[i], "master", Value::Ref(composers[i - 1]));
    }
  }

  // --- Works ----------------------------------------------------------------
  uint32_t title_counter = 0;
  for (Oid c : composers) {
    const uint32_t nworks = static_cast<uint32_t>(
        rng.Range(config.works_per_composer_min, config.works_per_composer_max));
    std::vector<Value> works;
    for (uint32_t w = 0; w < nworks; ++w) {
      Oid comp = db.NewObject("Composition");
      db.Set(comp, "title", Value::Str(StrFormat("work_%u", title_counter++)));
      db.Set(comp, "author", Value::Ref(c));
      const uint32_t ninstr = static_cast<uint32_t>(rng.Range(
          config.instruments_per_work_min, config.instruments_per_work_max));
      std::vector<Value> instrs;
      const bool with_harpsichord = rng.Chance(config.harpsichord_fraction);
      if (with_harpsichord) instrs.push_back(Value::Ref(harpsichord));
      while (instrs.size() < ninstr) {
        // Draw from index 1 upward so harpsichord appearance is controlled
        // solely by harpsichord_fraction (unless it is the only instrument).
        const uint64_t pick =
            instruments.size() == 1 ? 0 : 1 + rng.Below(instruments.size() - 1);
        instrs.push_back(Value::Ref(instruments[pick]));
      }
      db.Set(comp, "instruments", Value::MakeSet(std::move(instrs)));
      works.push_back(Value::Ref(comp));
    }
    db.Set(c, "works", Value::MakeSet(std::move(works)));
  }

  // --- Play relation ---------------------------------------------------------
  for (uint32_t i = 0; i < config.num_plays; ++i) {
    const Oid who = composers[rng.Below(composers.size())];
    const Oid instr = instruments[rng.Below(instruments.size())];
    db.InsertTuple("Play", {Value::Ref(who), Value::Ref(instr)});
  }

  // --- Methods ----------------------------------------------------------------
  db.RegisterMethod("Person", "age", [](const Database& d, Oid oid) {
    const Value birth = d.GetRaw(oid, "birthyear");
    if (birth.is_null()) return Value::Null();
    return Value::Int(1992 - birth.AsInt());  // the paper's present day
  });

  out.db->Finalize(physical);
  return out;
}

}  // namespace rodin
