#ifndef RODIN_DATAGEN_GRAPH_GEN_H_
#define RODIN_DATAGEN_GRAPH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generated_db.h"
#include "storage/physical_schema.h"

namespace rodin {

/// Fully parameterized recursion substrate for the crossover sweeps (E6):
/// `Node` objects form parent-chains of exact depth `chain_depth` (the
/// recursion depth of a transitive closure over `parent`), and each Node is
/// the head of an auxiliary reference path of length `path_len`
/// (hop1.hop2...label) whose terminal label is drawn from `num_labels`
/// distinct values — so the selectivity of `label == "label_0"` is exactly
/// 1 / num_labels and the cost of evaluating it inside the recursion grows
/// with `path_len`.
struct GraphConfig {
  uint64_t seed = 11;

  uint32_t num_nodes = 1024;
  uint32_t chain_depth = 16;

  /// Object-hops between a Node and the selectable label: 0 puts `label`
  /// directly on Node; k > 0 adds classes Aux1..Auxk.
  uint32_t path_len = 2;

  uint32_t num_labels = 10;

  /// Elements in each set-valued hop (1 = single reference).
  uint32_t hop_fanout = 1;
};

/// The attribute path from Node to the label, e.g. {"hop1","hop2"}; empty
/// when path_len == 0. The terminal atomic attribute is always "label" and
/// lives on the last class of the path.
std::vector<std::string> GraphSelectionPath(const GraphConfig& config);

/// Default physical design: no indices, no clustering.
PhysicalConfig DefaultGraphPhysical();

GeneratedDb GenerateGraphDb(const GraphConfig& config,
                            const PhysicalConfig& physical);

}  // namespace rodin

#endif  // RODIN_DATAGEN_GRAPH_GEN_H_
