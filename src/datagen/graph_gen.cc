#include "datagen/graph_gen.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace rodin {

std::vector<std::string> GraphSelectionPath(const GraphConfig& config) {
  std::vector<std::string> path;
  for (uint32_t i = 1; i <= config.path_len; ++i) {
    path.push_back(StrFormat("hop%u", i));
  }
  return path;
}

PhysicalConfig DefaultGraphPhysical() {
  PhysicalConfig config;
  config.buffer_pages = 128;
  return config;
}

GeneratedDb GenerateGraphDb(const GraphConfig& config,
                            const PhysicalConfig& physical) {
  RODIN_CHECK(config.num_nodes > 0, "empty graph");
  RODIN_CHECK(config.chain_depth > 0, "chain depth must be positive");
  RODIN_CHECK(config.num_labels > 0, "need labels");
  RODIN_CHECK(config.hop_fanout > 0, "hop fanout must be positive");

  GeneratedDb out;
  out.schema = std::make_unique<Schema>();
  Schema& schema = *out.schema;
  TypePool& types = schema.types();

  // Aux classes first (referenced bottom-up): Auxk holds `label`; Auxi
  // holds hop(i+1): Aux(i+1).
  for (uint32_t i = config.path_len; i >= 1; --i) {
    ClassDef* aux = schema.AddClass(StrFormat("Aux%u", i));
    if (i == config.path_len) {
      schema.AddAttribute(aux, {"label", types.String(), false, 0, "", ""});
    } else {
      const std::string next = StrFormat("Aux%u", i + 1);
      const Type* t = config.hop_fanout == 1
                          ? types.Object(next)
                          : types.Set(types.Object(next));
      schema.AddAttribute(aux, {StrFormat("hop%u", i + 1), t, false, 0, "", ""});
    }
    schema.AddAttribute(aux, {"payload", types.Int(), false, 0, "", ""});
  }

  ClassDef* node = schema.AddClass("Node");
  schema.AddAttribute(node, {"nname", types.String(), false, 0, "", ""});
  schema.AddAttribute(node, {"weight", types.Int(), false, 0, "", ""});
  schema.AddAttribute(node, {"parent", types.Object("Node"), false, 0, "", ""});
  if (config.path_len == 0) {
    schema.AddAttribute(node, {"label", types.String(), false, 0, "", ""});
  } else {
    const Type* t = config.hop_fanout == 1
                        ? types.Object("Aux1")
                        : types.Set(types.Object("Aux1"));
    schema.AddAttribute(node, {"hop1", t, false, 0, "", ""});
  }

  out.db = std::make_unique<Database>(out.schema.get());
  Database& db = *out.db;
  Rng rng(config.seed);

  auto label_value = [&]() {
    return Value::Str(StrFormat(
        "label_%llu", static_cast<unsigned long long>(rng.Below(config.num_labels))));
  };

  // Builds one aux chain starting at Aux(depth); returns its head oid.
  std::function<Oid(uint32_t)> make_aux = [&](uint32_t depth) -> Oid {
    Oid oid = db.NewObject(StrFormat("Aux%u", depth));
    db.Set(oid, "payload", Value::Int(rng.Range(0, 1000)));
    if (depth == config.path_len) {
      db.Set(oid, "label", label_value());
    } else {
      if (config.hop_fanout == 1) {
        db.Set(oid, StrFormat("hop%u", depth + 1),
               Value::Ref(make_aux(depth + 1)));
      } else {
        std::vector<Value> refs;
        for (uint32_t f = 0; f < config.hop_fanout; ++f) {
          refs.push_back(Value::Ref(make_aux(depth + 1)));
        }
        db.Set(oid, StrFormat("hop%u", depth + 1),
               Value::MakeSet(std::move(refs)));
      }
    }
    return oid;
  };

  std::vector<Oid> nodes;
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    nodes.push_back(db.NewObject("Node"));
  }
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    db.Set(nodes[i], "nname", Value::Str(StrFormat("node_%u", i)));
    db.Set(nodes[i], "weight", Value::Int(rng.Range(0, 1000)));
    if (i % config.chain_depth != 0) {
      db.Set(nodes[i], "parent", Value::Ref(nodes[i - 1]));
    }
    if (config.path_len == 0) {
      db.Set(nodes[i], "label", label_value());
    } else {
      if (config.hop_fanout == 1) {
        db.Set(nodes[i], "hop1", Value::Ref(make_aux(1)));
      } else {
        std::vector<Value> refs;
        for (uint32_t f = 0; f < config.hop_fanout; ++f) {
          refs.push_back(Value::Ref(make_aux(1)));
        }
        db.Set(nodes[i], "hop1", Value::MakeSet(std::move(refs)));
      }
    }
  }

  out.db->Finalize(physical);
  return out;
}

}  // namespace rodin
