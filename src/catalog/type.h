#ifndef RODIN_CATALOG_TYPE_H_
#define RODIN_CATALOG_TYPE_H_

#include <memory>
#include <string>
#include <vector>

namespace rodin {

/// Kinds of conceptual types (paper §2.1): atomic types plus the tuple `[]`,
/// set `{}` and list `<>` constructors, and references to class instances.
enum class TypeKind {
  kInt,
  kDouble,
  kString,
  kBool,
  kObject,  // reference to an instance of a named class
  kSet,     // { elem }
  kList,    // < elem >
  kTuple,   // [ field: type, ... ]
};

/// Returns a short printable name ("int", "set", ...).
const char* TypeKindName(TypeKind kind);

/// An immutable conceptual type. Instances are interned by `TypePool`, so
/// `const Type*` identity comparison is meaningful for atomic and object
/// types created through the same pool.
class Type {
 public:
  struct Field {
    std::string name;
    const Type* type;
  };

  TypeKind kind() const { return kind_; }
  bool IsAtomic() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kDouble ||
           kind_ == TypeKind::kString || kind_ == TypeKind::kBool;
  }
  bool IsCollection() const {
    return kind_ == TypeKind::kSet || kind_ == TypeKind::kList;
  }

  /// Class name for kObject types; empty otherwise.
  const std::string& class_name() const { return class_name_; }

  /// Element type for kSet / kList; nullptr otherwise.
  const Type* elem() const { return elem_; }

  /// Fields for kTuple; empty otherwise.
  const std::vector<Field>& fields() const { return fields_; }

  /// Looks up a tuple field by name; nullptr if absent or not a tuple.
  const Type* FieldType(const std::string& name) const;

  /// Human-readable rendering, e.g. "{Instrument}" or "[who: Person, ...]".
  std::string ToString() const;

 private:
  friend class TypePool;
  Type(TypeKind kind, std::string class_name, const Type* elem,
       std::vector<Field> fields)
      : kind_(kind),
        class_name_(std::move(class_name)),
        elem_(elem),
        fields_(std::move(fields)) {}

  TypeKind kind_;
  std::string class_name_;
  const Type* elem_;
  std::vector<Field> fields_;
};

/// Owns and interns Type instances. One pool per Schema.
class TypePool {
 public:
  TypePool();
  TypePool(const TypePool&) = delete;
  TypePool& operator=(const TypePool&) = delete;

  const Type* Int() const { return int_; }
  const Type* Double() const { return double_; }
  const Type* String() const { return string_; }
  const Type* Bool() const { return bool_; }

  /// Reference type to instances of `class_name` (interned by name).
  const Type* Object(const std::string& class_name);

  const Type* Set(const Type* elem);
  const Type* List(const Type* elem);
  const Type* Tuple(std::vector<Type::Field> fields);

 private:
  const Type* Intern(Type t);

  std::vector<std::unique_ptr<Type>> types_;
  const Type* int_;
  const Type* double_;
  const Type* string_;
  const Type* bool_;
};

}  // namespace rodin

#endif  // RODIN_CATALOG_TYPE_H_
