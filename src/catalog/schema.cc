#include "catalog/schema.h"

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

std::vector<Attribute> ClassDef::AllAttributes() const {
  std::vector<Attribute> out;
  if (super_ != nullptr) out = super_->AllAttributes();
  out.insert(out.end(), own_attrs_.begin(), own_attrs_.end());
  return out;
}

const Attribute* ClassDef::FindAttribute(const std::string& name) const {
  for (const Attribute& a : own_attrs_) {
    if (a.name == name) return &a;
  }
  if (super_ != nullptr) return super_->FindAttribute(name);
  return nullptr;
}

int ClassDef::AttributeIndex(const std::string& name) const {
  const std::vector<Attribute> all = AllAttributes();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const Attribute* RelationDef::FindAttribute(const std::string& name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

int RelationDef::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

ClassDef* Schema::AddClass(const std::string& name,
                           const std::string& super_name) {
  RODIN_CHECK(FindClass(name) == nullptr, "duplicate class name");
  RODIN_CHECK(FindRelation(name) == nullptr, "class name collides with relation");
  const ClassDef* super = nullptr;
  if (!super_name.empty()) {
    super = FindClass(super_name);
    RODIN_CHECK(super != nullptr, "superclass does not exist");
  }
  const uint32_t id = static_cast<uint32_t>(classes_.size());
  classes_.push_back(
      std::unique_ptr<ClassDef>(new ClassDef(name, id, super)));
  return classes_.back().get();
}

void Schema::AddAttribute(ClassDef* cls, Attribute attr) {
  RODIN_CHECK(cls != nullptr, "null class");
  RODIN_CHECK(attr.type != nullptr, "attribute needs a type");
  RODIN_CHECK(cls->FindAttribute(attr.name) == nullptr,
              "attribute name collides with own or inherited attribute");
  cls->own_attrs_.push_back(std::move(attr));
}

RelationDef* Schema::AddRelation(const std::string& name,
                                 std::vector<Type::Field> fields) {
  RODIN_CHECK(FindRelation(name) == nullptr, "duplicate relation name");
  RODIN_CHECK(FindClass(name) == nullptr, "relation name collides with class");
  std::vector<Attribute> attrs;
  attrs.reserve(fields.size());
  for (const Type::Field& f : fields) {
    Attribute a;
    a.name = f.name;
    a.type = f.type;
    attrs.push_back(std::move(a));
  }
  const Type* tuple = types_.Tuple(std::move(fields));
  const uint32_t id = static_cast<uint32_t>(relations_.size());
  relations_.push_back(std::unique_ptr<RelationDef>(
      new RelationDef(name, id, tuple, std::move(attrs))));
  return relations_.back().get();
}

const ClassDef* Schema::FindClass(const std::string& name) const {
  for (const auto& c : classes_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

ClassDef* Schema::FindClass(const std::string& name) {
  for (const auto& c : classes_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const RelationDef* Schema::FindRelation(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

bool Schema::IsSubclassOf(const ClassDef* sub, const ClassDef* ancestor) const {
  for (const ClassDef* c = sub; c != nullptr; c = c->super()) {
    if (c == ancestor) return true;
  }
  return false;
}

std::vector<const ClassDef*> Schema::ConcreteClassesOf(
    const ClassDef* cls) const {
  std::vector<const ClassDef*> out;
  for (const auto& c : classes_) {
    if (IsSubclassOf(c.get(), cls)) out.push_back(c.get());
  }
  return out;
}

bool Schema::FindInverse(const ClassDef* cls, const std::string& attr,
                         const ClassDef** inverse_cls,
                         std::string* inverse_attr) const {
  const Attribute* a = cls->FindAttribute(attr);
  if (a == nullptr) return false;
  // Declared on this side.
  if (!a->inverse_class.empty()) {
    const ClassDef* other = FindClass(a->inverse_class);
    if (other != nullptr && other->FindAttribute(a->inverse_attr) != nullptr) {
      *inverse_cls = other;
      *inverse_attr = a->inverse_attr;
      return true;
    }
  }
  // Declared on the other side: some class's attribute names (cls, attr)
  // as its inverse.
  for (const auto& other : classes_) {
    for (const Attribute& oa : other->own_attributes()) {
      if (oa.inverse_attr != attr) continue;
      const ClassDef* named = FindClass(oa.inverse_class);
      if (named == nullptr || !IsSubclassOf(cls, named)) continue;
      *inverse_cls = other.get();
      *inverse_attr = oa.name;
      return true;
    }
  }
  return false;
}

const ClassDef* Schema::ClassById(uint32_t id) const {
  RODIN_CHECK(id < classes_.size(), "class id out of range");
  return classes_[id].get();
}

std::vector<std::string> Schema::ValidateInverses() const {
  std::vector<std::string> errors;
  for (const auto& c : classes_) {
    for (const Attribute& a : c->own_attributes()) {
      if (a.inverse_class.empty()) continue;
      const ClassDef* other = FindClass(a.inverse_class);
      if (other == nullptr) {
        errors.push_back(StrFormat("%s.%s: inverse class %s does not exist",
                                   c->name().c_str(), a.name.c_str(),
                                   a.inverse_class.c_str()));
        continue;
      }
      const Attribute* back = other->FindAttribute(a.inverse_attr);
      if (back == nullptr) {
        errors.push_back(StrFormat(
            "%s.%s: inverse attribute %s.%s does not exist", c->name().c_str(),
            a.name.c_str(), a.inverse_class.c_str(), a.inverse_attr.c_str()));
        continue;
      }
      // The inverse must be declared symmetrically when present on the other
      // side, and must reference (a collection of) this class.
      if (!back->inverse_class.empty() &&
          (back->inverse_class != c->name() || back->inverse_attr != a.name)) {
        errors.push_back(StrFormat(
            "%s.%s and %s.%s declare mismatched inverses", c->name().c_str(),
            a.name.c_str(), a.inverse_class.c_str(), a.inverse_attr.c_str()));
      }
      const Type* bt = back->type;
      if (bt->IsCollection()) bt = bt->elem();
      if (bt->kind() != TypeKind::kObject ||
          FindClass(bt->class_name()) == nullptr ||
          !IsSubclassOf(c.get(), FindClass(bt->class_name()))) {
        errors.push_back(StrFormat(
            "%s.%s: inverse %s.%s does not reference back to %s",
            c->name().c_str(), a.name.c_str(), a.inverse_class.c_str(),
            a.inverse_attr.c_str(), c->name().c_str()));
      }
    }
  }
  return errors;
}

}  // namespace rodin
