#include "catalog/type.h"

#include "common/check.h"

namespace rodin {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt:
      return "int";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kObject:
      return "object";
    case TypeKind::kSet:
      return "set";
    case TypeKind::kList:
      return "list";
    case TypeKind::kTuple:
      return "tuple";
  }
  return "?";
}

const Type* Type::FieldType(const std::string& name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return f.type;
  }
  return nullptr;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kString:
    case TypeKind::kBool:
      return TypeKindName(kind_);
    case TypeKind::kObject:
      return class_name_;
    case TypeKind::kSet:
      return "{" + elem_->ToString() + "}";
    case TypeKind::kList:
      return "<" + elem_->ToString() + ">";
    case TypeKind::kTuple: {
      std::string out = "[";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].name + ": " + fields_[i].type->ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

TypePool::TypePool() {
  int_ = Intern(Type(TypeKind::kInt, "", nullptr, {}));
  double_ = Intern(Type(TypeKind::kDouble, "", nullptr, {}));
  string_ = Intern(Type(TypeKind::kString, "", nullptr, {}));
  bool_ = Intern(Type(TypeKind::kBool, "", nullptr, {}));
}

const Type* TypePool::Intern(Type t) {
  types_.push_back(std::unique_ptr<Type>(new Type(std::move(t))));
  return types_.back().get();
}

const Type* TypePool::Object(const std::string& class_name) {
  RODIN_CHECK(!class_name.empty(), "object type needs a class name");
  for (const auto& t : types_) {
    if (t->kind() == TypeKind::kObject && t->class_name() == class_name) {
      return t.get();
    }
  }
  return Intern(Type(TypeKind::kObject, class_name, nullptr, {}));
}

const Type* TypePool::Set(const Type* elem) {
  RODIN_CHECK(elem != nullptr, "set element type is null");
  for (const auto& t : types_) {
    if (t->kind() == TypeKind::kSet && t->elem() == elem) return t.get();
  }
  return Intern(Type(TypeKind::kSet, "", elem, {}));
}

const Type* TypePool::List(const Type* elem) {
  RODIN_CHECK(elem != nullptr, "list element type is null");
  for (const auto& t : types_) {
    if (t->kind() == TypeKind::kList && t->elem() == elem) return t.get();
  }
  return Intern(Type(TypeKind::kList, "", elem, {}));
}

const Type* TypePool::Tuple(std::vector<Type::Field> fields) {
  return Intern(Type(TypeKind::kTuple, "", nullptr, std::move(fields)));
}

}  // namespace rodin
