#ifndef RODIN_CATALOG_SCHEMA_H_
#define RODIN_CATALOG_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/type.h"

namespace rodin {

/// An attribute of a class or relation (paper §2.1). Methods are modelled as
/// *computed* attributes: `computed == true`, with `method_cost` giving the
/// CPU weight of one invocation relative to one stored-predicate evaluation
/// (the reason pushing method-calling selections through recursion is risky).
struct Attribute {
  std::string name;
  const Type* type = nullptr;
  bool computed = false;
  double method_cost = 0.0;
  /// Optional inverse declaration, e.g. Composition.author is the inverse of
  /// Composer.works. Both sides may declare it; consistency is validated.
  std::string inverse_class;
  std::string inverse_attr;
};

/// A class of the conceptual schema. Supports single inheritance (`isa`).
class ClassDef {
 public:
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  const ClassDef* super() const { return super_; }

  /// Attributes declared on this class only.
  const std::vector<Attribute>& own_attributes() const { return own_attrs_; }

  /// Attributes including inherited ones, superclass attributes first.
  std::vector<Attribute> AllAttributes() const;

  /// Finds an attribute by name, searching up the inheritance chain.
  const Attribute* FindAttribute(const std::string& name) const;

  /// Index of `name` in AllAttributes() order; -1 if absent. This is the
  /// storage field position of the attribute in an object record.
  int AttributeIndex(const std::string& name) const;

 private:
  friend class Schema;
  ClassDef(std::string name, uint32_t id, const ClassDef* super)
      : name_(std::move(name)), id_(id), super_(super) {}

  std::string name_;
  uint32_t id_;
  const ClassDef* super_;
  std::vector<Attribute> own_attrs_;
};

/// A relation of the conceptual schema: a named set of tuples.
class RelationDef {
 public:
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  const Type* tuple_type() const { return tuple_type_; }

  const Attribute* FindAttribute(const std::string& name) const;
  int AttributeIndex(const std::string& name) const;
  std::vector<Attribute> AllAttributes() const { return attrs_; }

 private:
  friend class Schema;
  RelationDef(std::string name, uint32_t id, const Type* tuple_type,
              std::vector<Attribute> attrs)
      : name_(std::move(name)),
        id_(id),
        tuple_type_(tuple_type),
        attrs_(std::move(attrs)) {}

  std::string name_;
  uint32_t id_;
  const Type* tuple_type_;
  std::vector<Attribute> attrs_;
};

/// The conceptual schema: classes (with inheritance and inverse attributes)
/// and relations. Owns its TypePool; all types used by the schema must be
/// created through `types()`.
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;

  TypePool& types() { return types_; }
  const TypePool& types() const { return types_; }

  /// Adds a class; `super_name` empty for a root class. The superclass must
  /// already exist. Returns the new class. Aborts on duplicate names.
  ClassDef* AddClass(const std::string& name, const std::string& super_name = "");

  /// Adds an attribute to an existing class. Aborts if the name collides
  /// with an own or inherited attribute.
  void AddAttribute(ClassDef* cls, Attribute attr);

  /// Adds a relation with the given tuple fields.
  RelationDef* AddRelation(const std::string& name,
                           std::vector<Type::Field> fields);

  const ClassDef* FindClass(const std::string& name) const;
  ClassDef* FindClass(const std::string& name);
  const RelationDef* FindRelation(const std::string& name) const;

  /// True if `sub` equals `ancestor` or derives from it.
  bool IsSubclassOf(const ClassDef* sub, const ClassDef* ancestor) const;

  /// `cls` and all its transitive subclasses (the concrete extents a
  /// polymorphic scan of `cls` must cover), in declaration order.
  std::vector<const ClassDef*> ConcreteClassesOf(const ClassDef* cls) const;

  /// The inverse of `cls`.`attr` (§2.1), whether declared on this side or
  /// on the other: fills (inverse_class, inverse_attr) and returns true.
  /// E.g. the inverse of Composer.works is Composition.author.
  bool FindInverse(const ClassDef* cls, const std::string& attr,
                   const ClassDef** inverse_cls,
                   std::string* inverse_attr) const;

  const std::vector<std::unique_ptr<ClassDef>>& classes() const {
    return classes_;
  }
  const std::vector<std::unique_ptr<RelationDef>>& relations() const {
    return relations_;
  }

  /// Class lookup by numeric id (used by Oids). Aborts on bad id.
  const ClassDef* ClassById(uint32_t id) const;

  /// Checks inverse-attribute declarations for consistency: the named
  /// inverse class/attribute must exist and point back. Returns a list of
  /// violation messages (empty when consistent).
  std::vector<std::string> ValidateInverses() const;

 private:
  TypePool types_;
  std::vector<std::unique_ptr<ClassDef>> classes_;
  std::vector<std::unique_ptr<RelationDef>> relations_;
};

}  // namespace rodin

#endif  // RODIN_CATALOG_SCHEMA_H_
