#ifndef RODIN_TXN_MUTATION_H_
#define RODIN_TXN_MUTATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace rodin {

/// The typed surface of the mutation API: a staged batch of record-level
/// operations against named extents. Batches are validated and applied
/// atomically at commit (see TxnManager); the same struct travels the wire
/// in MUTATE frames, so the embedded and networked mutation paths share one
/// vocabulary.
enum class MutationOpKind : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
};

struct MutationOp {
  MutationOpKind kind = MutationOpKind::kInsert;
  /// Class or relation extent the op targets.
  std::string extent;
  /// Insert: (attribute, value) pairs for the new record; unnamed stored
  /// attributes default to null. Update: the assignments to apply.
  std::vector<std::pair<std::string, Value>> values;
  /// Delete/update target. Ignored for inserts.
  Oid target = Oid::Invalid();
};

/// An ordered list of operations applied all-or-nothing at commit. Refs in
/// inserted/updated values may point at oids created by inserts of the same
/// batch (slots are assigned deterministically under the single-writer
/// protocol, so Session::Apply can hand them out at staging time).
struct MutationBatch {
  std::vector<MutationOp> ops;

  void Insert(std::string extent,
              std::vector<std::pair<std::string, Value>> values) {
    MutationOp op;
    op.kind = MutationOpKind::kInsert;
    op.extent = std::move(extent);
    op.values = std::move(values);
    ops.push_back(std::move(op));
  }
  void Delete(std::string extent, Oid target) {
    MutationOp op;
    op.kind = MutationOpKind::kDelete;
    op.extent = std::move(extent);
    op.target = target;
    ops.push_back(std::move(op));
  }
  void Update(std::string extent, Oid target,
              std::vector<std::pair<std::string, Value>> assigns) {
    MutationOp op;
    op.kind = MutationOpKind::kUpdate;
    op.extent = std::move(extent);
    op.target = target;
    op.values = std::move(assigns);
    ops.push_back(std::move(op));
  }

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// What one staged/applied batch did. `new_oids` is parallel to the batch's
/// insert ops in order; at staging time the oids are *provisional* (the
/// slots the inserts will occupy when the transaction commits — exact under
/// the single-writer protocol).
struct MutationResult {
  Status status;
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t updated = 0;
  std::vector<Oid> new_oids;

  bool ok() const { return status.ok(); }
};

/// Outcome of TxnManager::Commit / Session::Commit.
struct CommitResult {
  Status status;
  /// Operations applied (sum over the transaction's staged batches).
  uint64_t ops_applied = 0;
  /// The engine-wide stats version after the commit (bumped on success).
  uint64_t stats_version = 0;
  /// Materialized fixpoints brought up to date by this commit.
  uint64_t views_maintained = 0;
  /// True when every maintained view took the incremental delta path;
  /// false when any fell back to a full recompute (cycle introduced,
  /// counting overflow, or policy kRecompute).
  bool used_incremental = true;

  bool ok() const { return status.ok(); }
};

}  // namespace rodin

#endif  // RODIN_TXN_MUTATION_H_
