#ifndef RODIN_TXN_MATERIALIZED_FIX_H_
#define RODIN_TXN_MATERIALIZED_FIX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/value.h"
#include "txn/mutation.h"

namespace rodin {

class Database;

/// Declares a materialized transitive closure over an edge set stored in
/// one extent. Two forms:
///
///   * class form (`src_attr` empty): every live object o of `extent`
///     contributes edges o -> t for each ref t in o.`dst_attr` (single ref
///     or collection of refs). E.g. {extent: "Part", dst_attr: "subparts"}
///     materializes the paper's Contains closure; {extent: "Composer",
///     dst_attr: "master"} the Influencer lineage.
///   * relation form: every live tuple contributes one edge
///     tuple.`src_attr` -> tuple.`dst_attr` (both ref fields).
///
/// The closure is irreflexive: (x, x) appears only when x lies on a cycle.
struct MaterializedFixSpec {
  std::string name;
  std::string extent;
  std::string src_attr;  // empty => class form
  std::string dst_attr;
};

/// What one ApplyDelta/Recompute did to a view.
struct FixMaintenance {
  bool incremental = true;  // false: full recompute ran
  bool dred = false;        // deletions went through delete-and-rederive
  uint64_t pairs_added = 0;
  uint64_t pairs_removed = 0;
};

/// One materialized transitive closure with incremental maintenance.
///
/// While the edge graph stays acyclic the closure is kept *counting-style*:
/// each (s, t) pair carries the number of distinct s->t paths, so an edge
/// delete is O(|affected pairs|): subtract C(s,a)*C(b,t) for the removed
/// edge (a, b) and erase pairs whose count reaches zero — no rederivation
/// pass. Inserting an edge that closes a cycle (or saturating a count)
/// permanently degrades the view to membership mode, where inserts run a
/// semi-naive worklist and deletes fall back to DRed (delete-and-rederive:
/// over-delete everything possibly supported by the removed edges, then
/// rederive what the remaining graph still proves). Both modes produce the
/// identical pair set; Recompute() is the from-scratch oracle the
/// differential tests compare against.
///
/// Determinism: all internal containers are ordered, so Pairs() — sorted by
/// (src, dst) — is the view's row-order contract.
class MaterializedFix {
 public:
  explicit MaterializedFix(MaterializedFixSpec spec) : spec_(std::move(spec)) {}

  const MaterializedFixSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// Full rebuild from the database's live records (initial build and the
  /// differential oracle).
  FixMaintenance Recompute(const Database& db);

  /// Incremental maintenance for one committed batch: `removed` then
  /// `added` edge deltas (multiset semantics — a duplicated edge only
  /// affects the closure when its support count crosses zero).
  FixMaintenance ApplyDelta(const std::vector<std::pair<Oid, Oid>>& removed,
                            const std::vector<std::pair<Oid, Oid>>& added);

  /// The closure, sorted by (src, dst) — the row-order contract.
  std::vector<std::pair<Oid, Oid>> Pairs() const;
  uint64_t size() const { return num_pairs_; }
  bool Contains(Oid s, Oid t) const;
  /// True while path counts are exact (acyclic graph, no saturation).
  bool exact() const { return exact_; }

  /// Edges contributed by one record of the view's extent (used by the
  /// registry to turn mutation ops into edge deltas). `rec` must be the
  /// record's fields in storage order.
  void EdgesOfRecord(const Database& db, Oid oid,
                     const std::vector<Value>& rec,
                     std::vector<std::pair<Oid, Oid>>* out) const;
  /// True if an update assigning `attr` can change this view's edges.
  bool AttrRelevant(const std::string& attr) const {
    return attr == spec_.dst_attr ||
           (!spec_.src_attr.empty() && attr == spec_.src_attr);
  }

 private:
  void ExtractEdges(const Database& db,
                    std::vector<std::pair<Oid, Oid>>* edges) const;
  void RecomputeFromGraph();
  void AddPair(Oid s, Oid t, uint64_t c);
  void SubPair(Oid s, Oid t, uint64_t c);
  void InsertEdgeExact(Oid a, Oid b);
  void DeleteEdgeExact(Oid a, Oid b);
  void InsertEdgeSemiNaive(Oid a, Oid b);
  void DeleteEdgesDRed(const std::vector<std::pair<Oid, Oid>>& gone);

  MaterializedFixSpec spec_;
  /// Edge support counts (distinct records contributing the edge).
  std::map<Oid, std::map<Oid, uint32_t>> adj_, radj_;
  /// Closure path counts, forward and reverse (kept in sync). In membership
  /// mode every count is 1.
  std::map<Oid, std::map<Oid, uint64_t>> fwd_, rev_;
  uint64_t num_pairs_ = 0;
  bool exact_ = true;
};

/// How the registry maintains views at commit. The default comes from the
/// RODIN_INCREMENTAL_FIX env var ("0" => kRecompute); tests flip it
/// programmatically to run the differential oracle.
enum class FixMaintenancePolicy { kIncremental, kRecompute };

/// The commit-time registry: TxnManager calls PrepareDeltas before
/// Database::Apply (old edge values) and Maintain after it (new edge
/// values + propagation). Thread-safety is the caller's problem — all
/// calls happen under the TxnManager commit gate or registration mutex.
class MaterializedFixRegistry {
 public:
  MaterializedFixRegistry();

  /// Validates the spec against the schema, builds the initial closure.
  /// kInvalidArgument on unknown extent/attr or duplicate name.
  Status Register(const MaterializedFixSpec& spec, const Database& db);
  Status Drop(const std::string& name);
  const MaterializedFix* Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return views_.size(); }

  void set_policy(FixMaintenancePolicy p) { policy_ = p; }
  FixMaintenancePolicy policy() const { return policy_; }

  /// Per-view edge deltas of one batch.
  struct ViewDeltas {
    std::vector<std::pair<Oid, Oid>> removed, added;
  };

  /// Phase A, *before* Database::Apply: collect the edges that delete and
  /// update ops destroy, from the still-unmodified records.
  std::vector<ViewDeltas> PrepareDeltas(const Database& db,
                                        const MutationBatch& batch) const;

  /// Phase B, *after* Database::Apply: complete the deltas with the edges
  /// inserts and updates created (`new_oids` parallel to the batch's insert
  /// ops), cancel removed/added pairs that reappear unchanged, and bring
  /// every affected view up to date (incrementally or by recompute, per
  /// policy). Returns the number of views maintained; *used_incremental is
  /// cleared when any affected view took the recompute path.
  uint64_t Maintain(const Database& db, const MutationBatch& batch,
                    const std::vector<Oid>& new_oids,
                    std::vector<ViewDeltas> deltas, bool* used_incremental);

 private:
  std::vector<std::unique_ptr<MaterializedFix>> views_;
  FixMaintenancePolicy policy_ = FixMaintenancePolicy::kIncremental;
};

}  // namespace rodin

#endif  // RODIN_TXN_MATERIALIZED_FIX_H_
