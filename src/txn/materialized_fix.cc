#include "txn/materialized_fix.h"

#include <cstdlib>
#include <deque>

#include "common/check.h"
#include "storage/database.h"

namespace rodin {

namespace {

/// Counts saturate here instead of overflowing; saturation permanently
/// degrades the view to membership mode (counts stop being trustworthy for
/// exact deletes, membership stays correct).
constexpr uint64_t kCountCap = 1ULL << 62;

}  // namespace

void MaterializedFix::AddPair(Oid s, Oid t, uint64_t c) {
  auto& cell = fwd_[s][t];
  if (cell == 0) ++num_pairs_;
  if (cell > kCountCap - c) {
    cell = kCountCap;
    exact_ = false;
  } else {
    cell += c;
  }
  rev_[t][s] = cell;
}

void MaterializedFix::SubPair(Oid s, Oid t, uint64_t c) {
  auto fit = fwd_.find(s);
  RODIN_CHECK(fit != fwd_.end(), "closure pair missing on delete");
  auto cit = fit->second.find(t);
  RODIN_CHECK(cit != fit->second.end(), "closure pair missing on delete");
  RODIN_CHECK(cit->second >= c, "closure count underflow");
  cit->second -= c;
  if (cit->second == 0) {
    fit->second.erase(cit);
    rev_[t].erase(s);
    --num_pairs_;
  } else {
    rev_[t][s] = cit->second;
  }
}

bool MaterializedFix::Contains(Oid s, Oid t) const {
  auto fit = fwd_.find(s);
  if (fit == fwd_.end()) return false;
  return fit->second.count(t) > 0;
}

std::vector<std::pair<Oid, Oid>> MaterializedFix::Pairs() const {
  std::vector<std::pair<Oid, Oid>> out;
  out.reserve(num_pairs_);
  for (const auto& [s, row] : fwd_) {
    for (const auto& [t, c] : row) {
      (void)c;
      out.emplace_back(s, t);
    }
  }
  return out;
}

void MaterializedFix::InsertEdgeExact(Oid a, Oid b) {
  // New paths s => a -> b => t: C(s,a) * C(b,t) of them per (s, t), with
  // C(x,x) := 1 for the endpoints themselves. The graph is acyclic and
  // (b, a) is not in the closure, so b never appears among the sources nor
  // a among the targets — the snapshots are stable while we add.
  std::vector<std::pair<Oid, uint64_t>> sources{{a, 1}};
  if (auto it = rev_.find(a); it != rev_.end()) {
    for (const auto& [s, c] : it->second) sources.emplace_back(s, c);
  }
  std::vector<std::pair<Oid, uint64_t>> targets{{b, 1}};
  if (auto it = fwd_.find(b); it != fwd_.end()) {
    for (const auto& [t, c] : it->second) targets.emplace_back(t, c);
  }
  for (const auto& [s, cs] : sources) {
    for (const auto& [t, ct] : targets) {
      uint64_t c;
      if (ct != 0 && cs > kCountCap / ct) {
        c = kCountCap;
        exact_ = false;
      } else {
        c = cs * ct;
      }
      AddPair(s, t, c);
    }
  }
}

void MaterializedFix::DeleteEdgeExact(Oid a, Oid b) {
  // Mirror of InsertEdgeExact with pre-removal counts: in a DAG no s => a
  // or b => t segment can itself use the edge (a, b) (it would revisit a or
  // b), so the segment counts are already net of it.
  std::vector<std::pair<Oid, uint64_t>> sources{{a, 1}};
  if (auto it = rev_.find(a); it != rev_.end()) {
    for (const auto& [s, c] : it->second) sources.emplace_back(s, c);
  }
  std::vector<std::pair<Oid, uint64_t>> targets{{b, 1}};
  if (auto it = fwd_.find(b); it != fwd_.end()) {
    for (const auto& [t, c] : it->second) targets.emplace_back(t, c);
  }
  for (const auto& [s, cs] : sources) {
    for (const auto& [t, ct] : targets) {
      SubPair(s, t, cs * ct);
    }
  }
}

void MaterializedFix::InsertEdgeSemiNaive(Oid a, Oid b) {
  // Membership mode: seed with all s => a -> b => t combinations, then
  // propagate through the edge set until no new pair appears (cycles make
  // the single-step combination insufficient, hence the worklist).
  std::deque<std::pair<Oid, Oid>> work;
  auto candidate = [&](Oid x, Oid y) {
    if (!Contains(x, y)) {
      AddPair(x, y, 1);
      work.emplace_back(x, y);
    }
  };
  std::vector<Oid> srcs{a};
  if (auto it = rev_.find(a); it != rev_.end()) {
    for (const auto& [s, c] : it->second) {
      (void)c;
      srcs.push_back(s);
    }
  }
  std::vector<Oid> tgts{b};
  if (auto it = fwd_.find(b); it != fwd_.end()) {
    for (const auto& [t, c] : it->second) {
      (void)c;
      tgts.push_back(t);
    }
  }
  for (Oid s : srcs) {
    for (Oid t : tgts) candidate(s, t);
  }
  while (!work.empty()) {
    const auto [x, y] = work.front();
    work.pop_front();
    if (auto it = radj_.find(x); it != radj_.end()) {
      for (const auto& [u, c] : it->second) {
        (void)c;
        candidate(u, y);
      }
    }
    if (auto it = adj_.find(y); it != adj_.end()) {
      for (const auto& [w, c] : it->second) {
        (void)c;
        candidate(x, w);
      }
    }
  }
}

void MaterializedFix::DeleteEdgesDRed(
    const std::vector<std::pair<Oid, Oid>>& gone) {
  // Over-delete: every pair that *could* depend on a removed edge (a, b) —
  // s reaches a and b reaches t in the pre-delete closure.
  std::set<std::pair<Oid, Oid>> overdeleted;
  for (const auto& [a, b] : gone) {
    std::vector<Oid> srcs{a};
    if (auto it = rev_.find(a); it != rev_.end()) {
      for (const auto& [s, c] : it->second) {
        (void)c;
        srcs.push_back(s);
      }
    }
    std::vector<Oid> tgts{b};
    if (auto it = fwd_.find(b); it != fwd_.end()) {
      for (const auto& [t, c] : it->second) {
        (void)c;
        tgts.push_back(t);
      }
    }
    for (Oid s : srcs) {
      for (Oid t : tgts) {
        if (Contains(s, t)) overdeleted.insert({s, t});
      }
    }
  }
  for (const auto& [s, t] : overdeleted) {
    fwd_[s].erase(t);
    rev_[t].erase(s);
    --num_pairs_;
  }
  // Rederive to fixpoint: a deleted pair (s, t) comes back if some edge
  // s -> w still proves it (w == t, or (w, t) currently holds — including
  // pairs restored by an earlier round).
  std::set<std::pair<Oid, Oid>> restored;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& p : overdeleted) {
      if (restored.count(p) > 0) continue;
      const auto [s, t] = p;
      auto it = adj_.find(s);
      if (it == adj_.end()) continue;
      for (const auto& [w, c] : it->second) {
        (void)c;
        if (w == t || Contains(w, t)) {
          AddPair(s, t, 1);
          restored.insert(p);
          changed = true;
          break;
        }
      }
    }
  }
}

void MaterializedFix::RecomputeFromGraph() {
  fwd_.clear();
  rev_.clear();
  num_pairs_ = 0;

  std::set<Oid> nodes;
  for (const auto& [u, row] : adj_) {
    if (row.empty()) continue;
    nodes.insert(u);
    for (const auto& [w, c] : row) {
      (void)c;
      nodes.insert(w);
    }
  }

  // Kahn's algorithm decides the mode: a topological order exists => exact
  // counting DP; otherwise membership BFS per node.
  std::map<Oid, uint32_t> indeg;
  for (Oid u : nodes) indeg[u] = 0;
  for (const auto& [u, row] : adj_) {
    (void)u;
    for (const auto& [w, c] : row) {
      (void)c;
      ++indeg[w];
    }
  }
  std::vector<Oid> order;
  std::deque<Oid> ready;
  for (const auto& [u, d] : indeg) {
    if (d == 0) ready.push_back(u);
  }
  while (!ready.empty()) {
    const Oid u = ready.front();
    ready.pop_front();
    order.push_back(u);
    if (auto it = adj_.find(u); it != adj_.end()) {
      for (const auto& [w, c] : it->second) {
        (void)c;
        if (--indeg[w] == 0) ready.push_back(w);
      }
    }
  }

  if (order.size() == nodes.size()) {
    exact_ = true;
    // Reverse topological order: C(u, t) = sum over edges u -> w of
    // [w == t] + C(w, t).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Oid u = *it;
      auto ait = adj_.find(u);
      if (ait == adj_.end()) continue;
      std::map<Oid, uint64_t> acc;
      for (const auto& [w, c] : ait->second) {
        (void)c;
        acc[w] += 1;
        if (auto fit = fwd_.find(w); fit != fwd_.end()) {
          for (const auto& [t, ct] : fit->second) {
            uint64_t& cell = acc[t];
            cell = cell > kCountCap - ct ? kCountCap : cell + ct;
          }
        }
      }
      for (const auto& [t, c] : acc) AddPair(u, t, c);
    }
  } else {
    exact_ = false;
    for (Oid u : nodes) {
      // BFS over >= 1 edge, so (u, u) appears exactly when u is on a cycle.
      std::set<Oid> seen;
      std::deque<Oid> q;
      if (auto it = adj_.find(u); it != adj_.end()) {
        for (const auto& [w, c] : it->second) {
          (void)c;
          if (seen.insert(w).second) q.push_back(w);
        }
      }
      while (!q.empty()) {
        const Oid x = q.front();
        q.pop_front();
        if (auto it = adj_.find(x); it != adj_.end()) {
          for (const auto& [w, c] : it->second) {
            (void)c;
            if (seen.insert(w).second) q.push_back(w);
          }
        }
      }
      for (Oid t : seen) AddPair(u, t, 1);
    }
  }
}

void MaterializedFix::EdgesOfRecord(
    const Database& db, Oid oid, const std::vector<Value>& rec,
    std::vector<std::pair<Oid, Oid>>* out) const {
  if (!spec_.src_attr.empty()) {
    const int fs = db.FieldIndex(spec_.extent, spec_.src_attr);
    const int fd = db.FieldIndex(spec_.extent, spec_.dst_attr);
    RODIN_CHECK(fs >= 0 && fd >= 0, "materialized fix attrs vanished");
    const Value& vs = rec[fs];
    const Value& vd = rec[fd];
    if (vs.is_ref() && vd.is_ref()) out->emplace_back(vs.AsRef(), vd.AsRef());
    return;
  }
  const int fd = db.FieldIndex(spec_.extent, spec_.dst_attr);
  RODIN_CHECK(fd >= 0, "materialized fix attr vanished");
  const Value& v = rec[fd];
  if (v.is_ref()) {
    out->emplace_back(oid, v.AsRef());
  } else if (v.is_collection()) {
    for (const Value& ev : v.AsCollection().elems) {
      if (ev.is_ref()) out->emplace_back(oid, ev.AsRef());
    }
  }
}

void MaterializedFix::ExtractEdges(
    const Database& db, std::vector<std::pair<Oid, Oid>>* edges) const {
  const Extent* e = db.FindExtent(spec_.extent);
  RODIN_CHECK(e != nullptr, "materialized fix extent vanished");
  for (uint32_t s = 0; s < e->size(); ++s) {
    if (!e->alive(s)) continue;
    const Oid oid = db.PayloadToOid(spec_.extent, s);
    EdgesOfRecord(db, oid, e->Record(s), edges);
  }
}

FixMaintenance MaterializedFix::Recompute(const Database& db) {
  std::vector<std::pair<Oid, Oid>> edges;
  ExtractEdges(db, &edges);
  adj_.clear();
  radj_.clear();
  for (const auto& [a, b] : edges) {
    ++adj_[a][b];
    ++radj_[b][a];
  }
  RecomputeFromGraph();
  FixMaintenance rep;
  rep.incremental = false;
  return rep;
}

FixMaintenance MaterializedFix::ApplyDelta(
    const std::vector<std::pair<Oid, Oid>>& removed,
    const std::vector<std::pair<Oid, Oid>>& added) {
  FixMaintenance rep;
  const uint64_t before = num_pairs_;

  // Removals first: decrement edge support; only support hitting zero
  // touches the closure.
  std::vector<std::pair<Oid, Oid>> zeroed;
  for (const auto& [a, b] : removed) {
    auto ait = adj_.find(a);
    RODIN_CHECK(ait != adj_.end() && ait->second.count(b) > 0,
                "delta removes unknown edge");
    if (--ait->second[b] == 0) {
      ait->second.erase(b);
      radj_[b].erase(a);
      zeroed.push_back({a, b});
    } else {
      --radj_[b][a];
    }
  }
  if (!zeroed.empty()) {
    if (exact_) {
      for (const auto& [a, b] : zeroed) DeleteEdgeExact(a, b);
    } else {
      DeleteEdgesDRed(zeroed);
      rep.dred = true;
    }
  }

  for (const auto& [a, b] : added) {
    uint32_t& cnt = adj_[a][b];
    ++cnt;
    ++radj_[b][a];
    if (cnt != 1) continue;  // edge already present, closure unchanged
    if (exact_) {
      if (a == b || Contains(b, a)) {
        // This edge closes a cycle: counts stop being meaningful, degrade
        // (permanently) to membership mode — still incremental.
        exact_ = false;
        InsertEdgeSemiNaive(a, b);
      } else {
        InsertEdgeExact(a, b);
      }
    } else {
      InsertEdgeSemiNaive(a, b);
    }
  }

  rep.pairs_added = num_pairs_ > before ? num_pairs_ - before : 0;
  rep.pairs_removed = before > num_pairs_ ? before - num_pairs_ : 0;
  return rep;
}

MaterializedFixRegistry::MaterializedFixRegistry() {
  const char* env = std::getenv("RODIN_INCREMENTAL_FIX");
  if (env != nullptr && std::string(env) == "0") {
    policy_ = FixMaintenancePolicy::kRecompute;
  }
}

Status MaterializedFixRegistry::Register(const MaterializedFixSpec& spec,
                                         const Database& db) {
  auto invalid = [](std::string msg) {
    return Status::Error(Status::Code::kInvalidArgument, std::move(msg));
  };
  if (spec.name.empty()) return invalid("materialized fix needs a name");
  if (Find(spec.name) != nullptr) {
    return invalid("materialized fix '" + spec.name + "' already exists");
  }
  if (db.FindExtent(spec.extent) == nullptr) {
    return invalid("materialized fix over unknown extent '" + spec.extent +
                   "'");
  }
  if (!spec.src_attr.empty() &&
      db.FieldIndex(spec.extent, spec.src_attr) < 0) {
    return invalid("materialized fix src attribute '" + spec.src_attr +
                   "' unknown on '" + spec.extent + "'");
  }
  if (db.FieldIndex(spec.extent, spec.dst_attr) < 0) {
    return invalid("materialized fix dst attribute '" + spec.dst_attr +
                   "' unknown on '" + spec.extent + "'");
  }
  auto view = std::make_unique<MaterializedFix>(spec);
  view->Recompute(db);
  views_.push_back(std::move(view));
  return Status::Ok();
}

Status MaterializedFixRegistry::Drop(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->name() == name) {
      views_.erase(it);
      return Status::Ok();
    }
  }
  return Status::Error(Status::Code::kInvalidArgument,
                       "no materialized fix named '" + name + "'");
}

const MaterializedFix* MaterializedFixRegistry::Find(
    const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name() == name) return v.get();
  }
  return nullptr;
}

std::vector<std::string> MaterializedFixRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& v : views_) out.push_back(v->name());
  return out;
}

std::vector<MaterializedFixRegistry::ViewDeltas>
MaterializedFixRegistry::PrepareDeltas(const Database& db,
                                       const MutationBatch& batch) const {
  std::vector<ViewDeltas> out(views_.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    const MaterializedFix& view = *views_[i];
    // Apply permits several update ops on one record (distinct fields), so
    // dedupe by target oid: each record's pre-image contributes its edges
    // exactly once or the delta would double-remove them.
    std::set<Oid> affected;
    for (const MutationOp& op : batch.ops) {
      if (op.extent != view.spec().extent) continue;
      if (op.kind == MutationOpKind::kInsert) continue;
      // The batch has not been validated yet (Database::Apply does that
      // under the commit gate); skip unresolvable targets — Apply will
      // reject the batch and these deltas will be discarded.
      const Extent* e = db.FindExtent(op.extent);
      if (e == nullptr || !e->alive(op.target.slot)) continue;
      if (db.PayloadToOid(op.extent, op.target.slot).class_id !=
          op.target.class_id) {
        continue;
      }
      if (op.kind == MutationOpKind::kUpdate) {
        bool relevant = false;
        for (const auto& [attr, v] : op.values) {
          (void)v;
          if (view.AttrRelevant(attr)) relevant = true;
        }
        if (!relevant) continue;
      }
      affected.insert(op.target);
    }
    if (affected.empty()) continue;
    const Extent* e = db.FindExtent(view.spec().extent);
    for (const Oid& oid : affected) {
      view.EdgesOfRecord(db, oid, e->Record(oid.slot), &out[i].removed);
    }
  }
  return out;
}

uint64_t MaterializedFixRegistry::Maintain(const Database& db,
                                           const MutationBatch& batch,
                                           const std::vector<Oid>& new_oids,
                                           std::vector<ViewDeltas> deltas,
                                           bool* used_incremental) {
  RODIN_CHECK(deltas.size() == views_.size(), "delta/view mismatch");
  // Phase B: edges created by inserts and (post-image) updates. Like
  // PrepareDeltas, dedupe by oid per view — several update ops may hit one
  // record, whose (single) post-image must contribute its edges once.
  std::vector<std::set<Oid>> affected(views_.size());
  size_t insert_idx = 0;
  for (const MutationOp& op : batch.ops) {
    Oid oid = op.target;
    if (op.kind == MutationOpKind::kInsert) {
      RODIN_CHECK(insert_idx < new_oids.size(), "insert oid list too short");
      oid = new_oids[insert_idx++];
    } else if (op.kind == MutationOpKind::kDelete) {
      continue;
    }
    for (size_t i = 0; i < views_.size(); ++i) {
      const MaterializedFix& view = *views_[i];
      if (op.extent != view.spec().extent) continue;
      if (op.kind == MutationOpKind::kUpdate) {
        bool relevant = false;
        for (const auto& [attr, v] : op.values) {
          (void)v;
          if (view.AttrRelevant(attr)) relevant = true;
        }
        if (!relevant) continue;
      }
      affected[i].insert(oid);
    }
  }
  for (size_t i = 0; i < views_.size(); ++i) {
    if (affected[i].empty()) continue;
    const Extent* e = db.FindExtent(views_[i]->spec().extent);
    for (const Oid& oid : affected[i]) {
      views_[i]->EdgesOfRecord(db, oid, e->Record(oid.slot),
                               &deltas[i].added);
    }
  }

  // An update that leaves the edge set alone would otherwise ping-pong the
  // closure (delete then re-derive the same pairs): cancel matching
  // removed/added edges first.
  auto cancel = [](std::vector<std::pair<Oid, Oid>>* removed,
                   std::vector<std::pair<Oid, Oid>>* added) {
    std::multiset<std::pair<Oid, Oid>> adds(added->begin(), added->end());
    std::vector<std::pair<Oid, Oid>> keep;
    for (const auto& e : *removed) {
      auto it = adds.find(e);
      if (it != adds.end()) {
        adds.erase(it);
      } else {
        keep.push_back(e);
      }
    }
    *removed = std::move(keep);
    added->assign(adds.begin(), adds.end());
  };

  uint64_t maintained = 0;
  for (size_t i = 0; i < views_.size(); ++i) {
    cancel(&deltas[i].removed, &deltas[i].added);
    if (deltas[i].removed.empty() && deltas[i].added.empty()) continue;
    ++maintained;
    if (policy_ == FixMaintenancePolicy::kRecompute) {
      views_[i]->Recompute(db);
      if (used_incremental != nullptr) *used_incremental = false;
    } else {
      views_[i]->ApplyDelta(deltas[i].removed, deltas[i].added);
    }
  }
  return maintained;
}

}  // namespace rodin
