#include "txn/txn_manager.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"
#include "storage/database.h"

namespace rodin {

// --- Per-database registry ---------------------------------------------------

namespace {
std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}
std::map<Database*, std::unique_ptr<TxnManager>>& Registry() {
  // Leaked on purpose: managers may be reached from detached threads at exit.
  static auto* reg = new std::map<Database*, std::unique_ptr<TxnManager>>();
  return *reg;
}
}  // namespace

TxnManager* TxnManager::For(Database* db) {
  RODIN_CHECK(db != nullptr, "TxnManager::For(null database)");
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto& slot = Registry()[db];
  if (!slot) slot = std::unique_ptr<TxnManager>(new TxnManager(db));
  return slot.get();
}

void TxnManager::Forget(Database* db) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().erase(db);
}

// --- Reader gate -------------------------------------------------------------

int& TxnManager::ReadDepth() {
  static thread_local std::unordered_map<const TxnManager*, int> depth;
  return depth[this];
}

void TxnManager::BeginRead() {
  int& depth = ReadDepth();
  if (depth > 0) {  // re-entrant on this thread; already counted
    ++depth;
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !commit_waiting_ && !commit_active_; });
  ++active_reads_;
  depth = 1;
}

void TxnManager::EndRead() {
  int& depth = ReadDepth();
  RODIN_CHECK(depth > 0, "EndRead without BeginRead");
  if (--depth > 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  RODIN_CHECK(active_reads_ > 0, "reader count underflow");
  --active_reads_;
  cv_.notify_all();
}

// --- Writer ------------------------------------------------------------------

Status TxnManager::Begin(uint64_t* txn_id) {
  RODIN_CHECK(txn_id != nullptr, "Begin(null out)");
  std::lock_guard<std::mutex> lock(mu_);
  if (open_txn_ != 0) {
    Status s = Status::Error(Status::Code::kConflict,
                             "another transaction is open; retry after it ends");
    s.detail = open_txn_;
    return s;
  }
  open_txn_ = next_txn_++;
  staged_.ops.clear();
  *txn_id = open_txn_;
  return Status::Ok();
}

Status TxnManager::Stage(uint64_t txn_id, const MutationBatch& batch,
                         MutationResult* staged) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_txn_ == 0 || open_txn_ != txn_id) {
    return Status::Error(Status::Code::kInvalidArgument,
                         StrFormat("no open transaction with id %llu",
                                   static_cast<unsigned long long>(txn_id)));
  }
  // Provisional oid assignment: under the single-writer protocol nothing can
  // change extent sizes between now and commit, so `current size + inserts
  // already staged for the extent` is exactly the slot Database::Apply will
  // pick. Unknown extents get an invalid oid here and are rejected at commit.
  std::map<std::string, uint32_t> staged_inserts;
  for (const MutationOp& op : staged_.ops) {
    if (op.kind == MutationOpKind::kInsert) ++staged_inserts[op.extent];
  }
  if (staged != nullptr) *staged = MutationResult();
  for (const MutationOp& op : batch.ops) {
    if (staged == nullptr) break;
    switch (op.kind) {
      case MutationOpKind::kInsert: {
        ++staged->inserted;
        const Extent* e = db_->FindExtent(op.extent);
        if (e == nullptr) {
          staged->new_oids.push_back(Oid::Invalid());
          break;
        }
        const uint32_t slot = e->size() + staged_inserts[op.extent]++;
        staged->new_oids.push_back(db_->PayloadToOid(op.extent, slot));
        break;
      }
      case MutationOpKind::kDelete:
        ++staged->deleted;
        break;
      case MutationOpKind::kUpdate:
        ++staged->updated;
        break;
    }
  }
  staged_.ops.insert(staged_.ops.end(), batch.ops.begin(), batch.ops.end());
  if (staged != nullptr) staged->status = Status::Ok();
  return Status::Ok();
}

CommitResult TxnManager::Commit(uint64_t txn_id) {
  CommitResult res;
  std::unique_lock<std::mutex> lock(mu_);
  if (open_txn_ == 0 || open_txn_ != txn_id) {
    res.status =
        Status::Error(Status::Code::kInvalidArgument,
                      StrFormat("no open transaction with id %llu",
                                static_cast<unsigned long long>(txn_id)));
    return res;
  }
  res.stats_version = stats_version_.load();
  if (staged_.empty()) {  // empty commit: nothing changed, no version bump
    open_txn_ = 0;
    res.status = Status::Ok();
    return res;
  }
  auto refuse_cursors = [&](uint64_t n) {
    res.status = Status::Error(
        Status::Code::kConflict,
        StrFormat("commit refused: %llu streaming cursor(s) live; drain or "
                  "close them and retry",
                  static_cast<unsigned long long>(n)));
    res.status.detail = n;
  };
  uint64_t cursors = live_cursors_.load();
  if (cursors != 0) {  // cheap pre-check before gating any reader
    refuse_cursors(cursors);
    return res;  // transaction stays open for a retry
  }
  commit_waiting_ = true;
  cv_.wait(lock, [&] { return active_reads_ == 0; });
  commit_waiting_ = false;
  commit_active_ = true;
  if (open_txn_ != txn_id) {
    // Rolled back (e.g. a server connection dropped) while the wait had the
    // mutex released. Nothing staged any more; report it like a cancel.
    commit_active_ = false;
    cv_.notify_all();
    res.status = Status::Error(
        Status::Code::kCancelled,
        "transaction was rolled back while commit waited for readers");
    return res;
  }
  // A read that was in flight during the pre-check may have opened a cursor
  // before the gate closed; with reads drained the count is now stable.
  cursors = live_cursors_.load();
  if (cursors != 0) {
    commit_active_ = false;
    refuse_cursors(cursors);
    cv_.notify_all();
    return res;
  }

  MutationBatch batch = std::move(staged_);
  staged_ = MutationBatch();
  // The mutex stays held through the structural change: new readers block on
  // commit_active_ (or the mutex itself), and active_reads_ == 0 guarantees
  // nobody is inside the database.
  const std::vector<PageId> resident = db_->buffer_pool().SnapshotResident();
  std::vector<MaterializedFixRegistry::ViewDeltas> deltas =
      views_.PrepareDeltas(*db_, batch);
  MutationResult applied;
  const Status st = db_->Apply(batch, &applied);
  if (!st.ok()) {
    // Validation failed before anything was touched; the transaction rolls
    // back (staged work is gone) and the resident set is restored untouched.
    db_->buffer_pool().RestoreResident(resident);
    open_txn_ = 0;
    commit_active_ = false;
    cv_.notify_all();
    res.status = st;
    return res;
  }
  bool incremental = true;
  res.views_maintained =
      views_.Maintain(*db_, batch, applied.new_oids, std::move(deltas),
                      &incremental);
  res.used_incremental = incremental;
  db_->buffer_pool().RestoreResident(resident);
  res.ops_applied = batch.size();
  res.stats_version = stats_version_.fetch_add(1) + 1;
  open_txn_ = 0;
  commit_active_ = false;
  cv_.notify_all();
  res.status = Status::Ok();
  return res;
}

Status TxnManager::Rollback(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_txn_ == 0 || open_txn_ != txn_id) {
    return Status::Error(Status::Code::kInvalidArgument,
                         StrFormat("no open transaction with id %llu",
                                   static_cast<unsigned long long>(txn_id)));
  }
  open_txn_ = 0;
  staged_.ops.clear();
  return Status::Ok();
}

bool TxnManager::txn_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_txn_ != 0;
}

// --- Materialized fixpoints --------------------------------------------------

Status TxnManager::RegisterView(const MaterializedFixSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.Register(spec, *db_);
}

Status TxnManager::DropView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.Drop(name);
}

Status TxnManager::ViewPairs(const std::string& name,
                             std::vector<std::pair<Oid, Oid>>* out) const {
  RODIN_CHECK(out != nullptr, "ViewPairs(null out)");
  std::lock_guard<std::mutex> lock(mu_);
  const MaterializedFix* view = views_.Find(name);
  if (view == nullptr) {
    return Status::Error(Status::Code::kInvalidArgument,
                         "unknown materialized view '" + name + "'");
  }
  *out = view->Pairs();
  return Status::Ok();
}

std::vector<TxnManager::ViewInfo> TxnManager::Views() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ViewInfo> out;
  for (const std::string& name : views_.Names()) {
    const MaterializedFix* view = views_.Find(name);
    ViewInfo info;
    info.name = name;
    info.extent = view->spec().extent;
    info.pairs = view->size();
    info.exact = view->exact();
    out.push_back(std::move(info));
  }
  return out;
}

void TxnManager::SetFixPolicy(FixMaintenancePolicy p) {
  std::lock_guard<std::mutex> lock(mu_);
  views_.set_policy(p);
}

FixMaintenancePolicy TxnManager::fix_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.policy();
}

}  // namespace rodin
