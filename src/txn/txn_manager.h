#ifndef RODIN_TXN_TXN_MANAGER_H_
#define RODIN_TXN_TXN_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/value.h"
#include "txn/materialized_fix.h"
#include "txn/mutation.h"

namespace rodin {

class Database;

/// The write-path coordinator for one Database: a single-writer,
/// snapshot-consistent-reader transaction layer.
///
///   * One transaction may be open at a time (Begin returns kConflict —
///     retryable — while another holds the slot). Staged batches are
///     invisible until Commit.
///   * Readers take a ReadGuard around each query run; Commit drains them
///     (condvar gate) before touching any shared structure, so a running
///     query always sees either the full pre- or full post-commit state.
///   * Live streaming cursors cannot be drained (they hold raw extent/slot
///     coordinates across user-paced pulls), so Commit *refuses* with
///     kConflict while any exist — the pinned contract of
///     docs/ROBUSTNESS.md. The transaction stays open for a retry.
///   * Commit wraps the structural change in BufferPool
///     SnapshotResident/RestoreResident, so the resident set (and hence
///     any query's measured page behaviour) is bit-identical before and
///     after a commit — mutation never silently warms or cools the cache.
///   * Commit propagates the batch's edge deltas through every registered
///     MaterializedFix (incremental counting / DRed, or full recompute
///     under the kRecompute policy) and finally bumps the engine-wide
///     stats version: sessions lazily re-derive statistics and the plan
///     cache drops entries recorded under the old version.
///
/// Instances are process-wide singletons per Database (TxnManager::For);
/// the Database destructor unregisters itself.
class TxnManager {
 public:
  /// The manager for `db`, created on first use. Thread-safe.
  static TxnManager* For(Database* db);
  /// Drops the manager of a dying database (called by ~Database).
  static void Forget(Database* db);

  // --- Reader side ---------------------------------------------------------

  /// RAII read gate: blocks while a commit is pending or active, counts the
  /// reader in otherwise. Re-entrant within a thread (nested session entry
  /// points share one slot, so a waiting writer cannot deadlock them).
  class ReadGuard {
   public:
    explicit ReadGuard(TxnManager* tm) : tm_(tm) { tm_->BeginRead(); }
    ~ReadGuard() { tm_->EndRead(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    TxnManager* tm_;
  };

  /// Streaming-cursor registration (Session::Query). A live cursor makes
  /// Commit refuse; EndCursor is called from the cursor's finalize hook.
  void BeginCursor() { live_cursors_.fetch_add(1); }
  void EndCursor() { live_cursors_.fetch_sub(1); }
  uint64_t live_cursors() const { return live_cursors_.load(); }

  /// Engine-wide statistics version: bumped by every successful non-empty
  /// commit and by EngineHandle::RefreshStats. Sessions compare against it
  /// to lazily re-derive stats; the plan cache invalidates on mismatch.
  uint64_t stats_version() const { return stats_version_.load(); }
  void BumpStatsVersion() { stats_version_.fetch_add(1); }

  // --- Writer side ---------------------------------------------------------

  /// Opens the single write slot. kConflict (retryable) while another
  /// transaction is open.
  Status Begin(uint64_t* txn_id);

  /// Stages a batch onto the open transaction. Validation is deferred to
  /// commit, but provisional oids for the batch's inserts are assigned now
  /// (exact under the single-writer protocol) and returned via `staged` so
  /// later batches of the same transaction can reference them.
  Status Stage(uint64_t txn_id, const MutationBatch& batch,
               MutationResult* staged);

  /// Validates and applies everything staged, maintains materialized
  /// fixpoints, bumps the stats version. On kConflict (live cursors) the
  /// transaction stays open for a retry; on validation failure it is
  /// rolled back; on success it is closed.
  CommitResult Commit(uint64_t txn_id);

  /// Discards the staged work and closes the transaction.
  Status Rollback(uint64_t txn_id);

  bool txn_open() const;

  // --- Materialized fixpoints ---------------------------------------------

  /// Registers/drops/reads views. Serialized with commits via the manager
  /// mutex; registration scans the database, which is safe against
  /// concurrent readers (it only reads).
  Status RegisterView(const MaterializedFixSpec& spec);
  Status DropView(const std::string& name);
  /// Snapshot of a view's pairs in row-order-contract order ((src, dst)
  /// ascending). kInvalidArgument for unknown names.
  Status ViewPairs(const std::string& name,
                   std::vector<std::pair<Oid, Oid>>* out) const;
  struct ViewInfo {
    std::string name;
    std::string extent;
    uint64_t pairs = 0;
    bool exact = false;
  };
  std::vector<ViewInfo> Views() const;
  void SetFixPolicy(FixMaintenancePolicy p);
  FixMaintenancePolicy fix_policy() const;

 private:
  explicit TxnManager(Database* db) : db_(db) {}

  void BeginRead();
  void EndRead();
  int& ReadDepth();

  Database* db_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool commit_waiting_ = false;
  bool commit_active_ = false;
  uint64_t active_reads_ = 0;
  std::atomic<uint64_t> live_cursors_{0};
  std::atomic<uint64_t> stats_version_{1};
  uint64_t open_txn_ = 0;  // 0 = none
  uint64_t next_txn_ = 1;
  MutationBatch staged_;
  MaterializedFixRegistry views_;
};

}  // namespace rodin

#endif  // RODIN_TXN_TXN_MANAGER_H_
