#ifndef RODIN_OPTIMIZER_OPTIMIZER_H_
#define RODIN_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/context.h"
#include "optimizer/generate.h"
#include "optimizer/rewrite.h"
#include "optimizer/transform.h"
#include "query/query_graph.h"

namespace rodin {

namespace obs {
class Tracer;
}  // namespace obs
struct DecisionLog;

/// Optional observability sinks for one Optimize() call: a span tracer
/// (stage/push/search spans, Chrome trace_event export) and a structured
/// decision log (every transformPT shift and push decision with the costed
/// alternatives). Null members record nothing at near-zero cost.
struct ObsSink {
  obs::Tracer* tracer = nullptr;
  DecisionLog* decisions = nullptr;
};

/// Configuration of the full optimizer pipeline. The generative and
/// randomized strategies are independent knobs — the extensibility claim of
/// the paper ([LV91]): the search space (rules, moves) is fixed; strategies
/// controlling it are swappable.
struct OptimizerOptions {
  GenStrategy gen_strategy = GenStrategy::kDP;
  TransformOptions transform;
  bool fold_views = false;
  /// Evaluate fixpoints naively instead of semi-naively (ablation only;
  /// Figure 5's Fix formula assumes semi-naive).
  bool naive_fixpoint = false;
  uint64_t seed = 1;
  /// Worker threads for the randomized transformPT search (restart-level
  /// parallelism, see ParallelStrategy). This is the *only* definition of
  /// the knob (TransformOptions no longer carries a copy); QueryOptions may
  /// override it per run — precedence is documented on QueryOptions. The
  /// chosen plan is deterministic for a given (seed, search_threads) — and
  /// identical across thread counts, since restarts use index-derived RNG
  /// streams.
  size_t search_threads = 1;
  /// The run's lifecycle budget, referenced (not copied) from the
  /// QueryOptions' QueryContext. Null = unbounded. Stages 1-3 abort with
  /// kDeadlineExceeded / kCancelled when tripped; transformPT instead
  /// truncates and keeps its best-so-far plan (anytime).
  const QueryContext* query = nullptr;
  /// Consult the process FaultInjector for forced stage deadlines. Only
  /// Session's non-streaming paths turn this on.
  bool inject_faults = false;
};

/// Result of optimizing one query graph.
struct OptimizeResult {
  PTPtr plan;
  double cost = 0;
  /// Typed outcome; on failure the plan is null and status.code says why
  /// (kOptimize, or kDeadlineExceeded / kCancelled when the budget tripped
  /// before transformPT could produce an anytime plan).
  Status status;

  size_t plans_explored = 0;
  std::vector<StageReport> stages;  // rewrite/translate/generatePT/transformPT

  // transformPT outcome (the paper's delayed push decision).
  bool pushed_sel = false;
  bool pushed_join = false;
  bool pushed_proj = false;
  double pushed_variant_cost = -1;
  double unpushed_variant_cost = -1;

  bool ok() const { return status.ok(); }
};

/// The optimizer of §4.1:
///
///   optimize(Q) { rewrite(Q);
///                 for each arc: translate;
///                 for each predicate node (bottom-up): generatePT;
///                 repeat transformPT until saturation; }
///
/// Pushing selective operations through recursion is *delayed* until a
/// costed PT exists, then decided by comparing the costed alternatives.
class Optimizer {
 public:
  Optimizer(Database* db, const Stats* stats, const CostModel* cost,
            OptimizerOptions options = {});

  OptimizeResult Optimize(const QueryGraph& query);

  /// As above, recording spans and decision events into `hooks`.
  OptimizeResult Optimize(const QueryGraph& query, const ObsSink& hooks);

  const OptimizerOptions& options() const { return options_; }

 private:
  Database* db_;
  const Stats* stats_;
  const CostModel* cost_;
  OptimizerOptions options_;
};

/// Estimates the semi-naive iteration count of a recursive rule from chain
/// statistics: if the rule joins the delta with a class whose join attribute
/// forms self-reference chains, the chain depth bounds the iterations.
double EstimateFixIters(const NormalizedSPJ& rec, const std::string& delta_var,
                        const Stats& stats);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_OPTIMIZER_H_
