#include "optimizer/rule.h"

namespace rodin {

const char* GenStrategyName(GenStrategy s) {
  switch (s) {
    case GenStrategy::kExhaustive:
      return "exhaustive";
    case GenStrategy::kDP:
      return "dynamic-programming";
    case GenStrategy::kGreedy:
      return "greedy";
    case GenStrategy::kRandomized:
      return "randomized (greedy + II)";
  }
  return "?";
}

const char* RandStrategyName(RandStrategy s) {
  switch (s) {
    case RandStrategy::kNone:
      return "none";
    case RandStrategy::kIterativeImprovement:
      return "iterative-improvement";
    case RandStrategy::kSimulatedAnnealing:
      return "simulated-annealing";
  }
  return "?";
}

void VisitSubtrees(PTPtr& root, const std::function<void(PTPtr&)>& fn) {
  fn(root);
  for (auto& c : root->children) {
    VisitSubtrees(c, fn);
  }
}

std::vector<PTPtr*> CollectSubtrees(PTPtr& root) {
  std::vector<PTPtr*> out;
  VisitSubtrees(root, [&](PTPtr& site) { out.push_back(&site); });
  return out;
}

bool ApplyRuleOnce(PTPtr& root, const Rule& rule, OptContext& ctx) {
  if (rule.ApplyAt(root, ctx)) return true;
  for (auto& c : root->children) {
    if (ApplyRuleOnce(c, rule, ctx)) return true;
  }
  return false;
}

size_t ApplyRuleSaturate(PTPtr& root, const Rule& rule, OptContext& ctx,
                         size_t max_applications) {
  size_t n = 0;
  while (n < max_applications && ApplyRuleOnce(root, rule, ctx)) {
    ++n;
  }
  return n;
}

}  // namespace rodin
