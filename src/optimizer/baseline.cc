#include "optimizer/baseline.h"

namespace rodin {

OptimizerOptions CostBasedOptions(uint64_t seed) {
  OptimizerOptions o;
  o.gen_strategy = GenStrategy::kDP;
  o.transform.rand = RandStrategy::kIterativeImprovement;
  o.seed = seed;
  return o;
}

OptimizerOptions DeductiveOptions(uint64_t seed) {
  OptimizerOptions o;
  o.gen_strategy = GenStrategy::kDP;
  o.transform.always_push = true;
  o.transform.rand = RandStrategy::kNone;
  o.seed = seed;
  return o;
}

OptimizerOptions NaiveOptions(uint64_t seed) {
  OptimizerOptions o;
  o.gen_strategy = GenStrategy::kGreedy;
  o.transform.never_push = true;
  o.transform.rand = RandStrategy::kNone;
  o.seed = seed;
  return o;
}

OptimizerOptions ExhaustiveOptions(uint64_t seed) {
  OptimizerOptions o;
  o.gen_strategy = GenStrategy::kExhaustive;
  o.transform.rand = RandStrategy::kIterativeImprovement;
  o.transform.rand_moves = 600;
  o.transform.rand_restarts = 4;
  o.seed = seed;
  return o;
}

OptimizerOptions AnnealingOptions(uint64_t seed) {
  OptimizerOptions o;
  o.gen_strategy = GenStrategy::kDP;
  o.transform.rand = RandStrategy::kSimulatedAnnealing;
  o.seed = seed;
  return o;
}

}  // namespace rodin
