#ifndef RODIN_OPTIMIZER_TRANSLATE_H_
#define RODIN_OPTIMIZER_TRANSLATE_H_

#include <string>
#include <vector>

#include "optimizer/context.h"
#include "optimizer/rewrite.h"
#include "query/query_graph.h"

namespace rodin {

/// One input arc after translation to the physical schema.
struct ArcInfo {
  std::string var;
  std::string name;  // extent or view name
  NameKind kind = NameKind::kClass;
  const ClassDef* cls = nullptr;      // kClass
  bool is_self_delta = false;         // the self-arc of a recursive rule
  std::vector<PTCol> view_cols;       // dotted columns for derived arcs
  /// Equality conjunct attribute usable for horizontal-fragment pruning
  /// (filled by the generator when applicable).
};

/// One implicit-join step (paper: translateArc output). Steps are the units
/// the generator interleaves with explicit joins; consecutive steps can be
/// collapsed into a PIJ when a path index applies (the `collapse` action).
struct StepInfo {
  size_t id = 0;
  std::string root;      // arc variable or another step's out_var
  std::string attr;      // attribute traversed
  std::string out_var;   // generated or let-declared variable
  const ClassDef* target = nullptr;
  bool collection = false;
};

/// A predicate node translated onto the physical schema: leaves (arcs),
/// implicit-join steps, rewritten conjuncts and output projection. Every
/// expression references only (a) arc variables with at most one residual
/// attribute, (b) dotted derived columns, or (c) step variables with at
/// most one residual attribute — i.e. all multi-step traversals have been
/// decomposed into steps.
struct NormalizedSPJ {
  const PredicateNode* src = nullptr;
  std::string view;  // output name node
  std::vector<ArcInfo> arcs;
  std::vector<StepInfo> steps;
  std::vector<ExprPtr> conjuncts;
  std::vector<OutCol> outs;      // rewritten projection (view column order)
  std::vector<PTCol> out_cols;   // output columns with classes

  const StepInfo* FindStepByOut(const std::string& var) const;
  const ArcInfo* FindArc(const std::string& var) const;

  /// Variables a conjunct/expression needs bound before evaluation: the arc
  /// and step variables it references.
  std::vector<std::string> RequiredVars(const ExprPtr& e) const;
};

/// Translates one predicate node. `self_view` names the view whose
/// recursive rule this is ("" for base rules and plain spj's): its self-arc
/// becomes the semi-naive delta.
///
/// Sharing rules mirror tree-label factorization (§2.2): single-valued
/// steps with the same root and attribute are shared globally; collection
/// steps are shared only through declared path variables (lets), because
/// merging independent existential traversals would change semantics.
NormalizedSPJ Translate(const PredicateNode& node, const QueryGraph& graph,
                        const Schema& schema, OptContext& ctx,
                        const std::string& self_view = "");

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_TRANSLATE_H_
