#ifndef RODIN_OPTIMIZER_STRATEGY_H_
#define RODIN_OPTIMIZER_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/decision.h"
#include "optimizer/context.h"
#include "optimizer/rule.h"
#include "optimizer/transform.h"
#include "plan/pt.h"

namespace rodin {

class ThreadPool;

/// Instrumentation of one randomized-improvement run.
struct RandReport {
  size_t tried = 0;
  size_t accepted = 0;
  double initial_cost = 0;
  double final_cost = 0;
  /// The deadline / cancel tripped mid-search (anytime truncation).
  bool truncated = false;
};

/// Instrumentation of one restart of the parallel search. Everything here
/// depends only on (seed, restart index) — never on the worker that ran the
/// restart or on completion order — so two runs with different thread
/// counts produce element-wise identical vectors of these.
struct RestartReport {
  size_t tried = 0;
  size_t accepted = 0;
  size_t plans_explored = 0;
  double start_cost = 0;   // after the restart's perturbation
  double final_cost = 0;   // best cost the restart reached
  /// Order-sensitive FNV-1a digest of the restart's move stream (each
  /// applied move's name plus its accept/reject outcome). Equal digests
  /// across thread counts prove the searches explored the same moves.
  uint64_t move_digest = 0;
  /// The full move stream, recorded only when the caller's context has
  /// collect_decisions set. Workers append here (their restart's slot) so
  /// the shared DecisionLog is never written concurrently; the strategy
  /// merges the slots in restart order after the pool drains.
  std::vector<MoveDecision> moves;
  /// This restart's move loop stopped early on deadline / cancel.
  bool truncated = false;
};

/// Aggregate result of one ParallelStrategy::Improve call.
struct ParallelSearchReport {
  size_t threads = 1;
  size_t restarts = 0;
  size_t tried = 0;
  size_t accepted = 0;
  size_t plans_explored = 0;
  double initial_cost = 0;
  double final_cost = 0;
  /// Restart that produced the adopted plan (0 when the input plan won).
  size_t best_restart = 0;
  /// Some restart stopped early on deadline / cancel. The adopted plan is
  /// still the best of what *was* explored (anytime). A run whose budget
  /// never trips sets no flag and is move-for-move identical to an
  /// unbudgeted run — truncation is observable, not ambient.
  bool truncated = false;
  std::vector<RestartReport> per_restart;
};

/// The local move set of the randomized strategies (paper §4.5): join
/// commutativity, join-algorithm and access-method toggles, the collapse /
/// expand pair for path indices, and selection up/down shifts. Each move is
/// a Rule that rewrites exactly one matching site.
const std::vector<Rule>& LocalMoves();

/// Randomized re-optimization (paper §4.5, [IC90]): Iterative Improvement
/// or Simulated Annealing over the LocalMoves() neighbourhood, with restarts.
/// `plan` is improved in place (annotated); returns the run report.
RandReport RandomizedImprove(PTPtr& plan, OptContext& ctx,
                             const TransformOptions& options);

/// Parallel flavour of RandomizedImprove: the §4.5 restarts are independent
/// searches from perturbed copies of the start plan — embarrassingly
/// parallel — so they fan out across a worker pool and merge into a
/// mutex-guarded best-plan accumulator (cost is compared against a relaxed
/// atomic hint *before* the lock, keeping contention off the hot path).
///
/// Determinism: each restart draws from its own SplitMix64-derived RNG
/// stream (Rng::Stream(base, restart)), results merge by (cost, restart
/// index), and counters aggregate by restart slot. The chosen plan and the
/// full report are therefore identical for a given seed across *any* worker
/// count — a 1-thread and an 8-thread search explore the same move stream
/// per restart.
class ParallelStrategy {
 public:
  /// `threads` <= 1 runs the restarts inline on the calling thread (same
  /// code path, same results).
  explicit ParallelStrategy(size_t threads);
  ~ParallelStrategy();

  ParallelStrategy(const ParallelStrategy&) = delete;
  ParallelStrategy& operator=(const ParallelStrategy&) = delete;

  size_t threads() const { return threads_; }

  /// Improves `plan` in place (annotated); consumes one value of ctx.rng
  /// to derive the restart streams and adds the explored-plan total to
  /// ctx.plans_explored.
  ParallelSearchReport Improve(PTPtr& plan, OptContext& ctx,
                               const TransformOptions& options);

 private:
  size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ <= 1
};

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_STRATEGY_H_
