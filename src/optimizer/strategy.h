#ifndef RODIN_OPTIMIZER_STRATEGY_H_
#define RODIN_OPTIMIZER_STRATEGY_H_

#include <vector>

#include "optimizer/context.h"
#include "optimizer/rule.h"
#include "optimizer/transform.h"
#include "plan/pt.h"

namespace rodin {

/// Instrumentation of one randomized-improvement run.
struct RandReport {
  size_t tried = 0;
  size_t accepted = 0;
  double initial_cost = 0;
  double final_cost = 0;
};

/// The local move set of the randomized strategies (paper §4.5): join
/// commutativity, join-algorithm and access-method toggles, the collapse /
/// expand pair for path indices, and selection up/down shifts. Each move is
/// a Rule that rewrites exactly one matching site.
const std::vector<Rule>& LocalMoves();

/// Randomized re-optimization (paper §4.5, [IC90]): Iterative Improvement
/// or Simulated Annealing over the LocalMoves() neighbourhood, with restarts.
/// `plan` is improved in place (annotated); returns the run report.
RandReport RandomizedImprove(PTPtr& plan, OptContext& ctx,
                             const TransformOptions& options);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_STRATEGY_H_
