#ifndef RODIN_OPTIMIZER_BASELINE_H_
#define RODIN_OPTIMIZER_BASELINE_H_

#include "optimizer/optimizer.h"

namespace rodin {

/// The cost-controlled optimizer the paper proposes: DP join enumeration,
/// delayed push decision, Iterative-Improvement re-optimization.
OptimizerOptions CostBasedOptions(uint64_t seed = 1);

/// The deductive-DB baseline ([BR86]-style): selections, projections and
/// joins are pushed through recursion *irrevocably*, with no cost
/// comparison — the heuristic the paper argues is unsound for objects.
OptimizerOptions DeductiveOptions(uint64_t seed = 1);

/// The naive baseline: never pushes anything through recursion and uses a
/// greedy join order; no randomized improvement.
OptimizerOptions NaiveOptions(uint64_t seed = 1);

/// The exhaustive-enumeration strategy ([KZ88]-style): optimality at the
/// price of search time. Used by E8 to calibrate plan-quality ratios.
OptimizerOptions ExhaustiveOptions(uint64_t seed = 1);

/// Cost-based with Simulated Annealing instead of Iterative Improvement.
OptimizerOptions AnnealingOptions(uint64_t seed = 1);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_BASELINE_H_
