#include "optimizer/rewrite.h"

#include <functional>
#include <map>
#include <set>

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

const ViewDef* RewrittenGraph::FindView(const std::string& name) const {
  for (const ViewDef& v : views) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

namespace {

bool ReadsName(const PredicateNode& node, const std::string& name) {
  for (const Arc& a : node.inputs) {
    if (a.name == name) return true;
  }
  return false;
}

// Substitutes references to view variable `var` in `e`: a path var.col.rest
// becomes the producer's expression for `col` (already renamed into the
// consumer's namespace) with `rest` appended. Returns nullptr if some
// reference cannot be folded.
ExprPtr SubstituteViewVar(const ExprPtr& e, const std::string& var,
                          const std::map<std::string, ExprPtr>& col_exprs) {
  if (e == nullptr) return nullptr;
  if (e->kind() == ExprKind::kVarPath) {
    if (e->var() != var) return e;
    if (e->path().empty()) return nullptr;  // whole-tuple reference: no fold
    auto it = col_exprs.find(e->path()[0]);
    if (it == col_exprs.end()) return nullptr;
    const ExprPtr& repl = it->second;
    std::vector<std::string> rest(e->path().begin() + 1, e->path().end());
    if (rest.empty()) return repl;
    if (repl->kind() != ExprKind::kVarPath) return nullptr;
    std::vector<std::string> path = repl->path();
    path.insert(path.end(), rest.begin(), rest.end());
    return Expr::Path(repl->var(), std::move(path));
  }
  // Rebuild interior nodes.
  std::vector<ExprPtr> kids;
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = SubstituteViewVar(c, var, col_exprs);
    if (nc == nullptr) return nullptr;
    kids.push_back(std::move(nc));
  }
  switch (e->kind()) {
    case ExprKind::kCompare:
      return Expr::Cmp(e->compare_op(), kids[0], kids[1]);
    case ExprKind::kArith:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    case ExprKind::kAnd:
      return Expr::And(std::move(kids));
    case ExprKind::kOr:
      return Expr::Or(std::move(kids));
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    default:
      return e;
  }
}

// Renames every variable of `e` with prefix + "_".
ExprPtr RenameAll(const ExprPtr& e, const std::string& prefix,
                  const std::set<std::string>& vars) {
  ExprPtr out = e;
  for (const std::string& v : vars) {
    out = out->RenameVar(v, prefix + "_" + v);
  }
  return out;
}

}  // namespace

QueryGraph FoldViews(const QueryGraph& query, const Schema& schema) {
  (void)schema;
  QueryGraph g = query;
  bool changed = true;
  size_t guard = 0;
  while (changed && guard++ < 100) {
    changed = false;
    // Pick a foldable view: derived, non-recursive, single producer, not the
    // answer.
    for (const std::string& view : g.DerivedNames()) {
      if (view == g.answer) continue;
      if (g.IsRecursiveName(view)) continue;
      std::vector<const PredicateNode*> producers = g.ProducersOf(view);
      if (producers.size() != 1) continue;
      const PredicateNode producer = *producers[0];  // copy: g mutates below

      // Try to fold into every consumer; all must succeed.
      QueryGraph candidate = g;
      bool all_ok = true;
      for (PredicateNode& node : candidate.nodes) {
        if (node.output == view) continue;
        // Fold each arc reading the view.
        for (size_t ai = 0; ai < node.inputs.size();) {
          if (node.inputs[ai].name != view) {
            ++ai;
            continue;
          }
          const std::string v = node.inputs[ai].var;
          // Collect the producer's variable names for renaming.
          std::set<std::string> pvars;
          for (const Arc& a : producer.inputs) pvars.insert(a.var);
          for (const PathVar& l : producer.lets) pvars.insert(l.var);

          std::map<std::string, ExprPtr> col_exprs;
          for (const OutCol& c : producer.out) {
            col_exprs[c.name] = RenameAll(c.expr, v, pvars);
          }
          // Substitute view references in the consumer's expressions.
          ExprPtr new_pred =
              node.pred == nullptr ? nullptr
                                   : SubstituteViewVar(node.pred, v, col_exprs);
          if (node.pred != nullptr && new_pred == nullptr) {
            all_ok = false;
            break;
          }
          std::vector<OutCol> new_out;
          for (const OutCol& c : node.out) {
            ExprPtr ne = SubstituteViewVar(c.expr, v, col_exprs);
            if (ne == nullptr) {
              all_ok = false;
              break;
            }
            new_out.push_back(OutCol{c.name, std::move(ne)});
          }
          if (!all_ok) break;
          // Lets rooted at the view variable cannot be folded generically.
          for (const PathVar& l : node.lets) {
            if (l.root == v) {
              all_ok = false;
              break;
            }
          }
          if (!all_ok) break;

          node.pred = new_pred;
          node.out = std::move(new_out);
          node.inputs.erase(node.inputs.begin() + ai);
          for (const Arc& a : producer.inputs) {
            node.inputs.push_back(Arc{a.name, v + "_" + a.var});
          }
          for (const PathVar& l : producer.lets) {
            node.lets.push_back(
                PathVar{v + "_" + l.var, v + "_" + l.root, l.path});
          }
          if (producer.pred != nullptr) {
            ExprPtr p = RenameAll(producer.pred, v, pvars);
            node.pred = node.pred == nullptr ? p : Expr::And({node.pred, p});
          }
        }
        if (!all_ok) break;
      }
      if (!all_ok) continue;
      // Remove the producer node.
      for (size_t i = 0; i < candidate.nodes.size(); ++i) {
        if (candidate.nodes[i].output == view) {
          candidate.nodes.erase(candidate.nodes.begin() + i);
          break;
        }
      }
      g = std::move(candidate);
      changed = true;
      break;
    }
  }
  return g;
}

RewrittenGraph Rewrite(const QueryGraph& query, const Schema& schema,
                       bool fold_views) {
  RewrittenGraph out;
  if (fold_views) {
    out.folded_storage = FoldViews(query, schema);
    out.graph = &out.folded_storage;
  } else {
    out.graph = &query;
  }
  const QueryGraph& g = *out.graph;

  // Union action: group producers by output name; fixpoint action: split
  // into base and recursive producers and validate linear recursion.
  std::set<std::string> derived = g.DerivedNames();
  std::map<std::string, ViewDef> defs;
  for (const std::string& name : derived) {
    ViewDef def;
    def.name = name;
    def.recursive = g.IsRecursiveName(name);
    def.columns = g.ColumnsOf(name);
    for (const PredicateNode* p : g.ProducersOf(name)) {
      if (ReadsName(*p, name)) {
        size_t self_arcs = 0;
        for (const Arc& a : p->inputs) {
          if (a.name == name) ++self_arcs;
        }
        if (self_arcs != 1) {
          out.errors.push_back(StrFormat(
              "view %s: non-linear recursion (%zu self arcs in one rule)",
              name.c_str(), self_arcs));
        }
        def.rec.push_back(p);
      } else {
        def.base.push_back(p);
      }
    }
    if (def.recursive && def.base.empty()) {
      out.errors.push_back("recursive view " + name + " has no base rule");
    }
    if (!def.recursive && !def.rec.empty()) {
      out.errors.push_back("view " + name + " misclassified recursion");
    }
    // Mutual recursion across distinct names is out of scope (the paper's
    // fixpoint action handles one equation per name).
    if (def.recursive && def.rec.empty()) {
      out.errors.push_back("view " + name +
                           " is mutually recursive; only linear "
                           "self-recursion is supported");
    }
    defs[name] = std::move(def);
  }

  // Topological order: dependencies before consumers, answer last.
  std::set<std::string> visited;
  std::function<void(const std::string&)> visit = [&](const std::string& name) {
    if (visited.count(name) > 0 || defs.count(name) == 0) return;
    visited.insert(name);
    for (const PredicateNode* p : g.ProducersOf(name)) {
      for (const Arc& a : p->inputs) {
        if (a.name != name && derived.count(a.name) > 0) visit(a.name);
      }
    }
    out.views.push_back(defs[name]);
  };
  visit(g.answer);
  // Any views unreachable from the answer still get optimized last (they
  // are dead code but must not crash downstream stages).
  for (const std::string& name : derived) visit(name);

  (void)schema;
  return out;
}

}  // namespace rodin
