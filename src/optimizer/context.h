#ifndef RODIN_OPTIMIZER_CONTEXT_H_
#define RODIN_OPTIMIZER_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "storage/database.h"

namespace rodin {

namespace obs {
class Tracer;
}  // namespace obs
struct DecisionLog;

/// Join-enumeration strategy of generatePT (paper §4.4: a *generative*
/// strategy in the style of [Se79]).
enum class GenStrategy {
  kExhaustive,   // all orders (with best-cost pruning per completed plan)
  kDP,           // System-R dynamic programming over bound-unit sets
  kGreedy,       // cheapest-next-unit, single plan
  kRandomized,   // greedy start + Iterative Improvement over local moves
};

/// Randomized re-optimization strategy of transformPT (paper §4.5, [IC90]).
enum class RandStrategy {
  kNone,
  kIterativeImprovement,
  kSimulatedAnnealing,
};

const char* GenStrategyName(GenStrategy s);
const char* RandStrategyName(RandStrategy s);

/// Everything the optimizer stages share: the physical database, statistics,
/// cost model, and a deterministic RNG for the randomized strategies.
///
/// db/stats/cost are const and safely shared; the RNG, the counters and the
/// variable counter are private to one search thread. Parallel search gives
/// every restart its own OptContext (same const trio, its own Rng stream).
struct OptContext {
  const Database* db = nullptr;
  const Stats* stats = nullptr;
  const CostModel* cost = nullptr;
  Rng rng{1};

  /// Instrumentation: plans fully costed during the current optimization.
  size_t plans_explored = 0;

  /// Observability hooks (all optional; null/false = record nothing, the
  /// zero-cost default). `tracer` and `decisions` belong to the *caller's*
  /// context only — parallel restarts run with them null and collect into
  /// per-restart reports (merged deterministically by restart index), so
  /// the shared sinks are never written concurrently. `collect_decisions`
  /// is the flag workers inherit: it tells ImproveMoves to record its move
  /// stream into the restart report.
  obs::Tracer* tracer = nullptr;
  DecisionLog* decisions = nullptr;
  bool collect_decisions = false;

  /// The run's lifecycle budget (deadline / cancel), or null for none.
  /// Const and thread-safe to poll, so parallel restarts inherit the same
  /// pointer. transformPT polls it per local-search move and per saturation
  /// pass; tripping it truncates the search (anytime) rather than failing.
  const QueryContext* query = nullptr;

  /// Fresh generated variable ("v1", "v2", ...). Generated names use a
  /// prefix that cannot collide with user variables or dotted columns.
  std::string FreshVar() { return "v" + std::to_string(++var_counter_); }

  uint64_t var_counter_ = 0;
};

/// Per-stage instrumentation for the Figure 6 reproduction (E4): what each
/// stage did, at which granularity, and how long it took.
struct StageReport {
  std::string stage;        // rewrite / translate / generatePT / transformPT
  std::string granularity;  // per Figure 6
  std::string strategy;
  std::string nodes_generated;  // PT node kinds produced
  double micros = 0;
  size_t plans_explored = 0;
  /// The stage hit the deadline / cancel and returned its best-so-far
  /// result instead of completing (anytime transformPT).
  bool truncated = false;
};

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_CONTEXT_H_
