#ifndef RODIN_OPTIMIZER_GENERATE_H_
#define RODIN_OPTIMIZER_GENERATE_H_

#include <map>
#include <string>

#include "optimizer/context.h"
#include "optimizer/translate.h"
#include "plan/pt.h"

namespace rodin {

/// Result of optimizing one predicate node.
struct GenResult {
  PTPtr plan;
  double cost = 0;
  size_t plans_explored = 0;
};

/// Plans of already-optimized views, by name, with columns named after the
/// plain view columns. Consumers instantiate (clone + rename) them.
using ViewPlans = std::map<std::string, const PTNode*>;

/// generatePT (paper §4.4): builds the optimal PT for one predicate node by
/// a generative, bottom-up strategy. The enumeration interleaves:
///   - arc leaves (entities, deltas, instantiated view plans) joined by EJ
///     (nested-loop or index join),
///   - implicit-join steps (IJ), honouring root-variable dependencies,
///   - PIJ collapse of step chains matching a path index,
///   - eager selections (the `sel` action fires before `join`, §4.4),
///   - access-method choice for entity leaves (scan vs. B+-tree probe).
/// Left-deep join trees; horizontal fragments are unioned or pruned by
/// equality predicates on the partitioning attribute.
GenResult GenerateSPJ(const NormalizedSPJ& spj, OptContext& ctx,
                      GenStrategy strategy, const ViewPlans& views);

/// Instantiates a view plan for a consumer variable: clones it and renames
/// its output columns "col" -> "var.col" (rewriting the final projections
/// inside Fix/Union arms).
PTPtr InstantiateViewPlan(const PTNode& view_plan, const std::string& var);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_GENERATE_H_
