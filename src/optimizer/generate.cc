#include "optimizer/generate.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/string_util.h"
#include "optimizer/strategy.h"

namespace rodin {

namespace {

/// Whether every variable-path reference of `e` resolves against `plan`.
bool Evaluable(const PTNode& plan, const ExprPtr& e) {
  if (e == nullptr) return true;
  if (e->kind() == ExprKind::kVarPath) {
    int col = -1;
    std::vector<std::string> rest;
    return plan.ResolveVarPath(e->var(), e->path(), &col, &rest);
  }
  for (const ExprPtr& c : e->children()) {
    if (!Evaluable(plan, c)) return false;
  }
  return true;
}

/// Renames the plain output columns of a view plan to consumer-dotted names
/// by descending through Fix/Union to the arm projections.
void RenameCols(PTNode* node, const std::string& var) {
  if (node->kind == PTKind::kFix || node->kind == PTKind::kUnion) {
    for (auto& c : node->children) RenameCols(c.get(), var);
    node->cols = node->children[0]->cols;
    return;
  }
  RODIN_CHECK(node->kind == PTKind::kProj,
              "view plan must end in a projection");
  for (OutCol& c : node->proj) c.name = var + "." + c.name;
  for (PTCol& c : node->cols) c.name = var + "." + c.name;
}

/// One candidate plan during enumeration.
struct Candidate {
  PTPtr plan;
  uint32_t arc_mask = 0;
  uint64_t step_mask = 0;
  uint64_t conj_mask = 0;
  double cost = 0;
};

/// The enumeration engine shared by the three strategies.
class Generator {
 public:
  Generator(const NormalizedSPJ& spj, OptContext& ctx, const ViewPlans& views)
      : spj_(spj), ctx_(ctx), views_(views) {
    RODIN_CHECK(spj.arcs.size() <= 32, "too many arcs (max 32)");
    RODIN_CHECK(spj.steps.size() <= 64, "too many steps (max 64)");
    RODIN_CHECK(spj.conjuncts.size() <= 64, "too many conjuncts (max 64)");
  }

  GenResult Run(GenStrategy strategy);

 private:
  uint32_t all_arcs() const { return spj_.arcs.size() == 32
                                         ? 0xffffffffu
                                         : ((1u << spj_.arcs.size()) - 1); }
  uint64_t all_steps() const {
    return spj_.steps.size() == 64 ? ~0ull : ((1ull << spj_.steps.size()) - 1);
  }

  /// Applies every not-yet-consumed conjunct that became evaluable, as a Sel
  /// (the paper's eager `sel` action). Returns the new conjunct mask.
  uint64_t ApplyEagerSels(PTPtr& plan, uint64_t conj_mask) const {
    std::vector<ExprPtr> ready;
    for (size_t i = 0; i < spj_.conjuncts.size(); ++i) {
      if ((conj_mask >> i) & 1) continue;
      if (Evaluable(*plan, spj_.conjuncts[i])) {
        ready.push_back(spj_.conjuncts[i]);
        conj_mask |= (1ull << i);
      }
    }
    if (!ready.empty()) {
      plan = MakeSel(std::move(plan), ConjunctionOf(std::move(ready)));
    }
    return conj_mask;
  }

  /// Builds the leaf variants of one arc. Each variant may consume
  /// conjuncts (index accesses) — eager sels then run on top.
  std::vector<Candidate> LeafVariants(size_t arc_idx) const;

  /// All extensions of a candidate; each has exactly one more unit.
  std::vector<Candidate> Extensions(const Candidate& cand) const;

  /// Finalizes a complete candidate with the output projection.
  Candidate Finish(const Candidate& cand) const;

  double CostOf(PTNode* plan) const {
    ++ctx_.plans_explored;
    return ctx_.cost->Annotate(plan);
  }

  const NormalizedSPJ& spj_;
  OptContext& ctx_;
  const ViewPlans& views_;
};

std::vector<Candidate> Generator::LeafVariants(size_t arc_idx) const {
  const ArcInfo& arc = spj_.arcs[arc_idx];
  std::vector<Candidate> out;

  auto finish_variant = [&](PTPtr plan, uint64_t conj_mask) {
    Candidate c;
    c.conj_mask = ApplyEagerSels(plan, conj_mask);
    c.plan = std::move(plan);
    c.arc_mask = 1u << arc_idx;
    c.cost = CostOf(c.plan.get());
    out.push_back(std::move(c));
  };

  if (arc.is_self_delta) {
    finish_variant(MakeDelta(arc.name, arc.view_cols), 0);
    return out;
  }

  if (arc.kind == NameKind::kDerived) {
    auto it = views_.find(arc.name);
    RODIN_CHECK(it != views_.end(), "consumer before producer view plan");
    finish_variant(InstantiateViewPlan(*it->second, arc.var), 0);
    return out;
  }

  // Stored extent: classes scan as oid-binding leaves; relations too
  // (their tuples are addressed by pseudo-oids, columns read on demand).
  const Extent* extent = ctx_.db->FindExtent(arc.name);
  RODIN_CHECK(extent != nullptr, "arc over unknown extent");
  const ClassDef* cls = arc.cls;

  // Polymorphic scan: an arc over a class with subclasses covers the union
  // of all concrete extents (Composer instances ARE Persons). Rows stay
  // statically typed as the declared class; subclass records carry the
  // inherited attributes at the same storage positions.
  if (arc.kind == NameKind::kClass) {
    const std::vector<const ClassDef*> concrete =
        ctx_.db->schema().ConcreteClassesOf(cls);
    if (concrete.size() > 1) {
      std::vector<PTPtr> parts;
      for (const ClassDef* sub : concrete) {
        const Extent* sub_extent = ctx_.db->FindExtent(sub->name());
        for (uint16_t h = 0; h < sub_extent->num_hfrags(); ++h) {
          parts.push_back(
              MakeEntity(EntityRef{sub->name(), 0, h}, arc.var, cls));
        }
      }
      // Index-access variants are not offered on polymorphic scans (a
      // selection index covers one extent only).
      finish_variant(parts.size() == 1 ? std::move(parts[0])
                                       : MakeUnion(std::move(parts)),
                     0);
      return out;
    }
  }

  // Horizontal fragments: prune with an equality conjunct on the
  // partitioning attribute, else union all fragments.
  const HorizontalSpec* hspec = ctx_.db->config().FindHorizontal(arc.name);
  int pruned_hfrag = -1;
  if (hspec != nullptr && extent->num_hfrags() > 1) {
    for (const ExprPtr& c : spj_.conjuncts) {
      if (c->kind() != ExprKind::kCompare ||
          c->compare_op() != CompareOp::kEq) {
        continue;
      }
      const ExprPtr& l = c->children()[0];
      const ExprPtr& r = c->children()[1];
      const ExprPtr* path = nullptr;
      const ExprPtr* lit = nullptr;
      if (l->kind() == ExprKind::kVarPath && r->kind() == ExprKind::kLiteral) {
        path = &l;
        lit = &r;
      } else if (r->kind() == ExprKind::kVarPath &&
                 l->kind() == ExprKind::kLiteral) {
        path = &r;
        lit = &l;
      } else {
        continue;
      }
      if ((*path)->var() == arc.var && (*path)->path().size() == 1 &&
          (*path)->path()[0] == hspec->attr) {
        pruned_hfrag = static_cast<int>((*lit)->literal().Hash() %
                                        hspec->num_fragments);
        break;
      }
    }
  }

  auto make_entity = [&](uint16_t h) {
    return MakeEntity(EntityRef{arc.name, 0, h}, arc.var, cls);
  };

  PTPtr scan;
  if (extent->num_hfrags() > 1 && pruned_hfrag < 0) {
    std::vector<PTPtr> parts;
    for (uint16_t h = 0; h < extent->num_hfrags(); ++h) {
      parts.push_back(make_entity(h));
    }
    scan = MakeUnion(std::move(parts));
  } else {
    scan = make_entity(pruned_hfrag < 0 ? 0
                                        : static_cast<uint16_t>(pruned_hfrag));
  }
  finish_variant(std::move(scan), 0);

  // Index-access variants: one per (conjunct, index) pair applicable to
  // this arc's single-attribute predicates.
  for (size_t ci = 0; ci < spj_.conjuncts.size(); ++ci) {
    const ExprPtr& c = spj_.conjuncts[ci];
    if (c->kind() != ExprKind::kCompare) continue;
    const ExprPtr& l = c->children()[0];
    const ExprPtr& r = c->children()[1];
    const ExprPtr* path = nullptr;
    if (l->kind() == ExprKind::kVarPath && r->kind() == ExprKind::kLiteral) {
      path = &l;
    } else if (r->kind() == ExprKind::kVarPath &&
               l->kind() == ExprKind::kLiteral) {
      path = &r;
    } else {
      continue;
    }
    if ((*path)->var() != arc.var || (*path)->path().size() != 1) continue;
    const BTreeIndex* index =
        ctx_.db->FindSelIndex(arc.name, (*path)->path()[0]);
    if (index == nullptr) continue;
    const bool eq = c->compare_op() == CompareOp::kEq;
    if (!eq && c->compare_op() == CompareOp::kNe) continue;

    // Index access covers the whole extent; incompatible with fragment
    // pruning subtleties — the index spans all fragments.
    PTPtr leaf = make_entity(0);
    PTPtr sel = MakeSel(std::move(leaf), c);
    sel->sel_access = eq ? SelAccess::kIndexEq : SelAccess::kIndexRange;
    sel->sel_index = index;
    sel->sel_index_pred = c;
    finish_variant(std::move(sel), 1ull << ci);
  }
  return out;
}

std::vector<Candidate> Generator::Extensions(const Candidate& cand) const {
  std::vector<Candidate> out;

  // --- Step extensions (IJ) --------------------------------------------------
  for (size_t si = 0; si < spj_.steps.size(); ++si) {
    if ((cand.step_mask >> si) & 1) continue;
    const StepInfo& s = spj_.steps[si];
    int col = -1;
    std::vector<std::string> rest;
    if (!cand.plan->ResolveVarPath(s.root, {s.attr}, &col, &rest)) continue;
    Candidate next;
    next.arc_mask = cand.arc_mask;
    next.step_mask = cand.step_mask | (1ull << si);
    next.conj_mask = cand.conj_mask;
    PTPtr plan =
        MakeIJ(cand.plan->Clone(), s.root, s.attr, s.out_var, s.target);
    next.conj_mask = ApplyEagerSels(plan, next.conj_mask);
    next.plan = std::move(plan);
    next.cost = CostOf(next.plan.get());
    out.push_back(std::move(next));
  }

  // --- Inverse-join step extensions -------------------------------------------
  // A step x.A -> w whose attribute has a declared inverse (w.B = x, §2.1)
  // can instead scan the target class and join explicitly — cheaper when
  // dereferencing A is expensive (no clustering, thrashing buffer) or the
  // target side is already restricted.
  for (size_t si = 0; si < spj_.steps.size(); ++si) {
    if ((cand.step_mask >> si) & 1) continue;
    const StepInfo& st = spj_.steps[si];
    // Only true attribute traversals from an object column (a dotted
    // derived column already holds the reference; nothing to invert).
    int col = -1;
    std::vector<std::string> rest;
    if (!cand.plan->ResolveVarPath(st.root, {st.attr}, &col, &rest)) continue;
    if (rest.empty()) continue;
    const ClassDef* root_cls = cand.plan->cols[col].cls;
    if (root_cls == nullptr || st.target == nullptr) continue;
    const ClassDef* inv_cls = nullptr;
    std::string inv_attr;
    if (!ctx_.db->schema().FindInverse(root_cls, st.attr, &inv_cls,
                                       &inv_attr)) {
      continue;
    }
    ExprPtr pred = Expr::Eq(Expr::Path(st.out_var, {inv_attr}),
                            Expr::Path(st.root));
    PTPtr leaf = MakeEntity(EntityRef{inv_cls->name(), 0, 0}, st.out_var,
                            st.target);
    PTPtr ej = MakeEJ(cand.plan->Clone(), std::move(leaf), pred,
                      JoinAlgo::kNestedLoop);
    Candidate next;
    next.arc_mask = cand.arc_mask;
    next.step_mask = cand.step_mask | (1ull << si);
    PTPtr plan = std::move(ej);
    next.conj_mask = ApplyEagerSels(plan, cand.conj_mask);
    next.plan = std::move(plan);
    next.cost = CostOf(next.plan.get());
    out.push_back(std::move(next));
  }

  // --- PIJ extensions (collapse a pending chain onto a path index) -----------
  for (const auto& pidx : ctx_.db->path_indexes()) {
    // Locate the chain of pending steps matching this index.
    // First step: root bound in plan, class matches index root.
    for (size_t s0 = 0; s0 < spj_.steps.size(); ++s0) {
      if ((cand.step_mask >> s0) & 1) continue;
      const StepInfo& first = spj_.steps[s0];
      if (first.attr != pidx->path()[0]) continue;
      const PTCol* root_col = cand.plan->FindCol(first.root);
      if (root_col == nullptr || root_col->cls == nullptr ||
          root_col->cls->name() != pidx->root_class()) {
        continue;
      }
      // Chase the remaining steps of the index path.
      std::vector<size_t> chain = {s0};
      std::string cur = first.out_var;
      bool ok = true;
      for (size_t pi = 1; pi < pidx->path().size(); ++pi) {
        bool found = false;
        for (size_t si = 0; si < spj_.steps.size(); ++si) {
          if ((cand.step_mask >> si) & 1) continue;
          const StepInfo& s = spj_.steps[si];
          if (s.root == cur && s.attr == pidx->path()[pi]) {
            chain.push_back(si);
            cur = s.out_var;
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      std::vector<std::string> out_vars;
      std::vector<const ClassDef*> classes;
      uint64_t consumed = 0;
      for (size_t si : chain) {
        out_vars.push_back(spj_.steps[si].out_var);
        classes.push_back(spj_.steps[si].target);
        consumed |= (1ull << si);
      }
      Candidate next;
      next.arc_mask = cand.arc_mask;
      next.step_mask = cand.step_mask | consumed;
      next.conj_mask = cand.conj_mask;
      PTPtr plan = MakePIJ(cand.plan->Clone(), first.root,
                           pidx->path(), out_vars, classes, pidx.get());
      next.conj_mask = ApplyEagerSels(plan, next.conj_mask);
      next.plan = std::move(plan);
      next.cost = CostOf(next.plan.get());
      out.push_back(std::move(next));
    }
  }

  // --- Arc extensions (EJ) ----------------------------------------------------
  // First pass: arcs connected to the current plan by some conjunct.
  std::vector<size_t> connected;
  std::vector<size_t> disconnected;
  for (size_t ai = 0; ai < spj_.arcs.size(); ++ai) {
    if ((cand.arc_mask >> ai) & 1) continue;
    const std::string& var = spj_.arcs[ai].var;
    bool linked = false;
    for (size_t ci = 0; ci < spj_.conjuncts.size(); ++ci) {
      if ((cand.conj_mask >> ci) & 1) continue;
      const std::set<std::string> vars = spj_.conjuncts[ci]->FreeVars();
      if (vars.count(var) == 0) continue;
      // Does it also reference something already bound?
      for (const std::string& v : vars) {
        if (v != var && cand.plan->HasCol(v)) {
          linked = true;
          break;
        }
        // Dotted columns of derived arcs.
        if (v != var) {
          for (const PTCol& c : cand.plan->cols) {
            if (c.name == v || c.name.rfind(v + ".", 0) == 0) {
              linked = true;
              break;
            }
          }
        }
        if (linked) break;
      }
      if (linked) break;
    }
    (linked ? connected : disconnected).push_back(ai);
  }
  const std::vector<size_t>& arc_choices =
      connected.empty() ? disconnected : connected;

  for (size_t ai : arc_choices) {
    for (Candidate& leaf : LeafVariants(ai)) {
      // Conjunct bookkeeping: the leaf variant may already have consumed
      // some conjuncts (index access).
      const uint64_t base_mask = cand.conj_mask | leaf.conj_mask;

      // Nested-loop join; the join predicate is attached at the EJ.
      {
        PTPtr probe = MakeEJ(cand.plan->Clone(), leaf.plan->Clone(), nullptr,
                             JoinAlgo::kNestedLoop);
        std::vector<ExprPtr> join_preds;
        uint64_t conj_mask = base_mask;
        for (size_t ci = 0; ci < spj_.conjuncts.size(); ++ci) {
          if ((conj_mask >> ci) & 1) continue;
          if (Evaluable(*probe, spj_.conjuncts[ci])) {
            join_preds.push_back(spj_.conjuncts[ci]);
            conj_mask |= (1ull << ci);
          }
        }
        probe->pred = ConjunctionOf(join_preds);
        Candidate next;
        next.arc_mask = cand.arc_mask | (1u << ai);
        next.step_mask = cand.step_mask;
        PTPtr plan = std::move(probe);
        next.conj_mask = ApplyEagerSels(plan, conj_mask);
        next.plan = std::move(plan);
        next.cost = CostOf(next.plan.get());
        out.push_back(std::move(next));
      }

      // Index-join variant: inner must be a bare entity leaf and some
      // equality conjunct inner.attr = <outer expr> must have an index.
      if (leaf.plan->kind == PTKind::kEntity &&
          spj_.arcs[ai].kind != NameKind::kDerived) {
        for (size_t ci = 0; ci < spj_.conjuncts.size(); ++ci) {
          if ((base_mask >> ci) & 1) continue;
          const ExprPtr& c = spj_.conjuncts[ci];
          if (c->kind() != ExprKind::kCompare ||
              c->compare_op() != CompareOp::kEq) {
            continue;
          }
          const std::string& var = spj_.arcs[ai].var;
          auto inner_side = [&](const ExprPtr& e) {
            return e->kind() == ExprKind::kVarPath && e->var() == var &&
                   e->path().size() == 1;
          };
          const ExprPtr& l = c->children()[0];
          const ExprPtr& r = c->children()[1];
          const ExprPtr* inner = nullptr;
          const ExprPtr* outer = nullptr;
          if (inner_side(l) && r->FreeVars().count(var) == 0) {
            inner = &l;
            outer = &r;
          } else if (inner_side(r) && l->FreeVars().count(var) == 0) {
            inner = &r;
            outer = &l;
          } else {
            continue;
          }
          if (!Evaluable(*cand.plan, *outer)) continue;
          const BTreeIndex* index =
              ctx_.db->FindSelIndex(spj_.arcs[ai].name, (*inner)->path()[0]);
          if (index == nullptr) continue;

          PTPtr ej = MakeEJ(cand.plan->Clone(), leaf.plan->Clone(), c,
                            JoinAlgo::kIndexJoin);
          ej->join_index = index;
          ej->join_index_attr = (*inner)->path()[0];
          uint64_t conj_mask = base_mask | (1ull << ci);
          // Remaining evaluable conjuncts ride along in the EJ predicate.
          std::vector<ExprPtr> extra = {c};
          for (size_t cj = 0; cj < spj_.conjuncts.size(); ++cj) {
            if ((conj_mask >> cj) & 1) continue;
            if (Evaluable(*ej, spj_.conjuncts[cj])) {
              extra.push_back(spj_.conjuncts[cj]);
              conj_mask |= (1ull << cj);
            }
          }
          ej->pred = ConjunctionOf(extra);
          Candidate next;
          next.arc_mask = cand.arc_mask | (1u << ai);
          next.step_mask = cand.step_mask;
          PTPtr plan = std::move(ej);
          next.conj_mask = ApplyEagerSels(plan, conj_mask);
          next.plan = std::move(plan);
          next.cost = CostOf(next.plan.get());
          out.push_back(std::move(next));
        }
      }
    }
  }
  return out;
}

Candidate Generator::Finish(const Candidate& cand) const {
  Candidate done;
  done.arc_mask = cand.arc_mask;
  done.step_mask = cand.step_mask;
  done.conj_mask = cand.conj_mask;
  RODIN_CHECK(cand.conj_mask == (spj_.conjuncts.size() == 64
                                     ? ~0ull
                                     : ((1ull << spj_.conjuncts.size()) - 1)),
              "unconsumed conjuncts in a complete plan");
  done.plan = MakeProj(cand.plan->Clone(), spj_.outs, spj_.out_cols,
                       /*dedup=*/true);
  done.cost = CostOf(done.plan.get());
  return done;
}

GenResult Generator::Run(GenStrategy strategy) {
  const size_t explored_before = ctx_.plans_explored;
  GenResult result;

  const uint32_t target_arcs = all_arcs();
  const uint64_t target_steps = all_steps();
  auto complete = [&](const Candidate& c) {
    return c.arc_mask == target_arcs && c.step_mask == target_steps;
  };

  if (strategy == GenStrategy::kGreedy ||
      strategy == GenStrategy::kRandomized) {
    // Cheapest leaf, then cheapest extension until complete.
    Candidate cur;
    double best = -1;
    for (size_t ai = 0; ai < spj_.arcs.size(); ++ai) {
      for (Candidate& leaf : LeafVariants(ai)) {
        if (best < 0 || leaf.cost < best) {
          best = leaf.cost;
          cur = std::move(leaf);
        }
      }
    }
    while (!complete(cur)) {
      std::vector<Candidate> exts = Extensions(cur);
      RODIN_CHECK(!exts.empty(), "greedy generator stuck");
      size_t pick = 0;
      for (size_t i = 1; i < exts.size(); ++i) {
        if (exts[i].cost < exts[pick].cost) pick = i;
      }
      cur = std::move(exts[pick]);
    }
    Candidate done = Finish(cur);
    result.plan = std::move(done.plan);
    result.cost = done.cost;
    if (strategy == GenStrategy::kRandomized) {
      // Transformational spj optimization ([LV91]'s randomized strategy on
      // the generation search space): improve the greedy plan with the
      // local-move neighbourhood.
      TransformOptions options;
      options.rand = RandStrategy::kIterativeImprovement;
      options.rand_moves = 200;
      RandomizedImprove(result.plan, ctx_, options);
      result.cost = ctx_.cost->Annotate(result.plan.get());
    }
    result.plans_explored = ctx_.plans_explored - explored_before;
    return result;
  }

  if (strategy == GenStrategy::kDP) {
    // System-R style: best plan per (arc_mask, step_mask) state.
    std::map<std::pair<uint32_t, uint64_t>, Candidate> best;
    auto consider = [&](Candidate&& c) {
      auto key = std::make_pair(c.arc_mask, c.step_mask);
      auto it = best.find(key);
      if (it == best.end() || c.cost < it->second.cost) {
        best[key] = std::move(c);
      }
    };
    for (size_t ai = 0; ai < spj_.arcs.size(); ++ai) {
      for (Candidate& leaf : LeafVariants(ai)) consider(std::move(leaf));
    }
    // Expand states in increasing unit count.
    const size_t total_units = spj_.arcs.size() + spj_.steps.size();
    for (size_t units = 1; units < total_units; ++units) {
      std::vector<const Candidate*> frontier;
      for (const auto& [key, c] : best) {
        const size_t n = static_cast<size_t>(__builtin_popcount(key.first)) +
                         static_cast<size_t>(__builtin_popcountll(key.second));
        if (n == units) frontier.push_back(&c);
      }
      for (const Candidate* c : frontier) {
        for (Candidate& ext : Extensions(*c)) consider(std::move(ext));
      }
    }
    auto it = best.find({target_arcs, target_steps});
    RODIN_CHECK(it != best.end(), "DP generator found no complete plan");
    Candidate done = Finish(it->second);
    result.plan = std::move(done.plan);
    result.cost = done.cost;
    result.plans_explored = ctx_.plans_explored - explored_before;
    return result;
  }

  // Exhaustive: depth-first over all construction orders, keeping the best
  // completed plan. (The KZ88-style strategy the paper contrasts with.)
  Candidate best_done;
  bool have_best = false;
  std::vector<Candidate> stack;
  for (size_t ai = 0; ai < spj_.arcs.size(); ++ai) {
    for (Candidate& leaf : LeafVariants(ai)) stack.push_back(std::move(leaf));
  }
  size_t expansions = 0;
  constexpr size_t kMaxExpansions = 200000;
  while (!stack.empty() && expansions < kMaxExpansions) {
    Candidate cur = std::move(stack.back());
    stack.pop_back();
    if (complete(cur)) {
      Candidate done = Finish(cur);
      if (!have_best || done.cost < best_done.cost) {
        best_done = std::move(done);
        have_best = true;
      }
      continue;
    }
    ++expansions;
    for (Candidate& ext : Extensions(cur)) {
      if (have_best && ext.cost >= best_done.cost) continue;  // prune
      stack.push_back(std::move(ext));
    }
  }
  RODIN_CHECK(have_best, "exhaustive generator found no plan");
  result.plan = std::move(best_done.plan);
  result.cost = best_done.cost;
  result.plans_explored = ctx_.plans_explored - explored_before;
  return result;
}

}  // namespace

PTPtr InstantiateViewPlan(const PTNode& view_plan, const std::string& var) {
  PTPtr clone = view_plan.Clone();
  RenameCols(clone.get(), var);
  return clone;
}

GenResult GenerateSPJ(const NormalizedSPJ& spj, OptContext& ctx,
                      GenStrategy strategy, const ViewPlans& views) {
  Generator gen(spj, ctx, views);
  return gen.Run(strategy);
}

}  // namespace rodin
