#include "optimizer/optimizer.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/faults.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/strategy.h"
#include "optimizer/translate.h"

namespace rodin {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The budget poll at a stage boundary. Stages 1-3 are all-or-nothing, so a
/// tripped budget before stage `n` aborts the whole optimization; only
/// transformPT (stage 4) degrades to an anytime result instead. A forced
/// deadline from the fault injector ("stage=N") is reported identically to a
/// real one.
Status CheckStageBudget(const OptimizerOptions& options, int stage) {
  if (options.inject_faults &&
      FaultInjector::Global().ForceDeadlineAtStage(stage)) {
    return Status::Error(Status::Code::kDeadlineExceeded,
                         StrFormat("deadline exceeded (forced at stage %d)",
                                   stage));
  }
  if (options.query != nullptr) return options.query->Check();
  return Status::Ok();
}

}  // namespace

double EstimateFixIters(const NormalizedSPJ& rec, const std::string& delta_var,
                        const Stats& stats) {
  double best = 0;
  for (const ExprPtr& c : rec.conjuncts) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq) {
      continue;
    }
    const ExprPtr& l = c->children()[0];
    const ExprPtr& r = c->children()[1];
    if (l->kind() != ExprKind::kVarPath || r->kind() != ExprKind::kVarPath) {
      continue;
    }
    // One side must come from the delta, the other from a class arc through
    // a self-chaining attribute.
    for (int flip = 0; flip < 2; ++flip) {
      const ExprPtr& delta_side = flip == 0 ? l : r;
      const ExprPtr& class_side = flip == 0 ? r : l;
      if (delta_side->var() != delta_var) continue;
      const ArcInfo* arc = rec.FindArc(class_side->var());
      if (arc == nullptr || arc->kind != NameKind::kClass ||
          class_side->path().size() != 1) {
        continue;
      }
      const AttrStats& as =
          stats.Attr(arc->name, class_side->path()[0]);
      if (as.chain_depth_max > 0) {
        best = std::max(best, as.chain_depth_max);
      }
    }
  }
  return best > 0 ? best : kDefaultFixIterations;
}

Optimizer::Optimizer(Database* db, const Stats* stats, const CostModel* cost,
                     OptimizerOptions options)
    : db_(db), stats_(stats), cost_(cost), options_(options) {
  RODIN_CHECK(db != nullptr && stats != nullptr && cost != nullptr,
              "null optimizer inputs");
}

OptimizeResult Optimizer::Optimize(const QueryGraph& query) {
  return Optimize(query, ObsSink{});
}

OptimizeResult Optimizer::Optimize(const QueryGraph& query,
                                   const ObsSink& hooks) {
  OptimizeResult result;
  OptContext ctx;
  ctx.db = db_;
  ctx.stats = stats_;
  ctx.cost = cost_;
  ctx.rng = Rng(options_.seed);
  ctx.tracer = hooks.tracer;
  ctx.decisions = hooks.decisions;
  ctx.collect_decisions = hooks.decisions != nullptr;
  ctx.query = options_.query;

  obs::Tracer* tracer = hooks.tracer;
  uint64_t span = 0;

  const Schema& schema = db_->schema();

  // --- Stage 1: rewrite -------------------------------------------------------
  if (Status s = CheckStageBudget(options_, 1); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  if (tracer != nullptr) span = tracer->Begin("rewrite", "optimizer");
  auto t0 = std::chrono::steady_clock::now();
  RewrittenGraph rewritten = Rewrite(query, schema, options_.fold_views);
  if (!rewritten.ok()) {
    result.status = Status::Error(Status::Code::kOptimize,
                                  Join(rewritten.errors, "; "));
    if (tracer != nullptr) tracer->End(span);
    return result;
  }
  result.stages.push_back(StageReport{"rewrite", "entire query (graph)",
                                      "irrevocable", "Fix, Union",
                                      MicrosSince(t0), 0});
  if (tracer != nullptr) {
    tracer->AddArg(span, "views",
                   StrFormat("%zu", rewritten.views.size()));
    tracer->End(span);
  }

  // --- Stage 2: translate -----------------------------------------------------
  // One NormalizedSPJ per predicate node, bottom-up over views.
  if (Status s = CheckStageBudget(options_, 2); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  if (tracer != nullptr) span = tracer->Begin("translate", "optimizer");
  t0 = std::chrono::steady_clock::now();
  struct ViewWork {
    const ViewDef* view;
    std::vector<NormalizedSPJ> base;
    std::vector<NormalizedSPJ> rec;
  };
  std::vector<ViewWork> work;
  size_t steps_total = 0;
  for (const ViewDef& view : rewritten.views) {
    ViewWork w;
    w.view = &view;
    for (const PredicateNode* p : view.base) {
      w.base.push_back(Translate(*p, *rewritten.graph, schema, ctx));
      steps_total += w.base.back().steps.size();
    }
    for (const PredicateNode* p : view.rec) {
      w.rec.push_back(Translate(*p, *rewritten.graph, schema, ctx, view.name));
      steps_total += w.rec.back().steps.size();
    }
    work.push_back(std::move(w));
  }
  result.stages.push_back(StageReport{
      "translate", "one arc", "cost-based", "IJ, PIJ",
      MicrosSince(t0), steps_total});
  if (tracer != nullptr) {
    tracer->AddArg(span, "steps", StrFormat("%zu", steps_total));
    tracer->End(span);
  }

  // --- Stage 3: generatePT -----------------------------------------------------
  if (Status s = CheckStageBudget(options_, 3); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  if (tracer != nullptr) span = tracer->Begin("generatePT", "optimizer");
  t0 = std::chrono::steady_clock::now();
  const size_t explored_before = ctx.plans_explored;
  ViewPlans view_plans;
  std::vector<PTPtr> owned_plans;
  PTPtr answer_plan;
  for (ViewWork& w : work) {
    auto gen_union = [&](std::vector<NormalizedSPJ>& spjs) -> PTPtr {
      std::vector<PTPtr> parts;
      for (NormalizedSPJ& spj : spjs) {
        GenResult r = GenerateSPJ(spj, ctx, options_.gen_strategy, view_plans);
        parts.push_back(std::move(r.plan));
      }
      if (parts.size() == 1) return std::move(parts[0]);
      return MakeUnion(std::move(parts));
    };
    PTPtr plan = gen_union(w.base);
    if (w.view->recursive) {
      PTPtr rec = gen_union(w.rec);
      PTPtr fix = MakeFix(w.view->name, std::move(plan), std::move(rec));
      fix->naive_fix = options_.naive_fixpoint;
      // Iterations from chain statistics (first recursive rule's delta var).
      std::string delta_var;
      for (const ArcInfo& a : w.rec[0].arcs) {
        if (a.is_self_delta) delta_var = a.var;
      }
      fix->est_iters = EstimateFixIters(w.rec[0], delta_var, *stats_);
      plan = std::move(fix);
    }
    cost_->Annotate(plan.get());
    if (w.view->name == rewritten.graph->answer) {
      answer_plan = std::move(plan);
    } else {
      owned_plans.push_back(std::move(plan));
      view_plans[w.view->name] = owned_plans.back().get();
    }
  }
  if (answer_plan == nullptr) {
    result.status = Status::Error(Status::Code::kOptimize,
                                  "no plan produced for the answer");
    if (tracer != nullptr) tracer->End(span);
    return result;
  }
  result.stages.push_back(StageReport{
      "generatePT", "one predicate node", GenStrategyName(options_.gen_strategy),
      "EJ, Sel", MicrosSince(t0), ctx.plans_explored - explored_before});
  if (tracer != nullptr) {
    tracer->AddArg(span, "plans_explored",
                   StrFormat("%zu", ctx.plans_explored - explored_before));
    tracer->AddArg(span, "strategy", GenStrategyName(options_.gen_strategy));
    tracer->End(span);
  }

  // --- Stage 4: transformPT ----------------------------------------------------
  // A budget tripping at (or forced at) this boundary does not fail the run:
  // a costed plan already exists, so transformPT degrades to its anytime
  // path — compare the alternatives it has, skip the search.
  const bool force_truncate = !CheckStageBudget(options_, 4).ok();
  if (tracer != nullptr) span = tracer->Begin("transformPT", "optimizer");
  t0 = std::chrono::steady_clock::now();
  const size_t explored_before_t = ctx.plans_explored;
  TransformResult tr =
      TransformPT(std::move(answer_plan), ctx, options_.transform,
                  options_.search_threads, force_truncate);
  result.stages.push_back(StageReport{
      "transformPT", "entire query (PT)",
      StrFormat("cost-based + %s", RandStrategyName(options_.transform.rand)),
      "none", MicrosSince(t0), ctx.plans_explored - explored_before_t,
      tr.truncated});
  if (tracer != nullptr) {
    tracer->AddArg(span, "plans_explored",
                   StrFormat("%zu", ctx.plans_explored - explored_before_t));
    tracer->AddArg(span, "final_cost", tr.cost);
    tracer->End(span);
  }
  {
    static obs::Counter* opt_runs =
        obs::MetricsRegistry::Global().GetCounter("rodin.optimizer.runs");
    static obs::Counter* opt_plans = obs::MetricsRegistry::Global().GetCounter(
        "rodin.optimizer.plans_explored");
    opt_runs->Add(1);
    opt_plans->Add(ctx.plans_explored);
  }

  result.plan = std::move(tr.plan);
  result.cost = tr.cost;
  result.pushed_sel = tr.pushed_sel;
  result.pushed_join = tr.pushed_join;
  result.pushed_proj = tr.pushed_proj;
  result.pushed_variant_cost = tr.pushed_variant_cost;
  result.unpushed_variant_cost = tr.unpushed_variant_cost;
  result.plans_explored = ctx.plans_explored;
  return result;
}

}  // namespace rodin
