#ifndef RODIN_OPTIMIZER_RULE_H_
#define RODIN_OPTIMIZER_RULE_H_

#include <functional>
#include <string>
#include <vector>

#include "optimizer/context.h"
#include "plan/pt.h"

namespace rodin {

/// A declarative transformation action in the paper's sense (§4.1):
///
///     action:  F | constraint  ->  G
///
/// `apply_at` receives a subtree root (by owning reference). It plays both
/// the pattern F and the constraint: if the subtree matches and the
/// constraint holds, it replaces the subtree with G (rewriting in place) and
/// returns true; otherwise it must leave the subtree untouched and return
/// false. Context patterns like the paper's pt(X) — "any PT containing X" —
/// are expressed by the rule inspecting descendants of the site.
class Rule {
 public:
  using ApplyFn = std::function<bool(PTPtr& site, OptContext& ctx)>;

  Rule(std::string name, ApplyFn apply_at)
      : name_(std::move(name)), apply_at_(std::move(apply_at)) {}

  const std::string& name() const { return name_; }

  bool ApplyAt(PTPtr& site, OptContext& ctx) const {
    return apply_at_(site, ctx);
  }

 private:
  std::string name_;
  ApplyFn apply_at_;
};

/// Calls `fn` on every owning subtree reference in preorder (root first).
/// `fn` may rewrite the subtree it receives; children of a rewritten subtree
/// are still visited (of the new tree).
void VisitSubtrees(PTPtr& root, const std::function<void(PTPtr&)>& fn);

/// Collects pointers to every owning subtree reference, preorder. The
/// pointers are invalidated by any rewrite — use for read-only scans or
/// single rewrites.
std::vector<PTPtr*> CollectSubtrees(PTPtr& root);

/// Applies the rule at the first matching site (preorder); returns whether
/// it fired.
bool ApplyRuleOnce(PTPtr& root, const Rule& rule, OptContext& ctx);

/// Applies the rule until saturation (the paper's irrevocable strategies);
/// returns the number of applications. `max_applications` guards against
/// non-terminating rule sets.
size_t ApplyRuleSaturate(PTPtr& root, const Rule& rule, OptContext& ctx,
                         size_t max_applications = 1000);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_RULE_H_
