#include "optimizer/translate.h"

#include <map>

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

const StepInfo* NormalizedSPJ::FindStepByOut(const std::string& var) const {
  for (const StepInfo& s : steps) {
    if (s.out_var == var) return &s;
  }
  return nullptr;
}

const ArcInfo* NormalizedSPJ::FindArc(const std::string& var) const {
  for (const ArcInfo& a : arcs) {
    if (a.var == var) return &a;
  }
  return nullptr;
}

std::vector<std::string> NormalizedSPJ::RequiredVars(const ExprPtr& e) const {
  std::vector<std::string> out;
  if (e == nullptr) return out;
  for (const std::string& v : e->FreeVars()) out.push_back(v);
  return out;
}

namespace {

/// Incremental path decomposer: walks paths from bound variables,
/// introducing StepInfos for every non-terminal object traversal.
class Walker {
 public:
  Walker(const PredicateNode& node, const QueryGraph& graph,
         const Schema& schema, OptContext& ctx, NormalizedSPJ* out)
      : node_(node), graph_(graph), schema_(schema), ctx_(ctx), out_(out) {}

  /// Class of the objects bound to `var` (nullptr for derived-tuple vars).
  const ClassDef* ClassOfVar(const std::string& var) const {
    if (const ArcInfo* a = out_->FindArc(var)) return a->cls;
    if (const StepInfo* s = out_->FindStepByOut(var)) return s->target;
    return nullptr;
  }

  const ArcInfo* DerivedArc(const std::string& var) const {
    const ArcInfo* a = out_->FindArc(var);
    if (a != nullptr && a->kind != NameKind::kClass) return a;
    return nullptr;
  }

  /// Result of resolving one attribute from a variable's context.
  struct AttrResolution {
    bool traversable = false;  // object-valued: can become a step
    bool collection = false;
    const ClassDef* target = nullptr;
  };

  AttrResolution ResolveAttr(const std::string& var,
                             const std::string& attr) const {
    AttrResolution r;
    if (const ClassDef* cls = ClassOfVar(var)) {
      const Attribute* a = cls->FindAttribute(attr);
      RODIN_CHECK(a != nullptr, "translate: attribute missing");
      if (a->computed) return r;  // method: terminal
      const Type* t = a->type;
      if (t->IsCollection()) {
        r.collection = true;
        t = t->elem();
      }
      if (t->kind() == TypeKind::kObject) {
        r.traversable = true;
        r.target = schema_.FindClass(t->class_name());
      }
      return r;
    }
    const ArcInfo* a = DerivedArc(var);
    RODIN_CHECK(a != nullptr, "translate: variable without binding");
    if (a->kind == NameKind::kRelation) {
      const RelationDef* rel = schema_.FindRelation(a->name);
      const Attribute* ra = rel->FindAttribute(attr);
      RODIN_CHECK(ra != nullptr, "translate: relation column missing");
      const Type* t = ra->type;
      if (t->IsCollection()) {
        r.collection = true;
        t = t->elem();
      }
      if (t->kind() == TypeKind::kObject) {
        r.traversable = true;
        r.target = schema_.FindClass(t->class_name());
      }
      return r;
    }
    // Derived view column.
    const ClassDef* col_cls = graph_.ColumnClass(a->name, attr, schema_);
    if (col_cls != nullptr) {
      r.traversable = true;
      r.target = col_cls;
    }
    return r;
  }

  std::string IntroduceStep(const std::string& root, const std::string& attr,
                            const AttrResolution& res,
                            const std::string& forced_out = "") {
    // Single-valued steps are shared globally (tree-label factorization);
    // collection steps and let-declared steps stay private.
    const bool shareable = !res.collection && forced_out.empty();
    if (shareable) {
      auto it = shared_.find({root, attr});
      if (it != shared_.end()) return it->second;
    }
    StepInfo step;
    step.id = out_->steps.size();
    step.root = root;
    step.attr = attr;
    step.out_var = forced_out.empty() ? ctx_.FreshVar() : forced_out;
    step.target = res.target;
    step.collection = res.collection;
    out_->steps.push_back(step);
    if (shareable) shared_[{root, attr}] = step.out_var;
    return step.out_var;
  }

  /// Decomposes (var, path): introduces steps for non-terminal object
  /// traversals and returns the rewritten expression referencing the last
  /// variable with at most one residual attribute.
  ExprPtr WalkPath(const std::string& var, const std::vector<std::string>& path) {
    std::string cur = var;
    for (size_t i = 0; i < path.size(); ++i) {
      const AttrResolution res = ResolveAttr(cur, path[i]);
      const bool last = (i + 1 == path.size());
      if (last || !res.traversable) {
        // Terminal step (atomic, method, or reference value): keep as a
        // single residual attribute. Non-traversable non-terminal paths are
        // rejected by query validation before we get here.
        RODIN_CHECK(last, "translate: residual path after terminal attribute");
        return Expr::Path(cur, {path[i]});
      }
      cur = IntroduceStep(cur, path[i], res);
    }
    return Expr::Path(cur);
  }

  /// Declares a let chain: steps for every hop, the final one bound to the
  /// let variable itself.
  void WalkLet(const PathVar& let) {
    std::string cur = let.root;
    for (size_t i = 0; i < let.path.size(); ++i) {
      const AttrResolution res = ResolveAttr(cur, let.path[i]);
      RODIN_CHECK(res.traversable, "let path must traverse objects");
      const bool last = (i + 1 == let.path.size());
      cur = IntroduceStep(cur, let.path[i], res, last ? let.var : "");
    }
  }

  /// Rewrites a whole expression tree through WalkPath.
  ExprPtr Rewrite(const ExprPtr& e) {
    if (e == nullptr) return nullptr;
    switch (e->kind()) {
      case ExprKind::kLiteral:
        return e;
      case ExprKind::kVarPath:
        if (e->path().empty()) return e;
        return WalkPath(e->var(), e->path());
      case ExprKind::kCompare:
        return Expr::Cmp(e->compare_op(), Rewrite(e->children()[0]),
                         Rewrite(e->children()[1]));
      case ExprKind::kArith:
        return Expr::Arith(e->arith_op(), Rewrite(e->children()[0]),
                           Rewrite(e->children()[1]));
      case ExprKind::kAnd: {
        std::vector<ExprPtr> kids;
        for (const ExprPtr& c : e->children()) kids.push_back(Rewrite(c));
        return Expr::And(std::move(kids));
      }
      case ExprKind::kOr: {
        std::vector<ExprPtr> kids;
        for (const ExprPtr& c : e->children()) kids.push_back(Rewrite(c));
        return Expr::Or(std::move(kids));
      }
      case ExprKind::kNot:
        return Expr::Not(Rewrite(e->children()[0]));
    }
    return e;
  }

  /// Class of the values produced by a rewritten output expression.
  const ClassDef* OutClass(const ExprPtr& e) const {
    if (e == nullptr || e->kind() != ExprKind::kVarPath) return nullptr;
    if (e->path().empty()) return ClassOfVar(e->var());
    // One residual attribute: object-valued if it resolves to a class.
    if (const ClassDef* cls = ClassOfVar(e->var())) {
      const Attribute* a = cls->FindAttribute(e->path()[0]);
      if (a == nullptr || a->computed) return nullptr;
      const Type* t = a->type;
      if (t->IsCollection()) t = t->elem();
      if (t->kind() == TypeKind::kObject) {
        return schema_.FindClass(t->class_name());
      }
      return nullptr;
    }
    if (const ArcInfo* a = DerivedArc(e->var())) {
      if (a->kind == NameKind::kRelation) {
        const RelationDef* rel = schema_.FindRelation(a->name);
        const Attribute* ra = rel->FindAttribute(e->path()[0]);
        if (ra == nullptr) return nullptr;
        const Type* t = ra->type;
        if (t->IsCollection()) t = t->elem();
        return t->kind() == TypeKind::kObject
                   ? schema_.FindClass(t->class_name())
                   : nullptr;
      }
      return graph_.ColumnClass(a->name, e->path()[0], schema_);
    }
    return nullptr;
  }

 private:
  const PredicateNode& node_;
  const QueryGraph& graph_;
  const Schema& schema_;
  OptContext& ctx_;
  NormalizedSPJ* out_;
  std::map<std::pair<std::string, std::string>, std::string> shared_;
};

}  // namespace

NormalizedSPJ Translate(const PredicateNode& node, const QueryGraph& graph,
                        const Schema& schema, OptContext& ctx,
                        const std::string& self_view) {
  NormalizedSPJ out;
  out.src = &node;
  out.view = node.output;

  // Arcs.
  for (const Arc& arc : node.inputs) {
    ArcInfo info;
    info.var = arc.var;
    info.name = arc.name;
    if (const ClassDef* cls = schema.FindClass(arc.name)) {
      info.kind = NameKind::kClass;
      info.cls = cls;
    } else if (schema.FindRelation(arc.name) != nullptr) {
      info.kind = NameKind::kRelation;
      const RelationDef* rel = schema.FindRelation(arc.name);
      for (const Attribute& a : rel->AllAttributes()) {
        const Type* t = a.type;
        const ClassDef* cls = nullptr;
        const Type* tt = t->IsCollection() ? t->elem() : t;
        if (tt->kind() == TypeKind::kObject) {
          cls = schema.FindClass(tt->class_name());
        }
        info.view_cols.push_back(PTCol{arc.var + "." + a.name, cls});
      }
    } else {
      info.kind = NameKind::kDerived;
      info.is_self_delta = (arc.name == self_view);
      for (const std::string& col : graph.ColumnsOf(arc.name)) {
        info.view_cols.push_back(
            PTCol{arc.var + "." + col, graph.ColumnClass(arc.name, col, schema)});
      }
    }
    out.arcs.push_back(std::move(info));
  }

  Walker walker(node, graph, schema, ctx, &out);

  // Let chains first (they define shared traversal prefixes).
  for (const PathVar& let : node.lets) walker.WalkLet(let);

  // Conjuncts.
  if (node.pred != nullptr) {
    for (const ExprPtr& c : node.pred->Conjuncts()) {
      out.conjuncts.push_back(walker.Rewrite(c));
    }
  }

  // Output projection.
  for (const OutCol& c : node.out) {
    ExprPtr e = walker.Rewrite(c.expr);
    out.out_cols.push_back(PTCol{c.name, walker.OutClass(e)});
    out.outs.push_back(OutCol{c.name, std::move(e)});
  }

  return out;
}

}  // namespace rodin
