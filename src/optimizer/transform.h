#ifndef RODIN_OPTIMIZER_TRANSFORM_H_
#define RODIN_OPTIMIZER_TRANSFORM_H_

#include <string>
#include <vector>

#include "optimizer/context.h"
#include "optimizer/rule.h"
#include "plan/pt.h"

namespace rodin {

/// Options controlling transformPT (paper §4.5).
struct TransformOptions {
  bool enable_push_sel = true;
  bool enable_push_join = true;
  bool enable_push_proj = true;
  /// Baselines: `always_push` mimics the deductive heuristic (irrevocable
  /// push, no comparison); `never_push` skips pushing entirely.
  bool always_push = false;
  bool never_push = false;

  RandStrategy rand = RandStrategy::kIterativeImprovement;
  size_t rand_moves = 300;      // move attempts per start
  size_t rand_local_stop = 30;  // consecutive rejects ending a start
  size_t rand_restarts = 2;
  double sa_initial_temp = 0.1;  // fraction of plan cost
  double sa_cooling = 0.9;
  /// Worker threads for the randomized re-optimization. With > 1 the
  /// restarts fan out over a ThreadPool (see ParallelStrategy); the chosen
  /// plan stays deterministic for a given seed — identical, in fact, for
  /// any thread count, because restarts use index-derived RNG streams.
  size_t search_threads = 1;
};

/// Result of transformPT with instrumentation.
struct TransformResult {
  PTPtr plan;
  double cost = 0;
  bool pushed_sel = false;
  bool pushed_join = false;
  bool pushed_proj = false;
  size_t push_applications = 0;
  size_t moves_tried = 0;
  size_t moves_accepted = 0;
  double pushed_variant_cost = -1;    // cost of the fully pushed alternative
  double unpushed_variant_cost = -1;  // cost of the never-pushed alternative
};

/// transformPT: generates the fully *pushed* alternative of `plan` by
/// saturating the push actions (filter for selections, the analogous join
/// action, and projection pushing), re-optimizes both alternatives with the
/// randomized strategy, and keeps the cheaper — the paper's delayed,
/// cost-controlled decision. `plan` must be annotated.
TransformResult TransformPT(PTPtr plan, OptContext& ctx,
                            const TransformOptions& options);

// --- Individual push actions (exposed for tests and benches) ---------------

/// The paper's `filter` action: pushes one selection (with the implicit-join
/// steps supporting it) through a fixpoint, into both the base and the
/// recursive arm. Returns true if some site matched and was rewritten.
bool PushSelThroughFix(PTPtr& root, OptContext& ctx);

/// Pushes one explicit join (with its non-recursive side) through a
/// fixpoint as a filtering semijoin on both arms (§4.5).
bool PushJoinThroughFix(PTPtr& root, OptContext& ctx);

/// Pushes one single-attribute projection step (an IJ used only to read one
/// atomic attribute) through a fixpoint by extending the view's columns.
bool PushProjThroughFix(PTPtr& root, OptContext& ctx);

/// The `collapse` action (§4.3) as a standalone rule: rewrites a chain of
/// IJ nodes matching a path index into one PIJ node. Returns applications.
size_t CollapseIJChains(PTPtr& root, OptContext& ctx);

/// Rebuilds a unary node (Sel / IJ / PIJ / Proj) of the same shape as
/// `proto` on a new child. Shared by the push actions and the local moves.
PTPtr ReRootUnary(const PTNode& proto, PTPtr child);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_TRANSFORM_H_
