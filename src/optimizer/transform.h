#ifndef RODIN_OPTIMIZER_TRANSFORM_H_
#define RODIN_OPTIMIZER_TRANSFORM_H_

#include <string>
#include <vector>

#include "optimizer/context.h"
#include "optimizer/rule.h"
#include "plan/pt.h"

namespace rodin {

/// Options controlling transformPT (paper §4.5).
struct TransformOptions {
  bool enable_push_sel = true;
  bool enable_push_join = true;
  bool enable_push_proj = true;
  /// Baselines: `always_push` mimics the deductive heuristic (irrevocable
  /// push, no comparison); `never_push` skips pushing entirely.
  bool always_push = false;
  bool never_push = false;

  RandStrategy rand = RandStrategy::kIterativeImprovement;
  size_t rand_moves = 300;      // move attempts per start
  size_t rand_local_stop = 30;  // consecutive rejects ending a start
  size_t rand_restarts = 2;
  double sa_initial_temp = 0.1;  // fraction of plan cost
  double sa_cooling = 0.9;
};

/// Result of transformPT with instrumentation.
struct TransformResult {
  PTPtr plan;
  double cost = 0;
  bool pushed_sel = false;
  bool pushed_join = false;
  bool pushed_proj = false;
  size_t push_applications = 0;
  size_t moves_tried = 0;
  size_t moves_accepted = 0;
  double pushed_variant_cost = -1;    // cost of the fully pushed alternative
  double unpushed_variant_cost = -1;  // cost of the never-pushed alternative
  /// The deadline / cancel tripped mid-search: `plan` is the best costed
  /// alternative found up to that point (anytime), not the saturated result.
  bool truncated = false;
};

/// transformPT: generates the fully *pushed* alternative of `plan` by
/// saturating the push actions (filter for selections, the analogous join
/// action, and projection pushing), re-optimizes both alternatives with the
/// randomized strategy, and keeps the cheaper — the paper's delayed,
/// cost-controlled decision. `plan` must be annotated.
///
/// transformPT is *anytime*: it polls ctx.query per push-saturation pass and
/// per local-search move; on deadline/cancel it stops searching and returns
/// the best costed plan found so far with `truncated` set, never an error.
/// `search_threads` is the restart-level parallelism of the randomized
/// search (canonical knob: OptimizerOptions::search_threads).
/// `force_truncate` makes the call behave as if the budget were already
/// tripped on entry (used when a deadline fires exactly at the stage-4
/// boundary): both alternatives are costed and compared, but no saturation
/// pass or randomized search runs.
TransformResult TransformPT(PTPtr plan, OptContext& ctx,
                            const TransformOptions& options,
                            size_t search_threads = 1,
                            bool force_truncate = false);

// --- Individual push actions (exposed for tests and benches) ---------------

/// The paper's `filter` action: pushes one selection (with the implicit-join
/// steps supporting it) through a fixpoint, into both the base and the
/// recursive arm. Returns true if some site matched and was rewritten.
bool PushSelThroughFix(PTPtr& root, OptContext& ctx);

/// Pushes one explicit join (with its non-recursive side) through a
/// fixpoint as a filtering semijoin on both arms (§4.5).
bool PushJoinThroughFix(PTPtr& root, OptContext& ctx);

/// Pushes one single-attribute projection step (an IJ used only to read one
/// atomic attribute) through a fixpoint by extending the view's columns.
bool PushProjThroughFix(PTPtr& root, OptContext& ctx);

/// The `collapse` action (§4.3) as a standalone rule: rewrites a chain of
/// IJ nodes matching a path index into one PIJ node. Returns applications.
size_t CollapseIJChains(PTPtr& root, OptContext& ctx);

/// Rebuilds a unary node (Sel / IJ / PIJ / Proj) of the same shape as
/// `proto` on a new child. Shared by the push actions and the local moves.
PTPtr ReRootUnary(const PTNode& proto, PTPtr child);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_TRANSFORM_H_
