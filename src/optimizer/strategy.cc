#include "optimizer/strategy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace rodin {

namespace {

bool Evaluable(const PTNode& plan, const ExprPtr& e) {
  if (e == nullptr) return true;
  if (e->kind() == ExprKind::kVarPath) {
    int col = -1;
    std::vector<std::string> rest;
    return plan.ResolveVarPath(e->var(), e->path(), &col, &rest);
  }
  for (const ExprPtr& c : e->children()) {
    if (!Evaluable(plan, c)) return false;
  }
  return true;
}

// Splits pred's conjuncts into (probe-compatible eq conjunct on
// entity.attr-with-index, everything else). Used by the EJ algo toggle.
bool FindIndexableJoinConjunct(const PTNode& ej, OptContext& ctx,
                               const BTreeIndex** index, std::string* attr) {
  const PTNode& inner = *ej.children[1];
  if (inner.kind != PTKind::kEntity || ej.pred == nullptr) return false;
  for (const ExprPtr& c : ej.pred->Conjuncts()) {
    if (c->kind() != ExprKind::kCompare ||
        c->compare_op() != CompareOp::kEq) {
      continue;
    }
    auto inner_side = [&](const ExprPtr& e) {
      return e->kind() == ExprKind::kVarPath && e->var() == inner.binding &&
             e->path().size() == 1;
    };
    const ExprPtr& l = c->children()[0];
    const ExprPtr& r = c->children()[1];
    const ExprPtr* in = nullptr;
    const ExprPtr* out = nullptr;
    if (inner_side(l) && r->FreeVars().count(inner.binding) == 0) {
      in = &l;
      out = &r;
    } else if (inner_side(r) && l->FreeVars().count(inner.binding) == 0) {
      in = &r;
      out = &l;
    } else {
      continue;
    }
    if (!Evaluable(*ej.children[0], *out)) continue;
    const BTreeIndex* idx =
        ctx.db->FindSelIndex(inner.entity.extent, (*in)->path()[0]);
    if (idx == nullptr) continue;
    *index = idx;
    *attr = (*in)->path()[0];
    return true;
  }
  return false;
}

std::vector<Rule> BuildMoves() {
  std::vector<Rule> moves;

  // Join commutativity (nested loop only; an index join is directional).
  moves.emplace_back("swap-ej", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kEJ || n->algo != JoinAlgo::kNestedLoop) {
      return false;
    }
    std::swap(n->children[0], n->children[1]);
    n->cols = n->children[0]->cols;
    n->cols.insert(n->cols.end(), n->children[1]->cols.begin(),
                   n->children[1]->cols.end());
    return true;
  });

  // Nested loop -> index join.
  moves.emplace_back("ej-to-index", [](PTPtr& site, OptContext& ctx) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kEJ || n->algo != JoinAlgo::kNestedLoop) {
      return false;
    }
    const BTreeIndex* index = nullptr;
    std::string attr;
    if (!FindIndexableJoinConjunct(*n, ctx, &index, &attr)) return false;
    n->algo = JoinAlgo::kIndexJoin;
    n->join_index = index;
    n->join_index_attr = attr;
    return true;
  });

  // Index join -> nested loop.
  moves.emplace_back("ej-to-nl", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kEJ || n->algo != JoinAlgo::kIndexJoin) {
      return false;
    }
    n->algo = JoinAlgo::kNestedLoop;
    n->join_index = nullptr;
    n->join_index_attr.clear();
    return true;
  });

  // Sequential scan -> index access for a Sel over an entity.
  moves.emplace_back("sel-to-index", [](PTPtr& site, OptContext& ctx) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kSel || n->sel_access != SelAccess::kSeqScan ||
        n->pred == nullptr || n->children[0]->kind != PTKind::kEntity) {
      return false;
    }
    const PTNode& entity = *n->children[0];
    for (const ExprPtr& c : n->pred->Conjuncts()) {
      if (c->kind() != ExprKind::kCompare) continue;
      const ExprPtr& l = c->children()[0];
      const ExprPtr& r = c->children()[1];
      const ExprPtr* path = nullptr;
      if (l->kind() == ExprKind::kVarPath && r->kind() == ExprKind::kLiteral) {
        path = &l;
      } else if (r->kind() == ExprKind::kVarPath &&
                 l->kind() == ExprKind::kLiteral) {
        path = &r;
      } else {
        continue;
      }
      if ((*path)->var() != entity.binding || (*path)->path().size() != 1) {
        continue;
      }
      if (c->compare_op() == CompareOp::kNe) continue;
      const BTreeIndex* index =
          ctx.db->FindSelIndex(entity.entity.extent, (*path)->path()[0]);
      if (index == nullptr) continue;
      n->sel_access = c->compare_op() == CompareOp::kEq
                          ? SelAccess::kIndexEq
                          : SelAccess::kIndexRange;
      n->sel_index = index;
      n->sel_index_pred = c;
      return true;
    }
    return false;
  });

  // Index access -> sequential scan.
  moves.emplace_back("sel-to-scan", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kSel || n->sel_access == SelAccess::kSeqScan) {
      return false;
    }
    n->sel_access = SelAccess::kSeqScan;
    n->sel_index = nullptr;
    n->sel_index_pred = nullptr;
    return true;
  });

  // Collapse an IJ chain into a PIJ (the §4.3 collapse action as a move).
  moves.emplace_back("collapse-ij", [](PTPtr& site, OptContext& ctx) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kIJ || n->children[0]->kind != PTKind::kIJ) {
      return false;
    }
    // Gather the downward straight chain ending at `n`.
    std::vector<PTNode*> chain = {n};
    while (chain.back()->children[0]->kind == PTKind::kIJ &&
           chain.back()->src_var == chain.back()->children[0]->out_var) {
      chain.push_back(chain.back()->children[0].get());
    }
    if (chain.size() < 2) return false;
    std::reverse(chain.begin(), chain.end());
    for (size_t start = 0; start + 2 <= chain.size(); ++start) {
      std::vector<std::string> path;
      std::vector<std::string> out_vars;
      std::vector<const ClassDef*> classes;
      for (size_t i = start; i < chain.size(); ++i) {
        path.push_back(chain[i]->attr);
        out_vars.push_back(chain[i]->out_var);
        classes.push_back(chain[i]->target);
      }
      const PTNode& bottom_child = *chain[start]->children[0];
      const PTCol* root_col = bottom_child.FindCol(chain[start]->src_var);
      if (root_col == nullptr || root_col->cls == nullptr) continue;
      const PathIndex* index =
          ctx.db->FindPathIndex(root_col->cls->name(), path);
      if (index == nullptr) continue;
      site = MakePIJ(chain[start]->children[0]->Clone(), chain[start]->src_var,
                     path, out_vars, classes, index);
      return true;
    }
    return false;
  });

  // Expand a PIJ back into its IJ chain.
  moves.emplace_back("expand-pij", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kPIJ) return false;
    for (const std::string& v : n->path_out_vars) {
      if (v.empty()) return false;
    }
    // Step classes from the node's columns.
    PTPtr cur = n->children[0]->Clone();
    std::string root = n->src_var;
    for (size_t i = 0; i < n->path.size(); ++i) {
      const PTCol* col = n->FindCol(n->path_out_vars[i]);
      const ClassDef* cls = col == nullptr ? nullptr : col->cls;
      cur = MakeIJ(std::move(cur), root, n->path[i], n->path_out_vars[i], cls);
      root = n->path_out_vars[i];
    }
    site = std::move(cur);
    return true;
  });

  // Join associativity: EJ(EJ(A,B), C) <-> EJ(A, EJ(B,C)). Conjuncts of
  // both joins are pooled and re-attached where they first become
  // evaluable; a rotation that strands a conjunct is rejected. Together
  // with swap-ej this lets the randomized strategies reach any join order.
  auto rotate = [](PTPtr& site, bool to_right) -> bool {
    PTNode* n = site.get();
    if (n->kind != PTKind::kEJ || n->algo != JoinAlgo::kNestedLoop) {
      return false;
    }
    const int nested_idx = to_right ? 0 : 1;
    PTNode* nested = n->children[nested_idx].get();
    if (nested->kind != PTKind::kEJ || nested->algo != JoinAlgo::kNestedLoop) {
      return false;
    }
    // Pieces: to_right: ((A ⋈ B) ⋈ C) -> (A ⋈ (B ⋈ C));
    //         to_left:  (A ⋈ (B ⋈ C)) -> ((A ⋈ B) ⋈ C).
    PTPtr a = to_right ? nested->children[0]->Clone()
                       : n->children[0]->Clone();
    PTPtr b_part = to_right ? nested->children[1]->Clone()
                            : nested->children[0]->Clone();
    PTPtr c_part = to_right ? n->children[1]->Clone()
                            : nested->children[1]->Clone();
    std::vector<ExprPtr> pool;
    for (const ExprPtr& p : {n->pred, nested->pred}) {
      if (p == nullptr) continue;
      for (const ExprPtr& c : p->Conjuncts()) pool.push_back(c);
    }
    PTPtr inner = to_right
                      ? MakeEJ(std::move(b_part), std::move(c_part), nullptr,
                               JoinAlgo::kNestedLoop)
                      : MakeEJ(std::move(a), std::move(b_part), nullptr,
                               JoinAlgo::kNestedLoop);
    std::vector<ExprPtr> inner_preds;
    std::vector<ExprPtr> outer_preds;
    for (const ExprPtr& c : pool) {
      (Evaluable(*inner, c) ? inner_preds : outer_preds).push_back(c);
    }
    inner->pred = ConjunctionOf(std::move(inner_preds));
    PTPtr outer = to_right
                      ? MakeEJ(std::move(a), std::move(inner), nullptr,
                               JoinAlgo::kNestedLoop)
                      : MakeEJ(std::move(inner), std::move(c_part), nullptr,
                               JoinAlgo::kNestedLoop);
    for (const ExprPtr& c : outer_preds) {
      if (!Evaluable(*outer, c)) return false;  // stranded conjunct
    }
    outer->pred = ConjunctionOf(std::move(outer_preds));
    site = std::move(outer);
    return true;
  };
  moves.emplace_back("rotate-ej-right", [rotate](PTPtr& site, OptContext&) {
    return rotate(site, true);
  });
  moves.emplace_back("rotate-ej-left", [rotate](PTPtr& site, OptContext&) {
    return rotate(site, false);
  });

  // Distribute a join over a union (the transformation the paper's
  // conclusion singles out as efficiently explorable in this framework):
  // EJ(Union(a, b, ...), c) -> Union(EJ(a, c), EJ(b, c), ...).
  moves.emplace_back("distribute-ej-over-union", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kEJ || n->algo != JoinAlgo::kNestedLoop) {
      return false;
    }
    if (n->children[0]->kind != PTKind::kUnion) return false;
    PTNode* u = n->children[0].get();
    std::vector<PTPtr> parts;
    for (auto& member : u->children) {
      parts.push_back(MakeEJ(member->Clone(), n->children[1]->Clone(),
                             n->pred, JoinAlgo::kNestedLoop));
    }
    site = MakeUnion(std::move(parts));
    return true;
  });

  // Factor a union of structurally identical joins back together:
  // Union(EJ(a, c), EJ(b, c)) -> EJ(Union(a, b), c).
  moves.emplace_back("factor-union-of-ej", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kUnion) return false;
    for (const auto& member : n->children) {
      if (member->kind != PTKind::kEJ ||
          member->algo != JoinAlgo::kNestedLoop) {
        return false;
      }
    }
    const PTNode& first = *n->children[0];
    const std::string inner_fp = first.children[1]->Fingerprint();
    const std::string pred_fp =
        first.pred == nullptr ? "" : first.pred->ToString();
    for (const auto& member : n->children) {
      if (member->children[1]->Fingerprint() != inner_fp) return false;
      const std::string p =
          member->pred == nullptr ? "" : member->pred->ToString();
      if (p != pred_fp) return false;
    }
    std::vector<PTPtr> outers;
    for (auto& member : n->children) {
      outers.push_back(member->children[0]->Clone());
    }
    site = MakeEJ(MakeUnion(std::move(outers)), first.children[1]->Clone(),
                  first.pred, JoinAlgo::kNestedLoop);
    return true;
  });

  // Move a selection below its unary child (Sel(X(c)) -> X(Sel(c))).
  moves.emplace_back("sel-down", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kSel || n->sel_access != SelAccess::kSeqScan) {
      return false;
    }
    PTNode* child = n->children[0].get();
    if (child->kind != PTKind::kIJ && child->kind != PTKind::kPIJ) {
      return false;
    }
    if (!Evaluable(*child->children[0], n->pred)) return false;
    PTPtr inner_sel = MakeSel(child->children[0]->Clone(), n->pred);
    site = ReRootUnary(*child, std::move(inner_sel));
    return true;
  });

  // Move a selection above its unary parent (X(Sel(c)) -> Sel(X(c))).
  moves.emplace_back("sel-up", [](PTPtr& site, OptContext&) {
    PTNode* n = site.get();
    if (n->kind != PTKind::kIJ && n->kind != PTKind::kPIJ) return false;
    PTNode* child = n->children[0].get();
    if (child->kind != PTKind::kSel ||
        child->sel_access != SelAccess::kSeqScan) {
      return false;
    }
    PTPtr lifted = ReRootUnary(*n, child->children[0]->Clone());
    site = MakeSel(std::move(lifted), child->pred);
    return true;
  });

  return moves;
}

/// Picks a random applicable (site, move) pair and applies it. Ancestor
/// column lists are recomputed afterwards: a move may reorder a subtree's
/// output columns (swap-ej, rotations), and stale positional schemas above
/// it would silently rebind variables. Returns the applied move (nullptr
/// when no attempt fired).
const Rule* ApplyRandomMove(PTPtr& plan, OptContext& ctx) {
  const std::vector<Rule>& moves = LocalMoves();
  std::vector<PTPtr*> sites = CollectSubtrees(plan);
  constexpr size_t kAttempts = 24;
  for (size_t i = 0; i < kAttempts; ++i) {
    PTPtr* site = sites[ctx.rng.Below(sites.size())];
    const Rule& move = moves[ctx.rng.Below(moves.size())];
    if (move.ApplyAt(*site, ctx)) {
      RecomputePTCols(plan.get(), ctx.db->schema());
      return &move;
    }
  }
  return nullptr;
}

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

/// One improvement start: the II/SA move loop of paper §4.5 on `cur`
/// (annotated, cost `cur_cost`), promoting improvements into
/// (best, best_cost). Shared by the sequential and the parallel strategies
/// so both explore the exact same neighbourhood per RNG stream.
void ImproveMoves(PTPtr& cur, double& cur_cost, PTPtr& best, double& best_cost,
                  OptContext& ctx, const TransformOptions& options,
                  RestartReport* report) {
  double temp = options.sa_initial_temp * std::max(1.0, cur_cost);
  size_t rejects = 0;
  for (size_t m = 0;
       m < options.rand_moves && rejects < options.rand_local_stop; ++m) {
    // Anytime checkpoint: (best, best_cost) always hold a complete costed
    // plan, so stopping mid-loop loses nothing but unexplored moves. A run
    // whose budget never trips takes the identical move stream as an
    // unbudgeted run (the poll consumes no RNG draws).
    if (ctx.query != nullptr && ctx.query->Expired()) {
      report->truncated = true;
      break;
    }
    PTPtr cand = cur->Clone();
    const Rule* move = ApplyRandomMove(cand, ctx);
    if (move == nullptr) {
      ++rejects;
      continue;
    }
    ++report->tried;
    cand->InvalidateEstimates();
    const double cand_cost = ctx.cost->Annotate(cand.get());
    ++ctx.plans_explored;
    bool accept = cand_cost < cur_cost;
    if (!accept && options.rand == RandStrategy::kSimulatedAnnealing &&
        temp > 0) {
      accept = ctx.rng.NextDouble() <
               std::exp((cur_cost - cand_cost) / temp);
      temp *= options.sa_cooling;
    }
    report->move_digest =
        FnvMix(report->move_digest, move->name().data(), move->name().size());
    const unsigned char accept_byte = accept ? 1 : 0;
    report->move_digest = FnvMix(report->move_digest, &accept_byte, 1);
    if (ctx.collect_decisions) {
      report->moves.push_back(
          MoveDecision{move->name(), cur_cost, cand_cost, accept, 0});
    }
    if (accept) {
      cur = std::move(cand);
      cur_cost = cand_cost;
      ++report->accepted;
      rejects = 0;
      if (cur_cost < best_cost) {
        best = cur->Clone();
        best_cost = cur_cost;
      }
    } else {
      ++rejects;
    }
  }
}

}  // namespace

const std::vector<Rule>& LocalMoves() {
  static const std::vector<Rule>& moves = *new std::vector<Rule>(BuildMoves());
  return moves;
}

RandReport RandomizedImprove(PTPtr& plan, OptContext& ctx,
                             const TransformOptions& options) {
  RandReport report;
  report.initial_cost = ctx.cost->Annotate(plan.get());
  report.final_cost = report.initial_cost;
  if (options.rand == RandStrategy::kNone) return report;

  PTPtr best = plan->Clone();
  double best_cost = report.initial_cost;

  for (size_t restart = 0; restart <= options.rand_restarts; ++restart) {
    PTPtr cur = best->Clone();
    double cur_cost = best_cost;
    if (restart > 0) {
      // Perturb: a few unconditional random moves to escape the basin.
      for (int i = 0; i < 3; ++i) ApplyRandomMove(cur, ctx);
      cur->InvalidateEstimates();
      cur_cost = ctx.cost->Annotate(cur.get());
    }
    RestartReport rr;
    ImproveMoves(cur, cur_cost, best, best_cost, ctx, options, &rr);
    report.tried += rr.tried;
    report.accepted += rr.accepted;
    report.truncated = report.truncated || rr.truncated;
    if (ctx.decisions != nullptr) {
      for (MoveDecision& d : rr.moves) {
        d.restart = restart;
        ctx.decisions->moves.push_back(std::move(d));
      }
    }
  }

  plan = std::move(best);
  report.final_cost = ctx.cost->Annotate(plan.get());
  return report;
}

ParallelStrategy::ParallelStrategy(size_t threads)
    : threads_(std::max<size_t>(1, threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ParallelStrategy::~ParallelStrategy() = default;

ParallelSearchReport ParallelStrategy::Improve(PTPtr& plan, OptContext& ctx,
                                               const TransformOptions& options) {
  ParallelSearchReport report;
  report.threads = threads_;
  report.initial_cost = ctx.cost->Annotate(plan.get());
  report.final_cost = report.initial_cost;
  if (options.rand == RandStrategy::kNone) return report;

  const size_t restarts = options.rand_restarts + 1;
  report.restarts = restarts;
  report.per_restart.resize(restarts);

  // One value of the caller's RNG seeds every restart stream, so the whole
  // search is a pure function of (seed, restart index).
  const uint64_t stream_base = ctx.rng.Next();
  const PTNode& origin = *plan;  // workers Clone() from it; read-only

  // The best-plan accumulator. `hint` is a monotonically decreasing copy of
  // best_cost read without the lock: restarts that cannot win (the common
  // case) never touch the mutex.
  std::mutex mu;
  PTPtr best;               // guarded by mu; null = input plan still best
  double best_cost = report.initial_cost;  // guarded by mu
  size_t best_restart = 0;  // guarded by mu
  std::atomic<double> hint{report.initial_cost};

  auto run_restart = [&](size_t r) {
    OptContext local;
    local.db = ctx.db;
    local.stats = ctx.stats;
    local.cost = ctx.cost;
    local.rng = Rng::Stream(stream_base, r);
    // Workers inherit the flag but never the sinks: decisions land in the
    // restart's report slot and merge deterministically below. They also
    // inherit the budget pointer (const, thread-safe to poll), so every
    // restart can truncate independently.
    local.collect_decisions = ctx.collect_decisions;
    local.query = ctx.query;
    RestartReport& rr = report.per_restart[r];  // index-keyed: no races

    PTPtr cur = origin.Clone();
    double cur_cost = local.cost->Annotate(cur.get());
    if (r > 0) {
      // Perturb away from the common start to diversify the basins.
      for (int i = 0; i < 3; ++i) ApplyRandomMove(cur, local);
      cur->InvalidateEstimates();
      cur_cost = local.cost->Annotate(cur.get());
    }
    rr.start_cost = cur_cost;

    PTPtr restart_best = cur->Clone();
    double restart_best_cost = cur_cost;
    ImproveMoves(cur, cur_cost, restart_best, restart_best_cost, local,
                 options, &rr);
    rr.final_cost = restart_best_cost;
    rr.plans_explored = local.plans_explored;

    // Publish. The winner is the lexicographic minimum over (cost, restart
    // index), which no completion order can change; `<=` in the pre-lock
    // check lets equal-cost lower-index restarts through to the tie-break.
    if (restart_best_cost <= hint.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu);
      const bool wins =
          restart_best_cost < best_cost ||
          (best != nullptr && restart_best_cost == best_cost &&
           r < best_restart);
      if (wins) {
        best = std::move(restart_best);
        best_cost = restart_best_cost;
        best_restart = r;
        hint.store(best_cost, std::memory_order_relaxed);
      }
    }
  };

  if (pool_ == nullptr) {
    for (size_t r = 0; r < restarts; ++r) run_restart(r);
  } else {
    for (size_t r = 0; r < restarts; ++r) {
      pool_->Submit([&run_restart, r] { run_restart(r); });
    }
    pool_->Wait();
  }

  for (size_t r = 0; r < report.per_restart.size(); ++r) {
    RestartReport& rr = report.per_restart[r];
    report.tried += rr.tried;
    report.accepted += rr.accepted;
    report.plans_explored += rr.plans_explored;
    report.truncated = report.truncated || rr.truncated;
    if (ctx.decisions != nullptr) {
      for (MoveDecision& d : rr.moves) {
        d.restart = r;
        ctx.decisions->moves.push_back(std::move(d));
      }
    }
  }
  ctx.plans_explored += report.plans_explored;

  // Search counters. Per-restart values are pure functions of (seed,
  // restart index), so these totals are identical at any thread count.
  {
    static obs::Counter* tried = obs::MetricsRegistry::Global().GetCounter(
        "rodin.search.moves_tried");
    static obs::Counter* accepted = obs::MetricsRegistry::Global().GetCounter(
        "rodin.search.moves_accepted");
    static obs::Counter* rejected = obs::MetricsRegistry::Global().GetCounter(
        "rodin.search.moves_rejected");
    static obs::Counter* restarts_c = obs::MetricsRegistry::Global().GetCounter(
        "rodin.search.restarts");
    tried->Add(report.tried);
    accepted->Add(report.accepted);
    rejected->Add(report.tried - report.accepted);
    restarts_c->Add(report.restarts);
  }

  if (best != nullptr) plan = std::move(best);
  report.best_restart = best_restart;
  report.final_cost = ctx.cost->Annotate(plan.get());
  return report;
}

}  // namespace rodin
