#ifndef RODIN_OPTIMIZER_REWRITE_H_
#define RODIN_OPTIMIZER_REWRITE_H_

#include <string>
#include <vector>

#include "query/query_graph.h"

namespace rodin {

/// One derived name node after rewriting: its producers grouped (the
/// paper's `union` action) and split into base and recursive parts (the
/// `fixpoint` action — fixpointRecursion(Name) holds iff `recursive`).
struct ViewDef {
  std::string name;
  bool recursive = false;
  std::vector<const PredicateNode*> base;  // producers not reading the view
  std::vector<const PredicateNode*> rec;   // linear recursive producers
  std::vector<std::string> columns;
};

/// Result of the rewrite stage (paper §4.2): an irrevocable, saturating
/// analysis of the query graph. No cost decisions here.
struct RewrittenGraph {
  /// The graph the views refer to. When folding fired this points at
  /// `folded_storage`, otherwise at the input graph.
  const QueryGraph* graph = nullptr;
  QueryGraph folded_storage;

  /// Views in dependency order (a view precedes its consumers); the answer
  /// view is last.
  std::vector<ViewDef> views;

  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  const ViewDef* FindView(const std::string& name) const;
};

/// Runs the union and fixpoint actions (and, optionally, the fold action
/// the paper mentions for eliminating non-recursive view definitions).
RewrittenGraph Rewrite(const QueryGraph& query, const Schema& schema,
                       bool fold_views = false);

/// Inlines every non-recursive, single-producer view into its consumers.
/// Views whose consumption cannot be folded (non-path producer expressions
/// under residual paths) are left in place.
QueryGraph FoldViews(const QueryGraph& query, const Schema& schema);

}  // namespace rodin

#endif  // RODIN_OPTIMIZER_REWRITE_H_
