#include "optimizer/transform.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "optimizer/strategy.h"

namespace rodin {

namespace {

bool IsChainKind(PTKind kind) {
  return kind == PTKind::kSel || kind == PTKind::kIJ || kind == PTKind::kPIJ;
}

/// Rebuilds a unary node of the same shape as `proto` on a new child.
PTPtr ReRootImpl(const PTNode& proto, PTPtr child) {
  switch (proto.kind) {
    case PTKind::kSel: {
      PTPtr n = MakeSel(std::move(child), proto.pred);
      n->sel_access = proto.sel_access;
      n->sel_index = proto.sel_index;
      n->sel_index_pred = proto.sel_index_pred;
      return n;
    }
    case PTKind::kIJ:
      return MakeIJ(std::move(child), proto.src_var, proto.attr, proto.out_var,
                    proto.target);
    case PTKind::kPIJ: {
      std::vector<const ClassDef*> classes;
      for (const std::string& v : proto.path_out_vars) {
        const ClassDef* cls = nullptr;
        if (!v.empty()) {
          const PTCol* col = proto.FindCol(v);
          if (col != nullptr) cls = col->cls;
        }
        classes.push_back(cls);
      }
      return MakePIJ(std::move(child), proto.src_var, proto.path,
                     proto.path_out_vars, classes, proto.path_index);
    }
    case PTKind::kProj:
      return MakeProj(std::move(child), proto.proj, proto.cols, proto.dedup);
    default:
      RODIN_CHECK(false, "ReRoot on non-unary node");
      return nullptr;
  }
}

/// Output variables a chain node introduces.
std::vector<std::string> IntroducedVars(const PTNode& node) {
  std::vector<std::string> out;
  if (node.kind == PTKind::kIJ) out.push_back(node.out_var);
  if (node.kind == PTKind::kPIJ) {
    for (const std::string& v : node.path_out_vars) {
      if (!v.empty()) out.push_back(v);
    }
  }
  return out;
}

/// Column names a node's own expressions resolve against its child.
/// Returns resolved column names (not raw variable names).
void NodeColUses(const PTNode& node, std::set<std::string>* used) {
  const PTNode* child =
      node.children.empty() ? nullptr : node.children[0].get();
  auto use_expr = [&](const ExprPtr& e, const PTNode& against) {
    if (e == nullptr) return;
    for (const auto& [var, path] : e->VarPaths()) {
      int col = -1;
      std::vector<std::string> rest;
      if (against.ResolveVarPath(var, path, &col, &rest)) {
        used->insert(against.cols[col].name);
      }
    }
  };
  switch (node.kind) {
    case PTKind::kSel:
      if (child != nullptr) use_expr(node.pred, *child);
      break;
    case PTKind::kProj:
      for (const OutCol& c : node.proj) {
        if (child != nullptr) use_expr(c.expr, *child);
      }
      break;
    case PTKind::kEJ:
      use_expr(node.pred, node);  // spans both children
      break;
    case PTKind::kIJ: {
      if (child != nullptr) {
        int col = -1;
        std::vector<std::string> rest;
        if (child->ResolveVarPath(node.src_var, {node.attr}, &col, &rest)) {
          used->insert(child->cols[col].name);
        }
      }
      break;
    }
    case PTKind::kPIJ:
      used->insert(node.src_var);
      break;
    default:
      break;
  }
}

/// True if any node of `tree` (excluding the nodes in `exclude`) resolves a
/// reference onto one of `vars` (column names).
bool TreeUsesVars(const PTNode& tree, const std::set<const PTNode*>& exclude,
                  const std::set<std::string>& vars) {
  if (exclude.count(&tree) == 0) {
    std::set<std::string> used;
    NodeColUses(tree, &used);
    for (const std::string& v : used) {
      if (vars.count(v) > 0) return true;
    }
  }
  for (const auto& c : tree.children) {
    if (TreeUsesVars(*c, exclude, vars)) return true;
  }
  return false;
}

/// Finds the delta leaf of `fix_name` inside `tree` (nullptr if absent).
const PTNode* FindDelta(const PTNode& tree, const std::string& fix_name) {
  if (tree.kind == PTKind::kDelta && tree.fix_name == fix_name) return &tree;
  for (const auto& c : tree.children) {
    const PTNode* d = FindDelta(*c, fix_name);
    if (d != nullptr) return d;
  }
  return nullptr;
}

/// An arm of a Fix node must end (at its root) in a projection producing the
/// view columns. Returns it, descending through Unions.
const PTNode* ArmProj(const PTNode& arm) {
  if (arm.kind == PTKind::kProj) return &arm;
  if (arm.kind == PTKind::kUnion) return ArmProj(*arm.children[0]);
  return nullptr;
}

/// Verbatim-copy check (the paper's canPush / [KL86] condition): in the
/// recursive arm, the projection entry for fix column `col_name` must be a
/// plain copy of the corresponding delta column — only then does a filter on
/// that column commute with the fixpoint.
bool RecArmCopiesCol(const PTNode& fix, const std::string& col_name) {
  const PTNode& rec = *fix.children[1];
  const PTNode* proj = ArmProj(rec);
  if (proj == nullptr) return false;
  const PTNode* delta = FindDelta(rec, fix.fix_name);
  if (delta == nullptr) return false;
  // Position of the column in the fix output.
  int pos = -1;
  for (size_t i = 0; i < fix.cols.size(); ++i) {
    if (fix.cols[i].name == col_name) pos = static_cast<int>(i);
  }
  if (pos < 0 || pos >= static_cast<int>(delta->cols.size())) return false;
  // The projection entry with this name.
  const OutCol* entry = nullptr;
  for (const OutCol& c : proj->proj) {
    if (c.name == col_name) entry = &c;
  }
  if (entry == nullptr || entry->expr == nullptr) return false;
  if (entry->expr->kind() != ExprKind::kVarPath) return false;
  const PTNode& proj_child = *proj->children[0];
  int col = -1;
  std::vector<std::string> rest;
  if (!proj_child.ResolveVarPath(entry->expr->var(), entry->expr->path(), &col,
                                 &rest)) {
    return false;
  }
  return rest.empty() && proj_child.cols[col].name == delta->cols[pos].name;
}

/// Wraps `arm` (cloned) with the support chain + a selection (or a join),
/// then an identity projection back to the arm's columns.
PTPtr WrapArm(const PTNode& arm, const std::vector<const PTNode*>& support,
              const ExprPtr& pred, const PTNode* join_other, JoinAlgo algo,
              const BTreeIndex* join_index, const std::string& join_index_attr) {
  const std::vector<PTCol> arm_cols = arm.cols;
  PTPtr plan = arm.Clone();
  // Support nodes were collected top-down; apply bottom-up.
  for (auto it = support.rbegin(); it != support.rend(); ++it) {
    plan = ReRootUnary(**it, std::move(plan));
  }
  if (join_other != nullptr) {
    PTPtr ej = MakeEJ(std::move(plan), join_other->Clone(), pred, algo);
    ej->join_index = join_index;
    ej->join_index_attr = join_index_attr;
    plan = std::move(ej);
  } else if (pred != nullptr) {
    plan = MakeSel(std::move(plan), pred);
  }
  std::vector<OutCol> identity;
  for (const PTCol& c : arm_cols) {
    identity.push_back(OutCol{c.name, Expr::Path(c.name)});
  }
  return MakeProj(std::move(plan), std::move(identity), arm_cols,
                  /*dedup=*/true);
}

/// Walks the unary chain below `top` to a Fix; fills `chain` (nodes strictly
/// between, top-down). Returns the fix (or nullptr).
PTNode* ChainToFix(PTNode* top, std::vector<PTNode*>* chain) {
  PTNode* cur = top;
  while (true) {
    if (cur->kind == PTKind::kFix) return cur;
    if (!IsChainKind(cur->kind) || cur->children.empty()) return nullptr;
    if (cur != top) chain->push_back(cur);
    cur = cur->children[0].get();
  }
}

/// Collects, for selection pushing: the chain nodes supporting the
/// predicate's variables and the fix columns ultimately referenced.
/// Returns false if some reference cannot be traced to the fix output.
bool CollectSupport(const PTNode& below_sel, const ExprPtr& pred,
                    const std::vector<PTNode*>& chain, const PTNode& fix,
                    std::vector<const PTNode*>* support,
                    std::set<std::string>* fix_cols_used) {
  // Map out-var -> chain node.
  std::map<std::string, const PTNode*> producer;
  for (const PTNode* n : chain) {
    for (const std::string& v : IntroducedVars(*n)) producer[v] = n;
  }
  // Resolve each reference of the predicate against the Sel's input.
  std::set<const PTNode*> support_set;
  std::vector<std::string> frontier;
  for (const auto& [var, path] : pred->VarPaths()) {
    int col = -1;
    std::vector<std::string> rest;
    if (!below_sel.ResolveVarPath(var, path, &col, &rest)) return false;
    frontier.push_back(below_sel.cols[col].name);
  }
  std::set<std::string> visited;
  while (!frontier.empty()) {
    const std::string name = frontier.back();
    frontier.pop_back();
    if (!visited.insert(name).second) continue;
    if (fix.HasCol(name)) {
      fix_cols_used->insert(name);
      continue;
    }
    auto it = producer.find(name);
    if (it == producer.end()) return false;  // produced outside the chain
    if (support_set.insert(it->second).second) {
      // The producer's own source reference must be traced too.
      const PTNode& n = *it->second;
      const PTNode& child = *n.children[0];
      if (n.kind == PTKind::kIJ) {
        int col = -1;
        std::vector<std::string> rest;
        if (!child.ResolveVarPath(n.src_var, {n.attr}, &col, &rest)) {
          return false;
        }
        frontier.push_back(child.cols[col].name);
      } else if (n.kind == PTKind::kPIJ) {
        if (!child.HasCol(n.src_var)) return false;
        frontier.push_back(n.src_var);
      }
    }
  }
  // Keep chain order (top-down) for the support list.
  for (const PTNode* n : chain) {
    if (support_set.count(n) > 0) support->push_back(n);
  }
  return true;
}

/// Rebuilds the region between `site` (a Sel being pushed) and the fix:
/// keeps non-support chain nodes, drops the Sel and the support nodes, and
/// roots everything on `new_fix`.
PTPtr RebuildUpper(const std::vector<PTNode*>& chain,
                   const std::set<const PTNode*>& removed, PTPtr new_fix) {
  PTPtr cur = std::move(new_fix);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (removed.count(*it) > 0) continue;
    cur = ReRootUnary(**it, std::move(cur));
  }
  return cur;
}

}  // namespace

PTPtr ReRootUnary(const PTNode& proto, PTPtr child) {
  return ReRootImpl(proto, std::move(child));
}

bool PushSelThroughFix(PTPtr& root, OptContext& ctx) {
  for (PTPtr* site : CollectSubtrees(root)) {
    PTNode* s = site->get();
    if (s->kind != PTKind::kSel || s->pred == nullptr) continue;
    if (s->sel_access != SelAccess::kSeqScan) continue;
    std::vector<PTNode*> chain;
    PTNode* fix = ChainToFix(s, &chain);
    if (fix == nullptr) continue;

    std::vector<const PTNode*> support;
    std::set<std::string> fix_cols_used;
    if (!CollectSupport(*s->children[0], s->pred, chain, *fix, &support,
                        &fix_cols_used)) {
      continue;
    }
    // canPush: every referenced fix column must be copied verbatim by the
    // recursive arm.
    bool pushable = true;
    for (const std::string& c : fix_cols_used) {
      if (!RecArmCopiesCol(*fix, c)) {
        pushable = false;
        break;
      }
    }
    if (!pushable) continue;

    // The removed nodes' variables must not be used anywhere else.
    std::set<const PTNode*> removed_nodes(support.begin(), support.end());
    removed_nodes.insert(s);
    std::set<std::string> removed_vars;
    for (const PTNode* n : support) {
      for (const std::string& v : IntroducedVars(*n)) removed_vars.insert(v);
    }
    if (TreeUsesVars(*root, removed_nodes, removed_vars)) continue;

    // Build the pushed fixpoint.
    PTPtr base = WrapArm(*fix->children[0], support, s->pred, nullptr,
                         JoinAlgo::kNestedLoop, nullptr, "");
    PTPtr rec = WrapArm(*fix->children[1], support, s->pred, nullptr,
                        JoinAlgo::kNestedLoop, nullptr, "");
    PTPtr new_fix = MakeFix(fix->fix_name, std::move(base), std::move(rec));
    new_fix->est_iters = fix->est_iters;
    new_fix->naive_fix = fix->naive_fix;

    *site = RebuildUpper(chain, removed_nodes, std::move(new_fix));
    RecomputePTCols(root.get(), ctx.db->schema());
    root->InvalidateEstimates();
    ctx.cost->Annotate(root.get());
    return true;
  }
  return false;
}

bool PushJoinThroughFix(PTPtr& root, OptContext& ctx) {
  for (PTPtr* site : CollectSubtrees(root)) {
    PTNode* e = site->get();
    if (e->kind != PTKind::kEJ || e->pred == nullptr) continue;
    for (int side = 0; side < 2; ++side) {
      PTNode* top = e->children[side].get();
      std::vector<PTNode*> chain;
      PTNode* fix = top->kind == PTKind::kFix ? top : ChainToFix(top, &chain);
      if (fix == nullptr) continue;
      if (top->kind != PTKind::kFix) {
        // ChainToFix collected interior nodes; include the top itself.
        chain.insert(chain.begin(), top);
      }
      const PTNode* other = e->children[1 - side].get();

      // Every fix-side reference of the join predicate must be a fix column
      // copied verbatim; other-side references must resolve in `other`.
      bool ok = true;
      std::set<std::string> fix_cols_used;
      for (const auto& [var, path] : e->pred->VarPaths()) {
        int col = -1;
        std::vector<std::string> rest;
        if (other->ResolveVarPath(var, path, &col, &rest)) continue;
        if (!fix->ResolveVarPath(var, path, &col, &rest)) {
          ok = false;
          break;
        }
        fix_cols_used.insert(fix->cols[col].name);
      }
      if (!ok) continue;
      for (const std::string& c : fix_cols_used) {
        if (!RecArmCopiesCol(*fix, c)) {
          ok = false;
          break;
        }
      }
      if (!ok || fix_cols_used.empty()) continue;

      // The other side's columns must not be used above the join.
      std::set<std::string> other_vars;
      for (const PTCol& c : other->cols) other_vars.insert(c.name);
      std::set<const PTNode*> exclude;
      // Exclude the EJ itself and the entire other-side subtree.
      exclude.insert(e);
      PTPtr& other_owned = e->children[1 - side];
      VisitSubtrees(other_owned, [&](PTPtr& n) { exclude.insert(n.get()); });
      if (TreeUsesVars(*root, exclude, other_vars)) continue;

      // Index-join details survive only when the inner stays the inner.
      const JoinAlgo algo =
          (side == 0 && e->algo == JoinAlgo::kIndexJoin &&
           other->kind == PTKind::kEntity)
              ? JoinAlgo::kIndexJoin
              : JoinAlgo::kNestedLoop;
      PTPtr base = WrapArm(*fix->children[0], {}, e->pred, other, algo,
                           algo == JoinAlgo::kIndexJoin ? e->join_index : nullptr,
                           algo == JoinAlgo::kIndexJoin ? e->join_index_attr
                                                        : "");
      PTPtr rec = WrapArm(*fix->children[1], {}, e->pred, other, algo,
                          algo == JoinAlgo::kIndexJoin ? e->join_index : nullptr,
                          algo == JoinAlgo::kIndexJoin ? e->join_index_attr
                                                       : "");
      PTPtr new_fix = MakeFix(fix->fix_name, std::move(base), std::move(rec));
      new_fix->est_iters = fix->est_iters;
    new_fix->naive_fix = fix->naive_fix;

      // Replace the EJ by its fix-side chain rooted on the new fix.
      std::set<const PTNode*> removed;  // nothing from the chain is removed
      std::vector<PTNode*> interior(chain.begin() + (chain.empty() ? 0 : 1),
                                    chain.end());
      PTPtr rebuilt;
      if (chain.empty()) {
        rebuilt = std::move(new_fix);
      } else {
        rebuilt = RebuildUpper(interior, removed, std::move(new_fix));
        rebuilt = ReRootUnary(*chain.front(), std::move(rebuilt));
      }
      *site = std::move(rebuilt);
      RecomputePTCols(root.get(), ctx.db->schema());
      root->InvalidateEstimates();
      ctx.cost->Annotate(root.get());
      return true;
    }
  }
  return false;
}

bool PushProjThroughFix(PTPtr& root, OptContext& ctx) {
  for (PTPtr* site : CollectSubtrees(root)) {
    PTNode* t = site->get();
    if (t->kind != PTKind::kIJ) continue;
    std::vector<PTNode*> chain;
    PTNode* fix = ChainToFix(t, &chain);
    if (fix == nullptr) continue;

    // The IJ must read directly from a fix column. Unlike filters, pushed
    // projections need no verbatim-copy guard: each arm recomputes the new
    // column from its own producer expression for the source column, which
    // is consistent by construction.
    const PTNode& child = *t->children[0];
    int col = -1;
    std::vector<std::string> rest;
    if (!child.ResolveVarPath(t->src_var, {t->attr}, &col, &rest)) continue;
    const std::string src_col = child.cols[col].name;
    if (!fix->HasCol(src_col)) continue;
    // `rest` distinguishes a dotted source column (already holding the
    // reference; empty rest) from a plain object column that the IJ
    // traverses through `attr` (rest == {attr}).
    const std::vector<std::string> traverse = rest;

    // Every use of the IJ's output variable elsewhere must be "v.attr" with
    // a single residual attribute (so a dotted column can replace it).
    const std::string v = t->out_var;
    std::set<std::string> attrs_used;
    bool ok = true;
    std::function<void(const ExprPtr&)> scan_expr = [&](const ExprPtr& e) {
      if (e == nullptr || !ok) return;
      if (e->kind() == ExprKind::kVarPath && e->var() == v) {
        if (e->path().size() != 1) {
          ok = false;
          return;
        }
        attrs_used.insert(e->path()[0]);
      }
      for (const ExprPtr& c : e->children()) scan_expr(c);
    };
    std::function<void(const PTNode&)> scan_node = [&](const PTNode& n) {
      if (!ok) return;
      if (&n != t) {
        scan_expr(n.pred);
        for (const OutCol& c : n.proj) scan_expr(c.expr);
        if (n.kind == PTKind::kIJ && n.src_var == v) ok = false;
        if (n.kind == PTKind::kPIJ && n.src_var == v) ok = false;
      }
      for (const auto& c : n.children) scan_node(*c);
    };
    scan_node(*root);
    if (!ok || attrs_used.empty()) continue;

    // The attributes must be atomic, stored, single-valued.
    if (t->target == nullptr) continue;
    bool attrs_ok = true;
    for (const std::string& a : attrs_used) {
      const Attribute* attr = t->target->FindAttribute(a);
      if (attr == nullptr || attr->computed || !attr->type->IsAtomic()) {
        attrs_ok = false;
        break;
      }
    }
    if (!attrs_ok) continue;

    // Extend both arms: new projection entries "v.a" computed from the
    // arm's own producer expression for the source column.
    auto extend_arm = [&](const PTNode& arm) -> PTPtr {
      PTPtr cloned = arm.Clone();
      PTNode* proj = cloned.get();
      while (proj->kind == PTKind::kUnion) proj = proj->children[0].get();
      if (proj->kind != PTKind::kProj) return nullptr;
      const OutCol* entry = nullptr;
      for (const OutCol& c : proj->proj) {
        if (c.name == src_col) entry = &c;
      }
      if (entry == nullptr || entry->expr == nullptr ||
          entry->expr->kind() != ExprKind::kVarPath) {
        return nullptr;
      }
      // For Union arms, extend every member projection.
      std::function<bool(PTNode*)> extend = [&](PTNode* n) -> bool {
        if (n->kind == PTKind::kUnion) {
          for (auto& c : n->children) {
            if (!extend(c.get())) return false;
          }
          n->cols = n->children[0]->cols;
          return true;
        }
        if (n->kind != PTKind::kProj) return false;
        const OutCol* src_entry = nullptr;
        for (const OutCol& c : n->proj) {
          if (c.name == src_col) src_entry = &c;
        }
        if (src_entry == nullptr || src_entry->expr == nullptr ||
            src_entry->expr->kind() != ExprKind::kVarPath) {
          return false;
        }
        // Copy out of the vector before appending: push_back may
        // reallocate and invalidate src_entry.
        const ExprPtr src_expr = src_entry->expr;
        for (const std::string& a : attrs_used) {
          std::vector<std::string> path = src_expr->path();
          path.insert(path.end(), traverse.begin(), traverse.end());
          path.push_back(a);
          n->proj.push_back(
              OutCol{v + "." + a, Expr::Path(src_expr->var(), path)});
          n->cols.push_back(PTCol{v + "." + a, nullptr});
        }
        return true;
      };
      if (!extend(cloned.get())) return nullptr;
      return cloned;
    };

    PTPtr base = extend_arm(*fix->children[0]);
    PTPtr rec = extend_arm(*fix->children[1]);
    if (base == nullptr || rec == nullptr) continue;
    // The delta leaf of the recursive arm must grow matching columns.
    {
      std::function<void(PTNode*)> grow_delta = [&](PTNode* n) {
        if (n->kind == PTKind::kDelta && n->fix_name == fix->fix_name) {
          for (const std::string& a : attrs_used) {
            n->cols.push_back(PTCol{"$delta." + v + "." + a, nullptr});
          }
        }
        for (auto& c : n->children) grow_delta(c.get());
      };
      grow_delta(rec.get());
      // Column lists of interior nodes grow lazily; rebuild the recursive
      // arm's column propagation by re-annotation (cols of unary nodes are
      // structural). For simplicity we only require the delta and the final
      // projections to be consistent, which the executor checks.
    }
    PTPtr new_fix = MakeFix(fix->fix_name, std::move(base), std::move(rec));
    new_fix->est_iters = fix->est_iters;
    new_fix->naive_fix = fix->naive_fix;

    // Rebuild: drop the IJ node; keep the chain.
    std::set<const PTNode*> removed = {t};
    *site = RebuildUpper(chain, removed, std::move(new_fix));
    RecomputePTCols(root.get(), ctx.db->schema());
    root->InvalidateEstimates();
    ctx.cost->Annotate(root.get());
    return true;
  }
  return false;
}

size_t CollapseIJChains(PTPtr& root, OptContext& ctx) {
  size_t applications = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (PTPtr* site : CollectSubtrees(root)) {
      PTNode* n = site->get();
      // Find a maximal downward chain of IJ nodes n = IJk(...IJ1(c)...)
      // matching a path index (paper's collapse: PIJ_{p2.p1}).
      if (n->kind != PTKind::kIJ) continue;
      std::vector<PTNode*> chain = {n};
      while (chain.back()->children[0]->kind == PTKind::kIJ) {
        PTNode* next = chain.back()->children[0].get();
        // The chain must be a straight traversal: next's out var feeds the
        // node above it.
        if (chain.back()->src_var != next->out_var) break;
        chain.push_back(next);
      }
      if (chain.size() < 2) continue;
      std::reverse(chain.begin(), chain.end());  // bottom-up traversal order
      // Try the longest suffix of the chain that matches an index.
      for (size_t start = 0; start + 2 <= chain.size(); ++start) {
        std::vector<std::string> path;
        std::vector<std::string> out_vars;
        std::vector<const ClassDef*> classes;
        for (size_t i = start; i < chain.size(); ++i) {
          path.push_back(chain[i]->attr);
          out_vars.push_back(chain[i]->out_var);
          classes.push_back(chain[i]->target);
        }
        const PTNode& bottom_child = *chain[start]->children[0];
        int col = -1;
        std::vector<std::string> rest;
        if (!bottom_child.ResolveVarPath(chain[start]->src_var, {}, &col,
                                         &rest)) {
          continue;
        }
        const ClassDef* root_cls = bottom_child.cols[col].cls;
        if (root_cls == nullptr) continue;
        const PathIndex* index =
            ctx.db->FindPathIndex(root_cls->name(), path);
        if (index == nullptr) continue;
        PTPtr pij = MakePIJ(chain[start]->children[0]->Clone(),
                            chain[start]->src_var, path, out_vars, classes,
                            index);
        *site = std::move(pij);
        ++applications;
        changed = true;
        break;
      }
      if (changed) break;
    }
  }
  if (applications > 0) {
    RecomputePTCols(root.get(), ctx.db->schema());
    root->InvalidateEstimates();
    ctx.cost->Annotate(root.get());
  }
  return applications;
}

TransformResult TransformPT(PTPtr plan, OptContext& ctx,
                            const TransformOptions& options,
                            size_t search_threads, bool force_truncate) {
  TransformResult result;
  ctx.cost->Annotate(plan.get());

  // Alternative A: no pushing, randomized improvement only.
  PTPtr unpushed = plan->Clone();
  ctx.cost->Annotate(unpushed.get());

  // Alternative B: saturate the push actions.
  PTPtr pushed = plan->Clone();
  ctx.cost->Annotate(pushed.get());
  // Selections first (they restrict the recursion — the valuable pushes),
  // then joins, then projections (free, but they can consume the implicit
  // joins a selection push needs if run first).
  uint64_t span = 0;
  if (ctx.tracer != nullptr) {
    span = ctx.tracer->Begin("saturate-push", "transformPT");
  }
  auto record_push = [&](const char* kind, double before, double after) {
    if (ctx.decisions != nullptr) {
      PushDecision d;
      d.kind = kind;
      d.before_cost = before;
      d.after_cost = after;
      d.chose_push = true;  // provisional; the final compare may revert it
      d.detail = "applied during saturation";
      ctx.decisions->pushes.push_back(std::move(d));
    }
    if (ctx.tracer != nullptr) {
      ctx.tracer->Instant(kind, "transformPT",
                          {{"before_cost", StrFormat("%.6g", before)},
                           {"after_cost", StrFormat("%.6g", after)}});
    }
  };
  size_t guard = 0;
  bool any = true;
  while (any && guard++ < 32) {
    // Anytime checkpoint: each pass leaves `pushed` a complete, costed plan,
    // so tripping the budget here just stops saturating early.
    if (force_truncate || (ctx.query != nullptr && ctx.query->Expired())) {
      result.truncated = true;
      break;
    }
    any = false;
    const double before = pushed->est_cost;
    if (options.enable_push_sel && PushSelThroughFix(pushed, ctx)) {
      result.pushed_sel = any = true;
      ++result.push_applications;
      record_push("push-sel", before, pushed->est_cost);
      continue;
    }
    if (options.enable_push_join && PushJoinThroughFix(pushed, ctx)) {
      result.pushed_join = any = true;
      ++result.push_applications;
      record_push("push-join", before, pushed->est_cost);
      continue;
    }
    if (options.enable_push_proj && PushProjThroughFix(pushed, ctx)) {
      result.pushed_proj = any = true;
      ++result.push_applications;
      record_push("push-proj", before, pushed->est_cost);
      continue;
    }
  }
  if (ctx.tracer != nullptr) {
    ctx.tracer->AddArg(span, "applications",
                       StrFormat("%zu", result.push_applications));
    ctx.tracer->End(span);
  }

  const bool have_push = result.push_applications > 0;

  // Randomized re-optimization of each alternative (paper: reoptimization
  // is needed because shifting a PT portion invalidates binding-specific
  // choices). Always through ParallelStrategy so one and N threads take the
  // same code path: with search_threads <= 1 the restarts run inline, and
  // because restarts use index-derived RNG streams the chosen plan — and
  // every counter — is identical for a given seed at any thread count.
  RandReport report_a{};
  RandReport report_b{};
  ParallelStrategy strategy(search_threads);
  auto improve = [&](PTPtr& alt, const char* label) {
    uint64_t s = 0;
    if (ctx.tracer != nullptr) s = ctx.tracer->Begin(label, "transformPT");
    const ParallelSearchReport pr = strategy.Improve(alt, ctx, options);
    result.truncated = result.truncated || pr.truncated;
    if (ctx.tracer != nullptr) {
      ctx.tracer->AddArg(s, "tried", StrFormat("%zu", pr.tried));
      ctx.tracer->AddArg(s, "accepted", StrFormat("%zu", pr.accepted));
      ctx.tracer->AddArg(s, "final_cost", pr.final_cost);
      ctx.tracer->End(s);
    }
    RandReport r;
    r.tried = pr.tried;
    r.accepted = pr.accepted;
    r.initial_cost = pr.initial_cost;
    r.final_cost = pr.final_cost;
    return r;
  };
  if (!force_truncate) {
    if (!options.always_push) report_a = improve(unpushed, "improve-unpushed");
    if (have_push && !options.never_push) {
      report_b = improve(pushed, "improve-pushed");
    }
  }
  result.moves_tried = report_a.tried + report_b.tried;
  result.moves_accepted = report_a.accepted + report_b.accepted;

  const double cost_a = ctx.cost->Annotate(unpushed.get());
  const double cost_b =
      have_push ? ctx.cost->Annotate(pushed.get()) : -1;
  result.unpushed_variant_cost = cost_a;
  result.pushed_variant_cost = cost_b;

  // The paper's delayed decision, as a structured event: both costed
  // alternatives and the winner.
  if (have_push && (ctx.decisions != nullptr || ctx.tracer != nullptr)) {
    const bool chose_push =
        options.always_push || (!options.never_push && cost_b < cost_a);
    if (ctx.decisions != nullptr) {
      PushDecision d;
      d.kind = "push-vs-unpushed";
      d.pushed_cost = cost_b;
      d.unpushed_cost = cost_a;
      d.chose_push = chose_push;
      d.detail = options.always_push   ? "forced (always_push)"
                 : options.never_push  ? "forced (never_push)"
                                       : "cost compare after re-optimization";
      ctx.decisions->pushes.push_back(std::move(d));
    }
    if (ctx.tracer != nullptr) {
      ctx.tracer->Instant(
          "push-vs-unpushed", "transformPT",
          {{"pushed_cost", StrFormat("%.6g", cost_b)},
           {"unpushed_cost", StrFormat("%.6g", cost_a)},
           {"chose_push", chose_push ? "true" : "false"}});
    }
  }

  if (options.never_push || !have_push) {
    result.plan = std::move(unpushed);
    result.cost = cost_a;
    result.pushed_sel = result.pushed_join = result.pushed_proj = false;
    return result;
  }
  if (options.always_push) {
    result.plan = std::move(pushed);
    result.cost = cost_b;
    return result;
  }
  if (cost_b < cost_a) {
    result.plan = std::move(pushed);
    result.cost = cost_b;
  } else {
    result.plan = std::move(unpushed);
    result.cost = cost_a;
    result.pushed_sel = result.pushed_join = result.pushed_proj = false;
  }
  return result;
}

}  // namespace rodin
