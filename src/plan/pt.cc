#include "plan/pt.h"

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

const char* PTKindName(PTKind kind) {
  switch (kind) {
    case PTKind::kEntity:
      return "Entity";
    case PTKind::kDelta:
      return "Delta";
    case PTKind::kSel:
      return "Sel";
    case PTKind::kProj:
      return "Proj";
    case PTKind::kEJ:
      return "EJ";
    case PTKind::kIJ:
      return "IJ";
    case PTKind::kPIJ:
      return "PIJ";
    case PTKind::kUnion:
      return "Union";
    case PTKind::kFix:
      return "Fix";
  }
  return "?";
}

std::unique_ptr<PTNode> PTNode::Clone() const {
  auto out = std::make_unique<PTNode>(kind);
  out->cols = cols;
  out->entity = entity;
  out->binding = binding;
  out->pred = pred;
  out->sel_access = sel_access;
  out->sel_index = sel_index;
  out->sel_index_pred = sel_index_pred;
  out->algo = algo;
  out->join_index = join_index;
  out->join_index_attr = join_index_attr;
  out->src_var = src_var;
  out->attr = attr;
  out->out_var = out_var;
  out->target = target;
  out->path = path;
  out->path_out_vars = path_out_vars;
  out->path_index = path_index;
  out->proj = proj;
  out->dedup = dedup;
  out->fix_name = fix_name;
  out->naive_fix = naive_fix;
  out->est_rows = est_rows;
  out->est_pages = est_pages;
  out->est_cost = est_cost;
  out->est_iters = est_iters;
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

void PTNode::InvalidateEstimates() {
  // est_iters is deliberately preserved: it is a statistic derived from the
  // data (chain depth), not a per-costing output — transformations must not
  // reset a fixpoint to the default iteration guess.
  est_rows = est_pages = est_cost = -1;
  for (auto& c : children) c->InvalidateEstimates();
}

int PTNode::ColIndex(const std::string& name) const {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const PTCol* PTNode::FindCol(const std::string& name) const {
  const int i = ColIndex(name);
  return i < 0 ? nullptr : &cols[i];
}

bool PTNode::ResolveVarPath(const std::string& var,
                            const std::vector<std::string>& path_ref,
                            int* col_index,
                            std::vector<std::string>* rest) const {
  // Longest match first: dotted column "var.step0", then plain "var".
  if (!path_ref.empty()) {
    const int dotted = ColIndex(var + "." + path_ref[0]);
    if (dotted >= 0) {
      *col_index = dotted;
      rest->assign(path_ref.begin() + 1, path_ref.end());
      return true;
    }
  }
  const int plain = ColIndex(var);
  if (plain >= 0) {
    *col_index = plain;
    *rest = path_ref;
    return true;
  }
  return false;
}

std::string PTNode::ToTerm() const {
  switch (kind) {
    case PTKind::kEntity:
      return entity.ToString();
    case PTKind::kDelta:
      return "delta(" + fix_name + ")";
    case PTKind::kSel: {
      std::string access;
      if (sel_access == SelAccess::kIndexEq) access = "[idx=]";
      if (sel_access == SelAccess::kIndexRange) access = "[idx<>]";
      return StrFormat("Sel_{%s}%s(%s)",
                       pred == nullptr ? "true" : pred->ToString().c_str(),
                       access.c_str(), children[0]->ToTerm().c_str());
    }
    case PTKind::kProj: {
      std::vector<std::string> parts;
      for (const OutCol& c : proj) {
        parts.push_back(c.name + (c.expr == nullptr ? "" : "=" + c.expr->ToString()));
      }
      return StrFormat("Proj_{%s}%s(%s)", Join(parts, ",").c_str(),
                       dedup ? "!" : "", children[0]->ToTerm().c_str());
    }
    case PTKind::kEJ:
      return StrFormat("EJ_{%s}%s(%s, %s)",
                       pred == nullptr ? "true" : pred->ToString().c_str(),
                       algo == JoinAlgo::kIndexJoin ? "[idx]" : "",
                       children[0]->ToTerm().c_str(),
                       children[1]->ToTerm().c_str());
    case PTKind::kIJ:
      return StrFormat("IJ_%s(%s, %s)", attr.c_str(),
                       children[0]->ToTerm().c_str(),
                       target == nullptr ? "?" : target->name().c_str());
    case PTKind::kPIJ:
      return StrFormat("PIJ_%s(%s)", Join(path, ".").c_str(),
                       children[0]->ToTerm().c_str());
    case PTKind::kUnion: {
      std::vector<std::string> parts;
      for (const auto& c : children) parts.push_back(c->ToTerm());
      return "Union(" + Join(parts, ", ") + ")";
    }
    case PTKind::kFix:
      return StrFormat("Fix(%s, Union(%s, %s))", fix_name.c_str(),
                       children[0]->ToTerm().c_str(),
                       children[1]->ToTerm().c_str());
  }
  return "?";
}

std::string PTNode::Fingerprint() const {
  std::string out = PTKindName(kind);
  switch (kind) {
    case PTKind::kEntity:
      out += ":" + entity.ToString() + ":" + binding;
      break;
    case PTKind::kDelta:
      out += ":" + fix_name;
      break;
    case PTKind::kSel:
      out += ":" + (pred == nullptr ? "" : pred->ToString());
      out += sel_access == SelAccess::kSeqScan ? "" : ":idx";
      break;
    case PTKind::kProj: {
      for (const OutCol& c : proj) {
        out += ":" + c.name + "=" + (c.expr == nullptr ? "" : c.expr->ToString());
      }
      if (dedup) out += ":!";
      break;
    }
    case PTKind::kEJ:
      out += ":" + (pred == nullptr ? "" : pred->ToString());
      out += algo == JoinAlgo::kIndexJoin ? ":idx" : ":nl";
      break;
    case PTKind::kIJ:
      out += ":" + src_var + "." + attr + "->" + out_var;
      break;
    case PTKind::kPIJ:
      out += ":" + src_var + "." + Join(path, ".");
      break;
    case PTKind::kFix:
      out += ":" + fix_name;
      if (naive_fix) out += ":naive";
      break;
    default:
      break;
  }
  out += "(";
  for (const auto& c : children) out += c->Fingerprint() + ",";
  out += ")";
  return out;
}

size_t PTNode::TreeSize() const {
  size_t n = 1;
  for (const auto& c : children) n += c->TreeSize();
  return n;
}

PTPtr MakeEntity(EntityRef entity, std::string binding, const ClassDef* cls) {
  auto n = std::make_unique<PTNode>(PTKind::kEntity);
  n->entity = std::move(entity);
  n->binding = binding;
  n->cols = {PTCol{std::move(binding), cls}};
  return n;
}

PTPtr MakeDelta(std::string fix_name, std::vector<PTCol> cols) {
  auto n = std::make_unique<PTNode>(PTKind::kDelta);
  n->fix_name = std::move(fix_name);
  n->cols = std::move(cols);
  return n;
}

PTPtr MakeSel(PTPtr child, ExprPtr pred) {
  RODIN_CHECK(child != nullptr, "Sel needs a child");
  auto n = std::make_unique<PTNode>(PTKind::kSel);
  n->cols = child->cols;
  n->pred = std::move(pred);
  n->children.push_back(std::move(child));
  return n;
}

PTPtr MakeProj(PTPtr child, std::vector<OutCol> proj,
               std::vector<PTCol> out_cols, bool dedup) {
  RODIN_CHECK(child != nullptr, "Proj needs a child");
  RODIN_CHECK(proj.size() == out_cols.size(), "Proj arity mismatch");
  auto n = std::make_unique<PTNode>(PTKind::kProj);
  n->proj = std::move(proj);
  n->cols = std::move(out_cols);
  n->dedup = dedup;
  n->children.push_back(std::move(child));
  return n;
}

PTPtr MakeEJ(PTPtr left, PTPtr right, ExprPtr pred, JoinAlgo algo) {
  RODIN_CHECK(left != nullptr && right != nullptr, "EJ needs two children");
  auto n = std::make_unique<PTNode>(PTKind::kEJ);
  n->cols = left->cols;
  n->cols.insert(n->cols.end(), right->cols.begin(), right->cols.end());
  n->pred = std::move(pred);
  n->algo = algo;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PTPtr MakeIJ(PTPtr child, std::string src_var, std::string attr,
             std::string out_var, const ClassDef* target) {
  RODIN_CHECK(child != nullptr, "IJ needs a child");
  {
    // The source may be a plain object column or a dotted derived column
    // ("i.master") that already materializes the reference.
    int col = -1;
    std::vector<std::string> rest;
    RODIN_CHECK(child->ResolveVarPath(src_var, {attr}, &col, &rest),
                "IJ source column missing");
  }
  auto n = std::make_unique<PTNode>(PTKind::kIJ);
  n->cols = child->cols;
  n->cols.push_back(PTCol{out_var, target});
  n->src_var = std::move(src_var);
  n->attr = std::move(attr);
  n->out_var = std::move(out_var);
  n->target = target;
  n->children.push_back(std::move(child));
  return n;
}

PTPtr MakePIJ(PTPtr child, std::string src_var, std::vector<std::string> path,
              std::vector<std::string> out_vars,
              std::vector<const ClassDef*> step_classes,
              const PathIndex* index) {
  RODIN_CHECK(child != nullptr, "PIJ needs a child");
  RODIN_CHECK(index != nullptr, "PIJ needs a path index");
  RODIN_CHECK(child->HasCol(src_var), "PIJ source column missing");
  RODIN_CHECK(path.size() == out_vars.size(), "PIJ arity mismatch");
  RODIN_CHECK(path.size() == step_classes.size(), "PIJ class list mismatch");
  auto n = std::make_unique<PTNode>(PTKind::kPIJ);
  n->cols = child->cols;
  for (size_t i = 0; i < out_vars.size(); ++i) {
    if (!out_vars[i].empty()) {
      n->cols.push_back(PTCol{out_vars[i], step_classes[i]});
    }
  }
  n->src_var = std::move(src_var);
  n->path = std::move(path);
  n->path_out_vars = std::move(out_vars);
  n->path_index = index;
  n->children.push_back(std::move(child));
  return n;
}

PTPtr MakeUnion(std::vector<PTPtr> children) {
  RODIN_CHECK(children.size() >= 2, "Union needs two or more children");
  auto n = std::make_unique<PTNode>(PTKind::kUnion);
  n->cols = children[0]->cols;
  for (size_t i = 1; i < children.size(); ++i) {
    RODIN_CHECK(children[i]->cols.size() == n->cols.size(),
                "Union children column mismatch");
  }
  for (auto& c : children) n->children.push_back(std::move(c));
  return n;
}

void RecomputePTCols(PTNode* node, const Schema& schema) {
  for (auto& c : node->children) RecomputePTCols(c.get(), schema);
  switch (node->kind) {
    case PTKind::kEntity:
    case PTKind::kDelta:
    case PTKind::kProj:
      return;  // leaves and projections define their own columns
    case PTKind::kSel:
      node->cols = node->children[0]->cols;
      return;
    case PTKind::kEJ:
      node->cols = node->children[0]->cols;
      node->cols.insert(node->cols.end(), node->children[1]->cols.begin(),
                        node->children[1]->cols.end());
      return;
    case PTKind::kIJ:
      node->cols = node->children[0]->cols;
      node->cols.push_back(PTCol{node->out_var, node->target});
      return;
    case PTKind::kPIJ: {
      const std::vector<PTCol> old = node->cols;
      node->cols = node->children[0]->cols;
      // Walk the path from the source column's class to type the steps;
      // fall back to the previous column entry when the walk fails.
      const PTCol* src = node->children[0]->FindCol(node->src_var);
      const ClassDef* cur = src == nullptr ? nullptr : src->cls;
      for (size_t i = 0; i < node->path.size(); ++i) {
        const ClassDef* step_cls = nullptr;
        if (cur != nullptr) {
          const Attribute* a = cur->FindAttribute(node->path[i]);
          if (a != nullptr) {
            const Type* t = a->type;
            if (t->IsCollection()) t = t->elem();
            if (t->kind() == TypeKind::kObject) {
              step_cls = schema.FindClass(t->class_name());
            }
          }
        }
        cur = step_cls;
        if (node->path_out_vars[i].empty()) continue;
        if (step_cls == nullptr) {
          for (const PTCol& c : old) {
            if (c.name == node->path_out_vars[i]) step_cls = c.cls;
          }
        }
        node->cols.push_back(PTCol{node->path_out_vars[i], step_cls});
      }
      return;
    }
    case PTKind::kUnion:
    case PTKind::kFix:
      node->cols = node->children[0]->cols;
      return;
  }
}

PTPtr MakeFix(std::string name, PTPtr base, PTPtr recursive) {
  RODIN_CHECK(base != nullptr && recursive != nullptr, "Fix needs two children");
  RODIN_CHECK(base->cols.size() == recursive->cols.size(),
              "Fix children column mismatch");
  auto n = std::make_unique<PTNode>(PTKind::kFix);
  n->cols = base->cols;
  n->fix_name = std::move(name);
  n->children.push_back(std::move(base));
  n->children.push_back(std::move(recursive));
  return n;
}

}  // namespace rodin
