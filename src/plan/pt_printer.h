#ifndef RODIN_PLAN_PT_PRINTER_H_
#define RODIN_PLAN_PT_PRINTER_H_

#include <string>

#include "plan/pt.h"

namespace rodin {

/// Multi-line, indented rendering of a processing tree, optionally with the
/// cost-model estimates on each node — the format the benches print for the
/// Figure 4 plans.
std::string PrintPT(const PTNode& node, bool with_estimates = true);

/// One-line description of a single node (the head PrintPT prints for it,
/// without estimates). Used by ExplainResult's plan tree.
std::string PTNodeLabel(const PTNode& node);

}  // namespace rodin

#endif  // RODIN_PLAN_PT_PRINTER_H_
