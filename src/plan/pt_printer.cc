#include "plan/pt_printer.h"

#include "common/string_util.h"

namespace rodin {

std::string PTNodeLabel(const PTNode& node) {
  std::string head = PTKindName(node.kind);
  switch (node.kind) {
    case PTKind::kEntity:
      head += " " + node.entity.ToString() + " as " + node.binding;
      break;
    case PTKind::kDelta:
      head += " of " + node.fix_name;
      break;
    case PTKind::kSel:
      head += " " + (node.pred == nullptr ? "true" : node.pred->ToString());
      if (node.sel_access == SelAccess::kIndexEq) head += " via index(=)";
      if (node.sel_access == SelAccess::kIndexRange) head += " via index(<>)";
      break;
    case PTKind::kProj: {
      std::vector<std::string> parts;
      for (const OutCol& c : node.proj) {
        parts.push_back(c.name + "=" +
                        (c.expr == nullptr ? "?" : c.expr->ToString()));
      }
      head += " [" + Join(parts, ", ") + "]";
      if (node.dedup) head += " dedup";
      break;
    }
    case PTKind::kEJ:
      head += " " + (node.pred == nullptr ? "true" : node.pred->ToString());
      head += node.algo == JoinAlgo::kIndexJoin ? " (index join)"
                                                : " (nested loop)";
      break;
    case PTKind::kIJ:
      head += StrFormat("_%s %s -> %s (%s)", node.attr.c_str(),
                        node.src_var.c_str(), node.out_var.c_str(),
                        node.target == nullptr ? "?"
                                               : node.target->name().c_str());
      break;
    case PTKind::kPIJ:
      head += StrFormat("_%s on %s", Join(node.path, ".").c_str(),
                        node.src_var.c_str());
      break;
    case PTKind::kUnion:
      break;
    case PTKind::kFix:
      head += " " + node.fix_name;
      if (node.naive_fix) head += " (naive)";
      break;
  }
  return head;
}

namespace {

void PrintRec(const PTNode& node, int depth, bool with_estimates,
              std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');

  std::string head = PTNodeLabel(node);
  if (with_estimates && node.est_cost >= 0) {
    head += StrFormat("   {cost=%.1f rows=%.1f}", node.est_cost, node.est_rows);
  }
  out->append(head);
  out->append("\n");
  for (const auto& c : node.children) {
    PrintRec(*c, depth + 1, with_estimates, out);
  }
}

}  // namespace

std::string PrintPT(const PTNode& node, bool with_estimates) {
  std::string out;
  PrintRec(node, 0, with_estimates, &out);
  return out;
}

}  // namespace rodin
