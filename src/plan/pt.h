#ifndef RODIN_PLAN_PT_H_
#define RODIN_PLAN_PT_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/expr.h"
#include "query/query_graph.h"
#include "storage/btree_index.h"
#include "storage/database.h"
#include "storage/path_index.h"

namespace rodin {

/// Processing-tree node kinds (paper §3.1 definition). PTs are the plan
/// algebra: interior nodes are operators, leaves are atomic entities of the
/// physical schema (or the delta temporary inside a fixpoint's recursive
/// arm).
enum class PTKind {
  kEntity,  // leaf: atomic entity (extent fragment), k=0
  kDelta,   // leaf: the delta temporary of the enclosing Fix, k=0
  kSel,     // selection, k=1
  kProj,    // projection (possibly computing new columns), k=1
  kEJ,      // explicit join, k=2
  kIJ,      // implicit join through one object attribute, k=1 (target extent implied)
  kPIJ,     // implicit join implemented by a path index, k=1
  kUnion,   // union, k>=2
  kFix,     // fixpoint, k=2 (base, recursive)
};

const char* PTKindName(PTKind kind);

/// Join algorithm of an EJ node (the paper's footnote a of Figure 5 names
/// Nested_Loop and Index_Join).
enum class JoinAlgo { kNestedLoop, kIndexJoin };

/// Access method of a Sel node whose child is an entity leaf.
enum class SelAccess { kSeqScan, kIndexEq, kIndexRange };

/// One output column of a PT node: a named binding. Object-valued columns
/// carry the class whose Oids they hold; atomic columns have cls == nullptr.
/// Derived-tuple inputs are flattened into dotted columns ("i.gen").
struct PTCol {
  std::string name;
  const ClassDef* cls = nullptr;

  friend bool operator==(const PTCol& a, const PTCol& b) {
    return a.name == b.name && a.cls == b.cls;
  }
};

/// A processing-tree node. Value-semantic tree: children are owned;
/// Clone() deep-copies (predicates are shared immutable Exprs).
///
/// Estimates (est_rows / est_cost / est_pages) are filled by the cost model
/// and invalidated (set to -1) by transformations.
struct PTNode {
  PTKind kind;
  std::vector<std::unique_ptr<PTNode>> children;
  std::vector<PTCol> cols;

  // --- kEntity -------------------------------------------------------------
  EntityRef entity;
  std::string binding;  // variable the entity's element is bound to

  // --- kSel ----------------------------------------------------------------
  ExprPtr pred;  // also the join predicate of kEJ
  SelAccess sel_access = SelAccess::kSeqScan;
  const BTreeIndex* sel_index = nullptr;  // when sel_access != kSeqScan
  ExprPtr sel_index_pred;  // the conjunct the index serves

  // --- kEJ -----------------------------------------------------------------
  JoinAlgo algo = JoinAlgo::kNestedLoop;
  const BTreeIndex* join_index = nullptr;  // inner index for kIndexJoin
  std::string join_index_attr;             // inner attribute it indexes

  // --- kIJ -----------------------------------------------------------------
  std::string src_var;   // object column navigated from
  std::string attr;      // attribute traversed
  std::string out_var;   // column bound to the reached object
  const ClassDef* target = nullptr;  // class reached

  // --- kPIJ ----------------------------------------------------------------
  std::vector<std::string> path;           // attribute path
  std::vector<std::string> path_out_vars;  // binding per step ("" = unbound)
  const PathIndex* path_index = nullptr;

  // --- kProj ---------------------------------------------------------------
  std::vector<OutCol> proj;  // computed outputs (name -> expr over child cols)
  bool dedup = false;        // set semantics at this boundary

  // --- kFix / kDelta ---------------------------------------------------------
  std::string fix_name;  // view name ("Influencer")
  /// Evaluate this fixpoint naively (each iteration re-derives from the
  /// whole accumulated result) instead of semi-naively (delta-driven). The
  /// paper's Figure 5 cost formula assumes semi-naive; the naive mode exists
  /// for the ablation benches.
  bool naive_fix = false;

  // --- Estimates (cost model) -----------------------------------------------
  double est_rows = -1;
  double est_pages = -1;
  double est_cost = -1;
  double est_iters = -1;  // kFix: estimated semi-naive iterations

  PTNode() : kind(PTKind::kEntity) {}
  explicit PTNode(PTKind k) : kind(k) {}

  std::unique_ptr<PTNode> Clone() const;

  /// Clears est_rows/est_pages/est_cost on the whole subtree (est_iters is
  /// preserved: it is a data statistic, not a costing output). Run before
  /// re-annotating a structurally transformed plan.
  void InvalidateEstimates();

  int ColIndex(const std::string& name) const;
  bool HasCol(const std::string& name) const { return ColIndex(name) >= 0; }
  const PTCol* FindCol(const std::string& name) const;

  /// Resolves a (var, path) reference against this node's columns: finds the
  /// longest column prefix ("i" alone, or dotted "i.gen") and returns the
  /// column index plus the remaining path steps. Returns false if no column
  /// matches.
  bool ResolveVarPath(const std::string& var,
                      const std::vector<std::string>& path, int* col_index,
                      std::vector<std::string>* rest) const;

  /// Functional-term rendering in the paper's style, e.g.
  /// "IJ_disc(Sel_{iname="harpsichord"}(...), Composer)".
  std::string ToTerm() const;

  /// Structural fingerprint used to detect already-visited plans during
  /// randomized search.
  std::string Fingerprint() const;

  /// Total node count of the subtree.
  size_t TreeSize() const;
};

using PTPtr = std::unique_ptr<PTNode>;

// --- Convenience constructors (used heavily by the optimizer) --------------

PTPtr MakeEntity(EntityRef entity, std::string binding, const ClassDef* cls);
PTPtr MakeDelta(std::string fix_name, std::vector<PTCol> cols);
PTPtr MakeSel(PTPtr child, ExprPtr pred);
PTPtr MakeProj(PTPtr child, std::vector<OutCol> proj,
               std::vector<PTCol> out_cols, bool dedup);
PTPtr MakeEJ(PTPtr left, PTPtr right, ExprPtr pred, JoinAlgo algo);
PTPtr MakeIJ(PTPtr child, std::string src_var, std::string attr,
             std::string out_var, const ClassDef* target);
/// `out_vars[i]` binds the object reached after path step i ("" = unbound);
/// `step_classes[i]` is the class at that step (for the bound columns).
PTPtr MakePIJ(PTPtr child, std::string src_var, std::vector<std::string> path,
              std::vector<std::string> out_vars,
              std::vector<const ClassDef*> step_classes, const PathIndex* index);
PTPtr MakeUnion(std::vector<PTPtr> children);
PTPtr MakeFix(std::string name, PTPtr base, PTPtr recursive);

/// Recomputes every node's output columns bottom-up from its children —
/// required after structural transformations that change what a subtree
/// produces (e.g. pushing a join into a fixpoint removes the other side's
/// columns from everything above it). Projection columns are authoritative
/// and kept; PIJ step classes are re-derived from the schema when needed.
void RecomputePTCols(PTNode* node, const Schema& schema);

}  // namespace rodin

#endif  // RODIN_PLAN_PT_H_
