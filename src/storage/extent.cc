#include "storage/extent.h"

#include "common/check.h"

namespace rodin {

uint32_t Extent::Insert(std::vector<Value> fields) {
  RODIN_CHECK(!finalized(), "insert after layout finalization");
  RODIN_CHECK(fields.size() == num_fields_, "field count mismatch");
  records_.push_back(std::move(fields));
  return static_cast<uint32_t>(records_.size() - 1);
}

const std::vector<Value>& Extent::Record(uint32_t slot) const {
  RODIN_CHECK(slot < records_.size(), "slot out of range");
  return records_[slot];
}

std::vector<Value>& Extent::MutableRecord(uint32_t slot) {
  RODIN_CHECK(slot < records_.size(), "slot out of range");
  return records_[slot];
}

}  // namespace rodin
