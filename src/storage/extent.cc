#include "storage/extent.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace rodin {

uint32_t Extent::Insert(std::vector<Value> fields) {
  RODIN_CHECK(!finalized(), "insert after layout finalization");
  RODIN_CHECK(fields.size() == num_fields_, "field count mismatch");
  records_.push_back(std::move(fields));
  return static_cast<uint32_t>(records_.size() - 1);
}

const std::vector<Value>& Extent::Record(uint32_t slot) const {
  RODIN_CHECK(slot < records_.size(), "slot out of range");
  return records_[slot];
}

std::vector<Value>& Extent::MutableRecord(uint32_t slot) {
  RODIN_CHECK(slot < records_.size(), "slot out of range");
  return records_[slot];
}

void Extent::EnsureMutable() {
  if (deleted_.size() < records_.size()) deleted_.resize(records_.size(), 0);
}

void Extent::Apply(const std::vector<ResolvedMutationOp>& ops,
                   const PageAlloc& alloc) {
  for (const ResolvedMutationOp& op : ops) {
    switch (op.kind) {
      case MutationOpKind::kInsert:
        ApplyInsert(op.fields, op.hfrag, alloc);
        break;
      case MutationOpKind::kDelete:
        ApplyDelete(op.slot);
        break;
      case MutationOpKind::kUpdate:
        ApplyUpdate(op.slot, op.assigns);
        break;
    }
  }
  if (!ops.empty()) RebuildScanPages();
}

uint32_t Extent::ApplyInsert(std::vector<Value> fields, uint16_t hfrag,
                             const PageAlloc& alloc) {
  RODIN_CHECK(finalized(), "post-finalize insert before layout");
  RODIN_CHECK(fields.size() == num_fields_, "field count mismatch");
  RODIN_CHECK(hfrag < num_hfrags_, "insert hfrag out of range");
  EnsureMutable();
  if (append_.size() < num_vfrags_) append_.resize(num_vfrags_);
  if (frag_bytes_.size() < num_vfrags_) frag_bytes_.resize(num_vfrags_, 8);

  const uint32_t slot = static_cast<uint32_t>(records_.size());
  records_.push_back(std::move(fields));
  deleted_.push_back(0);
  hfrag_of_.push_back(hfrag);
  for (uint16_t v = 0; v < num_vfrags_; ++v) {
    AppendState& st = append_[v];
    const uint64_t need = std::min(frag_bytes_[v], kPageSizeBytes);
    if (need > st.bytes_left) {
      st.current = alloc(1);
      st.bytes_left = kPageSizeBytes;
    }
    st.bytes_left -= std::min(need, st.bytes_left);
    page_of_[v].push_back(st.current);
  }
  slots_of_hfrag_[hfrag].push_back(slot);
  return slot;
}

void Extent::ApplyDelete(uint32_t slot) {
  RODIN_CHECK(slot < records_.size(), "delete slot out of range");
  EnsureMutable();
  RODIN_CHECK(deleted_[slot] == 0, "double delete");
  deleted_[slot] = 1;
  ++num_deleted_;
  std::vector<uint32_t>& slots = slots_of_hfrag_[hfrag_of_[slot]];
  slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
}

void Extent::ApplyUpdate(uint32_t slot,
                         const std::vector<std::pair<int, Value>>& assigns) {
  RODIN_CHECK(alive(slot), "update of dead slot");
  for (const auto& [field, v] : assigns) {
    RODIN_CHECK(field >= 0 && static_cast<uint32_t>(field) < num_fields_,
                "update field out of range");
    records_[slot][field] = v;
  }
}

void Extent::RebuildScanPages() {
  scan_pages_.assign(num_vfrags_, {});
  for (uint16_t v = 0; v < num_vfrags_; ++v) {
    scan_pages_[v].assign(num_hfrags_, {});
    for (uint16_t h = 0; h < num_hfrags_; ++h) {
      std::unordered_set<PageId> seen;
      for (uint32_t slot : slots_of_hfrag_[h]) {
        const PageId p = page_of_[v][slot];
        if (seen.insert(p).second) scan_pages_[v][h].push_back(p);
      }
    }
  }
}

}  // namespace rodin
