#include "storage/physical_schema.h"

#include <set>

#include "common/string_util.h"

namespace rodin {

std::string PathIndexSpec::PathString() const { return Join(path, "."); }

namespace {

// Resolves the class reached through attribute `attr` of `cls`; nullptr if
// the attribute is missing or not (a collection of) an object type.
const ClassDef* Step(const Schema& schema, const ClassDef* cls,
                     const std::string& attr) {
  const Attribute* a = cls->FindAttribute(attr);
  if (a == nullptr) return nullptr;
  const Type* t = a->type;
  if (t->IsCollection()) t = t->elem();
  if (t->kind() != TypeKind::kObject) return nullptr;
  return schema.FindClass(t->class_name());
}

bool HasAtomicAttr(const Schema& schema, const std::string& extent,
                   const std::string& attr) {
  if (const ClassDef* c = schema.FindClass(extent)) {
    const Attribute* a = c->FindAttribute(attr);
    return a != nullptr && !a->computed && a->type->IsAtomic();
  }
  if (const RelationDef* r = schema.FindRelation(extent)) {
    const Attribute* a = r->FindAttribute(attr);
    return a != nullptr && a->type->IsAtomic();
  }
  return false;
}

}  // namespace

std::vector<std::string> PhysicalConfig::Validate(const Schema& schema) const {
  std::vector<std::string> errors;

  std::set<std::string> cluster_targets;
  for (const ClusterSpec& c : clustering) {
    const ClassDef* owner = schema.FindClass(c.owner_class);
    if (owner == nullptr) {
      errors.push_back("clustering: unknown owner class " + c.owner_class);
      continue;
    }
    const ClassDef* target = Step(schema, owner, c.attr);
    if (target == nullptr) {
      errors.push_back(StrFormat("clustering: %s.%s is not an object attribute",
                                 c.owner_class.c_str(), c.attr.c_str()));
      continue;
    }
    if (!cluster_targets.insert(target->name()).second) {
      errors.push_back("clustering: class " + target->name() +
                       " clustered via more than one owner");
    }
  }

  for (const VerticalSpec& v : vertical) {
    const ClassDef* cls = schema.FindClass(v.class_name);
    if (cls == nullptr) {
      errors.push_back("vertical: unknown class " + v.class_name);
      continue;
    }
    std::set<std::string> seen;
    for (const auto& group : v.groups) {
      for (const std::string& attr : group) {
        const Attribute* a = cls->FindAttribute(attr);
        if (a == nullptr || a->computed) {
          errors.push_back(StrFormat("vertical: %s.%s is not a stored attribute",
                                     v.class_name.c_str(), attr.c_str()));
        } else if (!seen.insert(attr).second) {
          errors.push_back(StrFormat("vertical: %s.%s appears in two groups",
                                     v.class_name.c_str(), attr.c_str()));
        }
      }
    }
    for (const Attribute& a : cls->AllAttributes()) {
      if (!a.computed && seen.count(a.name) == 0) {
        errors.push_back(StrFormat("vertical: %s.%s not covered by any group",
                                   v.class_name.c_str(), a.name.c_str()));
      }
    }
  }

  for (const HorizontalSpec& h : horizontal) {
    if (h.num_fragments == 0) {
      errors.push_back("horizontal: zero fragments for " + h.extent_name);
    }
    if (!HasAtomicAttr(schema, h.extent_name, h.attr)) {
      errors.push_back(StrFormat("horizontal: %s.%s is not an atomic attribute",
                                 h.extent_name.c_str(), h.attr.c_str()));
    }
  }

  for (const SelIndexSpec& s : sel_indexes) {
    if (!HasAtomicAttr(schema, s.extent_name, s.attr)) {
      errors.push_back(StrFormat("sel index: %s.%s is not an atomic attribute",
                                 s.extent_name.c_str(), s.attr.c_str()));
    }
  }

  for (const PathIndexSpec& p : path_indexes) {
    const ClassDef* cls = schema.FindClass(p.root_class);
    if (cls == nullptr) {
      errors.push_back("path index: unknown root class " + p.root_class);
      continue;
    }
    if (p.path.empty()) {
      errors.push_back("path index: empty path on " + p.root_class);
      continue;
    }
    for (const std::string& attr : p.path) {
      const ClassDef* next = Step(schema, cls, attr);
      if (next == nullptr) {
        errors.push_back(StrFormat(
            "path index: %s.%s does not traverse an object attribute",
            cls->name().c_str(), attr.c_str()));
        cls = nullptr;
        break;
      }
      cls = next;
    }
  }

  return errors;
}

const VerticalSpec* PhysicalConfig::FindVertical(
    const std::string& extent_name) const {
  for (const VerticalSpec& v : vertical) {
    if (v.class_name == extent_name) return &v;
  }
  return nullptr;
}

const HorizontalSpec* PhysicalConfig::FindHorizontal(
    const std::string& extent_name) const {
  for (const HorizontalSpec& h : horizontal) {
    if (h.extent_name == extent_name) return &h;
  }
  return nullptr;
}

const ClusterSpec* PhysicalConfig::FindClusterTarget(
    const Schema& schema, const std::string& class_name) const {
  for (const ClusterSpec& c : clustering) {
    const ClassDef* owner = schema.FindClass(c.owner_class);
    if (owner == nullptr) continue;
    const ClassDef* target = Step(schema, owner, c.attr);
    if (target != nullptr && target->name() == class_name) return &c;
  }
  return nullptr;
}

uint64_t PhysicalConfig::RecordBytesOverride(
    const std::string& extent_name) const {
  for (const auto& [name, bytes] : record_bytes_override) {
    if (name == extent_name) return bytes;
  }
  return 0;
}

}  // namespace rodin
