#ifndef RODIN_STORAGE_DATABASE_H_
#define RODIN_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/btree_index.h"
#include "storage/buffer_pool.h"
#include "storage/extent.h"
#include "storage/path_index.h"
#include "storage/physical_schema.h"
#include "storage/value.h"
#include "txn/mutation.h"

namespace rodin {

/// Relation tuples are addressed with pseudo-Oids whose class_id has the
/// high bit set (relations have values, not objects, but a uniform address
/// simplifies the executor and index payloads).
constexpr uint32_t kRelationOidBit = 0x80000000u;

inline bool IsRelationOid(Oid oid) {
  return (oid.class_id & kRelationOidBit) != 0;
}

/// Identifies an atomic entity of the physical schema (paper §3): a whole
/// extent, or one (vertical, horizontal) fragment of a decomposed one.
struct EntityRef {
  std::string extent;  // class or relation name
  uint16_t vfrag = 0;
  uint16_t hfrag = 0;

  friend bool operator==(const EntityRef& a, const EntityRef& b) {
    return a.extent == b.extent && a.vfrag == b.vfrag && a.hfrag == b.hfrag;
  }
  std::string ToString() const;
};

/// The object store: a populated instance of a conceptual schema laid out on
/// simulated pages according to a PhysicalConfig. Population happens first
/// (NewObject/Set/InsertTuple), then Finalize() computes the page layout and
/// builds indices; afterwards the store is read-only and all charged reads
/// go through the buffer pool.
class Database {
 public:
  using MethodFn = std::function<Value(const Database&, Oid)>;

  /// `schema` must outlive the database.
  explicit Database(const Schema* schema);

  /// Unregisters this database's TxnManager (see txn/txn_manager.h).
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Schema& schema() const { return *schema_; }
  BufferPool& buffer_pool() { return *pool_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  bool finalized() const { return finalized_; }
  const PhysicalConfig& config() const { return config_; }

  // --- Population (before Finalize) ---------------------------------------

  /// Creates an object of `class_name` with all attributes null.
  Oid NewObject(const std::string& class_name);

  /// Sets a stored attribute of an object.
  void Set(Oid oid, const std::string& attr, Value v);

  /// Inserts a tuple into a relation; returns its pseudo-Oid.
  Oid InsertTuple(const std::string& relation, std::vector<Value> fields);

  /// Registers the body of a computed attribute (method).
  void RegisterMethod(const std::string& class_name, const std::string& attr,
                      MethodFn fn);

  // --- Layout --------------------------------------------------------------

  /// Validates `config`, assigns every record to a page (honouring
  /// clustering and fragmentation), and builds the declared indices.
  /// Aborts on an invalid configuration.
  void Finalize(PhysicalConfig config);

  /// Allocates `n` fresh page ids (used for temporaries). Thread-safe, so
  /// concurrent sessions can build temps against one database; within one
  /// query the batched executor only allocates from its coordinator thread
  /// (allocation order is part of the deterministic accounting).
  PageId AllocatePages(uint64_t n);

  // --- Write path (post-Finalize) ------------------------------------------

  /// Validates and applies a mutation batch all-or-nothing: either every op
  /// lands (records, page layout, selection and path indices all updated)
  /// and `*result` reports what changed, or the database is untouched and
  /// the returned status says why (kInvalidArgument: unknown extent or
  /// attribute, assignment to a computed or horizontal-fragmentation
  /// attribute, dangling ref, or a delete that would leave a live record
  /// referencing a dead oid). Refs may point at oids created by earlier (or
  /// later) inserts of the same batch. NOT thread-safe against concurrent
  /// readers — callers go through TxnManager, whose single-writer commit
  /// gate drains reads first.
  Status Apply(const MutationBatch& batch, MutationResult* result);

  // --- Uncharged access (tests, data generators, stats derivation) --------

  /// Raw field read without cost accounting.
  Value GetRaw(Oid oid, const std::string& attr) const;
  const std::vector<Value>& RecordOf(Oid oid) const;

  const Extent* FindExtent(const std::string& name) const;
  Extent* FindExtentMutable(const std::string& name);
  bool IsRelation(const std::string& name) const;

  /// Extent of the class/relation an oid belongs to.
  const Extent* ExtentOf(Oid oid) const;
  /// Name of the class/relation an oid belongs to.
  const std::string& ExtentNameOf(Oid oid) const;

  /// Storage field position of `attr` in `extent_name` records; -1 if the
  /// attribute is computed or absent.
  int FieldIndex(const std::string& extent_name, const std::string& attr) const;

  // --- Charged access (executor) -------------------------------------------
  //
  // Each accessor has two forms: the original one charging the database's
  // own buffer pool, and a const overload charging an arbitrary PageCharger.
  // The charger form is what the batched executor's worker morsels use (each
  // morsel records into its own ChargeLog; the logs are replayed into the
  // pool later, in canonical order), so it must be safe to call from many
  // threads at once as long as each thread brings its own charger.

  /// Reads a field, charging the page holding its vertical fragment.
  Value GetCharged(Oid oid, const std::string& attr);
  Value GetCharged(Oid oid, const std::string& attr,
                   PageCharger* charger) const;

  /// Charges the page(s) of record `oid` covering the given fields (one page
  /// per distinct vertical fragment touched).
  void ChargeRecordAccess(Oid oid, const std::vector<int>& fields);
  void ChargeRecordAccess(Oid oid, const std::vector<int>& fields,
                          PageCharger* charger) const;

  /// Sequentially scans atomic entity `e`, invoking `fn(oid, record)` for
  /// every record; pages are charged in scan order.
  void ScanEntity(const EntityRef& e,
                  const std::function<void(Oid, const std::vector<Value>&)>& fn);

  /// Resolved scan coordinates of an atomic entity: the slot list (in scan
  /// order) plus everything needed to charge and address each record. Lets
  /// the batched executor split one scan into slot-range morsels without
  /// re-resolving the extent per record.
  struct ScanSource {
    const Extent* extent = nullptr;
    uint32_t base_class = 0;  // class id (relation bit applied)
    uint16_t vfrag = 0;
    const std::vector<uint32_t>* slots = nullptr;  // scan order
    size_t size() const { return slots->size(); }
  };
  ScanSource ResolveScan(const EntityRef& e) const;

  /// Pages a full scan of `e` touches (for cost estimation).
  uint64_t EntityPages(const EntityRef& e) const;
  /// Records in `e`.
  uint64_t EntityInstances(const EntityRef& e) const;

  // --- Methods --------------------------------------------------------------

  bool HasMethod(const std::string& class_name, const std::string& attr) const;

  /// Invokes a computed attribute. Charges nothing itself; the executor
  /// accounts for the invocation using the attribute's method_cost.
  Value InvokeMethod(Oid oid, const std::string& attr) const;

  // --- Indices ---------------------------------------------------------------

  const BTreeIndex* FindSelIndex(const std::string& extent_name,
                                 const std::string& attr) const;
  const PathIndex* FindPathIndex(const std::string& root_class,
                                 const std::vector<std::string>& path) const;
  const std::vector<std::unique_ptr<PathIndex>>& path_indexes() const {
    return path_indexes_;
  }

  /// Converts an index payload back into an Oid for `extent_name`.
  Oid PayloadToOid(const std::string& extent_name, uint64_t payload) const;

 private:
  struct ExtentInfo {
    std::unique_ptr<Extent> extent;
    bool is_relation = false;
    uint32_t id = 0;           // class id or relation id
    uint64_t record_bytes = 8;  // derived or overridden at Finalize
  };

  ExtentInfo* FindInfo(const std::string& name);
  const ExtentInfo* FindInfo(const std::string& name) const;
  const ExtentInfo* InfoOf(Oid oid) const;
  /// Like InfoOf but returns null instead of aborting (write-path
  /// validation of untrusted oids).
  const ExtentInfo* InfoOfOrNull(Oid oid) const;

  uint64_t DeriveRecordBytes(const ExtentInfo& info) const;
  void LayoutExtents();
  void BuildIndexes();
  /// Expands every instantiation of a path-index spec over the current live
  /// records (shared by the initial build and write-path rebuilds).
  std::vector<std::vector<Oid>> ExpandPathEntries(const PathIndexSpec& spec,
                                                  uint32_t root_id) const;

  const Schema* schema_;
  PhysicalConfig config_;
  std::unique_ptr<BufferPool> pool_;
  bool finalized_ = false;
  PageId next_page_ = 0;
  std::mutex alloc_mu_;  // guards next_page_ after Finalize

  std::vector<ExtentInfo> extents_;  // classes then relations, stable order
  std::map<std::pair<std::string, std::string>, MethodFn> methods_;
  std::vector<std::unique_ptr<BTreeIndex>> sel_indexes_;
  std::vector<std::string> sel_index_extent_;  // parallel to sel_indexes_
  std::vector<std::unique_ptr<PathIndex>> path_indexes_;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_DATABASE_H_
