#include "storage/value.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

Value Value::MakeCollection(Collection::Kind kind, std::vector<Value> elems) {
  auto coll = std::make_shared<Collection>();
  coll->kind = kind;
  coll->elems = std::move(elems);
  if (kind == Collection::Kind::kSet) {
    std::sort(coll->elems.begin(), coll->elems.end());
    coll->elems.erase(std::unique(coll->elems.begin(), coll->elems.end()),
                      coll->elems.end());
  }
  return Value(Rep(std::shared_ptr<const Collection>(std::move(coll))));
}

Value Value::MakeSet(std::vector<Value> elems) {
  return MakeCollection(Collection::Kind::kSet, std::move(elems));
}
Value Value::MakeList(std::vector<Value> elems) {
  return MakeCollection(Collection::Kind::kList, std::move(elems));
}
Value Value::MakeTuple(std::vector<Value> elems) {
  return MakeCollection(Collection::Kind::kTuple, std::move(elems));
}

bool Value::AsBool() const {
  RODIN_CHECK(is_bool(), "value is not a bool");
  return std::get<bool>(rep_);
}

int64_t Value::AsInt() const {
  RODIN_CHECK(is_int(), "value is not an int");
  return std::get<int64_t>(rep_);
}

double Value::AsReal() const {
  RODIN_CHECK(is_real(), "value is not a real");
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  RODIN_CHECK(is_string(), "value is not a string");
  return std::get<std::string>(rep_);
}

Oid Value::AsRef() const {
  RODIN_CHECK(is_ref(), "value is not an object reference");
  return std::get<Oid>(rep_);
}

const Collection& Value::AsCollection() const {
  RODIN_CHECK(is_collection(), "value is not a collection");
  return *std::get<std::shared_ptr<const Collection>>(rep_);
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  return AsReal();
}

int Value::Compare(const Value& other) const {
  const size_t ka = rep_.index();
  const size_t kb = other.rep_.index();
  // Numeric cross-kind comparison (int vs real) compares by value.
  const bool a_num = is_int() || is_real();
  const bool b_num = other.is_int() || other.is_real();
  if (a_num && b_num) {
    const double x = AsNumber();
    const double y = other.AsNumber();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (ka != kb) return ka < kb ? -1 : 1;
  switch (ka) {
    case 0:  // null
      return 0;
    case 1: {
      const bool a = std::get<bool>(rep_);
      const bool b = std::get<bool>(other.rep_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case 4: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case 5: {
      const Oid a = AsRef();
      const Oid b = other.AsRef();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case 6: {
      const Collection& a = AsCollection();
      const Collection& b = other.AsCollection();
      if (a.kind != b.kind) return a.kind < b.kind ? -1 : 1;
      const size_t n = std::min(a.elems.size(), b.elems.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a.elems[i].Compare(b.elems[i]);
        if (c != 0) return c;
      }
      if (a.elems.size() == b.elems.size()) return 0;
      return a.elems.size() < b.elems.size() ? -1 : 1;
    }
    default:
      return 0;  // unreachable: numeric kinds handled above
  }
}

size_t Value::Hash() const {
  auto mix = [](size_t h, size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  switch (rep_.index()) {
    case 0:
      return 0x9e3779b9;
    case 1:
      return std::get<bool>(rep_) ? 3 : 7;
    case 2:
      // Hash ints through double so that Int(3) and Real(3.0), which compare
      // equal, also hash equal.
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(rep_)));
    case 3:
      return std::hash<double>()(std::get<double>(rep_));
    case 4:
      return std::hash<std::string>()(std::get<std::string>(rep_));
    case 5: {
      const Oid o = std::get<Oid>(rep_);
      return OidHash()(o);
    }
    case 6: {
      const Collection& c = AsCollection();
      size_t h = static_cast<size_t>(c.kind) + 0x51ed2701;
      for (const Value& e : c.elems) h = mix(h, e.Hash());
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (rep_.index()) {
    case 0:
      return "null";
    case 1:
      return std::get<bool>(rep_) ? "true" : "false";
    case 2:
      return std::to_string(std::get<int64_t>(rep_));
    case 3:
      return StrFormat("%g", std::get<double>(rep_));
    case 4:
      return "\"" + std::get<std::string>(rep_) + "\"";
    case 5: {
      const Oid o = std::get<Oid>(rep_);
      return StrFormat("@%u:%u", o.class_id, o.slot);
    }
    case 6: {
      const Collection& c = AsCollection();
      const char* open = c.kind == Collection::Kind::kSet
                             ? "{"
                             : (c.kind == Collection::Kind::kList ? "<" : "[");
      const char* close = c.kind == Collection::Kind::kSet
                              ? "}"
                              : (c.kind == Collection::Kind::kList ? ">" : "]");
      std::string out = open;
      for (size_t i = 0; i < c.elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += c.elems[i].ToString();
      }
      return out + close;
    }
  }
  return "?";
}

}  // namespace rodin
