#ifndef RODIN_STORAGE_BUFFER_POOL_H_
#define RODIN_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace rodin {

/// Global page identifier. Extents, index nodes and temporary files all draw
/// their pages from one id space (allocated by the Database).
using PageId = uint64_t;

constexpr uint64_t kPageSizeBytes = 4096;

/// LRU buffer pool simulator. No page contents live here — extents keep the
/// data — but every *access* to a page goes through Fetch(), which tracks
/// hits (page already resident, paper §3.2 footnote: "some of the needed
/// data are already in main memory") and misses (charged as disk reads).
class BufferPool {
 public:
  struct Stats {
    uint64_t fetches = 0;   // logical page accesses
    uint64_t misses = 0;    // disk reads (page not resident)
    uint64_t hits = 0;      // page was resident
    uint64_t evictions = 0;
  };

  /// `capacity_pages` == 0 means "no caching": every fetch is a miss.
  explicit BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Accesses `page`; returns true on a hit. Misses evict LRU when full.
  bool Fetch(PageId page);

  /// True if the page is currently resident (no access recorded).
  bool Resident(PageId page) const { return index_.count(page) > 0; }

  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return lru_.size(); }
  const Stats& stats() const { return stats_; }

  /// Zeroes the counters, keeping resident pages (for warm measurements).
  void ResetStats();

  /// Empties the pool and zeroes the counters (cold-start measurements).
  void Clear();

  /// Folds everything counted since the last publish into the process-wide
  /// metrics (rodin.buffer.*). Deliberately not per-Fetch: Fetch is the
  /// hottest loop in the system and stays free of atomics. Reset/Clear
  /// publish implicitly so no counts are lost between measurements.
  void PublishMetrics();

 private:
  size_t capacity_;
  Stats stats_;
  Stats published_;  // high-water mark of what PublishMetrics() exported
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_BUFFER_POOL_H_
