#ifndef RODIN_STORAGE_BUFFER_POOL_H_
#define RODIN_STORAGE_BUFFER_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace rodin {

/// Global page identifier. Extents, index nodes and temporary files all draw
/// their pages from one id space (allocated by the Database).
using PageId = uint64_t;

constexpr uint64_t kPageSizeBytes = 4096;

/// Anything that can absorb a page access. The buffer pool is the terminal
/// charger (a charge is an LRU Fetch); a ChargeLog records charges for later
/// replay. The batched executor runs every operator pass against a log and
/// replays all logs into the pool in the canonical (single-threaded,
/// materialized bottom-up) order, which is what makes hit/miss accounting
/// independent of batch size and worker count.
class PageCharger {
 public:
  virtual ~PageCharger() = default;
  virtual void Charge(PageId page) = 0;
};

/// An order-preserving record of page charges, run-length-encoded. The two
/// charge shapes that dominate by volume both collapse to one span each: a
/// run of consecutively ascending page ids (temp-file scans, a nested-loop
/// join's per-outer-row inner re-scans — formerly O(outer rows x inner
/// pages) of buffered charges) and a run of one repeated page id (an extent
/// scan charges each record's page, and many records share a page). Replay
/// reproduces the exact original charge sequence. Not thread-safe: each
/// worker morsel owns its own log; merge order is the caller's
/// responsibility.
class ChargeLog final : public PageCharger {
 public:
  void Charge(PageId page) override {
    ++total_;
    if (spans_.empty() || !Extend(&spans_.back(), page)) {
      spans_.push_back(Span{page, 1, 1});
    }
  }

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  void clear() {
    spans_.clear();
    total_ = 0;
  }

  /// Appends another log's charges after this log's (order-preserving merge).
  void Append(const ChargeLog& other) {
    for (const Span& s : other.spans_) {
      if (spans_.empty()) {
        spans_.push_back(s);
        continue;
      }
      Span& last = spans_.back();
      if (s.count == 1) {
        if (!Extend(&last, s.first)) spans_.push_back(s);
        continue;
      }
      // A longer run continues the last span when it starts at the expected
      // page with the same stride (a single-charge span adopts the stride).
      const bool stride_ok = last.count == 1 || last.step == s.step;
      const PageId expect =
          last.count == 1 ? last.first + s.step : NextOf(last);
      if (stride_ok && s.first == expect &&
          last.count <= kMaxCount - s.count) {
        last.step = s.step;
        last.count += s.count;
      } else {
        spans_.push_back(s);
      }
    }
    total_ += other.total_;
  }

  /// Replays every recorded charge, in order, into `sink`.
  void ReplayInto(PageCharger* sink) const {
    for (const Span& s : spans_) {
      for (uint64_t i = 0; i < s.count; ++i) sink->Charge(s.first + i * s.step);
    }
  }

 private:
  struct Span {
    PageId first;
    uint32_t count;  // charges first, first+step, ..., first+(count-1)*step
    uint32_t step;   // 0 = repeated page, 1 = ascending run
  };

  static constexpr uint32_t kMaxCount = ~uint32_t{0};

  static PageId NextOf(const Span& s) { return s.first + s.count * s.step; }

  /// Extends `last` by one charge of `page` if the run continues; a span of
  /// one charge has no stride yet and can start either run shape.
  static bool Extend(Span* last, PageId page) {
    if (last->count == kMaxCount) return false;
    if (last->count == 1) {
      if (page != last->first && page != last->first + 1) return false;
      last->step = page == last->first ? 0 : 1;
      last->count = 2;
      return true;
    }
    if (page != NextOf(*last)) return false;
    ++last->count;
    return true;
  }

  std::vector<Span> spans_;
  size_t total_ = 0;
};

/// LRU buffer pool simulator. No page contents live here — extents keep the
/// data — but every *access* to a page goes through Fetch(), which tracks
/// hits (page already resident, paper §3.2 footnote: "some of the needed
/// data are already in main memory") and misses (charged as disk reads).
///
/// Fetch and the stat mutators are guarded by a spinlock so concurrent
/// sessions (and the executor's charge replay) can share one pool. Workers
/// in the batched executor never touch the pool on their hot path — they
/// charge per-morsel ChargeLogs — so the lock is effectively uncontended.
class BufferPool final : public PageCharger {
 public:
  struct Stats {
    uint64_t fetches = 0;   // logical page accesses
    uint64_t misses = 0;    // disk reads (page not resident)
    uint64_t hits = 0;      // page was resident
    uint64_t evictions = 0;
  };

  /// `capacity_pages` == 0 means "no caching": every fetch is a miss.
  explicit BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Accesses `page`; returns true on a hit. Misses evict LRU when full
  /// (full = min(capacity, query budget) while a budget is armed).
  bool Fetch(PageId page);

  /// PageCharger: a charge is a fetch.
  void Charge(PageId page) override { Fetch(page); }

  /// True if the page is currently resident (no access recorded).
  bool Resident(PageId page) const { return index_.count(page) > 0; }

  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return lru_.size(); }
  /// Snapshot read; do not call while another thread fetches.
  const Stats& stats() const { return stats_; }

  /// Zeroes the counters, keeping resident pages (for warm measurements).
  void ResetStats();

  /// Empties the pool and zeroes the counters (cold-start measurements).
  void Clear();

  /// Arms a per-query resident-page budget: until cleared, the effective
  /// LRU capacity is min(capacity, budget_pages) and the pool immediately
  /// evicts down to it. This is the *graceful* half of the resource
  /// governor — an over-budget query runs to completion with extra
  /// (exactly accounted) misses rather than failing; the hard half
  /// (kResourceExhausted) fires in the executor when a single temp-file
  /// allocation alone exceeds the budget. Budgets do not nest; the engine
  /// arms the budget only around the sections that charge the pool.
  void SetQueryBudget(size_t budget_pages);
  void ClearQueryBudget();
  size_t query_budget() const { return budget_; }

  /// The resident set, most recently used first. Session's fault-retry
  /// path snapshots before the first attempt and restores before each
  /// retry so warm-run hit/miss patterns are attempt-invariant.
  ///
  /// Must not run while any ActiveFetchScope is open: a restore that
  /// interleaves with another thread's fetches (e.g. a streaming cursor's
  /// deferred charge replay) silently corrupts the accounting even though
  /// the spinlock keeps each individual operation safe. Debug builds abort
  /// via RODIN_CHECK; Session enforces the rule at the API level by
  /// refusing retryable runs while cursors are live.
  std::vector<PageId> SnapshotResident() const;

  /// Replaces the resident set (counters untouched). `mru_first` must be
  /// ordered as SnapshotResident returned it. Same ActiveFetchScope
  /// exclusion as SnapshotResident.
  void RestoreResident(const std::vector<PageId>& mru_first);

  /// Marks a section that fetches/charges this pool (executor evaluation,
  /// a streaming cursor's finalize replay). While at least one scope is
  /// open, SnapshotResident/RestoreResident abort in debug builds.
  class ActiveFetchScope {
   public:
    explicit ActiveFetchScope(BufferPool* pool) : pool_(pool) {
      pool_->active_fetchers_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ActiveFetchScope() {
      pool_->active_fetchers_.fetch_sub(1, std::memory_order_relaxed);
    }
    ActiveFetchScope(const ActiveFetchScope&) = delete;
    ActiveFetchScope& operator=(const ActiveFetchScope&) = delete;

   private:
    BufferPool* pool_;
  };

  /// Open ActiveFetchScope count (diagnostics / tests).
  uint32_t active_fetchers() const {
    return active_fetchers_.load(std::memory_order_relaxed);
  }

  /// Folds everything counted since the last publish into the process-wide
  /// metrics (rodin.buffer.*). Deliberately not per-Fetch: Fetch is the
  /// hottest loop in the system and carries only one uncontended spinlock
  /// acquisition. Reset/Clear publish implicitly so no counts are lost
  /// between measurements.
  void PublishMetrics();

 private:
  /// Tiny scoped spinlock over `lock_`. The critical sections are a few
  /// dozen instructions; a mutex would dominate them.
  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag& flag_;
  };

  /// Evicts LRU pages until the resident set fits `limit`. Caller holds
  /// the lock.
  void EvictDownToLocked(size_t limit);

  /// min(capacity_, budget_) while a budget is armed.
  size_t EffectiveCapacityLocked() const {
    return budget_ == 0 ? capacity_ : std::min(capacity_, budget_);
  }

  size_t capacity_;
  size_t budget_ = 0;  // 0 = no per-query budget armed
  std::atomic<uint32_t> active_fetchers_{0};
  Stats stats_;
  Stats published_;  // high-water mark of what PublishMetrics() exported
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_BUFFER_POOL_H_
