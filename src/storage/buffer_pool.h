#ifndef RODIN_STORAGE_BUFFER_POOL_H_
#define RODIN_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace rodin {

/// Global page identifier. Extents, index nodes and temporary files all draw
/// their pages from one id space (allocated by the Database).
using PageId = uint64_t;

constexpr uint64_t kPageSizeBytes = 4096;

/// Anything that can absorb a page access. The buffer pool is the terminal
/// charger (a charge is an LRU Fetch); a ChargeLog records charges for later
/// replay. The batched executor runs every operator pass against a log and
/// replays all logs into the pool in the canonical (single-threaded,
/// materialized bottom-up) order, which is what makes hit/miss accounting
/// independent of batch size and worker count.
class PageCharger {
 public:
  virtual ~PageCharger() = default;
  virtual void Charge(PageId page) = 0;
};

/// An order-preserving record of page charges. Not thread-safe: each worker
/// morsel owns its own log; merge order is the caller's responsibility.
class ChargeLog final : public PageCharger {
 public:
  void Charge(PageId page) override { pages_.push_back(page); }

  const std::vector<PageId>& pages() const { return pages_; }
  size_t size() const { return pages_.size(); }
  bool empty() const { return pages_.empty(); }
  void clear() { pages_.clear(); }

  /// Appends another log's charges after this log's (order-preserving merge).
  void Append(const ChargeLog& other) {
    pages_.insert(pages_.end(), other.pages_.begin(), other.pages_.end());
  }

  /// Replays every recorded charge, in order, into `sink`.
  void ReplayInto(PageCharger* sink) const {
    for (PageId p : pages_) sink->Charge(p);
  }

 private:
  std::vector<PageId> pages_;
};

/// LRU buffer pool simulator. No page contents live here — extents keep the
/// data — but every *access* to a page goes through Fetch(), which tracks
/// hits (page already resident, paper §3.2 footnote: "some of the needed
/// data are already in main memory") and misses (charged as disk reads).
///
/// Fetch and the stat mutators are guarded by a spinlock so concurrent
/// sessions (and the executor's charge replay) can share one pool. Workers
/// in the batched executor never touch the pool on their hot path — they
/// charge per-morsel ChargeLogs — so the lock is effectively uncontended.
class BufferPool final : public PageCharger {
 public:
  struct Stats {
    uint64_t fetches = 0;   // logical page accesses
    uint64_t misses = 0;    // disk reads (page not resident)
    uint64_t hits = 0;      // page was resident
    uint64_t evictions = 0;
  };

  /// `capacity_pages` == 0 means "no caching": every fetch is a miss.
  explicit BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Accesses `page`; returns true on a hit. Misses evict LRU when full.
  bool Fetch(PageId page);

  /// PageCharger: a charge is a fetch.
  void Charge(PageId page) override { Fetch(page); }

  /// True if the page is currently resident (no access recorded).
  bool Resident(PageId page) const { return index_.count(page) > 0; }

  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return lru_.size(); }
  /// Snapshot read; do not call while another thread fetches.
  const Stats& stats() const { return stats_; }

  /// Zeroes the counters, keeping resident pages (for warm measurements).
  void ResetStats();

  /// Empties the pool and zeroes the counters (cold-start measurements).
  void Clear();

  /// Folds everything counted since the last publish into the process-wide
  /// metrics (rodin.buffer.*). Deliberately not per-Fetch: Fetch is the
  /// hottest loop in the system and carries only one uncontended spinlock
  /// acquisition. Reset/Clear publish implicitly so no counts are lost
  /// between measurements.
  void PublishMetrics();

 private:
  /// Tiny scoped spinlock over `lock_`. The critical sections are a few
  /// dozen instructions; a mutex would dominate them.
  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag& flag_;
  };

  size_t capacity_;
  Stats stats_;
  Stats published_;  // high-water mark of what PublishMetrics() exported
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_BUFFER_POOL_H_
