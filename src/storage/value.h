#ifndef RODIN_STORAGE_VALUE_H_
#define RODIN_STORAGE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rodin {

/// Object identifier: class id + slot within the class extent. The physical
/// model follows the *direct storage* approach [VKC86]: owner objects store
/// the Oids of their sub-objects.
struct Oid {
  uint32_t class_id = UINT32_MAX;
  uint32_t slot = UINT32_MAX;

  static Oid Invalid() { return Oid{}; }
  bool valid() const { return class_id != UINT32_MAX; }

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.class_id == b.class_id && a.slot == b.slot;
  }
  friend bool operator<(const Oid& a, const Oid& b) {
    if (a.class_id != b.class_id) return a.class_id < b.class_id;
    return a.slot < b.slot;
  }
};

class Value;

/// Backing store for collection-valued and tuple-valued Values. Immutable
/// once built; shared between copies of a Value.
struct Collection {
  enum class Kind { kSet, kList, kTuple };
  Kind kind;
  std::vector<Value> elems;
};

/// A runtime value: atomic, object reference, or (shared, immutable)
/// collection. Values are cheap to copy.
class Value {
 public:
  /// The null value (unset attribute).
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Real(double d) { return Value(Rep(d)); }
  static Value Str(std::string s) { return Value(Rep(std::move(s))); }
  static Value Ref(Oid oid) { return Value(Rep(oid)); }
  static Value MakeSet(std::vector<Value> elems);
  static Value MakeList(std::vector<Value> elems);
  static Value MakeTuple(std::vector<Value> elems);

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_ref() const { return std::holds_alternative<Oid>(rep_); }
  bool is_collection() const {
    return std::holds_alternative<std::shared_ptr<const Collection>>(rep_);
  }

  /// Accessors abort via CHECK on kind mismatch.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsString() const;
  Oid AsRef() const;
  const Collection& AsCollection() const;

  /// Numeric view: int or real as double. Aborts otherwise.
  double AsNumber() const;

  /// Total order across all values (kind rank first, then content).
  /// Used for set semantics (dedup) and index keys.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  size_t Hash() const;

  /// Rendering for debugging and report tables.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           Oid, std::shared_ptr<const Collection>>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  static Value MakeCollection(Collection::Kind kind, std::vector<Value> elems);

  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct OidHash {
  size_t operator()(const Oid& o) const {
    return (static_cast<size_t>(o.class_id) << 32) ^ o.slot;
  }
};

}  // namespace rodin

#endif  // RODIN_STORAGE_VALUE_H_
