#ifndef RODIN_STORAGE_PHYSICAL_SCHEMA_H_
#define RODIN_STORAGE_PHYSICAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace rodin {

/// Declares that instances referenced through `owner_class`.`attr` are
/// stored clustered close to their owner record (same page stream), per the
/// static clustering strategy of [VKC86] (paper §3). A class may be the
/// target of at most one clustering declaration.
struct ClusterSpec {
  std::string owner_class;
  std::string attr;
};

/// Splits a class extent vertically: each group of attribute names becomes a
/// fragment with its own pages. Groups must partition the class's stored
/// (non-computed) attributes. Reading an attribute touches only the fragment
/// holding it — the paper's "decomposition ... to optimize the processing of
/// selections and projections".
struct VerticalSpec {
  std::string class_name;
  std::vector<std::vector<std::string>> groups;
};

/// Splits a class or relation extent horizontally into `num_fragments`
/// fragments by hashing the named atomic attribute. Selections with an
/// equality predicate on that attribute scan a single fragment.
struct HorizontalSpec {
  std::string extent_name;  // class or relation name
  std::string attr;
  uint16_t num_fragments = 1;
};

/// B+-tree selection index on an atomic attribute of a class or relation.
struct SelIndexSpec {
  std::string extent_name;
  std::string attr;
};

/// Path index [MS86] on root_class.path[0].path[1]...: entries are tuples of
/// the Oids of every class along the path. A path of length 1 degenerates to
/// a join index [Va87].
struct PathIndexSpec {
  std::string root_class;
  std::vector<std::string> path;

  /// Dotted rendering, e.g. "works.instruments".
  std::string PathString() const;
};

/// The physical database design: everything the optimizer may exploit and
/// the cost model must price. Validated against the conceptual schema when a
/// Database is finalized.
struct PhysicalConfig {
  /// Buffer pool capacity in pages.
  size_t buffer_pages = 256;

  /// Fixed record size override per extent name; 0 entries mean "derive the
  /// record size from the stored values".
  std::vector<std::pair<std::string, uint64_t>> record_bytes_override;

  std::vector<ClusterSpec> clustering;
  std::vector<VerticalSpec> vertical;
  std::vector<HorizontalSpec> horizontal;
  std::vector<SelIndexSpec> sel_indexes;
  std::vector<PathIndexSpec> path_indexes;

  /// Validates the configuration against `schema`; returns human-readable
  /// violations (empty when valid).
  std::vector<std::string> Validate(const Schema& schema) const;

  const VerticalSpec* FindVertical(const std::string& extent_name) const;
  const HorizontalSpec* FindHorizontal(const std::string& extent_name) const;
  const ClusterSpec* FindClusterTarget(const Schema& schema,
                                       const std::string& class_name) const;
  uint64_t RecordBytesOverride(const std::string& extent_name) const;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_PHYSICAL_SCHEMA_H_
