#include "storage/btree_index.h"

#include <algorithm>

#include "common/check.h"

namespace rodin {

void BTreeShape::Build(uint64_t num_entries, uint64_t entry_bytes,
                       PageId first_page) {
  RODIN_CHECK(entry_bytes > 0 && entry_bytes <= kPageSizeBytes,
              "bad index entry size");
  first_page_ = first_page;
  leaf_capacity_ = std::max<uint64_t>(1, kPageSizeBytes / entry_bytes);
  fanout_ = std::max<uint64_t>(2, kPageSizeBytes / 16);  // 16B separator+ptr
  nbleaves_ = num_entries == 0 ? 1 : (num_entries + leaf_capacity_ - 1) / leaf_capacity_;

  level_sizes_.clear();
  level_first_page_.clear();
  uint64_t level = nbleaves_;
  PageId next = first_page + nbleaves_;
  do {
    level = (level + fanout_ - 1) / fanout_;
    level_sizes_.push_back(level);
    level_first_page_.push_back(next);
    next += level;
  } while (level > 1);
  total_pages_ = next - first_page;
}

PageId BTreeShape::LeafPage(uint64_t entry_index) const {
  return first_page_ + entry_index / leaf_capacity_;
}

void BTreeShape::ChargeDescent(uint64_t entry_index, PageCharger* charger) const {
  if (charger == nullptr) return;
  // Walk the internal levels top-down (root first, like a real descent).
  uint64_t leaf = entry_index / leaf_capacity_;
  std::vector<PageId> path;
  uint64_t node = leaf;
  for (size_t lvl = 0; lvl < level_sizes_.size(); ++lvl) {
    node = node / fanout_;
    path.push_back(level_first_page_[lvl] + node);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) charger->Charge(*it);
}

void BTreeShape::ChargeLeaves(uint64_t begin, uint64_t end,
                              PageCharger* charger) const {
  if (charger == nullptr || begin >= end) return;
  const uint64_t first_leaf = begin / leaf_capacity_;
  const uint64_t last_leaf = (end - 1) / leaf_capacity_;
  for (uint64_t leaf = first_leaf; leaf <= last_leaf; ++leaf) {
    charger->Charge(first_page_ + leaf);
  }
}

uint64_t BTreeIndex::Build(std::vector<std::pair<Value, uint64_t>> entries,
                           uint64_t entry_bytes, PageId first_page) {
  entries_ = std::move(entries);
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) {
              const int c = a.first.Compare(b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
  num_distinct_ = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i == 0 || entries_[i].first != entries_[i - 1].first) ++num_distinct_;
  }
  entry_bytes_ = entry_bytes;
  first_page_ = first_page;
  shape_.Build(entries_.size(), entry_bytes, first_page);
  allocated_pages_ = shape_.total_pages();
  return shape_.total_pages();
}

void BTreeIndex::Update(const std::vector<std::pair<Value, uint64_t>>& removes,
                        const std::vector<std::pair<Value, uint64_t>>& adds,
                        const std::function<PageId(uint64_t)>& alloc) {
  auto less = [](const std::pair<Value, uint64_t>& a,
                 const std::pair<Value, uint64_t>& b) {
    const int c = a.first.Compare(b.first);
    if (c != 0) return c < 0;
    return a.second < b.second;
  };
  for (const auto& rm : removes) {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), rm, less);
    RODIN_CHECK(it != entries_.end() && it->second == rm.second &&
                    it->first.Compare(rm.first) == 0,
                "index update removes absent entry");
    entries_.erase(it);
  }
  for (const auto& add : adds) {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), add, less);
    entries_.insert(it, add);
  }
  num_distinct_ = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i == 0 || entries_[i].first != entries_[i - 1].first) ++num_distinct_;
  }
  BTreeShape trial;
  trial.Build(entries_.size(), entry_bytes_, first_page_);
  if (trial.total_pages() > allocated_pages_) {
    // Outgrew the original range: move to a fresh one with 50% headroom so
    // steady insert traffic does not reallocate per commit.
    const uint64_t grant = trial.total_pages() + trial.total_pages() / 2 + 1;
    first_page_ = alloc(grant);
    allocated_pages_ = grant;
  }
  shape_.Build(entries_.size(), entry_bytes_, first_page_);
}

std::vector<uint64_t> BTreeIndex::Lookup(const Value& key,
                                         PageCharger* charger) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, const Value& k) { return e.first.Compare(k) < 0; });
  auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const Value& k, const auto& e) { return k.Compare(e.first) < 0; });
  const uint64_t begin = static_cast<uint64_t>(lo - entries_.begin());
  const uint64_t end = static_cast<uint64_t>(hi - entries_.begin());
  shape_.ChargeDescent(begin < entries_.size() ? begin : 0, charger);
  shape_.ChargeLeaves(begin, end, charger);
  std::vector<uint64_t> out;
  out.reserve(end - begin);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<uint64_t> BTreeIndex::RangeLookup(const Value& lo, bool lo_strict,
                                              const Value& hi, bool hi_strict,
                                              PageCharger* charger) const {
  auto key_less = [](const auto& e, const Value& k) {
    return e.first.Compare(k) < 0;
  };
  auto key_leq = [](const auto& e, const Value& k) {
    return e.first.Compare(k) <= 0;
  };
  size_t begin = 0;
  size_t end = entries_.size();
  if (!lo.is_null()) {
    auto it = lo_strict ? std::partition_point(
                              entries_.begin(), entries_.end(),
                              [&](const auto& e) { return key_leq(e, lo); })
                        : std::partition_point(
                              entries_.begin(), entries_.end(),
                              [&](const auto& e) { return key_less(e, lo); });
    begin = static_cast<size_t>(it - entries_.begin());
  }
  if (!hi.is_null()) {
    auto it = hi_strict ? std::partition_point(
                              entries_.begin(), entries_.end(),
                              [&](const auto& e) { return key_less(e, hi); })
                        : std::partition_point(
                              entries_.begin(), entries_.end(),
                              [&](const auto& e) { return key_leq(e, hi); });
    end = static_cast<size_t>(it - entries_.begin());
  }
  if (begin > end) end = begin;
  shape_.ChargeDescent(begin < entries_.size() ? begin : 0, charger);
  shape_.ChargeLeaves(begin, end, charger);
  std::vector<uint64_t> out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(entries_[i].second);
  return out;
}

}  // namespace rodin
