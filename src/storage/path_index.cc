#include "storage/path_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace rodin {

std::string PathIndex::PathString() const { return Join(path_, "."); }

uint64_t PathIndex::Build(std::vector<std::vector<Oid>> entries,
                          PageId first_page) {
  for (const auto& e : entries) {
    RODIN_CHECK(e.size() == path_.size() + 1, "path index entry arity mismatch");
  }
  entries_ = std::move(entries);
  std::sort(entries_.begin(), entries_.end(),
            [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end());
            });
  // Entry size: one oid (8B) per class along the path.
  const uint64_t entry_bytes = 8ULL * (path_.size() + 1);
  first_page_ = first_page;
  shape_.Build(entries_.size(), entry_bytes, first_page);
  allocated_pages_ = shape_.total_pages();
  return shape_.total_pages();
}

void PathIndex::Rebuild(std::vector<std::vector<Oid>> entries,
                        const std::function<PageId(uint64_t)>& alloc) {
  for (const auto& e : entries) {
    RODIN_CHECK(e.size() == path_.size() + 1, "path index entry arity mismatch");
  }
  entries_ = std::move(entries);
  std::sort(entries_.begin(), entries_.end(),
            [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end());
            });
  const uint64_t entry_bytes = 8ULL * (path_.size() + 1);
  BTreeShape trial;
  trial.Build(entries_.size(), entry_bytes, first_page_);
  if (trial.total_pages() > allocated_pages_) {
    const uint64_t grant = trial.total_pages() + trial.total_pages() / 2 + 1;
    first_page_ = alloc(grant);
    allocated_pages_ = grant;
  }
  shape_.Build(entries_.size(), entry_bytes, first_page_);
}

std::vector<const std::vector<Oid>*> PathIndex::Lookup(Oid head,
                                                       PageCharger* charger) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), head,
                             [](const std::vector<Oid>& e, const Oid& k) {
                               return e[0] < k;
                             });
  auto hi = lo;
  while (hi != entries_.end() && (*hi)[0] == head) ++hi;
  const uint64_t begin = static_cast<uint64_t>(lo - entries_.begin());
  const uint64_t end = static_cast<uint64_t>(hi - entries_.begin());
  shape_.ChargeDescent(begin < entries_.size() ? begin : 0, charger);
  shape_.ChargeLeaves(begin, end, charger);
  std::vector<const std::vector<Oid>*> out;
  out.reserve(end - begin);
  for (auto it = lo; it != hi; ++it) out.push_back(&*it);
  return out;
}

}  // namespace rodin
