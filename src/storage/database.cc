#include "storage/database.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"
#include "txn/txn_manager.h"

namespace rodin {

std::string EntityRef::ToString() const {
  std::string out = extent;
  if (vfrag != 0) out += StrFormat(".v%u", vfrag);
  if (hfrag != 0) out += StrFormat(".h%u", hfrag);
  return out;
}

Database::Database(const Schema* schema) : schema_(schema) {
  RODIN_CHECK(schema != nullptr, "null schema");
  pool_ = std::make_unique<BufferPool>(256);
  for (const auto& cls : schema->classes()) {
    uint32_t stored = 0;
    for (const Attribute& a : cls->AllAttributes()) {
      if (!a.computed) ++stored;
    }
    ExtentInfo info;
    info.extent = std::make_unique<Extent>(cls->name(), stored);
    info.is_relation = false;
    info.id = cls->id();
    extents_.push_back(std::move(info));
  }
  for (const auto& rel : schema->relations()) {
    ExtentInfo info;
    info.extent = std::make_unique<Extent>(
        rel->name(), static_cast<uint32_t>(rel->AllAttributes().size()));
    info.is_relation = true;
    info.id = rel->id();
    extents_.push_back(std::move(info));
  }
}

Database::~Database() { TxnManager::Forget(this); }

Database::ExtentInfo* Database::FindInfo(const std::string& name) {
  for (ExtentInfo& info : extents_) {
    if (info.extent->name() == name) return &info;
  }
  return nullptr;
}

const Database::ExtentInfo* Database::FindInfo(const std::string& name) const {
  for (const ExtentInfo& info : extents_) {
    if (info.extent->name() == name) return &info;
  }
  return nullptr;
}

const Database::ExtentInfo* Database::InfoOf(Oid oid) const {
  const bool is_rel = IsRelationOid(oid);
  const uint32_t id = oid.class_id & ~kRelationOidBit;
  for (const ExtentInfo& info : extents_) {
    if (info.is_relation == is_rel && info.id == id) return &info;
  }
  RODIN_CHECK(false, "oid does not match any extent");
  return nullptr;
}

Oid Database::NewObject(const std::string& class_name) {
  RODIN_CHECK(!finalized_, "NewObject after Finalize");
  ExtentInfo* info = FindInfo(class_name);
  RODIN_CHECK(info != nullptr && !info->is_relation, "unknown class");
  std::vector<Value> fields(info->extent->num_fields());
  const uint32_t slot = info->extent->Insert(std::move(fields));
  return Oid{info->id, slot};
}

int Database::FieldIndex(const std::string& extent_name,
                         const std::string& attr) const {
  if (const ClassDef* cls = schema_->FindClass(extent_name)) {
    int idx = 0;
    for (const Attribute& a : cls->AllAttributes()) {
      if (a.computed) continue;
      if (a.name == attr) return idx;
      ++idx;
    }
    return -1;
  }
  if (const RelationDef* rel = schema_->FindRelation(extent_name)) {
    return rel->AttributeIndex(attr);
  }
  return -1;
}

void Database::Set(Oid oid, const std::string& attr, Value v) {
  RODIN_CHECK(!finalized_, "Set after Finalize");
  const ExtentInfo* info = InfoOf(oid);
  const int field = FieldIndex(info->extent->name(), attr);
  RODIN_CHECK(field >= 0, "unknown or computed attribute in Set");
  const_cast<Extent*>(info->extent.get())->MutableRecord(oid.slot)[field] =
      std::move(v);
}

Oid Database::InsertTuple(const std::string& relation,
                          std::vector<Value> fields) {
  RODIN_CHECK(!finalized_, "InsertTuple after Finalize");
  ExtentInfo* info = FindInfo(relation);
  RODIN_CHECK(info != nullptr && info->is_relation, "unknown relation");
  const uint32_t slot = info->extent->Insert(std::move(fields));
  return Oid{info->id | kRelationOidBit, slot};
}

void Database::RegisterMethod(const std::string& class_name,
                              const std::string& attr, MethodFn fn) {
  const ClassDef* cls = schema_->FindClass(class_name);
  RODIN_CHECK(cls != nullptr, "unknown class in RegisterMethod");
  const Attribute* a = cls->FindAttribute(attr);
  RODIN_CHECK(a != nullptr && a->computed, "method must be a computed attribute");
  methods_[{class_name, attr}] = std::move(fn);
}

bool Database::HasMethod(const std::string& class_name,
                         const std::string& attr) const {
  // Methods are inherited: search up the chain.
  for (const ClassDef* c = schema_->FindClass(class_name); c != nullptr;
       c = c->super()) {
    if (methods_.count({c->name(), attr}) > 0) return true;
  }
  return false;
}

Value Database::InvokeMethod(Oid oid, const std::string& attr) const {
  const ExtentInfo* info = InfoOf(oid);
  for (const ClassDef* c = schema_->FindClass(info->extent->name());
       c != nullptr; c = c->super()) {
    auto it = methods_.find({c->name(), attr});
    if (it != methods_.end()) return it->second(*this, oid);
  }
  RODIN_CHECK(false, "no method registered for attribute");
  return Value::Null();
}

Value Database::GetRaw(Oid oid, const std::string& attr) const {
  const ExtentInfo* info = InfoOf(oid);
  const int field = FieldIndex(info->extent->name(), attr);
  RODIN_CHECK(field >= 0, "unknown or computed attribute in GetRaw");
  return info->extent->Record(oid.slot)[field];
}

const std::vector<Value>& Database::RecordOf(Oid oid) const {
  const ExtentInfo* info = InfoOf(oid);
  return info->extent->Record(oid.slot);
}

const Extent* Database::FindExtent(const std::string& name) const {
  const ExtentInfo* info = FindInfo(name);
  return info == nullptr ? nullptr : info->extent.get();
}

Extent* Database::FindExtentMutable(const std::string& name) {
  ExtentInfo* info = FindInfo(name);
  return info == nullptr ? nullptr : info->extent.get();
}

bool Database::IsRelation(const std::string& name) const {
  const ExtentInfo* info = FindInfo(name);
  return info != nullptr && info->is_relation;
}

const Extent* Database::ExtentOf(Oid oid) const { return InfoOf(oid)->extent.get(); }

const std::string& Database::ExtentNameOf(Oid oid) const {
  return InfoOf(oid)->extent->name();
}

PageId Database::AllocatePages(uint64_t n) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId first = next_page_;
  next_page_ += n;
  return first;
}

const Database::ExtentInfo* Database::InfoOfOrNull(Oid oid) const {
  const bool is_rel = IsRelationOid(oid);
  const uint32_t id = oid.class_id & ~kRelationOidBit;
  for (const ExtentInfo& info : extents_) {
    if (info.is_relation == is_rel && info.id == id) return &info;
  }
  return nullptr;
}

Status Database::Apply(const MutationBatch& batch, MutationResult* result) {
  RODIN_CHECK(finalized_, "Apply before Finalize");
  RODIN_CHECK(result != nullptr, "Apply needs a result out-param");
  *result = MutationResult{};
  auto fail = [](std::string msg) {
    return Status::Error(Status::Code::kInvalidArgument, std::move(msg));
  };

  struct Planned {
    size_t ext = 0;  // index into extents_
    ResolvedMutationOp op;
    std::vector<std::string> assign_attrs;  // parallel to op.assigns
  };
  std::vector<Planned> planned;
  std::vector<uint32_t> extra(extents_.size(), 0);  // staged inserts, per extent
  std::set<Oid> batch_deletes;
  std::set<Oid> batch_updates;
  // (extent index, slot, field) already assigned by an earlier update — two
  // assignments to one field would make the index delta ambiguous.
  std::set<std::tuple<size_t, uint32_t, int>> assigned;

  auto base_id = [](const ExtentInfo& info) {
    return info.is_relation ? (info.id | kRelationOidBit) : info.id;
  };
  auto ext_index = [&](const ExtentInfo* info) {
    return static_cast<size_t>(info - extents_.data());
  };

  // Pass 1: resolve names to storage positions, assign provisional slots to
  // inserts (exact under the single-writer protocol: slots are append-only
  // and this batch is the only writer), collect delete/update target sets.
  for (const MutationOp& op : batch.ops) {
    const ExtentInfo* info = FindInfo(op.extent);
    if (info == nullptr) {
      return fail("mutation on unknown extent '" + op.extent + "'");
    }
    const size_t ei = ext_index(info);
    const Extent* e = info->extent.get();
    const HorizontalSpec* hspec = config_.FindHorizontal(op.extent);
    Planned p;
    p.ext = ei;
    p.op.kind = op.kind;
    switch (op.kind) {
      case MutationOpKind::kInsert: {
        std::vector<Value> fields(e->num_fields());
        for (const auto& [attr, val] : op.values) {
          const int f = FieldIndex(op.extent, attr);
          if (f < 0) {
            return fail("insert into '" + op.extent +
                        "': unknown or computed attribute '" + attr + "'");
          }
          fields[f] = val;
        }
        uint16_t h = 0;
        if (hspec != nullptr && hspec->num_fragments > 1) {
          const int hf = FieldIndex(op.extent, hspec->attr);
          RODIN_CHECK(hf >= 0, "horizontal attr missing");
          h = static_cast<uint16_t>(fields[hf].Hash() % hspec->num_fragments);
        }
        p.op.fields = std::move(fields);
        p.op.hfrag = h;
        p.op.slot = e->size() + extra[ei];  // predicted slot
        result->new_oids.push_back(Oid{base_id(*info), p.op.slot});
        ++extra[ei];
        break;
      }
      case MutationOpKind::kDelete: {
        if (op.target.class_id != base_id(*info)) {
          return fail("delete target does not belong to extent '" + op.extent +
                      "'");
        }
        if (!e->alive(op.target.slot)) {
          return fail("delete of dead or out-of-range slot in '" + op.extent +
                      "'");
        }
        if (!batch_deletes.insert(op.target).second) {
          return fail("duplicate delete of one oid in a batch");
        }
        p.op.slot = op.target.slot;
        break;
      }
      case MutationOpKind::kUpdate: {
        if (op.target.class_id != base_id(*info)) {
          return fail("update target does not belong to extent '" + op.extent +
                      "'");
        }
        if (!e->alive(op.target.slot)) {
          return fail("update of dead or out-of-range slot in '" + op.extent +
                      "'");
        }
        for (const auto& [attr, val] : op.values) {
          const int f = FieldIndex(op.extent, attr);
          if (f < 0) {
            return fail("update of '" + op.extent +
                        "': unknown or computed attribute '" + attr + "'");
          }
          if (hspec != nullptr && hspec->num_fragments > 1 &&
              attr == hspec->attr) {
            return fail("cannot update horizontal-fragmentation attribute '" +
                        attr + "' of '" + op.extent +
                        "' (records do not migrate between fragments)");
          }
          if (!assigned.insert({ei, op.target.slot, f}).second) {
            return fail("two updates assign one field of one oid in a batch");
          }
          p.op.assigns.emplace_back(f, val);
          p.assign_attrs.push_back(attr);
        }
        p.op.slot = op.target.slot;
        batch_updates.insert(op.target);
        break;
      }
    }
    planned.push_back(std::move(p));
  }
  for (const Oid& oid : batch_updates) {
    if (batch_deletes.count(oid) > 0) {
      return fail("a batch both updates and deletes one oid");
    }
  }

  // Pass 2: every ref the batch writes must resolve to a live oid — either
  // pre-existing and not deleted by this batch, or created by one of this
  // batch's own inserts.
  auto ref_ok = [&](Oid oid) {
    const ExtentInfo* info = InfoOfOrNull(oid);
    if (info == nullptr) return false;
    if (batch_deletes.count(oid) > 0) return false;
    if (info->extent->alive(oid.slot)) return true;
    const size_t ei = ext_index(info);
    return oid.slot >= info->extent->size() &&
           oid.slot < info->extent->size() + extra[ei];
  };
  std::function<bool(const Value&)> value_refs_ok = [&](const Value& v) {
    if (v.is_ref()) return ref_ok(v.AsRef());
    if (v.is_collection()) {
      for (const Value& ev : v.AsCollection().elems) {
        if (!value_refs_ok(ev)) return false;
      }
    }
    return true;
  };
  for (const Planned& p : planned) {
    if (p.op.kind == MutationOpKind::kInsert) {
      for (const Value& v : p.op.fields) {
        if (!value_refs_ok(v)) return fail("mutation writes a dangling ref");
      }
    } else if (p.op.kind == MutationOpKind::kUpdate) {
      for (const auto& [f, v] : p.op.assigns) {
        if (!value_refs_ok(v)) return fail("mutation writes a dangling ref");
      }
    }
  }

  // Pass 3: referential integrity of deletes — after the batch, no live
  // record may still reference a deleted oid. Updated fields are judged by
  // their new values (an update may exist precisely to drop such a ref);
  // everything else by its current ones.
  if (!batch_deletes.empty()) {
    std::map<std::pair<size_t, uint32_t>, const Planned*> updates;
    for (const Planned& p : planned) {
      if (p.op.kind == MutationOpKind::kUpdate) {
        updates[{p.ext, p.op.slot}] = &p;
      }
    }
    std::function<bool(const Value&)> hits_deleted = [&](const Value& v) {
      if (v.is_ref()) return batch_deletes.count(v.AsRef()) > 0;
      if (v.is_collection()) {
        for (const Value& ev : v.AsCollection().elems) {
          if (hits_deleted(ev)) return true;
        }
      }
      return false;
    };
    for (size_t ei = 0; ei < extents_.size(); ++ei) {
      const Extent* e = extents_[ei].extent.get();
      const uint32_t base = base_id(extents_[ei]);
      for (uint32_t s = 0; s < e->size(); ++s) {
        if (!e->alive(s)) continue;
        if (batch_deletes.count(Oid{base, s}) > 0) continue;
        const auto up = updates.find({ei, s});
        const std::vector<Value>& rec = e->Record(s);
        for (uint32_t f = 0; f < e->num_fields(); ++f) {
          const Value* v = &rec[f];
          if (up != updates.end()) {
            for (const auto& [af, av] : up->second->op.assigns) {
              if (static_cast<uint32_t>(af) == f) v = &av;
            }
          }
          if (hits_deleted(*v)) {
            return fail("delete would leave a dangling ref from '" +
                        e->name() + "'");
          }
        }
      }
    }
  }

  // Pre-apply: selection-index deltas need the *old* values of deleted and
  // reassigned fields, so gather them before records change.
  struct SelDelta {
    std::vector<std::pair<Value, uint64_t>> removes, adds;
  };
  std::vector<SelDelta> sel_deltas(sel_indexes_.size());
  for (size_t i = 0; i < sel_indexes_.size(); ++i) {
    const ExtentInfo* info = FindInfo(sel_index_extent_[i]);
    RODIN_CHECK(info != nullptr, "sel index extent vanished");
    const size_t ei = ext_index(info);
    const int f = FieldIndex(sel_index_extent_[i], sel_indexes_[i]->attr());
    RODIN_CHECK(f >= 0, "sel index attribute vanished");
    for (const Planned& p : planned) {
      if (p.ext != ei) continue;
      switch (p.op.kind) {
        case MutationOpKind::kInsert: {
          const Value& v = p.op.fields[f];
          if (!v.is_null()) sel_deltas[i].adds.emplace_back(v, p.op.slot);
          break;
        }
        case MutationOpKind::kDelete: {
          const Value& v = info->extent->Record(p.op.slot)[f];
          if (!v.is_null()) sel_deltas[i].removes.emplace_back(v, p.op.slot);
          break;
        }
        case MutationOpKind::kUpdate: {
          for (const auto& [af, av] : p.op.assigns) {
            if (af != f) continue;
            const Value& old = info->extent->Record(p.op.slot)[f];
            if (!old.is_null()) {
              sel_deltas[i].removes.emplace_back(old, p.op.slot);
            }
            if (!av.is_null()) sel_deltas[i].adds.emplace_back(av, p.op.slot);
          }
          break;
        }
      }
    }
  }

  // Which path indexes the batch can affect: a root-class insert/delete
  // grows/shrinks the entry head set; any op that writes (or could write) a
  // path attribute rewires instantiations. Rebuilds re-expand from live
  // records, so over-approximating here costs work, never correctness.
  std::vector<bool> path_affected(path_indexes_.size(), false);
  for (size_t k = 0; k < path_indexes_.size(); ++k) {
    const PathIndexSpec& spec = config_.path_indexes[k];
    const std::set<std::string> path_attrs(spec.path.begin(), spec.path.end());
    for (const Planned& p : planned) {
      const std::string& name = extents_[p.ext].extent->name();
      bool hit = false;
      if (p.op.kind == MutationOpKind::kUpdate) {
        for (const std::string& attr : p.assign_attrs) {
          if (path_attrs.count(attr) > 0) hit = true;
        }
      } else {
        if (name == spec.root_class) hit = true;
        for (const std::string& attr : path_attrs) {
          if (FieldIndex(name, attr) >= 0) hit = true;
        }
      }
      if (hit) {
        path_affected[k] = true;
        break;
      }
    }
  }

  // Apply: lower to per-extent op lists (batch order preserved within each
  // extent, which is all provisional-slot prediction relies on).
  const Extent::PageAlloc alloc = [this](uint64_t n) {
    return AllocatePages(n);
  };
  std::vector<std::vector<ResolvedMutationOp>> per_extent(extents_.size());
  for (const Planned& p : planned) per_extent[p.ext].push_back(p.op);
  for (size_t ei = 0; ei < extents_.size(); ++ei) {
    if (!per_extent[ei].empty()) extents_[ei].extent->Apply(per_extent[ei], alloc);
  }
  for (const Planned& p : planned) {
    switch (p.op.kind) {
      case MutationOpKind::kInsert:
        RODIN_CHECK(extents_[p.ext].extent->alive(p.op.slot),
                    "provisional slot prediction broke");
        ++result->inserted;
        break;
      case MutationOpKind::kDelete:
        ++result->deleted;
        break;
      case MutationOpKind::kUpdate:
        ++result->updated;
        break;
    }
  }

  // Index maintenance: selection indices patch incrementally; path indices
  // re-expand (instantiations are non-local in the edge set).
  for (size_t i = 0; i < sel_indexes_.size(); ++i) {
    if (sel_deltas[i].removes.empty() && sel_deltas[i].adds.empty()) continue;
    sel_indexes_[i]->Update(sel_deltas[i].removes, sel_deltas[i].adds, alloc);
  }
  for (size_t k = 0; k < path_indexes_.size(); ++k) {
    if (!path_affected[k]) continue;
    const PathIndexSpec& spec = config_.path_indexes[k];
    const ClassDef* root = schema_->FindClass(spec.root_class);
    RODIN_CHECK(root != nullptr, "path index root class vanished");
    path_indexes_[k]->Rebuild(ExpandPathEntries(spec, root->id()), alloc);
  }

  result->status = Status::Ok();
  return Status::Ok();
}

uint64_t Database::DeriveRecordBytes(const ExtentInfo& info) const {
  const uint64_t overridden =
      config_.RecordBytesOverride(info.extent->name());
  if (overridden > 0) return std::min(overridden, kPageSizeBytes);
  // Average the actual value footprints: 8B for scalars/refs, string length
  // + 8, 8B per collection element + 8 header.
  uint64_t total = 0;
  const uint32_t n = info.extent->size();
  if (n == 0) return 32;
  for (uint32_t s = 0; s < n; ++s) {
    for (const Value& v : info.extent->Record(s)) {
      if (v.is_string()) {
        total += 8 + v.AsString().size();
      } else if (v.is_collection()) {
        total += 8 + 8 * v.AsCollection().elems.size();
      } else {
        total += 8;
      }
    }
  }
  return std::min<uint64_t>(std::max<uint64_t>(8, total / n), kPageSizeBytes);
}

namespace {

/// Incremental packer of fixed-size records onto 4KB pages.
class PagePacker {
 public:
  explicit PagePacker(PageId first) : next_page_(first), bytes_left_(0) {}

  PageId Place(uint64_t record_bytes) {
    if (record_bytes > bytes_left_) {
      current_ = next_page_++;
      bytes_left_ = kPageSizeBytes;
    }
    bytes_left_ -= std::min(record_bytes, bytes_left_);
    return current_;
  }

  PageId end_page() const { return next_page_; }

 private:
  PageId next_page_;
  PageId current_ = 0;
  uint64_t bytes_left_;
};

}  // namespace

void Database::LayoutExtents() {
  // Fragment bookkeeping first: vertical groups and horizontal assignment.
  for (ExtentInfo& info : extents_) {
    Extent* e = info.extent.get();
    const std::string& name = e->name();

    // Vertical fragments.
    const VerticalSpec* vspec = config_.FindVertical(name);
    e->vfrag_fields_.clear();
    if (vspec == nullptr) {
      std::vector<int> all(e->num_fields());
      for (uint32_t i = 0; i < e->num_fields(); ++i) all[i] = i;
      e->vfrag_fields_.push_back(std::move(all));
    } else {
      for (const auto& group : vspec->groups) {
        std::vector<int> fields;
        for (const std::string& attr : group) {
          const int idx = FieldIndex(name, attr);
          RODIN_CHECK(idx >= 0, "vertical group names unknown attribute");
          fields.push_back(idx);
        }
        e->vfrag_fields_.push_back(std::move(fields));
      }
    }
    e->num_vfrags_ = static_cast<uint16_t>(e->vfrag_fields_.size());
    e->vfrag_of_field_.assign(e->num_fields(), 0);
    for (uint16_t v = 0; v < e->num_vfrags_; ++v) {
      for (int f : e->vfrag_fields_[v]) e->vfrag_of_field_[f] = v;
    }

    // Horizontal fragments.
    const HorizontalSpec* hspec = config_.FindHorizontal(name);
    e->num_hfrags_ = hspec == nullptr ? 1 : hspec->num_fragments;
    e->hfrag_of_.assign(e->size(), 0);
    if (hspec != nullptr && hspec->num_fragments > 1) {
      const int field = FieldIndex(name, hspec->attr);
      RODIN_CHECK(field >= 0, "horizontal attr missing");
      for (uint32_t s = 0; s < e->size(); ++s) {
        const Value& v = e->Record(s)[field];
        e->hfrag_of_[s] =
            static_cast<uint16_t>(v.Hash() % hspec->num_fragments);
      }
    }
    e->slots_of_hfrag_.assign(e->num_hfrags_, {});
    for (uint32_t s = 0; s < e->size(); ++s) {
      e->slots_of_hfrag_[e->hfrag_of_[s]].push_back(s);
    }
    e->page_of_.assign(e->num_vfrags_, std::vector<PageId>(e->size(), 0));

    info.record_bytes = DeriveRecordBytes(info);
  }

  // Per-vertical-fragment record size: proportional share of the record.
  auto frag_bytes = [&](const ExtentInfo& info, uint16_t v) -> uint64_t {
    const Extent* e = info.extent.get();
    if (e->num_fields() == 0) return info.record_bytes;
    const uint64_t share = info.record_bytes *
                           std::max<uint64_t>(1, e->vfrag_fields_[v].size()) /
                           std::max<uint32_t>(1u, e->num_fields());
    return std::max<uint64_t>(8, share);
  };
  // Remember the per-fragment record footprint: the write path's append
  // packer sizes post-finalize inserts with it.
  for (ExtentInfo& info : extents_) {
    Extent* e = info.extent.get();
    e->frag_bytes_.assign(e->num_vfrags_, 8);
    for (uint16_t v = 0; v < e->num_vfrags_; ++v) {
      e->frag_bytes_[v] = frag_bytes(info, v);
    }
  }

  // Which classes are clustering targets, and through which owner attr.
  std::set<std::string> cluster_targets;
  for (const ClusterSpec& c : config_.clustering) {
    const ClassDef* owner = schema_->FindClass(c.owner_class);
    const Attribute* a = owner->FindAttribute(c.attr);
    const Type* t = a->type;
    if (t->IsCollection()) t = t->elem();
    cluster_targets.insert(t->class_name());
  }
  for (const std::string& target : cluster_targets) {
    const Extent* e = FindExtent(target);
    RODIN_CHECK(e != nullptr, "cluster target extent missing");
    RODIN_CHECK(config_.FindHorizontal(target) == nullptr,
                "clustered class cannot be horizontally fragmented");
  }

  std::vector<std::vector<bool>> placed(extents_.size());
  for (size_t i = 0; i < extents_.size(); ++i) {
    placed[i].assign(extents_[i].extent->size(), false);
  }
  auto index_of = [&](const std::string& name) -> size_t {
    for (size_t i = 0; i < extents_.size(); ++i) {
      if (extents_[i].extent->name() == name) return i;
    }
    RODIN_CHECK(false, "extent not found");
    return 0;
  };

  // Recursively places the primary fragment of a record and the primary
  // fragments of its clustered children into `packer`.
  std::function<void(size_t, uint32_t, PagePacker&)> place_clustered =
      [&](size_t ext_idx, uint32_t slot, PagePacker& packer) {
        ExtentInfo& info = extents_[ext_idx];
        Extent* e = info.extent.get();
        if (placed[ext_idx][slot]) return;
        placed[ext_idx][slot] = true;
        e->page_of_[0][slot] = packer.Place(frag_bytes(info, 0));
        if (info.is_relation) return;
        for (const ClusterSpec& c : config_.clustering) {
          if (c.owner_class != e->name()) continue;
          const int field = FieldIndex(e->name(), c.attr);
          if (field < 0) continue;
          const Value& v = e->Record(slot)[field];
          std::vector<Oid> children;
          if (v.is_ref()) {
            children.push_back(v.AsRef());
          } else if (v.is_collection()) {
            for (const Value& ev : v.AsCollection().elems) {
              if (ev.is_ref()) children.push_back(ev.AsRef());
            }
          }
          for (Oid child : children) {
            const size_t child_idx = index_of(ExtentNameOf(child));
            place_clustered(child_idx, child.slot, packer);
          }
        }
      };

  // Primary (vfrag 0) streams: every extent that is not a cluster target
  // gets one stream per horizontal fragment; cluster targets ride along.
  for (size_t i = 0; i < extents_.size(); ++i) {
    ExtentInfo& info = extents_[i];
    Extent* e = info.extent.get();
    if (cluster_targets.count(e->name()) > 0) continue;
    for (uint16_t h = 0; h < e->num_hfrags_; ++h) {
      PagePacker packer(next_page_);
      for (uint32_t slot : e->slots_of_hfrag_[h]) {
        place_clustered(i, slot, packer);
      }
      next_page_ = packer.end_page();
    }
  }
  // Leftover cluster-target records (never referenced by an owner) get a
  // tail stream of their own.
  for (size_t i = 0; i < extents_.size(); ++i) {
    ExtentInfo& info = extents_[i];
    Extent* e = info.extent.get();
    PagePacker packer(next_page_);
    for (uint32_t s = 0; s < e->size(); ++s) {
      if (!placed[i][s]) {
        placed[i][s] = true;
        e->page_of_[0][s] = packer.Place(frag_bytes(info, 0));
      }
    }
    next_page_ = packer.end_page();
  }

  // Secondary vertical fragments: packed contiguously per (v, h).
  for (ExtentInfo& info : extents_) {
    Extent* e = info.extent.get();
    for (uint16_t v = 1; v < e->num_vfrags_; ++v) {
      for (uint16_t h = 0; h < e->num_hfrags_; ++h) {
        PagePacker packer(next_page_);
        for (uint32_t slot : e->slots_of_hfrag_[h]) {
          e->page_of_[v][slot] = packer.Place(frag_bytes(info, v));
        }
        next_page_ = packer.end_page();
      }
    }
  }

  // Scan page lists: distinct pages in first-touch order per (v, h).
  for (ExtentInfo& info : extents_) {
    Extent* e = info.extent.get();
    e->scan_pages_.assign(e->num_vfrags_, {});
    for (uint16_t v = 0; v < e->num_vfrags_; ++v) {
      e->scan_pages_[v].assign(e->num_hfrags_, {});
      for (uint16_t h = 0; h < e->num_hfrags_; ++h) {
        std::unordered_set<PageId> seen;
        for (uint32_t slot : e->slots_of_hfrag_[h]) {
          const PageId p = e->page_of_[v][slot];
          if (seen.insert(p).second) e->scan_pages_[v][h].push_back(p);
        }
      }
    }
  }
}

void Database::BuildIndexes() {
  for (const SelIndexSpec& spec : config_.sel_indexes) {
    const ExtentInfo* info = FindInfo(spec.extent_name);
    RODIN_CHECK(info != nullptr, "sel index on unknown extent");
    const int field = FieldIndex(spec.extent_name, spec.attr);
    RODIN_CHECK(field >= 0, "sel index on unknown attribute");
    std::vector<std::pair<Value, uint64_t>> entries;
    const Extent* e = info->extent.get();
    for (uint32_t s = 0; s < e->size(); ++s) {
      if (!e->alive(s)) continue;
      const Value& v = e->Record(s)[field];
      if (!v.is_null()) entries.emplace_back(v, s);
    }
    uint64_t key_bytes = 8;
    if (!entries.empty() && entries.front().first.is_string()) key_bytes = 24;
    auto index = std::make_unique<BTreeIndex>(
        spec.extent_name + "." + spec.attr, spec.attr);
    const uint64_t pages =
        index->Build(std::move(entries), key_bytes + 8, next_page_);
    next_page_ += pages;
    sel_indexes_.push_back(std::move(index));
    sel_index_extent_.push_back(spec.extent_name);
  }

  for (const PathIndexSpec& spec : config_.path_indexes) {
    const ClassDef* root = schema_->FindClass(spec.root_class);
    RODIN_CHECK(root != nullptr, "path index on unknown class");
    // Collect the class ids along the path.
    std::vector<uint32_t> class_ids = {root->id()};
    const ClassDef* cls = root;
    for (const std::string& attr : spec.path) {
      const Attribute* a = cls->FindAttribute(attr);
      RODIN_CHECK(a != nullptr, "path index attribute missing");
      const Type* t = a->type;
      if (t->IsCollection()) t = t->elem();
      cls = schema_->FindClass(t->class_name());
      RODIN_CHECK(cls != nullptr, "path index class missing");
      class_ids.push_back(cls->id());
    }
    std::vector<std::vector<Oid>> entries =
        ExpandPathEntries(spec, root->id());
    auto index = std::make_unique<PathIndex>(spec.root_class, spec.path,
                                             std::move(class_ids));
    const uint64_t pages = index->Build(std::move(entries), next_page_);
    next_page_ += pages;
    path_indexes_.push_back(std::move(index));
  }
}

std::vector<std::vector<Oid>> Database::ExpandPathEntries(
    const PathIndexSpec& spec, uint32_t root_id) const {
  std::vector<std::vector<Oid>> entries;
  const Extent* root_extent = FindExtent(spec.root_class);
  RODIN_CHECK(root_extent != nullptr, "path index on unknown extent");
  std::function<void(Oid, size_t, std::vector<Oid>&)> expand =
      [&](Oid oid, size_t depth, std::vector<Oid>& cur) {
        cur.push_back(oid);
        if (depth == spec.path.size()) {
          entries.push_back(cur);
          cur.pop_back();
          return;
        }
        const Value v = GetRaw(oid, spec.path[depth]);
        if (v.is_ref()) {
          expand(v.AsRef(), depth + 1, cur);
        } else if (v.is_collection()) {
          for (const Value& ev : v.AsCollection().elems) {
            if (ev.is_ref()) expand(ev.AsRef(), depth + 1, cur);
          }
        }
        cur.pop_back();
      };
  for (uint32_t s = 0; s < root_extent->size(); ++s) {
    if (!root_extent->alive(s)) continue;
    std::vector<Oid> cur;
    expand(Oid{root_id, s}, 0, cur);
  }
  return entries;
}

void Database::Finalize(PhysicalConfig config) {
  RODIN_CHECK(!finalized_, "Finalize called twice");
  const std::vector<std::string> errors = config.Validate(*schema_);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "PhysicalConfig error: %s\n", e.c_str());
  }
  RODIN_CHECK(errors.empty(), "invalid physical configuration");
  config_ = std::move(config);
  pool_ = std::make_unique<BufferPool>(config_.buffer_pages);
  LayoutExtents();
  BuildIndexes();
  finalized_ = true;
}

Value Database::GetCharged(Oid oid, const std::string& attr) {
  return GetCharged(oid, attr, pool_.get());
}

Value Database::GetCharged(Oid oid, const std::string& attr,
                           PageCharger* charger) const {
  RODIN_CHECK(finalized_, "charged access before Finalize");
  const ExtentInfo* info = InfoOf(oid);
  const int field = FieldIndex(info->extent->name(), attr);
  RODIN_CHECK(field >= 0, "unknown or computed attribute in GetCharged");
  const Extent* e = info->extent.get();
  charger->Charge(e->PageOf(oid.slot, e->VfragOfField(field)));
  return e->Record(oid.slot)[field];
}

void Database::ChargeRecordAccess(Oid oid, const std::vector<int>& fields) {
  ChargeRecordAccess(oid, fields, pool_.get());
}

void Database::ChargeRecordAccess(Oid oid, const std::vector<int>& fields,
                                  PageCharger* charger) const {
  RODIN_CHECK(finalized_, "charged access before Finalize");
  const Extent* e = InfoOf(oid)->extent.get();
  std::set<uint16_t> vfrags;
  if (fields.empty()) {
    vfrags.insert(0);
  } else {
    for (int f : fields) vfrags.insert(e->VfragOfField(f));
  }
  for (uint16_t v : vfrags) charger->Charge(e->PageOf(oid.slot, v));
}

void Database::ScanEntity(
    const EntityRef& ref,
    const std::function<void(Oid, const std::vector<Value>&)>& fn) {
  const ScanSource src = ResolveScan(ref);
  for (uint32_t slot : *src.slots) {
    pool_->Fetch(src.extent->PageOf(slot, src.vfrag));
    fn(Oid{src.base_class, slot}, src.extent->Record(slot));
  }
}

Database::ScanSource Database::ResolveScan(const EntityRef& ref) const {
  RODIN_CHECK(finalized_, "scan before Finalize");
  const ExtentInfo* info = FindInfo(ref.extent);
  RODIN_CHECK(info != nullptr, "scan of unknown extent");
  const Extent* e = info->extent.get();
  RODIN_CHECK(ref.vfrag < e->num_vfrags() && ref.hfrag < e->num_hfrags(),
              "scan fragment out of range");
  ScanSource src;
  src.extent = e;
  src.base_class = info->is_relation ? (info->id | kRelationOidBit) : info->id;
  src.vfrag = ref.vfrag;
  src.slots = &e->SlotsOfHfrag(ref.hfrag);
  return src;
}

uint64_t Database::EntityPages(const EntityRef& ref) const {
  const Extent* e = FindExtent(ref.extent);
  RODIN_CHECK(e != nullptr && e->finalized(), "entity pages of unknown extent");
  return e->ScanPages(ref.vfrag, ref.hfrag).size();
}

uint64_t Database::EntityInstances(const EntityRef& ref) const {
  const Extent* e = FindExtent(ref.extent);
  RODIN_CHECK(e != nullptr && e->finalized(), "entity size of unknown extent");
  return e->SlotsOfHfrag(ref.hfrag).size();
}

const BTreeIndex* Database::FindSelIndex(const std::string& extent_name,
                                         const std::string& attr) const {
  for (size_t i = 0; i < sel_indexes_.size(); ++i) {
    if (sel_index_extent_[i] == extent_name &&
        sel_indexes_[i]->attr() == attr) {
      return sel_indexes_[i].get();
    }
  }
  return nullptr;
}

const PathIndex* Database::FindPathIndex(
    const std::string& root_class, const std::vector<std::string>& path) const {
  for (const auto& idx : path_indexes_) {
    if (idx->root_class() == root_class && idx->path() == path) {
      return idx.get();
    }
  }
  return nullptr;
}

Oid Database::PayloadToOid(const std::string& extent_name,
                           uint64_t payload) const {
  const ExtentInfo* info = FindInfo(extent_name);
  RODIN_CHECK(info != nullptr, "payload for unknown extent");
  const uint32_t base =
      info->is_relation ? (info->id | kRelationOidBit) : info->id;
  return Oid{base, static_cast<uint32_t>(payload)};
}

}  // namespace rodin
