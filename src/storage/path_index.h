#ifndef RODIN_STORAGE_PATH_INDEX_H_
#define RODIN_STORAGE_PATH_INDEX_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/btree_index.h"
#include "storage/buffer_pool.h"
#include "storage/value.h"

namespace rodin {

/// Path index [MS86] on a path C1.A1...A(n-1): each entry is the tuple of
/// Oids (o1, ..., on) of one instantiation of the path. Keyed by the head
/// Oid o1, so it accelerates "all instrument oids reachable from this
/// Composer through works.instruments" in one probe — the paper's PIJ node.
///
/// A path of length 1 (single attribute) is exactly a join index [Va87].
class PathIndex {
 public:
  /// `root_class` and `path` identify the indexed path; `class_ids` are the
  /// classes along the path including the root (size = path length + 1).
  PathIndex(std::string root_class, std::vector<std::string> path,
            std::vector<uint32_t> class_ids)
      : root_class_(std::move(root_class)),
        path_(std::move(path)),
        class_ids_(std::move(class_ids)) {}

  const std::string& root_class() const { return root_class_; }
  const std::vector<std::string>& path() const { return path_; }
  size_t path_length() const { return path_.size(); }

  /// Dotted path, e.g. "works.instruments".
  std::string PathString() const;

  /// Sorts entries by head oid and lays out the B+-tree. Returns pages used.
  uint64_t Build(std::vector<std::vector<Oid>> entries, PageId first_page);

  /// Write-path maintenance: replaces the entry set with a freshly expanded
  /// one (path instantiations are non-local — one edge change can rewrite
  /// many tuples — so the index re-expands rather than patching). The page
  /// shape is rebuilt in place while it fits the original allocation, else
  /// a fresh range (with headroom) is drawn from `alloc(page_count)`.
  void Rebuild(std::vector<std::vector<Oid>> entries,
               const std::function<PageId(uint64_t)>& alloc);

  /// All path instantiations starting at `head`; charges descent + leaves.
  /// Each result tuple has path_length()+1 oids (head first).
  std::vector<const std::vector<Oid>*> Lookup(Oid head, PageCharger* charger) const;

  uint64_t nblevels() const { return shape_.nblevels(); }
  uint64_t nbleaves() const { return shape_.nbleaves(); }
  uint64_t num_entries() const { return entries_.size(); }

 private:
  std::string root_class_;
  std::vector<std::string> path_;
  std::vector<uint32_t> class_ids_;
  std::vector<std::vector<Oid>> entries_;  // sorted by entries[i][0]
  BTreeShape shape_;
  PageId first_page_ = 0;
  uint64_t allocated_pages_ = 0;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_PATH_INDEX_H_
