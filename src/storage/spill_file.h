#ifndef RODIN_STORAGE_SPILL_FILE_H_
#define RODIN_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "storage/value.h"

namespace rodin {

/// An anonymous on-disk overflow file holding one operator's working set
/// when it does not fit the query's page budget (graceful degradation
/// instead of kResourceExhausted; see docs/ROBUSTNESS.md).
///
/// Backed by tmpfile(): the file has no name, lives in the system temp
/// directory and is reclaimed by the OS the moment the SpillFile is
/// destroyed — or the process dies. That makes spills snapshot/restore-safe
/// for the fault-retry loop by construction: an aborted attempt unwinds its
/// operator tree, every SpillFile goes with it, and the retry starts from a
/// clean slate with nothing to roll back.
///
/// Write phase (single-threaded, coordinator only): AppendRow() serializes
/// rows into a buffered byte stream; Finish() flushes and freezes the file.
/// Read phase (after Finish): ReadRow()/ReadAll() use positioned reads
/// (pread) so any number of morsel workers can read concurrently without a
/// shared cursor or lock.
///
/// Spilled bytes deliberately do NOT flow through the BufferPool: the pool
/// is a *simulator* of the paper's page accesses and MeasuredCost must stay
/// bit-identical spill-on vs. all-in-memory (the accounting spine). Spill
/// I/O is tracked separately in SpillStats / rodin.spill.* metrics.
class SpillFile {
 public:
  SpillFile();
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Serializes and appends one row. Write phase only (before Finish).
  void AppendRow(const std::vector<Value>& row);

  /// Flushes buffered writes and freezes the file for reading.
  void Finish();

  size_t rows() const { return offsets_.size(); }
  uint64_t bytes() const { return bytes_; }

  /// Number of `partition_pages`-sized partitions the payload divides into
  /// (Grace-style partition count for the rodin.spill.partitions metric);
  /// at least 1 once any row was written. partition_pages == 0 counts the
  /// whole file as one partition.
  uint64_t Partitions(uint64_t partition_pages) const;

  /// Reads row `i` back. Thread-safe after Finish() (positioned pread; no
  /// shared state is mutated).
  std::vector<Value> ReadRow(size_t i) const;

  /// Reads every row back, in append order, into `out` (appended).
  void ReadAll(std::vector<std::vector<Value>>* out) const;

 private:
  void FlushBuffer();

  FILE* file_ = nullptr;
  int fd_ = -1;
  /// Byte offset of each row's serialized form; lengths derive from the
  /// next offset (or bytes_ for the last row). Kept in memory: ~8 bytes per
  /// spilled row, the deliberate memory floor of a spill.
  std::vector<uint64_t> offsets_;
  uint64_t bytes_ = 0;
  std::string buffer_;
  uint64_t flushed_ = 0;
  bool finished_ = false;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_SPILL_FILE_H_
