#ifndef RODIN_STORAGE_BTREE_INDEX_H_
#define RODIN_STORAGE_BTREE_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/value.h"

namespace rodin {

/// Simulated B+-tree page structure shared by selection and path indices:
/// a sorted entry array mapped onto leaf pages, with internal levels sized
/// by a fanout. Probes charge the descent path plus the touched leaf pages
/// to the buffer pool — instantiating the paper's `nblevels(I)` and
/// `nbleaves(I)` cost parameters with real, cacheable page ids.
class BTreeShape {
 public:
  BTreeShape() = default;

  /// Lays out `num_entries` entries of `entry_bytes` each, drawing pages
  /// from `first_page`. Internal fanout is derived from the page size.
  void Build(uint64_t num_entries, uint64_t entry_bytes, PageId first_page);

  uint64_t nbleaves() const { return nbleaves_; }

  /// Number of internal (non-leaf) levels descended on a probe; >= 1 (the
  /// root) for any non-empty index.
  uint64_t nblevels() const { return level_sizes_.size(); }

  uint64_t total_pages() const { return total_pages_; }

  /// Leaf page holding entry `entry_index`.
  PageId LeafPage(uint64_t entry_index) const;

  /// Charges the root-to-leaf descent for the leaf holding `entry_index`.
  void ChargeDescent(uint64_t entry_index, PageCharger* charger) const;

  /// Charges the distinct leaf pages covering entries [begin, end).
  void ChargeLeaves(uint64_t begin, uint64_t end, PageCharger* charger) const;

 private:
  uint64_t leaf_capacity_ = 1;
  uint64_t fanout_ = 2;
  uint64_t nbleaves_ = 0;
  uint64_t total_pages_ = 0;
  PageId first_page_ = 0;
  /// Internal level sizes bottom-up: level_sizes_[0] sits just above the
  /// leaves, the last entry is the root (size 1).
  std::vector<uint64_t> level_sizes_;
  /// First page id of each internal level, parallel to level_sizes_.
  std::vector<PageId> level_first_page_;
};

/// B+-tree selection index on one atomic attribute of an extent: key value
/// -> Oids (for classes) or row slots (for relations).
class BTreeIndex {
 public:
  BTreeIndex(std::string name, std::string attr)
      : name_(std::move(name)), attr_(std::move(attr)) {}

  const std::string& name() const { return name_; }
  const std::string& attr() const { return attr_; }

  /// Sorts and lays out the entries. `entry_bytes` approximates key+oid
  /// size. Returns the number of pages consumed starting at `first_page`.
  uint64_t Build(std::vector<std::pair<Value, uint64_t>> entries,
                 uint64_t entry_bytes, PageId first_page);

  /// Incremental maintenance (write path): removes then inserts exact
  /// (key, payload) entries, keeping the array sorted, and re-derives the
  /// page shape. While the index fits its originally-allocated page range
  /// the shape is rebuilt in place; if it outgrows it, a fresh contiguous
  /// range (with headroom) is drawn from `alloc(page_count)`. Removals of
  /// absent entries abort via CHECK — the caller resolved them against the
  /// same records this index was built from.
  void Update(const std::vector<std::pair<Value, uint64_t>>& removes,
              const std::vector<std::pair<Value, uint64_t>>& adds,
              const std::function<PageId(uint64_t)>& alloc);

  /// Equality probe; charges descent + touched leaves to `charger` (may be
  /// null for a cost-free peek). Returns the matching payloads.
  std::vector<uint64_t> Lookup(const Value& key, PageCharger* charger) const;

  /// Range probe over [lo, hi] with optional open bounds (null Value means
  /// unbounded). Charges one descent plus the touched leaves.
  std::vector<uint64_t> RangeLookup(const Value& lo, bool lo_strict,
                                    const Value& hi, bool hi_strict,
                                    PageCharger* charger) const;

  uint64_t nblevels() const { return shape_.nblevels(); }
  uint64_t nbleaves() const { return shape_.nbleaves(); }
  uint64_t num_entries() const { return entries_.size(); }
  uint64_t num_distinct_keys() const { return num_distinct_; }

 private:
  std::string name_;
  std::string attr_;
  std::vector<std::pair<Value, uint64_t>> entries_;  // sorted by key
  uint64_t num_distinct_ = 0;
  BTreeShape shape_;
  // Allocation bookkeeping for Update: the entry size fixed at Build, the
  // first page of the current range and how many pages that range holds.
  uint64_t entry_bytes_ = 16;
  PageId first_page_ = 0;
  uint64_t allocated_pages_ = 0;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_BTREE_INDEX_H_
