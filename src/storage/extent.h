#ifndef RODIN_STORAGE_EXTENT_H_
#define RODIN_STORAGE_EXTENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/value.h"

namespace rodin {

/// Storage for the instances of one class or relation. A record is a vector
/// of field Values in AllAttributes() order (stored attributes only).
///
/// The extent also carries the *physical layout* computed by
/// Database::Finalize(): the mapping of each record to pages, per vertical
/// and horizontal fragment. An (extent, vfrag, hfrag) triple is an *atomic
/// entity* in the paper's sense — the leaves of processing trees.
class Extent {
 public:
  Extent(std::string name, uint32_t num_fields)
      : name_(std::move(name)), num_fields_(num_fields) {}

  Extent(const Extent&) = delete;
  Extent& operator=(const Extent&) = delete;

  const std::string& name() const { return name_; }
  uint32_t num_fields() const { return num_fields_; }
  uint32_t size() const { return static_cast<uint32_t>(records_.size()); }

  /// Appends a record; returns its slot. Only valid before Finalize.
  uint32_t Insert(std::vector<Value> fields);

  const std::vector<Value>& Record(uint32_t slot) const;
  std::vector<Value>& MutableRecord(uint32_t slot);

  // --- Layout (populated by Database::Finalize) ---------------------------

  uint16_t num_vfrags() const { return num_vfrags_; }
  uint16_t num_hfrags() const { return num_hfrags_; }
  bool finalized() const { return !page_of_.empty(); }

  /// Fields (storage positions) belonging to vertical fragment `v`.
  const std::vector<int>& VfragFields(uint16_t v) const {
    return vfrag_fields_[v];
  }

  /// Vertical fragment containing field `field`.
  uint16_t VfragOfField(int field) const { return vfrag_of_field_[field]; }

  /// Horizontal fragment of a record.
  uint16_t HfragOf(uint32_t slot) const { return hfrag_of_[slot]; }

  /// Page holding the `v` fragment of record `slot`.
  PageId PageOf(uint32_t slot, uint16_t v) const { return page_of_[v][slot]; }

  /// Distinct pages touched by a full scan of atomic entity (v, h), in scan
  /// order.
  const std::vector<PageId>& ScanPages(uint16_t v, uint16_t h) const {
    return scan_pages_[v][h];
  }

  /// Slots belonging to horizontal fragment `h`, in scan order.
  const std::vector<uint32_t>& SlotsOfHfrag(uint16_t h) const {
    return slots_of_hfrag_[h];
  }

 private:
  friend class Database;

  std::string name_;
  uint32_t num_fields_;
  std::vector<std::vector<Value>> records_;

  uint16_t num_vfrags_ = 1;
  uint16_t num_hfrags_ = 1;
  std::vector<std::vector<int>> vfrag_fields_;
  std::vector<uint16_t> vfrag_of_field_;
  std::vector<uint16_t> hfrag_of_;
  std::vector<std::vector<PageId>> page_of_;                // [v][slot]
  std::vector<std::vector<std::vector<PageId>>> scan_pages_;  // [v][h]
  std::vector<std::vector<uint32_t>> slots_of_hfrag_;       // [h]
};

}  // namespace rodin

#endif  // RODIN_STORAGE_EXTENT_H_
