#ifndef RODIN_STORAGE_EXTENT_H_
#define RODIN_STORAGE_EXTENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/value.h"
#include "txn/mutation.h"

namespace rodin {

/// One mutation op with names already resolved against the schema: fields
/// are storage positions, the target a slot of this extent, an insert's
/// horizontal fragment precomputed. Database::Apply validates a
/// MutationBatch and lowers it to these before calling Extent::Apply.
struct ResolvedMutationOp {
  MutationOpKind kind = MutationOpKind::kInsert;
  /// Delete/update target slot.
  uint32_t slot = 0;
  /// Insert: the full record in storage-field order.
  std::vector<Value> fields;
  /// Insert: horizontal fragment of the new record.
  uint16_t hfrag = 0;
  /// Update: (field position, new value) assignments.
  std::vector<std::pair<int, Value>> assigns;
};

/// Storage for the instances of one class or relation. A record is a vector
/// of field Values in AllAttributes() order (stored attributes only).
///
/// The extent also carries the *physical layout* computed by
/// Database::Finalize(): the mapping of each record to pages, per vertical
/// and horizontal fragment. An (extent, vfrag, hfrag) triple is an *atomic
/// entity* in the paper's sense — the leaves of processing trees.
///
/// After Finalize the extent is no longer append-only: the write path
/// (Database::Apply, under the single-writer TxnManager protocol) mutates
/// it through Apply/ApplyInsert/ApplyDelete/ApplyUpdate. Deletes are
/// tombstones — the slot stays addressable (records_ never shrinks, so
/// oids are stable forever) but drops out of SlotsOfHfrag/ScanPages and of
/// live_size(). Inserts append to fresh pages via a per-vertical-fragment
/// packer; the original clustering is not extended to post-finalize rows.
class Extent {
 public:
  Extent(std::string name, uint32_t num_fields)
      : name_(std::move(name)), num_fields_(num_fields) {}

  Extent(const Extent&) = delete;
  Extent& operator=(const Extent&) = delete;

  const std::string& name() const { return name_; }
  uint32_t num_fields() const { return num_fields_; }
  uint32_t size() const { return static_cast<uint32_t>(records_.size()); }

  /// Appends a record; returns its slot. Only valid before Finalize.
  uint32_t Insert(std::vector<Value> fields);

  const std::vector<Value>& Record(uint32_t slot) const;
  std::vector<Value>& MutableRecord(uint32_t slot);

  // --- Liveness (write path) ----------------------------------------------

  /// False once the slot has been deleted (tombstoned). Slots past the end
  /// are not alive.
  bool alive(uint32_t slot) const {
    return slot < records_.size() &&
           (slot >= deleted_.size() || deleted_[slot] == 0);
  }
  /// Records minus tombstones.
  uint32_t live_size() const {
    return static_cast<uint32_t>(records_.size()) - num_deleted_;
  }

  // --- Mutation primitives (called by Database::Apply, post-Finalize) -----

  /// Allocator for fresh pages; receives a page count, returns the first id
  /// of a contiguous range (Database::AllocatePages bound by the caller).
  using PageAlloc = std::function<PageId(uint64_t)>;

  /// Applies pre-resolved ops in order. All validation has happened by the
  /// time this runs; layout structures (page_of_, slots_of_hfrag_,
  /// scan_pages_) are maintained. Aborts via CHECK on malformed input.
  void Apply(const std::vector<ResolvedMutationOp>& ops,
             const PageAlloc& alloc);

  /// Appends a record post-finalize, packing each vertical fragment onto
  /// append pages (allocating via `alloc` when the current one fills).
  /// Returns the new slot.
  uint32_t ApplyInsert(std::vector<Value> fields, uint16_t hfrag,
                       const PageAlloc& alloc);
  /// Tombstones a live slot and removes it from its hfrag scan list.
  void ApplyDelete(uint32_t slot);
  /// Overwrites fields of a live slot in place.
  void ApplyUpdate(uint32_t slot,
                   const std::vector<std::pair<int, Value>>& assigns);
  /// Recomputes ScanPages from the current page/slot structures (distinct
  /// pages in first-touch order per (v, h)). Called once per Apply batch.
  void RebuildScanPages();

  // --- Layout (populated by Database::Finalize) ---------------------------

  uint16_t num_vfrags() const { return num_vfrags_; }
  uint16_t num_hfrags() const { return num_hfrags_; }
  bool finalized() const { return !page_of_.empty(); }

  /// Fields (storage positions) belonging to vertical fragment `v`.
  const std::vector<int>& VfragFields(uint16_t v) const {
    return vfrag_fields_[v];
  }

  /// Vertical fragment containing field `field`.
  uint16_t VfragOfField(int field) const { return vfrag_of_field_[field]; }

  /// Horizontal fragment of a record.
  uint16_t HfragOf(uint32_t slot) const { return hfrag_of_[slot]; }

  /// Page holding the `v` fragment of record `slot`.
  PageId PageOf(uint32_t slot, uint16_t v) const { return page_of_[v][slot]; }

  /// Distinct pages touched by a full scan of atomic entity (v, h), in scan
  /// order.
  const std::vector<PageId>& ScanPages(uint16_t v, uint16_t h) const {
    return scan_pages_[v][h];
  }

  /// Slots belonging to horizontal fragment `h`, in scan order. Tombstoned
  /// slots are removed, so scans never see deleted records.
  const std::vector<uint32_t>& SlotsOfHfrag(uint16_t h) const {
    return slots_of_hfrag_[h];
  }

 private:
  friend class Database;

  /// Grows liveness bookkeeping to cover every current slot.
  void EnsureMutable();

  std::string name_;
  uint32_t num_fields_;
  std::vector<std::vector<Value>> records_;

  /// Tombstone bitmap, lazily grown to records_.size() by the write path
  /// (all-alive while shorter).
  std::vector<uint8_t> deleted_;
  uint32_t num_deleted_ = 0;

  uint16_t num_vfrags_ = 1;
  uint16_t num_hfrags_ = 1;
  std::vector<std::vector<int>> vfrag_fields_;
  std::vector<uint16_t> vfrag_of_field_;
  std::vector<uint16_t> hfrag_of_;
  std::vector<std::vector<PageId>> page_of_;                // [v][slot]
  std::vector<std::vector<std::vector<PageId>>> scan_pages_;  // [v][h]
  std::vector<std::vector<uint32_t>> slots_of_hfrag_;       // [h]

  /// Bytes one record contributes to vertical fragment v (set at Finalize;
  /// drives the append packer).
  std::vector<uint64_t> frag_bytes_;
  /// Append packer state per vertical fragment: the page currently being
  /// filled by post-finalize inserts and its remaining capacity.
  struct AppendState {
    PageId current = 0;
    uint64_t bytes_left = 0;
  };
  std::vector<AppendState> append_;
};

}  // namespace rodin

#endif  // RODIN_STORAGE_EXTENT_H_
