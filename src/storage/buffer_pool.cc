#include "storage/buffer_pool.h"

#include "obs/metrics.h"

namespace rodin {

bool BufferPool::Fetch(PageId page) {
  SpinGuard guard(lock_);
  ++stats_.fetches;
  if (capacity_ == 0) {
    ++stats_.misses;
    return false;
  }
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.misses;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(page);
  index_[page] = lru_.begin();
  return false;
}

void BufferPool::ResetStats() {
  PublishMetrics();
  SpinGuard guard(lock_);
  stats_ = Stats{};
  published_ = Stats{};
}

void BufferPool::Clear() {
  PublishMetrics();
  SpinGuard guard(lock_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
  published_ = Stats{};
}

void BufferPool::PublishMetrics() {
  static obs::Counter* fetches =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.fetches");
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.misses");
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.hits");
  static obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.evictions");
  Stats delta;
  {
    SpinGuard guard(lock_);
    delta.fetches = stats_.fetches - published_.fetches;
    delta.misses = stats_.misses - published_.misses;
    delta.hits = stats_.hits - published_.hits;
    delta.evictions = stats_.evictions - published_.evictions;
    published_ = stats_;
  }
  fetches->Add(delta.fetches);
  misses->Add(delta.misses);
  hits->Add(delta.hits);
  evictions->Add(delta.evictions);
}

}  // namespace rodin
