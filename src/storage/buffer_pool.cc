#include "storage/buffer_pool.h"

#include <iterator>

#include "common/check.h"
#include "obs/metrics.h"

namespace rodin {

bool BufferPool::Fetch(PageId page) {
  SpinGuard guard(lock_);
  ++stats_.fetches;
  const size_t cap = EffectiveCapacityLocked();
  if (cap == 0) {
    ++stats_.misses;
    return false;
  }
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.misses;
  if (lru_.size() >= cap) EvictDownToLocked(cap - 1);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  return false;
}

void BufferPool::EvictDownToLocked(size_t limit) {
  while (lru_.size() > limit) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void BufferPool::SetQueryBudget(size_t budget_pages) {
  SpinGuard guard(lock_);
  budget_ = budget_pages;
  // Degrade immediately: pages beyond the budget are evicted now (and
  // counted), so the budgeted section starts from a compliant resident set.
  const size_t cap = EffectiveCapacityLocked();
  if (cap < lru_.size()) EvictDownToLocked(cap);
}

void BufferPool::ClearQueryBudget() {
  SpinGuard guard(lock_);
  budget_ = 0;
}

std::vector<PageId> BufferPool::SnapshotResident() const {
#ifndef NDEBUG
  RODIN_CHECK(active_fetchers() == 0,
              "BufferPool::SnapshotResident while a fetch section is active "
              "(live streaming cursor?)");
#endif
  SpinGuard guard(lock_);
  return std::vector<PageId>(lru_.begin(), lru_.end());
}

void BufferPool::RestoreResident(const std::vector<PageId>& mru_first) {
#ifndef NDEBUG
  RODIN_CHECK(active_fetchers() == 0,
              "BufferPool::RestoreResident while a fetch section is active "
              "(live streaming cursor?)");
#endif
  SpinGuard guard(lock_);
  lru_.clear();
  index_.clear();
  for (PageId p : mru_first) {
    lru_.push_back(p);
    index_[p] = std::prev(lru_.end());
  }
}

void BufferPool::ResetStats() {
  PublishMetrics();
  SpinGuard guard(lock_);
  stats_ = Stats{};
  published_ = Stats{};
}

void BufferPool::Clear() {
  PublishMetrics();
  SpinGuard guard(lock_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
  published_ = Stats{};
}

void BufferPool::PublishMetrics() {
  static obs::Counter* fetches =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.fetches");
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.misses");
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.hits");
  static obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter("rodin.buffer.evictions");
  Stats delta;
  {
    SpinGuard guard(lock_);
    delta.fetches = stats_.fetches - published_.fetches;
    delta.misses = stats_.misses - published_.misses;
    delta.hits = stats_.hits - published_.hits;
    delta.evictions = stats_.evictions - published_.evictions;
    published_ = stats_;
  }
  fetches->Add(delta.fetches);
  misses->Add(delta.misses);
  hits->Add(delta.hits);
  evictions->Add(delta.evictions);
}

}  // namespace rodin
