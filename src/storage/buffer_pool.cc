#include "storage/buffer_pool.h"

namespace rodin {

bool BufferPool::Fetch(PageId page) {
  ++stats_.fetches;
  if (capacity_ == 0) {
    ++stats_.misses;
    return false;
  }
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.misses;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(page);
  index_[page] = lru_.begin();
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace rodin
