#include "storage/spill_file.h"

#include <unistd.h>

#include <cstring>

#include "common/check.h"
#include "storage/buffer_pool.h"

namespace rodin {

namespace {

// Row serialization: a tag byte per value, then a fixed or length-prefixed
// payload. Little-endian fixed-width integers; doubles as their IEEE-754
// bit pattern. Collections nest recursively.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagReal = 3;
constexpr uint8_t kTagStr = 4;
constexpr uint8_t kTagRef = 5;
constexpr uint8_t kTagCollection = 6;

// Flush threshold for the write buffer: large enough to amortize fwrite,
// small enough to keep the spill path's own memory footprint trivial.
constexpr size_t kFlushBytes = 1u << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (v.is_bool()) {
    out->push_back(static_cast<char>(kTagBool));
    out->push_back(v.AsBool() ? 1 : 0);
  } else if (v.is_int()) {
    out->push_back(static_cast<char>(kTagInt));
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_real()) {
    out->push_back(static_cast<char>(kTagReal));
    uint64_t bits;
    const double d = v.AsReal();
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(out, bits);
  } else if (v.is_string()) {
    out->push_back(static_cast<char>(kTagStr));
    const std::string& s = v.AsString();
    PutU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  } else if (v.is_ref()) {
    out->push_back(static_cast<char>(kTagRef));
    const Oid oid = v.AsRef();
    PutU32(out, oid.class_id);
    PutU32(out, oid.slot);
  } else {
    const Collection& c = v.AsCollection();
    out->push_back(static_cast<char>(kTagCollection));
    out->push_back(static_cast<char>(c.kind));
    PutU32(out, static_cast<uint32_t>(c.elems.size()));
    for (const Value& e : c.elems) EncodeValue(e, out);
  }
}

Value DecodeValue(const char* data, size_t size, size_t* pos) {
  RODIN_CHECK(*pos < size, "spill row truncated");
  const uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      RODIN_CHECK(*pos + 1 <= size, "spill row truncated");
      const bool b = data[*pos] != 0;
      *pos += 1;
      return Value::Bool(b);
    }
    case kTagInt: {
      RODIN_CHECK(*pos + 8 <= size, "spill row truncated");
      const uint64_t bits = GetU64(data + *pos);
      *pos += 8;
      return Value::Int(static_cast<int64_t>(bits));
    }
    case kTagReal: {
      RODIN_CHECK(*pos + 8 <= size, "spill row truncated");
      const uint64_t bits = GetU64(data + *pos);
      *pos += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case kTagStr: {
      RODIN_CHECK(*pos + 4 <= size, "spill row truncated");
      const uint32_t len = GetU32(data + *pos);
      *pos += 4;
      RODIN_CHECK(*pos + len <= size, "spill row truncated");
      std::string s(data + *pos, len);
      *pos += len;
      return Value::Str(std::move(s));
    }
    case kTagRef: {
      RODIN_CHECK(*pos + 8 <= size, "spill row truncated");
      Oid oid;
      oid.class_id = GetU32(data + *pos);
      oid.slot = GetU32(data + *pos + 4);
      *pos += 8;
      return Value::Ref(oid);
    }
    case kTagCollection: {
      RODIN_CHECK(*pos + 5 <= size, "spill row truncated");
      const Collection::Kind kind =
          static_cast<Collection::Kind>(data[(*pos)++]);
      const uint32_t count = GetU32(data + *pos);
      *pos += 4;
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        elems.push_back(DecodeValue(data, size, pos));
      }
      switch (kind) {
        case Collection::Kind::kSet:
          return Value::MakeSet(std::move(elems));
        case Collection::Kind::kList:
          return Value::MakeList(std::move(elems));
        case Collection::Kind::kTuple:
          return Value::MakeTuple(std::move(elems));
      }
      RODIN_CHECK(false, "spill row: unknown collection kind");
    }
    default:
      RODIN_CHECK(false, "spill row: unknown value tag");
  }
  return Value::Null();  // unreachable
}

}  // namespace

SpillFile::SpillFile() {
  file_ = std::tmpfile();
  RODIN_CHECK(file_ != nullptr, "cannot create spill temp file");
  fd_ = fileno(file_);
  RODIN_CHECK(fd_ >= 0, "cannot get spill temp file descriptor");
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);  // tmpfile: unlinked by the OS
}

void SpillFile::FlushBuffer() {
  if (buffer_.empty()) return;
  const size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  RODIN_CHECK(written == buffer_.size(), "spill write failed (disk full?)");
  flushed_ += buffer_.size();
  buffer_.clear();
}

void SpillFile::AppendRow(const std::vector<Value>& row) {
  RODIN_CHECK(!finished_, "AppendRow after Finish");
  offsets_.push_back(bytes_);
  PutU32(&buffer_, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(v, &buffer_);
  bytes_ = flushed_ + buffer_.size();
  if (buffer_.size() >= kFlushBytes) FlushBuffer();
}

void SpillFile::Finish() {
  if (finished_) return;
  FlushBuffer();
  RODIN_CHECK(std::fflush(file_) == 0, "spill flush failed");
  finished_ = true;
}

uint64_t SpillFile::Partitions(uint64_t partition_pages) const {
  if (offsets_.empty()) return 0;
  if (partition_pages == 0) return 1;
  const uint64_t slice = partition_pages * kPageSizeBytes;
  return (bytes_ + slice - 1) / slice;
}

std::vector<Value> SpillFile::ReadRow(size_t i) const {
  RODIN_CHECK(finished_, "ReadRow before Finish");
  RODIN_CHECK(i < offsets_.size(), "spill row index out of range");
  const uint64_t start = offsets_[i];
  const uint64_t end = i + 1 < offsets_.size() ? offsets_[i + 1] : bytes_;
  const size_t len = static_cast<size_t>(end - start);
  std::string buf(len, '\0');
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd_, buf.data() + got, len - got,
                              static_cast<off_t>(start + got));
    RODIN_CHECK(n > 0, "spill read failed");
    got += static_cast<size_t>(n);
  }
  size_t pos = 0;
  RODIN_CHECK(len >= 4, "spill row truncated");
  const uint32_t ncols = GetU32(buf.data());
  pos = 4;
  std::vector<Value> row;
  row.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    row.push_back(DecodeValue(buf.data(), len, &pos));
  }
  return row;
}

void SpillFile::ReadAll(std::vector<std::vector<Value>>* out) const {
  out->reserve(out->size() + offsets_.size());
  for (size_t i = 0; i < offsets_.size(); ++i) {
    out->push_back(ReadRow(i));
  }
}

}  // namespace rodin
